"""Fig. 6: CDF of task duration for the three priority groups.

Paper shape: >50% of tasks run under 100 s; 90% of gratis/other durations
fall below ~10 h; production durations tail out to weeks.
"""

import numpy as np

from repro.analysis import format_cdf_rows
from repro.trace import PriorityGroup, duration_cdf_by_group


def test_fig06_duration_cdf(benchmark, bench_trace):
    cdfs = benchmark(duration_cdf_by_group, bench_trace)
    points = [10, 100, 1000, 36000, 86400 * 5]

    print("\n=== Fig. 6: CDF of task duration ===")
    fractions = {}
    for group in PriorityGroup:
        x, _ = cdfs[group]
        rows = format_cdf_rows(x, points)
        fractions[group] = dict(rows)
        cells = "  ".join(f"{label}:{value:.2f}" for label, value in rows)
        print(f"  {group.name.lower():>10}  {cells}")

    all_durations = np.array([t.duration for t in bench_trace.tasks])
    short_fraction = float((all_durations < 100.0).mean())
    print(f"overall fraction under 100 s: {short_fraction:.1%}")

    # Paper shapes.
    assert short_fraction > 0.5, "more than 50% of tasks are short"
    assert fractions[PriorityGroup.GRATIS]["<= 36000s"] > 0.85
    assert (
        fractions[PriorityGroup.PRODUCTION]["<= 100s"]
        <= fractions[PriorityGroup.GRATIS]["<= 100s"]
    ), "production tasks run longer"
