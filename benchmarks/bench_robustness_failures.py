"""Robustness: HARMONY under injected faults, guarded vs raw, via the runner.

The monitoring module of Fig. 8 "reports any failures and anomalies"; this
bench drives the resilience subsystem end to end through the shared
:class:`~repro.runner.ScenarioRunner`: the canonical fault matrix (clean /
correlated outage / monitoring blackout, from
:mod:`repro.resilience.scenarios`) replayed under the guarded CBS
controller, plus the legacy Poisson knob through the public ``prepare()``
seam — and checks the architecture's graceful-degradation claim:

- the guarded controller finishes the outage trace with >= 85% of the
  fault-free scheduled count;
- every emitted decision is valid (finite, non-negative, within clamp);
- availability / MTTR / restart-latency metrics appear in the output.
"""

import math
import os

from repro.analysis import ascii_table
from repro.runner import ScenarioRunner, repo_root, robustness_scenarios, write_baseline
from repro.simulation import ClusterConfig, ClusterSimulator, HarmonyConfig, HarmonySimulation

#: Workers for the fault matrix; 1 on small boxes (spawn import overhead
#: would dominate three ~2 h-window simulations).
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2" if (os.cpu_count() or 1) >= 2 else "1"))


def _resilience_row(name, summary):
    res = summary["resilience"]
    return [
        name,
        res["machines_failed"],
        summary["tasks_killed"],
        summary["tasks_scheduled"],
        f"{res['availability']:.3f}",
        f"{res['mttr_s']:.0f}s",
        f"{res['mean_restart_latency_s']:.0f}s",
        f"{res['slo_attainment_5m']:.3f}",
        res["breaker_trips"],
        res["invalid_decisions"],
    ]


def test_cbs_under_failures(benchmark, bench_trace, bench_classifier):
    runner = ScenarioRunner("robustness")
    scenarios = robustness_scenarios()
    report = runner.run(scenarios, workers=WORKERS)
    summaries = {r.name.removeprefix("fault_"): r.summary for r in report}

    rows = [_resilience_row(name, summary) for name, summary in summaries.items()]

    # The legacy Poisson knob still drives the same machinery, through the
    # public prepare() accessor and a custom ClusterConfig.
    window = bench_trace.window(0.0, min(2 * 3600.0, bench_trace.horizon))
    base = HarmonyConfig(policy="cbs", predictor="ewma", guard=True)
    biggest_pool = max(base.fleet, key=lambda m: m.count)
    simulation = HarmonySimulation(base, window, classifier=bench_classifier)
    tasks, class_of = simulation.prepare()
    simulator = ClusterSimulator(
        tasks=tasks,
        horizon=window.horizon,
        machine_models=base.fleet,
        policy=simulation.build_policy(),
        class_of=class_of,
        config=ClusterConfig(
            control_interval=base.control_interval,
            failure_rate_per_machine_hour=0.1,
            repair_seconds=3600.0,
            failure_seed=1,
        ),
        relabel=simulation.relabel_class,
    )
    poisson_metrics = simulator.run()
    rows.append(
        [
            "poisson 0.1",
            len(poisson_metrics.failure_events),
            simulator.tasks_killed,
            poisson_metrics.num_scheduled,
            f"{poisson_metrics.availability():.3f}",
            f"{poisson_metrics.mttr(censor_at=window.horizon):.0f}s",
            f"{poisson_metrics.mean_restart_latency(censor_at=window.horizon):.0f}s",
            f"{poisson_metrics.slo_attainment(300.0, include_unscheduled_at=window.horizon):.3f}",
            "-",
            "-",
        ]
    )

    print("\n=== Robustness: guarded CBS under injected faults ===")
    print(
        ascii_table(
            ["scenario", "crashes", "killed", "scheduled", "availability",
             "MTTR", "restart lat", "SLO(5m)", "trips", "invalid"],
            rows,
        )
    )

    path = write_baseline(report, repo_root())
    print(f"wrote {path}")

    benchmark.pedantic(lambda: summaries, rounds=1, iterations=1)

    clean, outage = summaries["clean"], summaries["outage"]
    # The outage really took out >= 25% of one pool...
    assert outage["resilience"]["machines_failed"] >= math.ceil(0.25 * biggest_pool.count)
    assert outage["tasks_killed"] > 0
    # ...and the guarded controller absorbed it: scheduled count stays
    # within 85% of the fault-free run, with no invalid decision emitted.
    assert outage["tasks_scheduled"] >= 0.85 * clean["tasks_scheduled"]
    assert outage["resilience"]["invalid_decisions"] == 0
    assert outage["resilience"]["availability"] < 1.0
    assert outage["resilience"]["mttr_s"] > 0.0
    # The Poisson preset still crashes machines (kills depend on whether the
    # random victims were busy, so the outage above owns that assertion).
    assert len(poisson_metrics.failure_events) > 0
    assert poisson_metrics.num_scheduled >= 0.9 * clean["tasks_scheduled"]
