"""Robustness: HARMONY under machine failures.

The monitoring module of Fig. 8 "reports any failures and anomalies"; this
bench injects machine crashes (tasks restart elsewhere, machines repair
after an hour) and checks the controller keeps the cluster serving — the
paper's architecture claims graceful behaviour under churn.
"""

from repro.analysis import ascii_table
from repro.simulation import ClusterConfig, ClusterSimulator, HarmonyConfig, HarmonySimulation


def test_cbs_under_failures(benchmark, bench_trace, bench_classifier):
    window = bench_trace.window(0.0, 2 * 3600.0)
    config = HarmonyConfig(policy="cbs", predictor="ewma")
    rows = []
    results = {}
    for rate in (0.0, 0.02, 0.1):
        simulation = HarmonySimulation(config, window, classifier=bench_classifier)
        policy = simulation.build_policy()
        simulator = ClusterSimulator(
            tasks=simulation._prepare_tasks(),
            horizon=window.horizon,
            machine_models=config.fleet,
            policy=policy,
            class_of=lambda task: simulation._class_by_uid[task.uid],
            config=ClusterConfig(
                control_interval=config.control_interval,
                failure_rate_per_machine_hour=rate,
                repair_seconds=3600.0,
                failure_seed=1,
            ),
            relabel=simulation.relabel_class,
        )
        metrics = simulator.run()
        failures = sum(p.stats.failures for p in simulator.pools)
        results[rate] = (metrics, simulator, failures)
        rows.append(
            [
                rate,
                failures,
                simulator.tasks_killed,
                metrics.num_scheduled,
                metrics.num_unscheduled,
                f"{metrics.mean_delay(include_unscheduled_at=window.horizon):.0f}s",
                f"{simulator.energy.total_kwh:.1f}",
            ]
        )

    print("\n=== Robustness: CBS under machine failures ===")
    print(
        ascii_table(
            ["fail/machine/h", "crashes", "tasks killed", "scheduled",
             "unscheduled", "mean delay", "kWh"],
            rows,
        )
    )

    benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    clean_metrics, _, _ = results[0.0]
    faulty_metrics, faulty_sim, failures = results[0.1]
    assert failures > 0 and faulty_sim.tasks_killed > 0
    # The controller absorbs the churn: scheduled count degrades < 10%.
    assert faulty_metrics.num_scheduled >= 0.9 * clean_metrics.num_scheduled
