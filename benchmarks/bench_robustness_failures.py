"""Robustness: HARMONY under injected faults, guarded vs raw.

The monitoring module of Fig. 8 "reports any failures and anomalies"; this
bench drives the resilience subsystem end to end: independent Poisson
crashes (the legacy knob), a scripted correlated outage killing 30% of the
largest pool mid-run, and a monitoring blackout — all under the guarded
CBS controller — and checks the architecture's graceful-degradation claim:

- the guarded controller finishes the outage trace with >= 85% of the
  fault-free scheduled count;
- every emitted decision is valid (finite, non-negative, within clamp);
- availability / MTTR / restart-latency metrics appear in the output.
"""

import math
from dataclasses import replace

from repro.analysis import ascii_table
from repro.resilience import CorrelatedOutage, FaultPlan, MonitoringBlackout
from repro.simulation import ClusterConfig, ClusterSimulator, HarmonyConfig, HarmonySimulation


def test_cbs_under_failures(benchmark, bench_trace, bench_classifier):
    window = bench_trace.window(0.0, min(2 * 3600.0, bench_trace.horizon))
    base = HarmonyConfig(policy="cbs", predictor="ewma", guard=True)
    biggest_pool = max(base.fleet, key=lambda m: m.count)

    scenarios = {
        "clean": None,
        # A site-wide power-domain event: 30% of every pool (its busiest
        # machines first) crashes at once mid-run.
        "outage": FaultPlan(seed=1).with_fault(
            CorrelatedOutage(time=window.horizon / 2, fraction=0.3)
        ),
        "blackout": FaultPlan(seed=1).with_fault(
            MonitoringBlackout(time=window.horizon / 3, intervals=3)
        ),
    }

    rows = []
    results = {}
    for name, plan in scenarios.items():
        config = replace(base, fault_plan=plan)
        simulation = HarmonySimulation(config, window, classifier=bench_classifier)
        result = simulation.run()
        results[name] = result
        metrics = result.metrics
        rows.append(
            [
                name,
                len(metrics.failure_events),
                result.tasks_killed,
                metrics.num_scheduled,
                f"{metrics.availability():.3f}",
                f"{metrics.mttr(censor_at=window.horizon):.0f}s",
                f"{metrics.mean_restart_latency(censor_at=window.horizon):.0f}s",
                f"{metrics.slo_attainment(300.0, include_unscheduled_at=window.horizon):.3f}",
                result.guard_stats.trips,
                result.guard_stats.invalid_decisions,
            ]
        )

    # The legacy Poisson knob still drives the same machinery, through the
    # public prepare() accessor and a custom ClusterConfig.
    simulation = HarmonySimulation(base, window, classifier=bench_classifier)
    tasks, class_of = simulation.prepare()
    simulator = ClusterSimulator(
        tasks=tasks,
        horizon=window.horizon,
        machine_models=base.fleet,
        policy=simulation.build_policy(),
        class_of=class_of,
        config=ClusterConfig(
            control_interval=base.control_interval,
            failure_rate_per_machine_hour=0.1,
            repair_seconds=3600.0,
            failure_seed=1,
        ),
        relabel=simulation.relabel_class,
    )
    poisson_metrics = simulator.run()
    rows.append(
        [
            "poisson 0.1",
            len(poisson_metrics.failure_events),
            simulator.tasks_killed,
            poisson_metrics.num_scheduled,
            f"{poisson_metrics.availability():.3f}",
            f"{poisson_metrics.mttr(censor_at=window.horizon):.0f}s",
            f"{poisson_metrics.mean_restart_latency(censor_at=window.horizon):.0f}s",
            f"{poisson_metrics.slo_attainment(300.0, include_unscheduled_at=window.horizon):.3f}",
            "-",
            "-",
        ]
    )

    print("\n=== Robustness: guarded CBS under injected faults ===")
    print(
        ascii_table(
            ["scenario", "crashes", "killed", "scheduled", "availability",
             "MTTR", "restart lat", "SLO(5m)", "trips", "invalid"],
            rows,
        )
    )

    benchmark.pedantic(lambda: results, rounds=1, iterations=1)

    clean, outage = results["clean"], results["outage"]
    # The outage really took out >= 25% of one pool...
    assert len(outage.metrics.failure_events) >= math.ceil(0.25 * biggest_pool.count)
    assert outage.tasks_killed > 0
    # ...and the guarded controller absorbed it: scheduled count stays
    # within 85% of the fault-free run, with no invalid decision emitted.
    assert outage.metrics.num_scheduled >= 0.85 * clean.metrics.num_scheduled
    assert outage.guard_stats.invalid_decisions == 0
    assert outage.metrics.availability() < 1.0
    assert outage.metrics.mttr(censor_at=window.horizon) > 0.0
    # The Poisson preset still crashes machines (kills depend on whether the
    # random victims were busy, so the outage above owns that assertion).
    assert len(poisson_metrics.failure_events) > 0
    assert poisson_metrics.num_scheduled >= 0.9 * clean.metrics.num_scheduled
