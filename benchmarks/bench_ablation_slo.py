"""Ablation: the energy / scheduling-delay trade-off via SLO tightness.

The paper's core tension: "turning off a large number of machines can
achieve high energy savings [but] reduces service capacity and hence leads
to high scheduling delay".  In HARMONY the dial is the per-class delay SLO
(Eqs. 1-2 invert it into container counts).  Sweeping a multiplier on the
group SLOs shows energy falling and delay rising as targets loosen.
"""

from repro.analysis import ascii_table
from repro.containers import ContainerManagerConfig
from repro.containers.manager import default_delay_slos
from repro.simulation import HarmonyConfig, HarmonySimulation


def test_slo_energy_delay_tradeoff(benchmark, bench_trace, bench_classifier):
    window = bench_trace.window(0.0, 2 * 3600.0)
    rows = []
    outcomes = {}
    base = HarmonyConfig()
    ladders = (
        tuple(sorted({m.cpu_capacity for m in base.fleet})),
        tuple(sorted({m.memory_capacity for m in base.fleet})),
    )
    for multiplier in (0.25, 1.0, 4.0):
        slos = {g: s * multiplier for g, s in default_delay_slos().items()}
        config = HarmonyConfig(
            policy="cbs",
            predictor="ewma",
            manager=ContainerManagerConfig(
                delay_slos=slos, capacity_ladders=ladders
            ),
        )
        result = HarmonySimulation(config, window, classifier=bench_classifier).run()
        mean_delay = result.metrics.mean_delay(include_unscheduled_at=window.horizon)
        outcomes[multiplier] = (result.energy_kwh, mean_delay)
        rows.append(
            [
                f"{multiplier}x",
                f"{result.energy_kwh:.1f}",
                f"{result.metrics.mean_active_machines():.1f}",
                f"{mean_delay:.0f}s",
                result.metrics.num_unscheduled,
            ]
        )

    print("\n=== Ablation: SLO tightness (energy vs delay) ===")
    print(ascii_table(["SLO scale", "kWh", "mean machines", "mean delay", "unscheduled"], rows))

    benchmark.pedantic(lambda: outcomes, rounds=1, iterations=1)
    tight_kwh, tight_delay = outcomes[0.25]
    loose_kwh, loose_delay = outcomes[4.0]
    # Tight SLOs buy delay with energy; loose SLOs do the reverse.
    assert tight_kwh >= loose_kwh * 0.95
    assert loose_delay >= tight_delay * 0.8
