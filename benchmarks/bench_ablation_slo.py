"""Ablation: the energy / scheduling-delay trade-off via SLO tightness.

The paper's core tension: "turning off a large number of machines can
achieve high energy savings [but] reduces service capacity and hence leads
to high scheduling delay".  In HARMONY the dial is the per-class delay SLO
(Eqs. 1-2 invert it into container counts).  Sweeping a multiplier on the
group SLOs — one runner scenario per multiplier — shows energy falling and
delay rising as targets loosen.
"""

from repro.analysis import ascii_table
from repro.runner import ScenarioRunner, slo_scenarios


def test_slo_energy_delay_tradeoff(benchmark):
    runner = ScenarioRunner("ablation_slo")
    report = runner.run(slo_scenarios(), workers=1)

    rows = []
    outcomes = {}
    for result, multiplier in zip(report, (0.25, 1.0, 4.0)):
        s = result.summary
        outcomes[multiplier] = (s["energy_kwh"], s["mean_delay_s"])
        rows.append(
            [
                f"{multiplier}x",
                f"{s['energy_kwh']:.1f}",
                f"{s['mean_active_machines']:.1f}",
                f"{s['mean_delay_s']:.0f}s",
                s["tasks_unscheduled"],
            ]
        )

    print("\n=== Ablation: SLO tightness (energy vs delay) ===")
    print(ascii_table(["SLO scale", "kWh", "mean machines", "mean delay", "unscheduled"], rows))

    benchmark.pedantic(lambda: outcomes, rounds=1, iterations=1)
    tight_kwh, tight_delay = outcomes[0.25]
    loose_kwh, loose_delay = outcomes[4.0]
    # Tight SLOs buy delay with energy; loose SLOs do the reverse.
    assert tight_kwh >= loose_kwh * 0.95
    assert loose_delay >= tight_delay * 0.8
