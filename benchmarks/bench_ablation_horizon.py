"""Ablation: the MPC look-ahead horizon W (Algorithm 1).

Sweeps W on a fixed controller state and measures (a) LP solve time —
the controller's scalability knob — and (b) how much look-ahead changes
the first-step decision when a demand surge is forecast (W=1 cannot
pre-boot machines; W>=2 can).
"""

import time

import numpy as np

from repro.analysis import ascii_table
from repro.containers import ContainerManager, ContainerManagerConfig
from repro.energy import constant_price, table2_fleet
from repro.provisioning import CbsRelaxSolver, build_problem


def test_horizon_sweep(benchmark, bench_classifier):
    fleet = table2_fleet(0.1)
    manager = ContainerManager(bench_classifier, ContainerManagerConfig())
    class_ids = sorted(manager.specs)
    N = len(class_ids)
    solver = CbsRelaxSolver()

    # A surge at step 2: flat demand then 5x.
    base = np.full(N, 4.0)
    rows = []
    first_step_machines = {}
    solve_times = {}
    for W in (1, 2, 4, 8):
        demand = np.tile(base, (W, 1))
        if W >= 3:
            demand[2:] = base * 5.0
        problem = build_problem(
            fleet,
            manager.specs,
            demand=demand,
            prices=np.full(W, 0.1),
            interval_seconds=300.0,
        )
        start = time.perf_counter()
        solution = solver.solve(problem, initial_active=np.zeros(len(fleet)))
        elapsed = time.perf_counter() - start
        solve_times[W] = elapsed
        first_step_machines[W] = float(solution.z[0].sum())
        rows.append(
            [
                W,
                f"{elapsed * 1000:.0f} ms",
                f"{solution.z[0].sum():.1f}",
                f"{solution.z[-1].sum():.1f}",
                f"{solution.objective:.2f}",
            ]
        )

    print("\n=== Ablation: MPC horizon W ===")
    print(ascii_table(["W", "LP solve", "z[0] total", "z[W-1] total", "objective"], rows))

    # Solve time grows with W but stays interactive (well under a second
    # at the paper's scale of ~80 classes x 4 machine types).
    assert solve_times[8] < 30.0
    benchmark.pedantic(lambda: solver.solve(problem), rounds=1, iterations=1)
    # With look-ahead covering the surge, the final-step plan is larger.
    assert first_step_machines[1] > 0
