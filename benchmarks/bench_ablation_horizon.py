"""Ablation: the MPC look-ahead horizon W (Algorithm 1), via the runner.

Sweeps W on a fixed controller state (one runner scenario per W) and
measures (a) LP solve time — the controller's scalability knob — and
(b) how much look-ahead changes the first-step decision when a demand
surge is forecast (W=1 cannot pre-boot machines; W>=2 can).
"""

from repro.analysis import ascii_table
from repro.runner import ScenarioRunner, horizon_scenarios


def test_horizon_sweep(benchmark):
    runner = ScenarioRunner("ablation_horizon")
    report = runner.run(horizon_scenarios(), workers=1)

    rows = []
    first_step_machines = {}
    solve_times = {}
    for result in report:
        s = result.summary
        W = s["W"]
        solve_times[W] = result.phases["solve"]
        first_step_machines[W] = s["z_first_step"]
        rows.append(
            [
                W,
                f"{solve_times[W] * 1000:.0f} ms",
                f"{s['z_first_step']:.1f}",
                f"{s['z_last_step']:.1f}",
                f"{s['objective']:.2f}",
            ]
        )

    print("\n=== Ablation: MPC horizon W ===")
    print(ascii_table(["W", "LP solve", "z[0] total", "z[W-1] total", "objective"], rows))

    # Solve time grows with W but stays interactive (well under a second
    # at the paper's scale of ~80 classes x 4 machine types).
    assert solve_times[8] < 30.0
    benchmark.pedantic(
        lambda: runner.run(horizon_scenarios()[-1:], workers=1), rounds=1, iterations=1
    )
    # With look-ahead covering the surge, the final-step plan is larger.
    assert first_step_machines[1] > 0
