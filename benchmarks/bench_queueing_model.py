"""Model-validation bench: Eqs. 1-2 against a discrete-event M/G/N queue.

Not a paper figure per se, but the load-bearing approximation behind
Fig. 20's container counts — worth regenerating alongside the figures.
"""

from repro.analysis import ascii_table
from repro.queueing import (
    erlang_c,
    mgn_mean_wait,
    required_containers,
    simulate_mgn_queue,
)


def test_eq1_eq2_against_simulation(benchmark):
    cases = [
        # (lambda, mu, N, scv)
        (8.0, 1.0, 10, 1.0),
        (4.0, 1.0, 6, 1.0),
        (16.0, 2.0, 10, 0.5),
        (4.0, 1.0, 6, 4.0),
    ]
    rows = []
    for lam, mu, n, scv in cases:
        predicted = mgn_mean_wait(lam, mu, n, scv)
        simulated = simulate_mgn_queue(
            lam, mu, n, scv, num_tasks=30_000, seed=1
        ).mean_wait
        error = abs(predicted - simulated) / max(simulated, 1e-9)
        rows.append(
            [f"l={lam} mu={mu} N={n} CV2={scv}",
             f"{predicted:.3f}", f"{simulated:.3f}", f"{error:.0%}"]
        )
        if scv <= 1.0:
            assert error < 0.6, "Allen-Cunneen out of its accuracy class"
        else:
            # Heavy-tailed (lognormal CV^2 = 4) service: the approximation
            # is conservative — it overestimates the wait (never dangerous
            # for provisioning) but by up to ~2x on the mean.
            assert predicted >= simulated * 0.5
            assert error < 2.0

    print("\n=== Eq. 1 mean wait vs discrete-event M/G/N ===")
    print(ascii_table(["case", "Eq.1 (s)", "simulated (s)", "rel err"], rows))

    benchmark(mgn_mean_wait, 8.0, 1.0, 10, 1.0)


def test_container_inversion_bench(benchmark):
    n = benchmark(required_containers, 50.0, 0.01, 60.0, 2.0)
    assert mgn_mean_wait(50.0, 0.01, n, 2.0) <= 60.0
    print(f"\nrequired containers for l=50/s, 100 s tasks, 60 s SLO: {n}")


def test_erlang_c_scaling(benchmark):
    """Erlang-C must stay stable and fast at data-center scale."""
    value = benchmark(erlang_c, 5000.0, 5200)
    assert 0.0 <= value <= 1.0
