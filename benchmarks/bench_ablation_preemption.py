"""Ablation: priority preemption in the simulated scheduler, via the runner.

The trace's priority semantics ("task priorities can ensure that high
priority tasks are scheduled earlier than low priority tasks", Section III)
include eviction.  This bench runs CBS with and without preemption (one
runner scenario each) and reports the production-delay improvement and the
gratis-side cost.
"""

from repro.analysis import ascii_table
from repro.runner import ScenarioRunner, preemption_scenarios


def test_preemption_ablation(benchmark):
    runner = ScenarioRunner("ablation_preemption")
    report = runner.run(preemption_scenarios(), workers=1)

    rows = []
    outcomes = {}
    for result in report:
        s = result.summary
        flag = result.name.endswith("_on")
        production_p95 = s["delay_by_group"]["production"]["p95_s"]
        gratis_mean = s["delay_by_group"]["gratis"]["mean_s"]
        outcomes[flag] = (production_p95, gratis_mean)
        rows.append(
            [
                "on" if flag else "off",
                f"{production_p95:.0f}s",
                f"{gratis_mean:.0f}s",
                s["tasks_unscheduled"],
                f"{s['energy_kwh']:.1f}",
            ]
        )

    print("\n=== Ablation: priority preemption ===")
    print(
        ascii_table(
            ["preemption", "production p95", "gratis mean delay",
             "unscheduled", "kWh"],
            rows,
        )
    )

    benchmark.pedantic(lambda: outcomes, rounds=1, iterations=1)
    off_p95, _ = outcomes[False]
    on_p95, _ = outcomes[True]
    # Preemption must not hurt the production tail.
    assert on_p95 <= off_p95 * 1.05 + 1.0
