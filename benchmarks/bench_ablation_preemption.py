"""Ablation: priority preemption in the simulated scheduler.

The trace's priority semantics ("task priorities can ensure that high
priority tasks are scheduled earlier than low priority tasks", Section III)
include eviction.  This bench runs CBS with and without preemption and
reports the production-delay improvement and the gratis-side cost.
"""

from repro.analysis import ascii_table
from repro.simulation import HarmonyConfig, HarmonySimulation
from repro.trace import PriorityGroup


def test_preemption_ablation(benchmark, bench_trace, bench_classifier):
    window = bench_trace.window(0.0, 2 * 3600.0)
    rows = []
    outcomes = {}
    for preemption in (False, True):
        config = HarmonyConfig(
            policy="cbs", predictor="ewma", enable_preemption=preemption
        )
        result = HarmonySimulation(config, window, classifier=bench_classifier).run()
        production_p95 = result.metrics.delay_percentile(
            95, PriorityGroup.PRODUCTION, include_unscheduled_at=window.horizon
        )
        gratis_mean = result.metrics.mean_delay(
            PriorityGroup.GRATIS, include_unscheduled_at=window.horizon
        )
        outcomes[preemption] = (production_p95, gratis_mean)
        rows.append(
            [
                "on" if preemption else "off",
                f"{production_p95:.0f}s",
                f"{gratis_mean:.0f}s",
                result.metrics.num_unscheduled,
                f"{result.energy_kwh:.1f}",
            ]
        )

    print("\n=== Ablation: priority preemption ===")
    print(
        ascii_table(
            ["preemption", "production p95", "gratis mean delay",
             "unscheduled", "kWh"],
            rows,
        )
    )

    benchmark.pedantic(lambda: outcomes, rounds=1, iterations=1)
    off_p95, _ = outcomes[False]
    on_p95, _ = outcomes[True]
    # Preemption must not hurt the production tail.
    assert on_p95 <= off_p95 * 1.05 + 1.0
