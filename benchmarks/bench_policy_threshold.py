"""Extra comparison: the reactive threshold autoscaler.

Not in the paper — the classic rule-based autoscaler slots between the
static cluster and model-driven provisioning.  This bench runs it on the
shared trace and places it in the Fig. 26 table alongside the paper's
policies.
"""

from repro.analysis import ascii_table
from repro.simulation import HarmonyConfig, HarmonySimulation


def test_threshold_autoscaler_comparison(benchmark, policy_results, bench_trace, bench_classifier):
    config = HarmonyConfig(policy="threshold")
    result = HarmonySimulation(config, bench_trace, classifier=bench_classifier).run()

    benchmark.pedantic(result.metrics.machines_series, rounds=1, iterations=1)
    rows = []
    all_results = dict(policy_results)
    all_results["threshold"] = result
    baseline_cost = all_results["baseline"].total_cost
    for policy, r in all_results.items():
        rows.append(
            [
                policy,
                f"{r.energy_kwh:.1f}",
                f"{r.total_cost:.2f}",
                f"{r.metrics.mean_active_machines():.1f}",
                f"{r.metrics.mean_delay(include_unscheduled_at=bench_trace.horizon):.0f}s",
                r.metrics.num_unscheduled,
                f"{1.0 - r.total_cost / baseline_cost:+.1%}",
            ]
        )

    print("\n=== Threshold autoscaler vs the paper's policies ===")
    print(
        ascii_table(
            ["policy", "kWh", "total $", "mean machines", "mean delay",
             "unscheduled", "vs baseline"],
            rows,
        )
    )

    # The autoscaler must function: serve most of the workload reactively.
    assert result.metrics.num_scheduled > 0.85 * bench_trace.num_tasks
