"""Fig. 4: CDF of task scheduling delay per priority group.

Replays the trace through a fixed-capacity (static) cluster and reports
the per-group scheduling-delay CDF.  The paper's shape: production tasks
see the shortest delays (>50% immediate), gratis the longest.
"""

from repro.analysis import format_cdf_rows
from repro.trace import PriorityGroup


def test_fig04_delay_cdf_by_priority(benchmark, bench_trace, static_result):
    delays = benchmark(
        static_result.metrics.delays_by_group,
        include_unscheduled_at=bench_trace.horizon,
    )
    points = [1, 10, 60, 300, 1800]

    print("\n=== Fig. 4: CDF of scheduling delay ===")
    fractions = {}
    for group in PriorityGroup:
        rows = format_cdf_rows(delays[group], points)
        fractions[group] = dict(rows)
        cells = "  ".join(f"{label}:{value:.2f}" for label, value in rows)
        print(f"  {group.name.lower():>10}  {cells}")

    # Shape: higher priority -> no worse delay at every reported point.
    for point_label in fractions[PriorityGroup.PRODUCTION]:
        assert (
            fractions[PriorityGroup.PRODUCTION][point_label]
            >= fractions[PriorityGroup.GRATIS][point_label] - 0.10
        )
    # Most tasks schedule quickly on an all-on cluster.
    assert fractions[PriorityGroup.PRODUCTION]["<= 300s"] > 0.5
