"""Lemma 1 validation: first-fit rounding of random CBS-RELAX optima.

Lemma 1: given a fractional solution with z* type-m machines and x*
containers, first-fit places floor(x/(2|R|)) of every container type in
z*+1 machines.  We solve randomized instances and verify the guarantee,
plus report how much better the practical rounder does than the bound.
"""

import numpy as np

from repro.analysis import ascii_table
from repro.provisioning import (
    CbsRelaxSolver,
    ContainerType,
    FirstFitRounder,
    MachineClass,
    ProvisioningProblem,
    UtilityFunction,
    first_fit_pack,
)


def random_problem(rng):
    machines = (
        MachineClass(1, "small", (0.25, 0.25), int(rng.integers(4, 30)),
                     60.0, (40.0, 10.0), 0.0),
        MachineClass(2, "big", (1.0, 1.0), int(rng.integers(4, 30)),
                     200.0, (150.0, 40.0), 0.0),
    )
    num_containers = int(rng.integers(2, 5))
    containers = tuple(
        ContainerType(
            n,
            f"c{n}",
            (float(rng.uniform(0.02, 0.5)), float(rng.uniform(0.02, 0.5))),
            UtilityFunction.capped_linear(0.05, 1000),
        )
        for n in range(num_containers)
    )
    demand = rng.uniform(1, 40, size=(1, num_containers))
    return ProvisioningProblem(
        machines=machines,
        containers=containers,
        demand=demand,
        prices=np.array([0.1]),
        interval_seconds=300.0,
    )


def test_lemma1_randomized(benchmark):
    rng = np.random.default_rng(123)
    solver = CbsRelaxSolver()
    rounder = FirstFitRounder()
    rows = []
    violations = 0
    practical_ratios = []

    for trial in range(30):
        problem = random_problem(rng)
        solution = solver.solve(problem)
        scaled = rounder.lemma1_scaled_counts(problem, solution)
        for m, machine in enumerate(problem.machines):
            budget = int(np.floor(solution.z[0, m])) + 1
            _, leftover = first_fit_pack(
                scaled[m],
                [c.size for c in problem.containers],
                machine.capacity,
                max_machines=budget,
            )
            if leftover.sum() > 0:
                violations += 1
        plan = rounder.round(problem, solution)
        practical_ratios.append(plan.placement_ratio(solution.scheduled(0)))

    rows.append(["Lemma 1 violations", f"{violations}/60 machine-classes"])
    rows.append(["practical rounder placement", f"{np.mean(practical_ratios):.1%} of x*"])
    print("\n=== Lemma 1 rounding guarantee ===")
    print(ascii_table(["metric", "value"], rows))

    assert violations == 0
    # The practical rounder does far better than the 1/(2|R|) = 25% bound.
    assert np.mean(practical_ratios) > 0.7

    # Benchmark one solve+round cycle.
    problem = random_problem(np.random.default_rng(7))
    def cycle():
        solution = solver.solve(problem)
        return rounder.round(problem, solution)
    benchmark(cycle)
