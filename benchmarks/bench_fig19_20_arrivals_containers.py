"""Figs. 19-20: aggregated arrival rates and per-group container counts.

Fig. 19 comes straight from the trace; Fig. 20 is read off the CBS run's
control decisions (the container manager's per-round demand, aggregated to
priority groups) — containers track the arrival dynamics.
"""

import numpy as np

from repro.analysis import ascii_series
from repro.trace import PriorityGroup, arrival_rate_series


def test_fig19_arrival_rates(benchmark, bench_trace):
    rates = benchmark(arrival_rate_series, bench_trace, 300.0)
    num_bins = len(next(iter(rates.values())))
    times = (np.arange(num_bins) + 0.5) * 300.0

    print("\n=== Fig. 19: aggregated task arrival rates ===")
    for group in PriorityGroup:
        per_hour = rates[group] * 3600.0
        print(ascii_series(times, per_hour, height=5,
                           label=f"{group.name.lower()} (tasks/hour)"))
        assert per_hour.sum() > 0

    # Gratis + other dominate arrivals (production is the smallest stream).
    totals = {g: rates[g].sum() for g in PriorityGroup}
    assert totals[PriorityGroup.PRODUCTION] < totals[PriorityGroup.OTHER]


def test_fig20_containers_by_group(benchmark, policy_results):
    result = policy_results["cbs"]
    times, by_group = benchmark(result.metrics.containers_series)

    print("\n=== Fig. 20: total containers per priority group (CBS) ===")
    for group in PriorityGroup:
        series = by_group[group]
        if series.size:
            print(ascii_series(times, series, height=5, label=group.name.lower()))

    total = sum(series.sum() for series in by_group.values())
    assert total > 0
    # Containers exist for every group once the run is warm.
    for group in PriorityGroup:
        assert by_group[group][2:].max() > 0
