"""Fig. 7a-c: task size analysis per priority group.

Paper shapes: sizes span orders of magnitude; 43% of gratis tasks share the
(0.0125, 0.0159) modal request; large tasks are single-resource intensive
with little cpu-memory correlation.
"""

from repro.analysis import ascii_table
from repro.trace import PriorityGroup, size_scatter_by_group


def test_fig07_task_size_analysis(benchmark, bench_trace):
    scatters = benchmark(size_scatter_by_group, bench_trace)

    print("\n=== Fig. 7: task size analysis ===")
    rows = []
    for group in PriorityGroup:
        s = scatters[group]
        rows.append(
            [
                group.name.lower(),
                s.num_tasks,
                f"{s.cpu.min():.5f}",
                f"{s.cpu.max():.3f}",
                f"{s.size_span_orders:.1f}",
                f"{s.cpu_memory_correlation:+.2f}",
                f"{s.modal_fraction(0.0125, 0.0159):.0%}",
            ]
        )
    print(
        ascii_table(
            ["group", "tasks", "cpu min", "cpu max", "span (orders)", "corr", "modal"],
            rows,
        )
    )

    gratis = scatters[PriorityGroup.GRATIS]
    assert 0.30 <= gratis.modal_fraction(0.0125, 0.0159) <= 0.55
    for group in PriorityGroup:
        assert scatters[group].size_span_orders >= 1.5
        assert abs(scatters[group].cpu_memory_correlation) < 0.7
