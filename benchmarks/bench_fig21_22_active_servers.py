"""Figs. 21-22: number of active servers over time, baseline vs CBS/CBP.

Paper shape: all policies track demand, but the heterogeneity-oblivious
baseline systematically holds more machines than CBS for the same workload
(it cannot match machine shapes to the task mix).
"""

import numpy as np

from repro.analysis import ascii_series


def test_fig21_22_active_servers(benchmark, policy_results):
    print("\n=== Figs. 21-22: active servers over time ===")
    means = {}
    for policy in ("baseline", "cbp", "cbs"):
        result = policy_results[policy]
        times, powered = result.metrics.machines_series()
        means[policy] = float(np.mean(powered[1:]))
        print(ascii_series(times, powered, height=6, label=policy))

    benchmark(policy_results["cbs"].metrics.machines_series)
    print("mean active servers:", {k: round(v, 1) for k, v in means.items()})

    # Every policy keeps a non-trivial fleet on.
    for policy, mean in means.items():
        assert mean > 0
    # CBS holds a bounded premium over the baseline in the standard regime
    # (SLO headroom + container sizing); under pressure the ordering flips
    # (bench_fig26_pressure_regime).
    assert means["cbs"] <= means["baseline"] * 1.5
    # All policies track the workload ramp: machines at the end of the
    # window exceed the early-window count.
    for policy in ("baseline", "cbs"):
        _, powered = policy_results[policy].metrics.machines_series()
        assert powered[-5:].mean() > powered[2:7].mean()
