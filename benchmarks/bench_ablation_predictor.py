"""Ablation: the arrival-rate predictor (Section VI), via the runner.

Compares the paper's ARIMA against naive / moving-average / EWMA / Holt
baselines with rolling-origin one-step forecasts on the real per-group
arrival series of the shared trace — one runner scenario per predictor,
from the canonical :data:`repro.runner.suites.PREDICTOR_GRID`.
"""

from repro.analysis import ascii_table
from repro.runner import ScenarioRunner, predictor_scenarios


def test_predictor_ablation(benchmark):
    runner = ScenarioRunner("ablation_predictor")
    report = runner.run(predictor_scenarios(), workers=1)

    rows = []
    mean_rmse = {}
    for result in report:
        s = result.summary
        label = result.name.removeprefix("predictor_")
        mean_rmse[label] = s["mean_rmse"]
        for group, score in s["by_group"].items():
            rows.append(
                [group, label, f"{score['mae']:.2f}", f"{score['rmse']:.2f}"]
            )

    print("\n=== Ablation: arrival predictors (one-step rolling origin) ===")
    print(ascii_table(["group", "predictor", "MAE", "RMSE"], rows))
    print("mean RMSE:", {k: round(v, 2) for k, v in mean_rmse.items()})

    # ARIMA must be competitive: within 25% of the best baseline.
    best_baseline = min(v for k, v in mean_rmse.items() if "arima" not in k)
    assert mean_rmse["arima(2,0,1)"] <= best_baseline * 1.25

    arima = [s for s in predictor_scenarios() if "arima" in s.name]
    benchmark.pedantic(lambda: runner.run(arima, workers=1), rounds=1, iterations=1)
