"""Ablation: the arrival-rate predictor (Section VI).

Compares the paper's ARIMA against naive / moving-average / EWMA / Holt
baselines with rolling-origin one-step forecasts on the real per-group
arrival series of the shared trace.
"""

import numpy as np

from repro.analysis import ascii_table
from repro.forecasting import make_predictor, rolling_origin_evaluation
from repro.trace import PriorityGroup, bin_arrivals


def test_predictor_ablation(benchmark, bench_trace):
    series = bin_arrivals(bench_trace.tasks, bench_trace.horizon, 300.0)
    predictors = {
        "naive": lambda: make_predictor("naive"),
        "moving_average": lambda: make_predictor("moving_average", window=6),
        "ewma": lambda: make_predictor("ewma", alpha=0.3),
        "holt": lambda: make_predictor("holt"),
        "arima(2,0,1)": lambda: make_predictor("arima", order=(2, 0, 1), window=48),
        # 288 bins of 300 s = the 24 h diurnal period of the trace.
        "seasonal_ewma": lambda: make_predictor("seasonal_ewma", period=288),
    }

    rows = []
    scores = {}
    for group in PriorityGroup:
        counts = series.counts.get(group)
        if counts is None or counts.sum() < 10:
            continue
        for name, factory in predictors.items():
            score = rolling_origin_evaluation(counts, factory, warmup=12)
            scores.setdefault(name, []).append(score.rmse)
            rows.append(
                [group.name.lower(), name, f"{score.mae:.2f}", f"{score.rmse:.2f}"]
            )

    print("\n=== Ablation: arrival predictors (one-step rolling origin) ===")
    print(ascii_table(["group", "predictor", "MAE", "RMSE"], rows))
    mean_rmse = {name: float(np.mean(v)) for name, v in scores.items()}
    print("mean RMSE:", {k: round(v, 2) for k, v in mean_rmse.items()})

    # ARIMA must be competitive: within 25% of the best baseline.
    best_baseline = min(v for k, v in mean_rmse.items() if "arima" not in k)
    assert mean_rmse["arima(2,0,1)"] <= best_baseline * 1.25

    counts = series.counts[PriorityGroup.OTHER]
    benchmark(
        rolling_origin_evaluation,
        counts,
        predictors["arima(2,0,1)"],
        12,
    )
