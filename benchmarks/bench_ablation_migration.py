"""Ablation: container reassignment (migration) for consolidation.

Algorithm 1 migrates containers off surplus machines so they can power
down.  This bench builds fragmented machine states (random partial loads),
runs the consolidation planner, and reports how many machines migration
releases versus a no-migration policy — the energy those machines would
otherwise burn is the value of the mechanism.
"""

import numpy as np

from repro.analysis import ascii_table
from repro.provisioning import consolidation_savings, plan_consolidation
from repro.provisioning.rounding import MachineAssignment


def fragmented_state(rng, num_machines=20, mean_load=0.35):
    """Machines each holding a random partial container load."""
    sizes = {
        0: (0.05, 0.08),
        1: (0.12, 0.10),
        2: (0.25, 0.20),
    }
    machines = []
    for machine_id in range(num_machines):
        m = MachineAssignment(
            platform_id=1, capacity=(1.0, 1.0), used=np.zeros(2),
            containers={}, machine_id=machine_id,
        )
        target_load = float(np.clip(rng.normal(mean_load, 0.15), 0.05, 0.85))
        while m.used.max() < target_load:
            n = int(rng.integers(0, 3))
            if not m.fits(sizes[n]):
                break
            m.add(n, sizes[n])
        machines.append(m)
    return machines, sizes


def test_migration_consolidation(benchmark):
    rng = np.random.default_rng(11)
    rows = []
    total_released = 0
    for trial in range(10):
        machines, sizes = fragmented_state(rng)
        used = sum(m.used[0] for m in machines)
        # Ideal machine count at 90% packing efficiency.
        target = max(int(np.ceil(used / 0.9)), 1)
        plan, net = consolidation_savings(
            machines, sizes, target_active=target,
            idle_watts=138.0, horizon_seconds=3600.0,
            price_per_kwh=0.10, migration_cost=0.001,
        )
        total_released += len(plan.released_machines)
        if trial < 5:
            rows.append(
                [trial, len(machines), target, len(plan.released_machines),
                 plan.num_moves, f"{net:+.4f}"]
            )

    print("\n=== Ablation: consolidation via container migration ===")
    print(
        ascii_table(
            ["trial", "machines", "target", "released", "moves", "net $ (1 h)"],
            rows,
        )
    )
    print(f"total released across 10 trials: {total_released}")
    # Migration must release a meaningful share of fragmented machines.
    assert total_released >= 30

    machines, sizes = fragmented_state(np.random.default_rng(5))
    benchmark(plan_consolidation, machines, sizes, 8)
