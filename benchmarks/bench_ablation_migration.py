"""Ablation: container reassignment (migration) for consolidation.

Algorithm 1 migrates containers off surplus machines so they can power
down.  The fragmented-fleet trials run as a runner scenario (seeded, so
serial and parallel runs agree bit-for-bit); the report shows how many
machines migration releases versus a no-migration policy — the energy
those machines would otherwise burn is the value of the mechanism.
"""

import numpy as np

from repro.analysis import ascii_table
from repro.provisioning import plan_consolidation
from repro.provisioning.rounding import MachineAssignment
from repro.runner import ScenarioRunner, consolidation_scenarios


def fragmented_state(rng, num_machines=20, mean_load=0.35):
    """Machines each holding a random partial container load."""
    sizes = {
        0: (0.05, 0.08),
        1: (0.12, 0.10),
        2: (0.25, 0.20),
    }
    machines = []
    for machine_id in range(num_machines):
        m = MachineAssignment(
            platform_id=1, capacity=(1.0, 1.0), used=np.zeros(2),
            containers={}, machine_id=machine_id,
        )
        target_load = float(np.clip(rng.normal(mean_load, 0.15), 0.05, 0.85))
        while m.used.max() < target_load:
            n = int(rng.integers(0, 3))
            if not m.fits(sizes[n]):
                break
            m.add(n, sizes[n])
        machines.append(m)
    return machines, sizes


def test_migration_consolidation(benchmark):
    runner = ScenarioRunner("ablation_migration")
    report = runner.run(consolidation_scenarios(), workers=1)
    s = report["consolidation_frag"].summary

    print("\n=== Ablation: consolidation via container migration ===")
    print(
        ascii_table(
            ["trials", "released", "moves", "net $ (1 h)"],
            [[s["trials"], s["released"], s["moves"], f"{s['net_dollars']:+.4f}"]],
        )
    )
    print(f"total released across {s['trials']} trials: {s['released']}")
    # Migration must release a meaningful share of fragmented machines.
    assert s["released"] >= 30
    assert s["moves"] > 0

    machines, sizes = fragmented_state(np.random.default_rng(5))
    benchmark(plan_consolidation, machines, sizes, 8)
