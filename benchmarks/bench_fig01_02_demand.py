"""Figs. 1-2: total CPU and memory demand over time.

Regenerates the demand series of Section III-A on the shared evaluation
trace and benchmarks the demand-timeline kernel.
"""

import numpy as np

from repro.analysis import ascii_series
from repro.trace import demand_timeseries


def test_fig01_02_total_demand(benchmark, bench_trace):
    times, cpu, mem = benchmark(demand_timeseries, bench_trace, 300.0)

    print("\n=== Fig. 1: total CPU demand (normalized machine units) ===")
    print(ascii_series(times, cpu, label="cpu demand"))
    print("=== Fig. 2: total memory demand ===")
    print(ascii_series(times, mem, label="memory demand"))

    fleet_cpu = sum(m.cpu_capacity * m.count for m in bench_trace.machine_types)
    print(
        f"cpu demand: min {cpu.min():.1f}, max {cpu.max():.1f}, "
        f"fleet capacity {fleet_cpu:.1f} "
        f"(peak-to-trough {cpu.max() / max(cpu.min(), 1e-9):.1f}x)"
    )

    # Paper shape: demand fluctuates significantly over time and never
    # exceeds what the full cluster could serve at steady state.
    assert cpu.max() > 1.3 * max(cpu[len(cpu) // 10], 1e-9) or cpu.max() > 2 * cpu.min()
    assert np.all(cpu >= 0) and np.all(mem >= 0)
