"""Figs. 23-25: scheduling delay under baseline / CBP / CBS.

(The figure captions between Fig. 22 and Fig. 26 are lost in the available
text; per the narrative they compare task scheduling delay per priority
group across the three policies — CBS best, baseline worst for large
tasks, CBP in between.  See DESIGN.md.)
"""

from repro.analysis import ascii_table, format_cdf_rows
from repro.trace import PriorityGroup


def test_fig23_25_delay_comparison(benchmark, policy_results, bench_trace):
    points = [1, 60, 300, 1800]
    horizon = bench_trace.horizon

    print("\n=== Figs. 23-25: scheduling delay CDFs per policy ===")
    stats = {}
    for policy in ("baseline", "cbp", "cbs"):
        result = policy_results[policy]
        delays = result.metrics.delays_by_group(include_unscheduled_at=horizon)
        print(f"  --- {policy} ---")
        for group in PriorityGroup:
            rows = format_cdf_rows(delays[group], points)
            cells = "  ".join(f"{label}:{value:.2f}" for label, value in rows)
            print(f"    {group.name.lower():>10}  {cells}")
        stats[policy] = {
            "mean": result.metrics.mean_delay(include_unscheduled_at=horizon),
            "p95_prod": result.metrics.delay_percentile(
                95, PriorityGroup.PRODUCTION, include_unscheduled_at=horizon
            ),
            "unscheduled": result.metrics.num_unscheduled,
        }

    benchmark.pedantic(
        lambda: policy_results["cbs"].metrics.delays_by_group(
            include_unscheduled_at=horizon
        ),
        rounds=1,
        iterations=1,
    )
    print(
        ascii_table(
            ["policy", "mean delay (s)", "p95 production (s)", "unscheduled"],
            [
                [p, f"{s['mean']:.1f}", f"{s['p95_prod']:.1f}", s["unscheduled"]]
                for p, s in stats.items()
            ],
        )
    )

    # Paper shape: the container-based policies keep the production tail
    # competitive with the heterogeneity-oblivious baseline.
    assert stats["cbs"]["p95_prod"] <= stats["baseline"]["p95_prod"] * 1.25
    # Everyone schedules the vast majority of the workload in this regime.
    for policy, s in stats.items():
        assert s["unscheduled"] < 0.10 * bench_trace.num_tasks
