"""Figs. 10-18: task classification results (Section IX-A).

Figs. 10-12: number of tasks per class, per priority group.
Figs. 13/15/17: class centroids (cpu, memory mean ± std).
Figs. 14/16/18: short/long duration split (second k-means, k=2).
"""

import numpy as np

from repro.analysis import ascii_table
from repro.classification import ClassifierConfig, DurationCategory, TaskClassifier
from repro.trace import PriorityGroup


def test_fig10_18_classification(benchmark, bench_trace):
    tasks = list(bench_trace.tasks)
    classifier = benchmark.pedantic(
        lambda: TaskClassifier(ClassifierConfig(seed=7)).fit(tasks),
        rounds=1,
        iterations=1,
    )

    for group in PriorityGroup:
        leaves = classifier.classes_in_group(group)
        statics = [s for s in classifier.static_classes if s.group is group]
        print(f"\n=== Figs. 10-18 ({group.name.lower()}): {len(statics)} classes ===")
        print(
            ascii_table(
                ["class", "tasks", "cpu mean±std", "mem mean±std", "split@", "dur mean"],
                [
                    [
                        leaf.name,
                        leaf.num_tasks,
                        f"{leaf.cpu_mean:.4f}±{leaf.cpu_std:.4f}",
                        f"{leaf.memory_mean:.4f}±{leaf.memory_std:.4f}",
                        _split_of(classifier, leaf),
                        f"{leaf.duration_mean:.0f}s",
                    ]
                    for leaf in leaves
                ],
            )
        )

    # Paper shapes (Section IX-A):
    # every priority group produced classes;
    for group in PriorityGroup:
        assert classifier.classes_in_group(group)
    # "the standard deviation is much less than the mean value" —
    # task-weighted, across classes.
    ratios, weights = [], []
    for leaf in classifier.classes:
        if leaf.cpu_mean > 0:
            ratios.append(leaf.cpu_std / leaf.cpu_mean)
            weights.append(leaf.num_tasks)
    assert np.average(ratios, weights=weights) < 0.6
    # "the number of tasks within each cluster can vary significantly".
    counts = [leaf.num_tasks for leaf in classifier.classes]
    assert max(counts) > 10 * min(counts)
    # The k=2 duration split yields both short and long sub-classes.
    categories = {leaf.duration_category for leaf in classifier.classes}
    assert categories == {DurationCategory.SHORT, DurationCategory.LONG}
    # Long sub-classes have far longer durations than their short siblings.
    for leaf in classifier.classes:
        sibling = classifier.sibling(leaf)
        if sibling is not None and leaf.duration_category is DurationCategory.LONG:
            assert leaf.duration_mean > 3 * sibling.duration_mean


def _split_of(classifier, leaf):
    boundary = classifier.split_boundary(leaf.group, leaf.static_index)
    return f"{boundary:.0f}s" if np.isfinite(boundary) else "-"
