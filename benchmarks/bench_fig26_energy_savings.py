"""Fig. 26: total energy consumption — the headline result.

The paper reports CBS cutting energy ~28% vs. the heterogeneity-oblivious
baseline on a 29-day, 10,000-machine simulation.  At laptop scale the gap
is regime-dependent (see EXPERIMENTS.md):

* **standard regime** (moderate load, nobody starves): the baseline
  free-rides — its 80% bottleneck rule needs no per-class reservations —
  while CBS pays the SLO machinery's premium (headroom + sizing + packing
  slack).  CBS still picks *cheaper machines per watt* (the
  heterogeneity-awareness itself).
* **pressure regime** (memory-bound, near fleet capacity): shape-matching
  dominates and CBS's energy drops well below the baseline, at the price
  of shedding the lowest-utility work (the formulation's explicit choice).

This bench reports both; the paper's headline direction is asserted in the
pressure regime.
"""

from repro.analysis import ascii_table
from repro.energy import table2_fleet
from repro.simulation import HarmonyConfig, run_policy_comparison
from repro.simulation.harmony import energy_savings
from repro.trace import SyntheticTraceConfig, generate_trace


def _table(results, trace):
    savings = energy_savings(results)
    rows = []
    for policy, r in results.items():
        watts_per_machine = (
            r.energy_kwh * 1000.0 / (trace.horizon / 3600.0)
            / max(r.metrics.mean_active_machines(), 1e-9)
        )
        rows.append(
            [
                policy,
                f"{r.energy_kwh:.1f}",
                f"{r.total_cost:.2f}",
                f"{r.metrics.mean_active_machines():.1f}",
                f"{watts_per_machine:.0f}",
                r.metrics.num_unscheduled,
                f"{savings[policy]:+.1%}",
            ]
        )
    return rows, savings


def test_fig26_standard_regime(benchmark, policy_results, bench_trace):
    rows, savings = benchmark.pedantic(
        lambda: _table(policy_results, bench_trace), rounds=1, iterations=1
    )
    print("\n=== Fig. 26 (standard regime): total energy ===")
    print(
        ascii_table(
            ["policy", "kWh", "total $", "mean machines", "W/machine",
             "unscheduled", "vs baseline"],
            rows,
        )
    )
    # Everybody serves the workload in this regime.
    for policy, result in policy_results.items():
        assert result.metrics.num_unscheduled < 0.10 * bench_trace.num_tasks, policy
    # Heterogeneity-awareness buys cheaper machines per watt even when the
    # total doesn't win: CBS's fleet mix draws fewer watts per machine.
    def watts(policy):
        r = policy_results[policy]
        return r.energy_kwh / max(r.metrics.mean_active_machines(), 1e-9)
    assert watts("cbs") <= watts("baseline") * 1.02
    # The premium stays bounded.
    assert savings["cbs"] > -0.35


def test_fig26_pressure_regime(benchmark, bench_classifier):
    fleet_types = tuple(m.to_machine_type() for m in table2_fleet(0.1))
    trace = generate_trace(
        SyntheticTraceConfig(
            horizon_hours=2.0, seed=7, total_machines=400, load_factor=0.75,
            constraint_platforms=fleet_types,
        )
    )
    results = run_policy_comparison(
        trace, HarmonyConfig(), policies=("baseline", "cbs")
    )
    rows, savings = benchmark.pedantic(
        lambda: _table(results, trace), rounds=1, iterations=1
    )
    print("\n=== Fig. 26 (pressure regime): total energy ===")
    print(
        ascii_table(
            ["policy", "kWh", "total $", "mean machines", "W/machine",
             "unscheduled", "vs baseline"],
            rows,
        )
    )
    print(
        "note: under pressure CBS sheds the lowest-utility (gratis) work "
        "by design — the energy saving is partly capacity it refuses to buy."
    )
    # The paper's headline direction: CBS's energy cost is well below the
    # heterogeneity-oblivious baseline under capacity pressure.
    assert savings["cbs"] > 0.08
    assert results["cbs"].energy_kwh < results["baseline"].energy_kwh
