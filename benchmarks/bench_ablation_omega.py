"""Ablation: the over-provisioning factor omega (Eq. 17).

The paper suggests sampling omega in [1, 2|R|] to compensate bin-packing
inefficiency.  We sweep omega on a fixed CBS instance and report machines
provisioned, containers actually placed by the rounder, and the resulting
placement ratio — showing the trade-off the paper describes (larger omega
buys placement headroom at the cost of extra machines, with diminishing
returns).
"""

import numpy as np

from repro.analysis import ascii_table
from repro.containers import ContainerManager, ContainerManagerConfig
from repro.energy import table2_fleet
from repro.provisioning import CbsRelaxSolver, FirstFitRounder, build_problem


def test_omega_sweep(benchmark, bench_classifier):
    fleet = table2_fleet(0.1)
    manager = ContainerManager(bench_classifier, ContainerManagerConfig())
    class_ids = sorted(manager.specs)
    rng = np.random.default_rng(5)
    demand = np.maximum(rng.poisson(8.0, size=(1, len(class_ids))).astype(float), 0)

    solver = CbsRelaxSolver()
    rounder = FirstFitRounder()
    rows = []
    ratios = {}
    machines = {}
    for omega in (1.0, 1.25, 1.5, 2.0, 3.0, 4.0):
        problem = build_problem(
            fleet,
            manager.specs,
            demand=demand,
            prices=np.array([0.1]),
            interval_seconds=300.0,
            overprovision=np.full(len(class_ids), omega),
        )
        solution = solver.solve(problem)
        plan = rounder.round(problem, solution)
        ratio = plan.placement_ratio(solution.scheduled(0))
        ratios[omega] = ratio
        machines[omega] = int(plan.active.sum())
        rows.append(
            [
                omega,
                f"{solution.z[0].sum():.1f}",
                int(plan.active.sum()),
                int(plan.total_packed().sum()),
                int(plan.dropped.sum()),
                f"{ratio:.1%}",
            ]
        )

    print("\n=== Ablation: omega over-provisioning factor (Eq. 17) ===")
    print(
        ascii_table(
            ["omega", "z* (frac)", "machines", "containers placed", "dropped", "placement"],
            rows,
        )
    )

    benchmark.pedantic(lambda: rounder.round(problem, solution), rounds=1, iterations=1)
    print(
        "note: large omega inflates the effective container footprint until "
        "scheduling stops paying for itself — the optimizer then sheds work "
        "instead of buying machines.  Useful omega lives near 1.0-1.5."
    )
    # Mild omega buys packing headroom without collapsing the schedule...
    assert ratios[1.25] >= 0.9
    assert machines[1.25] >= machines[1.0] * 0.8
    # ...while heavy omega hits the utility cliff (fewer containers pay).
    assert machines[4.0] <= machines[1.5]
    assert ratios[1.0] > 0.6
