"""Ablation: the over-provisioning factor omega (Eq. 17), via the runner.

The paper suggests sampling omega in [1, 2|R|] to compensate bin-packing
inefficiency.  We sweep omega on a fixed CBS instance (one runner scenario
per omega) and report machines provisioned, containers actually placed by
the rounder, and the resulting placement ratio — showing the trade-off the
paper describes (larger omega buys placement headroom at the cost of extra
machines, with diminishing returns).
"""

from repro.analysis import ascii_table
from repro.runner import ScenarioRunner, omega_scenarios


def test_omega_sweep(benchmark):
    runner = ScenarioRunner("ablation_omega")
    report = runner.run(omega_scenarios(), workers=1)

    rows = []
    ratios = {}
    machines = {}
    for result in report:
        s = result.summary
        omega = s["omega"]
        ratios[omega] = s["placement_ratio"]
        machines[omega] = s["machines"]
        rows.append(
            [
                omega,
                f"{s['z_fractional']:.1f}",
                s["machines"],
                s["placed"],
                s["dropped"],
                f"{s['placement_ratio']:.1%}",
            ]
        )

    print("\n=== Ablation: omega over-provisioning factor (Eq. 17) ===")
    print(
        ascii_table(
            ["omega", "z* (frac)", "machines", "containers placed", "dropped", "placement"],
            rows,
        )
    )

    benchmark.pedantic(
        lambda: runner.run(omega_scenarios()[:1], workers=1), rounds=1, iterations=1
    )
    print(
        "note: large omega inflates the effective container footprint until "
        "scheduling stops paying for itself — the optimizer then sheds work "
        "instead of buying machines.  Useful omega lives near 1.0-1.5."
    )
    # Mild omega buys packing headroom without collapsing the schedule...
    assert ratios[1.25] >= 0.9
    assert machines[1.25] >= machines[1.0] * 0.8
    # ...while heavy omega hits the utility cliff (fewer containers pay).
    assert machines[4.0] <= machines[1.5]
    assert ratios[1.0] > 0.6
