"""Secondary scenario: the Google-like 10-type fleet as the simulation target.

The paper's evaluation fleet is Table II, but its *analysis* cluster has 10
platform types (Fig. 5).  This bench runs the policy comparison directly on
that census (with synthesized Energy-Star-style power models), checking the
pipeline is not specialized to the 4-model fleet: constraints stay
meaningful (trace platform ids == fleet platform ids) and the policies
still order sanely.
"""

from repro.analysis import ascii_table
from repro.energy import google_like_energy_models
from repro.simulation import HarmonyConfig, run_policy_comparison
from repro.simulation.harmony import energy_savings
from repro.trace import SyntheticTraceConfig, generate_trace, google_like_machine_census


def test_google_fleet_comparison(benchmark):
    census = google_like_machine_census(400)
    fleet = google_like_energy_models(census)
    trace = generate_trace(
        SyntheticTraceConfig(
            horizon_hours=2.0, seed=11, total_machines=400, load_factor=0.5
        )
    )
    config = HarmonyConfig(fleet=fleet, predictor="ewma")
    results = run_policy_comparison(trace, config, policies=("baseline", "cbs"))

    savings = benchmark.pedantic(lambda: energy_savings(results), rounds=1, iterations=1)
    rows = [
        [
            policy,
            f"{r.energy_kwh:.1f}",
            f"{r.total_cost:.2f}",
            f"{r.metrics.mean_active_machines():.1f}",
            r.metrics.num_unscheduled,
            f"{savings[policy]:+.1%}",
        ]
        for policy, r in results.items()
    ]
    print("\n=== Policy comparison on the 10-type Google-like fleet ===")
    print(
        ascii_table(
            ["policy", "kWh", "total $", "mean machines", "unscheduled",
             "vs baseline"],
            rows,
        )
    )

    for policy, result in results.items():
        # The pipeline serves the bulk of the workload on this fleet too.
        assert result.metrics.num_scheduled > 0.80 * trace.num_tasks, policy
        assert result.energy_kwh > 0
    # Ten platform types flow through the LP (M=10) without issue.
    cbs = results["cbs"]
    assert len(cbs.decisions) > 0
    assert set(cbs.decisions[-1].active) == {m.platform_id for m in fleet}
