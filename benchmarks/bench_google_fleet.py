"""Google-trace-scale point: the sharded fleet simulation.

The paper's analysis cluster is ~12,000 machines over a 29-day trace
(Section III).  A single-process replay cannot hold that workload, so this
bench runs it through :mod:`repro.fleet`: the census partitions into
machine-type cells, each cell replays its routed task stream in its own
worker fed by the constant-memory streaming generator, and the per-shard
summaries merge into one deterministic fleet digest.

The default ``REPRO_BENCH_FLEET_*`` point is the full 12k-machine census
over a 20 h horizon — a documented ~35x time scale-down from the 696 h
trace that still emits >1M tasks (``REPRO_BENCH_FLEET_HOURS=696`` replays
the full horizon).  CI shrinks the point through the same knobs.

The run is recorded as ``BENCH_google_fleet.json`` at the repo root —
wall time, per-shard phase timings, the peak-RSS high-water mark and the
merged fleet digest — which ``scripts/check_bench_regression.py`` gates
(wall-time shares, RSS shares and the absolute RSS ceiling).
"""

import os

from repro.analysis import ascii_table
from repro.fleet import FleetConfig, run_fleet, write_fleet_baseline
from repro.runner import (
    bench_fleet_shards,
    google_fleet_trace_params,
    repo_root,
    trace_config_from_params,
)

WORKERS = 4


def test_google_fleet_sharded(benchmark):
    trace_params = google_fleet_trace_params()
    config = FleetConfig(shards=bench_fleet_shards())

    fleet = benchmark.pedantic(
        lambda: run_fleet(trace_params, config, workers=WORKERS),
        rounds=1,
        iterations=1,
    )

    report = fleet.report
    rows = [
        [
            r.name,
            r.summary["shard"]["machines"],
            r.summary["shard"]["tasks_routed"],
            f"{r.wall_seconds:.2f}s",
            f"{r.rss_peak_mb:.0f} MiB" if r.rss_peak_mb is not None else "-",
        ]
        for r in report
    ]
    print(
        f"\n=== sharded fleet — {fleet.shards} shard(s), {WORKERS} worker(s) "
        f"on {os.cpu_count()} core(s) ==="
    )
    print(ascii_table(["shard", "machines", "tasks", "wall", "peak rss"], rows))
    print(f"fleet digest {fleet.digest}")

    # Every shard completed; a partial merge would be a bench failure.
    assert not fleet.partial
    assert fleet.digest is not None
    merged = fleet.merged

    # The merge covers the whole census and every emitted task exactly once.
    census = trace_config_from_params(trace_params).census()
    assert merged["shards"]["machines"] == sum(m.count for m in census)
    assert merged["tasks_submitted"] == sum(
        r.summary["shard"]["tasks_routed"] for r in report
    )
    assert merged["tasks_submitted"] == report.results[0].summary["shard"][
        "tasks_seen"
    ]

    # The fleet serves the bulk of the workload at the bench load point.
    assert merged["tasks_scheduled"] > 0.5 * merged["tasks_submitted"]
    assert merged["energy_kwh"] > 0

    # Perf + memory baseline: the repo's recorded Google-scale trajectory.
    path = write_fleet_baseline(fleet, trace_params, config, repo_root())
    print(f"wrote {path}")
