"""Table II + Fig. 9: the simulated server fleet and its power curves.

Regenerates the machine-configuration table and the energy-vs-utilization
curves, checking the Fig. 9 narrative: a 0.2-cpu-unit container cannot fit
a PowerEdge R210 and is cheapest to host on an HP DL385 G7.
"""

from repro.analysis import ascii_table
from repro.energy import TABLE2_MODELS, table2_fleet


def test_table2_machine_configurations(benchmark):
    fleet = benchmark(table2_fleet, 1.0)

    print("\n=== Table II: machine configurations ===")
    print(
        ascii_table(
            ["model", "cpu (norm)", "memory (norm)", "machines", "idle W", "peak W"],
            [
                [m.name, f"{m.cpu_capacity:.3f}", f"{m.memory_capacity:.3f}",
                 m.count, m.idle_watts, m.peak_watts]
                for m in fleet
            ],
        )
    )
    assert [m.count for m in fleet] == [7000, 1500, 1000, 500]
    dl585 = next(m for m in fleet if m.name == "HP DL585 G7")
    assert dl585.cpu_capacity == 1.0 and dl585.memory_capacity == 1.0


def test_fig09_power_curves(benchmark):
    benchmark(TABLE2_MODELS[0].power_at, 0.5, 0.5)
    print("\n=== Fig. 9: machine energy consumption rate ===")
    utilizations = [0.0, 0.25, 0.5, 0.75, 1.0]
    rows = []
    for model in TABLE2_MODELS:
        rows.append(
            [model.name] + [f"{model.power_at(u, u):.0f}" for u in utilizations]
        )
    print(ascii_table(["model"] + [f"u={u}" for u in utilizations], rows))

    by_name = {m.name: m for m in TABLE2_MODELS}
    r210 = by_name["Dell PowerEdge R210"]
    dl385 = by_name["HP DL385 G7"]
    r515 = by_name["Dell PowerEdge R515"]
    dl585 = by_name["HP DL585 G7"]

    # The paper's example: a container requiring 0.2 CPU units...
    container_cpu = 0.2
    # ...cannot be placed on the R210 (insufficient capacity)...
    assert container_cpu > r210.cpu_capacity
    # ...and among the machines that can host it, the DL385 G7 burns the
    # least power for it ("the other types ... will consume much more
    # energy").
    def hosting_watts(model):
        util = container_cpu / model.cpu_capacity
        idle_share = model.idle_watts * util  # amortized idle per busy share
        dynamic = model.power_model.alpha_watts[0] * util
        return idle_share + dynamic

    assert hosting_watts(dl385) < hosting_watts(r515)
    assert hosting_watts(dl385) < hosting_watts(dl585)
