"""Fig. 3: machines available vs used in the cluster.

The paper's observation: the production cluster keeps nearly every
available machine powered regardless of demand ("the capacity of the
cluster is not adjusted according to resource demand") — motivating DCP.
We reproduce it by replaying the trace under the *static* (all-on) policy
and reporting available vs actually-used machines per interval.
"""

import numpy as np

from repro.analysis import ascii_series
from repro.simulation import HarmonyConfig


def test_fig03_available_vs_used(benchmark, bench_trace, static_result):
    times, powered = benchmark(static_result.metrics.machines_series)

    fleet_total = sum(m.count for m in HarmonyConfig().fleet)
    utilization = [u for _, u, _ in static_result.metrics.utilization_timeline]

    print("\n=== Fig. 3: machines available and used ===")
    print(
        ascii_series(
            times, powered, height=6, label=f"available (all-on, fleet={fleet_total})"
        )
    )
    print(
        f"powered mean: {np.mean(powered[1:]):.0f} machines; "
        f"fleet-wide cpu utilization mean: {np.mean(utilization):.1%}"
    )
    # The static cluster keeps (nearly) everything on while real usage is a
    # small fraction — the energy-saving opportunity HARMONY exploits.
    assert np.mean(powered[1:]) > 0.9 * fleet_total
    assert static_result.metrics.num_scheduled > 0.9 * bench_trace.num_tasks
    assert np.mean(utilization) < 0.6
