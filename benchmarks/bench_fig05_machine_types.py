"""Fig. 5: machine heterogeneity in the compute cluster.

Regenerates the census table: 10 platform types, shares matching the
paper's population (types 1-2 hold ~50%/~30%, the tail under 1% each).
"""

from repro.analysis import ascii_table
from repro.trace import google_like_machine_census, machine_census_table


def test_fig05_machine_census(benchmark, bench_trace):
    rows = benchmark(machine_census_table, bench_trace)

    print("\n=== Fig. 5: machine heterogeneity ===")
    print(
        ascii_table(
            ["platform", "cpu", "memory", "count", "share"],
            [
                [r["platform_id"], r["cpu_capacity"], r["memory_capacity"],
                 r["count"], f"{r['share']:.1%}"]
                for r in rows
            ],
        )
    )

    assert len(rows) == 10
    assert 0.45 <= rows[0]["share"] <= 0.60
    assert 0.25 <= rows[1]["share"] <= 0.35
    assert all(r["share"] < 0.01 for r in rows[4:])
    # Capacities normalized to the largest machine.
    assert max(r["cpu_capacity"] for r in rows) == 1.0


def test_fig05_census_scales(benchmark):
    census = benchmark(google_like_machine_census, 12000)
    assert sum(m.count for m in census) == 12000
