"""Scalability: CBS-RELAX solve time vs problem size, via the runner.

Section VII-B motivates the relaxation: the integer CBS has "at least 800K
variables" at 80 task classes x 10K machines and "cannot be applied ...
in online settings".  This bench fans the multi-size solve sweep out
through :class:`~repro.runner.ScenarioRunner`:

- serial and 4-worker runs must produce **bit-identical** per-scenario
  summaries (every scenario seeds its own randomness);
- the paper-scale 80-class instance must stay interactive (the online
  control claim);
- on hardware with >= 4 usable cores, the 4-worker run must be >= 2x
  faster than serial;
- the run is recorded as a ``BENCH_scalability.json`` perf baseline at the
  repo root — the repo's perf trajectory.
"""

import os

from repro.analysis import ascii_table
from repro.runner import ScenarioRunner, repo_root, scalability_scenarios, write_baseline

#: Minimum speedup demanded of the 4-worker run when the hardware can
#: plausibly deliver it (spawn workers burn ~1-2 s importing numpy/scipy,
#: so single- and dual-core boxes are measured but not gated).
SPEEDUP_FLOOR = 2.0
WORKERS = 4


def test_relax_scales_to_paper_size(benchmark):
    runner = ScenarioRunner("scalability")
    scenarios = scalability_scenarios()

    serial = runner.run(scenarios, workers=1)
    parallel = runner.run(scenarios, workers=WORKERS)

    rows = [
        [
            r.name,
            r.summary["num_classes"],
            r.summary["num_types"],
            r.summary["lp_variables"],
            f"{r.wall_seconds:.3f}s",
            f"{parallel[r.name].wall_seconds:.3f}s",
        ]
        for r in serial
    ]
    speedup = (
        serial.total_wall_seconds / parallel.total_wall_seconds
        if parallel.total_wall_seconds > 0
        else 0.0
    )
    print("\n=== CBS-RELAX scalability sweep (serial vs parallel runner) ===")
    print(
        ascii_table(
            ["scenario", "classes", "machine types", "~LP vars",
             "serial wall", f"{WORKERS}-worker wall"],
            rows,
        )
    )
    print(
        f"serial total {serial.total_wall_seconds:.2f}s, "
        f"{WORKERS}-worker total {parallel.total_wall_seconds:.2f}s, "
        f"speedup {speedup:.2f}x on {os.cpu_count()} core(s)"
    )

    # Determinism: parallel summaries are byte-identical to serial.
    assert serial.digests() == parallel.digests()

    # The paper's online-control claim: the 80-class x 10-type scenarios
    # solve fast (per-solve budget mirrors the pre-runner assertion).
    for r in serial:
        if r.summary["num_classes"] == 80 and r.summary["num_types"] == 10:
            assert r.wall_seconds / r.summary["repeats"] < 10.0

    # Perf baseline: the repo's recorded perf trajectory.
    path = write_baseline(parallel, repo_root(), compare_serial=serial)
    print(f"wrote {path}")

    # The >= 2x acceptance gate, where the hardware can deliver it.
    cores = os.cpu_count() or 1
    if cores >= WORKERS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{WORKERS}-worker sweep only {speedup:.2f}x faster than serial "
            f"on {cores} cores (floor {SPEEDUP_FLOOR}x)"
        )

    benchmark.pedantic(
        lambda: runner.run(scenarios[:1], workers=1), rounds=1, iterations=1
    )
