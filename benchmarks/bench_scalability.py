"""Scalability: CBS-RELAX solve time vs problem size.

Section VII-B motivates the relaxation: the integer CBS has "at least 800K
variables" at 80 task classes x 10K machines and "cannot be applied ...
in online settings".  CBS-RELAX collapses the per-machine variables to
per-type aggregates; this bench measures its solve time as classes and
machine types grow, verifying the online-control claim (sub-second solves
at the paper's scale of ~80 classes x a handful of machine types).
"""

import time

import numpy as np

from repro.analysis import ascii_table
from repro.provisioning import (
    CbsRelaxSolver,
    ContainerType,
    MachineClass,
    ProvisioningProblem,
    UtilityFunction,
)


def synthetic_problem(num_classes, num_machine_types, W=4, seed=0):
    rng = np.random.default_rng(seed)
    machines = tuple(
        MachineClass(
            platform_id=m + 1,
            name=f"type{m}",
            capacity=(float(rng.uniform(0.2, 1.0)), float(rng.uniform(0.2, 1.0))),
            available=int(rng.integers(100, 2000)),
            idle_watts=float(rng.uniform(60, 320)),
            alpha_watts=(float(rng.uniform(30, 250)), float(rng.uniform(5, 60))),
            switch_cost=0.02,
        )
        for m in range(num_machine_types)
    )
    containers = tuple(
        ContainerType(
            class_id=n,
            name=f"c{n}",
            size=(float(rng.uniform(0.005, 0.15)), float(rng.uniform(0.005, 0.15))),
            utility=UtilityFunction.capped_linear(0.01, 100_000),
        )
        for n in range(num_classes)
    )
    demand = rng.uniform(0, 200, size=(W, num_classes))
    return ProvisioningProblem(
        machines=machines,
        containers=containers,
        demand=demand,
        prices=np.full(W, 0.1),
        interval_seconds=300.0,
    )


def test_relax_scales_to_paper_size(benchmark):
    solver = CbsRelaxSolver()
    rows = []
    timings = {}
    for num_classes, num_types in ((20, 4), (80, 4), (80, 10), (160, 10)):
        problem = synthetic_problem(num_classes, num_types)
        start = time.perf_counter()
        solution = solver.solve(problem)
        elapsed = time.perf_counter() - start
        timings[(num_classes, num_types)] = elapsed
        variables = 4 * (num_types + num_types * num_classes + 2 * num_types + num_classes)
        rows.append(
            [num_classes, num_types, variables, f"{elapsed * 1000:.0f} ms",
             f"{solution.objective:.2f}"]
        )

    print("\n=== CBS-RELAX scalability (W=4) ===")
    print(ascii_table(["classes", "machine types", "~LP vars", "solve", "objective"], rows))

    # The paper's online-control claim: the 80-class instance solves fast.
    assert timings[(80, 10)] < 10.0

    benchmark.pedantic(
        lambda: solver.solve(synthetic_problem(80, 10)), rounds=1, iterations=1
    )
