"""Shared fixtures for the figure/table reproduction benches.

The expensive artifacts — the evaluation trace, the fitted classifier and
the three-policy comparison run — are built once per session and shared by
every bench that reads from them (Figs. 19-26).

Default scenario parameters come from :mod:`repro.runner.defaults`, the
same module the scenario runner's suites read — benches and runner
scenarios cannot drift apart.  CI smoke runs shrink everything through the
``REPRO_BENCH_*`` environment knobs (e.g. ``REPRO_BENCH_HOURS=0.5``); see
EXPERIMENTS.md for the laptop-scale operating-point discussion.
"""

from __future__ import annotations

import pytest

from repro.classification import ClassifierConfig, TaskClassifier
from repro.runner.defaults import bench_defaults, trace_config_from_params
from repro.simulation import HarmonyConfig, run_policy_comparison
from repro.trace import generate_trace

_DEFAULTS = bench_defaults()
BENCH_HOURS = _DEFAULTS.hours
BENCH_MACHINES = _DEFAULTS.machines
BENCH_SEED = _DEFAULTS.seed
BENCH_LOAD = _DEFAULTS.load


@pytest.fixture(scope="session")
def bench_trace():
    """The evaluation trace all figure benches share.

    Placement constraints are drawn against the Table II fleet the
    simulation benches use, so the Section III-B "difficult to schedule"
    tasks stay meaningful at replay time.  Built through the same
    parameter decoding the runner's scenario tasks use, so a ``simulate``
    scenario with ``constraints: true`` replays the identical trace.
    """
    params = _DEFAULTS.trace_params()
    params["constraints"] = True
    return generate_trace(trace_config_from_params(params))


@pytest.fixture(scope="session")
def bench_classifier(bench_trace):
    """Classifier fitted on the evaluation trace (Section V)."""
    return TaskClassifier(ClassifierConfig(seed=BENCH_SEED)).fit(list(bench_trace.tasks))


@pytest.fixture(scope="session")
def policy_results(bench_trace):
    """CBS / CBP / baseline runs over the shared trace (Figs. 20-26)."""
    return run_policy_comparison(bench_trace, HarmonyConfig())


@pytest.fixture(scope="session")
def static_result(bench_trace, bench_classifier):
    """All-machines-on replay (the Section III status quo, Figs. 3-4)."""
    from repro.simulation import HarmonySimulation

    config = HarmonyConfig(policy="static")
    return HarmonySimulation(config, bench_trace, classifier=bench_classifier).run()
