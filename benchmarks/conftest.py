"""Shared fixtures for the figure/table reproduction benches.

The expensive artifacts — the evaluation trace, the fitted classifier and
the three-policy comparison run — are built once per session and shared by
every bench that reads from them (Figs. 19-26).
"""

from __future__ import annotations

import os

import pytest

from repro.classification import ClassifierConfig, TaskClassifier
from repro.energy import table2_fleet
from repro.simulation import HarmonyConfig, run_policy_comparison
from repro.trace import SyntheticTraceConfig, generate_trace

#: One knob for the evaluation scale.  The policy comparison needs enough
#: horizon and load for the baseline's shape-blindness to matter without
#: saturating the scaled-down fleet's memory; 4 h at load 0.6 is the
#: laptop-scale operating point (see EXPERIMENTS.md for the sensitivity
#: discussion).
#: CI smoke runs shrink the trace via the environment (e.g. 0.5 h) without
#: touching the default laptop-scale evaluation point.
BENCH_HOURS = float(os.environ.get("REPRO_BENCH_HOURS", 4.0))
BENCH_MACHINES = int(os.environ.get("REPRO_BENCH_MACHINES", 400))
BENCH_SEED = 7
BENCH_LOAD = 0.5


@pytest.fixture(scope="session")
def bench_trace():
    """The evaluation trace all figure benches share.

    Placement constraints are drawn against the Table II fleet the
    simulation benches use, so the Section III-B "difficult to schedule"
    tasks stay meaningful at replay time.
    """
    fleet_types = tuple(m.to_machine_type() for m in table2_fleet(0.1))
    return generate_trace(
        SyntheticTraceConfig(
            horizon_hours=BENCH_HOURS,
            seed=BENCH_SEED,
            total_machines=BENCH_MACHINES,
            load_factor=BENCH_LOAD,
            constraint_platforms=fleet_types,
        )
    )


@pytest.fixture(scope="session")
def bench_classifier(bench_trace):
    """Classifier fitted on the evaluation trace (Section V)."""
    return TaskClassifier(ClassifierConfig(seed=BENCH_SEED)).fit(list(bench_trace.tasks))


@pytest.fixture(scope="session")
def policy_results(bench_trace):
    """CBS / CBP / baseline runs over the shared trace (Figs. 20-26)."""
    return run_policy_comparison(bench_trace, HarmonyConfig())


@pytest.fixture(scope="session")
def static_result(bench_trace, bench_classifier):
    """All-machines-on replay (the Section III status quo, Figs. 3-4)."""
    from repro.simulation import HarmonySimulation

    config = HarmonyConfig(policy="static")
    return HarmonySimulation(config, bench_trace, classifier=bench_classifier).run()
