"""Tests for trace persistence and workload timelines."""

import numpy as np
import pytest

from repro.trace import (
    PriorityGroup,
    SyntheticTraceConfig,
    arrival_rate_series,
    bin_arrivals,
    demand_timeseries,
    empirical_cdf,
    generate_trace,
    load_trace,
    save_trace,
    load_tasks_csv,
    save_tasks_csv,
    duration_cdf_by_group,
    machine_census_table,
)
from repro.trace.statistics import cdf_at
from tests.conftest import make_task


class TestTraceIO:
    def test_round_trip(self, tiny_trace, tmp_path):
        save_trace(tiny_trace, tmp_path / "trace")
        loaded = load_trace(tmp_path / "trace")
        assert loaded.num_tasks == tiny_trace.num_tasks
        assert loaded.horizon == pytest.approx(tiny_trace.horizon)
        assert len(loaded.machine_types) == len(tiny_trace.machine_types)
        for a, b in zip(loaded.tasks, tiny_trace.tasks):
            assert a.uid == b.uid
            assert a.cpu == pytest.approx(b.cpu, rel=1e-6)
            assert a.duration == pytest.approx(b.duration, rel=1e-6)
            assert a.allowed_platforms == b.allowed_platforms

    def test_tasks_csv_round_trip_with_constraints(self, tmp_path):
        tasks = [
            make_task(job_id=1, allowed_platforms=frozenset({1, 3})),
            make_task(job_id=2, submit_time=1.0),
        ]
        path = tmp_path / "tasks.csv"
        assert save_tasks_csv(tasks, path) == 2
        loaded = load_tasks_csv(path)
        assert loaded[0].allowed_platforms == frozenset({1, 3})
        assert loaded[1].allowed_platforms is None

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("timestamp,job_id\n0,1\n")
        with pytest.raises(ValueError, match="missing columns"):
            load_tasks_csv(path)

    def test_metadata_preserved(self, tmp_path):
        trace = generate_trace(
            SyntheticTraceConfig(horizon_hours=0.25, seed=1, total_machines=50)
        )
        loaded = load_trace(save_trace(trace, tmp_path / "t"))
        assert loaded.metadata["seed"] == 1


class TestArrivalBinning:
    def test_counts_sum_to_tasks(self, tiny_trace):
        series = bin_arrivals(tiny_trace.tasks, tiny_trace.horizon, 300.0)
        assert series.total().sum() == tiny_trace.num_tasks

    def test_bin_count(self):
        tasks = [make_task(job_id=i, submit_time=float(i)) for i in range(10)]
        series = bin_arrivals(tasks, horizon=100.0, bin_seconds=10.0)
        assert series.num_bins == 10
        assert series.total()[0] == 10

    def test_rate_units(self):
        tasks = [make_task(job_id=i, submit_time=0.5) for i in range(20)]
        series = bin_arrivals(tasks, horizon=10.0, bin_seconds=10.0,
                              key=lambda t: "all")
        assert series.rate("all")[0] == pytest.approx(2.0)

    def test_custom_key(self, tiny_trace):
        series = bin_arrivals(
            tiny_trace.tasks, tiny_trace.horizon, 600.0, key=lambda t: t.priority
        )
        assert all(isinstance(k, int) for k in series.keys())

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            bin_arrivals([], horizon=10.0, bin_seconds=0.0)
        with pytest.raises(ValueError):
            bin_arrivals([], horizon=0.0, bin_seconds=10.0)

    def test_arrival_rate_series_covers_groups(self, tiny_trace):
        rates = arrival_rate_series(tiny_trace)
        assert set(rates) == set(PriorityGroup)


class TestDemandTimeseries:
    def test_single_task_demand_window(self):
        from repro.trace import Trace, MachineType

        machines = (MachineType(platform_id=1, cpu_capacity=1.0, memory_capacity=1.0, count=1),)
        task = make_task(submit_time=100.0, duration=200.0, cpu=0.5, memory=0.25)
        trace = Trace.from_tasks(machines, [task], horizon=600.0)
        times, cpu, mem = demand_timeseries(trace, bin_seconds=100.0)
        # Task alive in bins [1, 2] (100-300s).
        assert cpu[0] == pytest.approx(0.0)
        assert cpu[1] == pytest.approx(0.5)
        assert cpu[2] == pytest.approx(0.5)
        assert cpu[4] == pytest.approx(0.0)
        assert mem[1] == pytest.approx(0.25)

    def test_demand_includes_pending_definition(self, tiny_trace):
        """Demand counts every alive task regardless of scheduling state."""
        times, cpu, mem = demand_timeseries(tiny_trace, 300.0)
        integral = float(cpu.sum() * 300.0)
        # Work clipped to the observation horizon (long tasks outlive it).
        clipped_work = sum(
            t.cpu * min(t.duration, tiny_trace.horizon - t.submit_time)
            for t in tiny_trace.tasks
        )
        # Bin-granularity padding: each task can gain up to one bin.
        assert integral >= clipped_work * 0.5
        assert integral <= clipped_work + 300.0 * tiny_trace.num_tasks


class TestPendingRunningDemand:
    def test_split_pending_vs_running(self):
        from repro.trace import pending_running_demand

        tasks = [
            make_task(job_id=1, submit_time=0.0, duration=100.0, cpu=0.2),
            make_task(job_id=2, submit_time=0.0, duration=100.0, cpu=0.3),
            make_task(job_id=3, submit_time=50.0, duration=100.0, cpu=0.4),
        ]
        schedule_times = {(1, 0): 10.0}  # only job 1 started
        pending, running = pending_running_demand(tasks, schedule_times, at=20.0)
        assert running == pytest.approx(0.2)
        assert pending == pytest.approx(0.3)  # job 3 not yet arrived

    def test_finished_task_not_counted(self):
        from repro.trace import pending_running_demand

        tasks = [make_task(job_id=1, submit_time=0.0, duration=10.0, cpu=0.2)]
        pending, running = pending_running_demand(tasks, {(1, 0): 0.0}, at=50.0)
        assert running == 0.0
        assert pending == 0.0


class TestStatistics:
    def test_empirical_cdf_monotone(self):
        x, f = empirical_cdf([3.0, 1.0, 2.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert list(f) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empirical_cdf_empty(self):
        x, f = empirical_cdf([])
        assert x.size == 0 and f.size == 0

    def test_cdf_at_points(self):
        assert cdf_at([1, 2, 3, 4], [2.5]) == [0.5]
        assert np.isnan(cdf_at([], [1.0])[0])

    def test_duration_cdf_by_group(self, tiny_trace):
        cdfs = duration_cdf_by_group(tiny_trace)
        for group, (x, f) in cdfs.items():
            if x.size:
                assert np.all(np.diff(f) >= 0)

    def test_machine_census_table_shares_sum_to_one(self, tiny_trace):
        rows = machine_census_table(tiny_trace)
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)
        counts = [r["count"] for r in rows]
        assert counts == sorted(counts, reverse=True)
