"""End-to-end energy accounting validation (Eq. 7 + Eq. 9).

Runs tiny, fully hand-checkable scenarios through the cluster simulator
and compares the metered kWh/cost against closed-form expectations.
"""

import pytest

from repro.energy import table2_fleet
from repro.provisioning import ProvisioningDecision
from repro.simulation import ClusterConfig, ClusterSimulator
from tests.conftest import make_task


class FixedPolicy:
    """Powers a fixed number of machines of one platform."""

    def __init__(self, platform_id: int, count: int):
        self.platform_id = platform_id
        self.count = count

    def decide(self, view):
        return ProvisioningDecision(
            time=view.time, active={self.platform_id: self.count}, quotas=None
        )


def run(tasks, policy, horizon=3600.0, interval=600.0):
    fleet = table2_fleet(0.01)  # 70 R210, 15 R515, 10 DL385, 5 DL585
    simulator = ClusterSimulator(
        tasks=tuple(tasks),
        horizon=horizon,
        machine_models=fleet,
        policy=policy,
        class_of=lambda t: 0,
        config=ClusterConfig(control_interval=interval),
    )
    simulator.run()
    return simulator, fleet


class TestIdleEnergy:
    def test_idle_machines_draw_idle_watts(self):
        # 2 DL385s on for the whole hour at zero utilization.
        dl385 = table2_fleet(0.01)[2]
        simulator, _ = run([], FixedPolicy(dl385.platform_id, 2))
        # First interval: machines booting (still drawing idle); then on.
        expected_kwh = 2 * dl385.idle_watts / 1000.0  # 1 hour
        assert simulator.energy.total_kwh == pytest.approx(expected_kwh, rel=0.02)

    def test_energy_cost_at_price(self):
        dl385 = table2_fleet(0.01)[2]
        simulator, _ = run([], FixedPolicy(dl385.platform_id, 1))
        assert simulator.energy.total_energy_cost == pytest.approx(
            simulator.energy.total_kwh * 0.10, rel=1e-9
        )

    def test_switch_cost_counted_once_per_boot(self):
        dl385 = table2_fleet(0.01)[2]
        simulator, _ = run([], FixedPolicy(dl385.platform_id, 3))
        assert simulator.energy.switch_events == 3
        assert simulator.energy.total_switch_cost == pytest.approx(
            3 * dl385.switch_cost
        )


class TestDynamicEnergy:
    def test_busy_machine_draws_more(self):
        dl585 = table2_fleet(0.01)[3]
        task = make_task(
            job_id=1, submit_time=0.0, duration=100_000.0, cpu=1.0, memory=1.0,
            allowed_platforms=frozenset({dl585.platform_id}),
        )
        idle_sim, _ = run([], FixedPolicy(dl585.platform_id, 1))
        busy_sim, _ = run([task], FixedPolicy(dl585.platform_id, 1))
        # Full utilization for ~all the hour vs idle.
        assert busy_sim.energy.total_kwh > idle_sim.energy.total_kwh * 1.5
        # Upper bound: peak draw for the full hour.
        assert busy_sim.energy.total_kwh <= dl585.peak_watts / 1000.0 * 1.01

    def test_utilization_recorded_in_records(self):
        dl585 = table2_fleet(0.01)[3]
        task = make_task(
            job_id=1, submit_time=0.0, duration=100_000.0, cpu=0.5, memory=0.25,
            allowed_platforms=frozenset({dl585.platform_id}),
        )
        simulator, _ = run([task], FixedPolicy(dl585.platform_id, 1))
        steady = [
            r for r in simulator.energy.records
            if r.platform_id == dl585.platform_id and r.cpu_utilization > 0
        ]
        assert steady
        assert steady[-1].cpu_utilization == pytest.approx(0.5, abs=0.01)
        assert steady[-1].memory_utilization == pytest.approx(0.25, abs=0.01)


class TestScaleDownEnergy:
    def test_machines_power_off_and_stop_drawing(self):
        dl385 = table2_fleet(0.01)[2]

        class UpThenDown:
            def decide(self, view):
                count = 4 if view.time < 1200.0 else 0
                return ProvisioningDecision(
                    time=view.time, active={dl385.platform_id: count}, quotas=None
                )

        simulator, _ = run([], UpThenDown())
        # On for the first ~2 intervals (1200 s) only.
        expected_kwh = 4 * dl385.idle_watts / 1000.0 * (1200.0 / 3600.0)
        assert simulator.energy.total_kwh == pytest.approx(expected_kwh, rel=0.05)
        assert simulator.energy.switch_events == 8  # 4 on + 4 off
