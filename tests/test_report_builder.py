"""Tests for the markdown report builder and the report CLI command."""

import pytest

from repro.analysis import build_report
from repro.simulation import HarmonyConfig, HarmonySimulation


@pytest.fixture(scope="module")
def tiny_results(tiny_trace):
    config = HarmonyConfig(policy="baseline", predictor="ewma", classifier_sample=1000)
    result = HarmonySimulation(config, tiny_trace).run()
    return {"baseline": result}


class TestBuildReport:
    def test_report_structure(self, tiny_trace, tiny_results):
        markdown = build_report(tiny_trace, results=tiny_results)
        assert markdown.startswith("# HARMONY reproduction report")
        for heading in (
            "## Workload (Section III)",
            "### Calibration vs the paper's marginals",
            "### Task sizes (Fig. 7)",
            "## Policy comparison (Figs. 21-26)",
            "## Energy (Fig. 26)",
        ):
            assert heading in markdown

    def test_report_contains_policy_rows(self, tiny_trace, tiny_results):
        markdown = build_report(tiny_trace, results=tiny_results)
        assert "| baseline |" in markdown
        # CDF table per priority group.
        for group in ("gratis", "other", "production"):
            assert f"| {group} |" in markdown

    def test_markdown_tables_well_formed(self, tiny_trace, tiny_results):
        markdown = build_report(tiny_trace, results=tiny_results)
        for line in markdown.splitlines():
            if line.startswith("|") and not line.startswith("|---"):
                # Every table row is properly terminated.
                assert line.endswith("|")
