"""Integration tests for the cluster simulator and end-to-end HARMONY runs."""

import numpy as np
import pytest

from repro.energy import table2_fleet
from repro.provisioning import ProvisioningDecision
from repro.simulation import (
    ClusterConfig,
    ClusterSimulator,
    ColumnarClusterSimulator,
    HarmonyConfig,
    HarmonySimulation,
    run_policy_comparison,
)
from repro.simulation.harmony import energy_savings
from repro.trace import PriorityGroup, Trace, MachineType
from tests.conftest import make_task


class AllOnPolicy:
    """Keeps every machine powered; no quotas."""

    def __init__(self, fleet):
        self.active = {m.platform_id: m.count for m in fleet}

    def decide(self, view):
        return ProvisioningDecision(time=view.time, active=dict(self.active), quotas=None)


class NothingPolicy:
    """Never powers anything on."""

    def decide(self, view):
        return ProvisioningDecision(time=view.time, active={}, quotas=None)


#: Engine name -> simulator class (same constructor signature).
SIMULATOR_CLASSES = {
    "object": ClusterSimulator,
    "columnar": ColumnarClusterSimulator,
}


def run_simulator(tasks, fleet, policy, horizon=3600.0, engine="object", **kwargs):
    simulator = SIMULATOR_CLASSES[engine](
        tasks=tuple(sorted(tasks, key=lambda t: t.submit_time)),
        horizon=horizon,
        machine_models=fleet,
        policy=policy,
        class_of=lambda task: 0,
        config=ClusterConfig(control_interval=300.0),
        **kwargs,
    )
    metrics = simulator.run()
    return simulator, metrics


class TestClusterSimulator:
    """Simulator-level behaviour, asserted against both replay engines."""

    @pytest.fixture(autouse=True)
    def _engine(self, engine):
        self.engine = engine

    def run_sim(self, tasks, fleet, policy, **kwargs):
        return run_simulator(tasks, fleet, policy, engine=self.engine, **kwargs)

    def test_tasks_complete_with_capacity(self):
        fleet = table2_fleet(0.02)
        tasks = [
            make_task(job_id=i, submit_time=10.0 * i, duration=100.0, cpu=0.05, memory=0.05)
            for i in range(20)
        ]
        _, metrics = self.run_sim(tasks, fleet, AllOnPolicy(fleet))
        assert metrics.num_scheduled == 20
        assert metrics.num_finished == 20
        # All-on from t=0 means no boot delay after the first tick.
        assert metrics.mean_delay() < 300.0

    def test_no_machines_nothing_scheduled(self):
        fleet = table2_fleet(0.02)
        tasks = [make_task(job_id=i, submit_time=1.0, duration=10.0) for i in range(5)]
        _, metrics = self.run_sim(tasks, fleet, NothingPolicy())
        assert metrics.num_scheduled == 0
        assert metrics.num_unscheduled == 5

    def test_boot_delay_gates_first_placements(self):
        fleet = table2_fleet(0.02)
        tasks = [make_task(job_id=1, submit_time=1.0, duration=50.0, cpu=0.05, memory=0.05)]
        _, metrics = self.run_sim(tasks, fleet, AllOnPolicy(fleet))
        record = metrics.records[(1, 0)]
        # Machines are ordered at t=0 and boot in 90-150 s: the task placed
        # at the first MACHINE_READY, not at its arrival.
        assert record.schedule_time is not None
        assert 60.0 <= record.schedule_time <= 300.0

    def test_energy_accounted_per_interval(self):
        fleet = table2_fleet(0.02)
        tasks = [make_task(job_id=1, submit_time=1.0, duration=100.0)]
        simulator, _ = self.run_sim(tasks, fleet, AllOnPolicy(fleet), horizon=1800.0)
        assert simulator.energy.total_kwh > 0
        times = {r.time for r in simulator.energy.records}
        assert len(times) >= 5  # one batch per elapsed interval

    def test_demand_tracking(self):
        fleet = table2_fleet(0.02)
        tasks = [
            make_task(job_id=1, submit_time=1.0, duration=10_000.0, cpu=0.3, memory=0.2)
        ]
        simulator, _ = self.run_sim(tasks, fleet, AllOnPolicy(fleet))
        assert simulator._demand_cpu == pytest.approx(0.3)
        assert simulator._demand_memory == pytest.approx(0.2)

    def test_quota_stocks_released_on_finish(self):
        fleet = table2_fleet(0.02)
        tasks = [make_task(job_id=1, submit_time=1.0, duration=100.0, cpu=0.05, memory=0.05)]
        simulator, metrics = self.run_sim(tasks, fleet, AllOnPolicy(fleet))
        assert metrics.num_finished == 1
        assert simulator.ledger.snapshot() == {}

    def test_constrained_task_only_on_allowed_platform(self):
        fleet = table2_fleet(0.02)
        dl585_pid = fleet[3].platform_id
        tasks = [
            make_task(
                job_id=1, submit_time=1.0, duration=100.0, cpu=0.05, memory=0.05,
                allowed_platforms=frozenset({dl585_pid}),
            )
        ]
        _, metrics = self.run_sim(tasks, fleet, AllOnPolicy(fleet))
        record = metrics.records[(1, 0)]
        assert record.platform_id == dl585_pid

    def test_relabel_updates_ledger_and_record(self):
        fleet = table2_fleet(0.02)
        task = make_task(job_id=1, submit_time=1.0, duration=2000.0, cpu=0.05, memory=0.05)

        def relabel(t, elapsed):
            return 1 if elapsed > 500.0 else 0

        simulator, metrics = self.run_sim(
            [task], fleet, AllOnPolicy(fleet), horizon=1800.0, relabel=relabel
        )
        assert simulator.relabel_events == 1
        assert metrics.records[(1, 0)].class_id == 1
        snapshot = simulator.ledger.snapshot()
        stocks = {cid for by_class in snapshot.values() for cid in by_class}
        assert stocks == {1}

    def test_machine_timeline_recorded_each_tick(self):
        fleet = table2_fleet(0.02)
        _, metrics = self.run_sim([], fleet, AllOnPolicy(fleet), horizon=1500.0)
        times = [t for t, _, _ in metrics.machine_timeline]
        assert times == [0.0, 300.0, 600.0, 900.0, 1200.0, 1500.0]

    def test_bad_horizon(self):
        fleet = table2_fleet(0.02)
        with pytest.raises(ValueError):
            ClusterSimulator(
                tasks=(), horizon=0.0, machine_models=fleet,
                policy=NothingPolicy(), class_of=lambda t: 0,
            )


class TestFailureInjection:
    @pytest.fixture(autouse=True)
    def _engine(self, engine):
        self.engine = engine

    def _run_with_failures(self, rate, duration=2000.0, num_tasks=30, horizon=7200.0):
        fleet = table2_fleet(0.02)
        tasks = [
            make_task(job_id=i, submit_time=1.0 + i, duration=duration,
                      cpu=0.05, memory=0.05)
            for i in range(num_tasks)
        ]
        simulator = SIMULATOR_CLASSES[self.engine](
            tasks=tuple(tasks),
            horizon=horizon,
            machine_models=fleet,
            policy=AllOnPolicy(fleet),
            class_of=lambda task: 0,
            config=ClusterConfig(
                control_interval=300.0,
                failure_rate_per_machine_hour=rate,
                repair_seconds=1800.0,
                failure_seed=3,
            ),
        )
        metrics = simulator.run()
        return simulator, metrics

    def test_no_failures_at_zero_rate(self):
        simulator, _ = self._run_with_failures(rate=0.0)
        assert simulator.tasks_killed == 0
        assert sum(p.stats.failures for p in simulator.pools) == 0

    def test_failures_kill_and_restart_tasks(self):
        simulator, metrics = self._run_with_failures(rate=0.05)
        assert sum(p.stats.failures for p in simulator.pools) > 0
        assert simulator.tasks_killed > 0
        # Restarted tasks eventually finish (capacity is plentiful).
        assert metrics.num_finished >= 25

    def test_ledger_consistent_after_failures(self):
        simulator, metrics = self._run_with_failures(rate=0.05)
        # Every stock corresponds to a task still running at the horizon.
        total_stock = sum(
            count
            for by_class in simulator.ledger.snapshot().values()
            for count in by_class.values()
        )
        running = sum(
            len(m.running) for p in simulator.pools for m in p.machines
        )
        assert total_stock == running

    def test_stale_finish_events_ignored(self):
        """A killed-and-restarted task must finish exactly once."""
        simulator, metrics = self._run_with_failures(rate=0.2, num_tasks=10)
        finished = [r for r in metrics.records.values() if r.finish_time is not None]
        for record in finished:
            # finish must come after the (latest) schedule time plus the
            # full duration, never earlier (stale events would be earlier).
            assert record.finish_time >= record.schedule_time + record.task.duration - 1e-6

    def test_failed_machines_unavailable_until_repair(self):
        fleet = table2_fleet(0.02)
        pool_model = fleet[3]
        from repro.simulation import MachinePool

        pool = MachinePool(pool_model)
        started = pool.reconcile(2, now=0.0)
        for m in started:
            pool.machine_ready(m)
        victim = started[0]
        pool.fail(victim, now=100.0, repair_seconds=1000.0)
        assert victim.state.value == "off"
        # Cannot boot it before repair completes.
        booted = pool.reconcile(pool.total, now=200.0)
        assert victim not in booted
        booted_later = pool.reconcile(pool.total, now=2000.0)
        assert victim in booted_later


class TestHarmonySimulation:
    @pytest.fixture(scope="class")
    def cbs_result(self, tiny_trace):
        config = HarmonyConfig(policy="cbs", predictor="ewma", classifier_sample=1000)
        return HarmonySimulation(config, tiny_trace).run()

    def test_most_tasks_scheduled(self, cbs_result, tiny_trace):
        assert cbs_result.metrics.num_submitted == tiny_trace.num_tasks
        assert cbs_result.metrics.num_scheduled >= 0.85 * tiny_trace.num_tasks

    def test_energy_positive(self, cbs_result):
        assert cbs_result.energy_kwh > 0
        assert cbs_result.total_cost >= cbs_result.energy_cost

    def test_summary_structure(self, cbs_result):
        summary = cbs_result.summary()
        assert summary["policy"] == "cbs"
        assert set(summary["delay_by_group"]) == {"gratis", "other", "production"}
        for stats in summary["delay_by_group"].values():
            assert stats["mean_s"] >= 0

    def test_decisions_and_container_timeline(self, cbs_result):
        assert len(cbs_result.decisions) > 0
        times, by_group = cbs_result.metrics.containers_series()
        assert times.size == len(cbs_result.decisions)
        assert sum(arr.sum() for arr in by_group.values()) > 0

    def test_static_policy_uses_whole_fleet(self, tiny_trace):
        config = HarmonyConfig(policy="static", classifier_sample=1000)
        result = HarmonySimulation(config, tiny_trace).run()
        fleet_size = sum(m.count for m in config.fleet)
        # Skip the t=0 sample (taken before the first decision powers on).
        steady = [p for t, p, _ in result.metrics.machine_timeline if t > 0]
        assert np.mean(steady) == pytest.approx(fleet_size, rel=0.05)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            HarmonyConfig(policy="magic")

    def test_split_arrivals_conserves_mass(self, tiny_trace):
        config = HarmonyConfig(policy="cbs", classifier_sample=1000)
        simulation = HarmonySimulation(config, tiny_trace)
        class_ids = sorted(simulation.manager.specs)
        arrivals = {cid: 5.0 for cid in class_ids[:6]}
        split = simulation.split_arrivals(arrivals)
        assert sum(split.values()) == pytest.approx(sum(arrivals.values()))

    def test_relabel_class_table(self, tiny_trace):
        config = HarmonyConfig(policy="cbs", classifier_sample=1000)
        simulation = HarmonySimulation(config, tiny_trace)
        task = tiny_trace.tasks[0]
        short_label = simulation.relabel_class(task, 0.0)
        long_label = simulation.relabel_class(task, 10 * 24 * 3600.0)
        assert short_label == simulation._class_by_uid[task.uid]
        # After ten days every splittable class has flipped to long.
        leaf = simulation.classifier.class_by_id(long_label)
        assert leaf.class_id == long_label


class TestAnalysisFigures:
    """Figure extraction over a real simulation result."""

    def test_fig_delay_cdf(self, tiny_trace):
        from repro.analysis import fig_delay_cdf, fig_active_servers

        config = HarmonyConfig(policy="baseline", classifier_sample=1000)
        result = HarmonySimulation(config, tiny_trace).run()
        fig = fig_delay_cdf(result)
        assert set(fig.series) == {"gratis", "other", "production"}
        for x, f in fig.series.values():
            if f.size:
                assert f[-1] == pytest.approx(1.0)
        servers = fig_active_servers(result)
        times, powered = servers.series["active_servers"]
        assert times.size == powered.size > 0

    def test_fig_energy_comparison(self, tiny_trace):
        from repro.analysis import fig_energy_comparison

        config = HarmonyConfig(policy="baseline", classifier_sample=1000)
        result = HarmonySimulation(config, tiny_trace).run()
        fig = fig_energy_comparison({"baseline": result})
        assert fig.rows[0]["policy"] == "baseline"
        assert fig.rows[0]["savings_vs_baseline"] == pytest.approx(0.0)


class TestPolicyComparison:
    @pytest.fixture(scope="class")
    def results(self, tiny_trace):
        config = HarmonyConfig(predictor="ewma", classifier_sample=1000)
        return run_policy_comparison(tiny_trace, config)

    def test_all_policies_ran(self, results):
        assert set(results) == {"baseline", "cbp", "cbs"}

    def test_shared_classifier(self, results):
        ids = {id(r.classifier) for r in results.values()}
        assert len(ids) == 1

    def test_savings_computable(self, results):
        savings = energy_savings(results)
        assert savings["baseline"] == 0.0
        # On a 30-minute trace the ramp dominates and ratios are noisy;
        # this test only checks the computation, the headline shape is
        # asserted at bench scale (bench_fig26_energy_savings).
        for value in savings.values():
            assert -10.0 < value < 1.0

    def test_savings_requires_reference(self, results):
        with pytest.raises(KeyError):
            energy_savings(results, against="static")
