"""Tests for the control-plane degradation ladder (repro.simulation.degradation).

Unit tests drive :class:`DegradationLadder` directly with stub views and
fallbacks to pin the rung semantics (mpc -> threshold -> hold, last-known-
good replay, reason strings).  The integration test forces CBS-RELAX to
fail mid-simulation and asserts the run completes without an unhandled
exception, with the ladder levels surfaced in ``summary()``.
"""

from types import SimpleNamespace

import pytest

from repro.classification import ClassifierConfig, TaskClassifier
from repro.errors import SolverInfeasible
from repro.provisioning.controller import ProvisioningDecision
from repro.provisioning.relax import CbsRelaxSolver
from repro.simulation import (
    DEGRADATION_LEVELS,
    DegradationLadder,
    HarmonyConfig,
    HarmonySimulation,
)
from repro.trace import SyntheticTraceConfig, generate_trace


def _view(time=600.0, powered=None):
    return SimpleNamespace(
        time=time,
        demand_cpu=10.0,
        demand_memory=8.0,
        powered=powered if powered is not None else {0: 5, 1: 3},
        available={0: 10, 1: 10},
    )


class _FallbackStub:
    """Stands in for ThresholdAutoscaler; optionally fails too."""

    def __init__(self, fail=False):
        self.fail = fail
        self.calls = 0

    def decide(self, time, cpu, memory, powered=None, available=None):
        self.calls += 1
        if self.fail:
            raise RuntimeError("threshold path down")
        return ProvisioningDecision(time=time, active={0: 7, 1: 2}, quotas=None)


def _good_decision(time=600.0):
    return ProvisioningDecision(time=time, active={0: 4, 1: 4}, quotas=None)


class TestDegradationLadderUnits:
    def test_level_names(self):
        assert DEGRADATION_LEVELS == ("mpc", "threshold", "hold")

    def test_level0_primary_success(self):
        ladder = DegradationLadder(_FallbackStub())
        decision = ladder.decide(_view(), lambda: _good_decision())
        assert decision.active == {0: 4, 1: 4}
        assert ladder.timeline == [(600.0, 0, "")]
        assert ladder.fallback.calls == 0

    def test_level1_falls_back_to_threshold(self):
        ladder = DegradationLadder(_FallbackStub())

        def primary():
            raise SolverInfeasible("LP failed", status=2)

        decision = ladder.decide(_view(), primary)
        assert decision.active == {0: 7, 1: 2}
        (time, level, reason), = ladder.timeline
        assert (time, level) == (600.0, 1)
        assert reason.startswith("solver_infeasible:")

    def test_level2_holds_last_known_good(self):
        ladder = DegradationLadder(_FallbackStub(fail=True))
        ladder.decide(_view(time=300.0), lambda: _good_decision(300.0))

        def primary():
            raise SolverInfeasible("LP failed", status=2)

        decision = ladder.decide(_view(time=600.0), primary)
        # Last-known-good plan replayed, re-stamped with the current tick.
        assert decision.active == {0: 4, 1: 4}
        assert decision.time == 600.0
        assert ladder.timeline[-1][1] == 2
        assert "then" in ladder.timeline[-1][2]

    def test_level2_without_history_keeps_current_power(self):
        ladder = DegradationLadder(_FallbackStub(fail=True))
        view = _view(powered={0: 6, 1: 1})
        decision = ladder.decide(view, _raise_infeasible)
        assert decision.active == {0: 6, 1: 1}
        assert decision.quotas is None
        (time, level, reason), = ladder.timeline
        assert (time, level) == (600.0, 2)
        assert "then" in reason

    def test_degraded_decision_becomes_next_hold_plan(self):
        # A threshold (level-1) decision is itself last-known-good for a
        # later level-2 hold.
        flaky_fallback = _FallbackStub()
        ladder = DegradationLadder(flaky_fallback)
        ladder.decide(_view(time=300.0), _raise_infeasible)  # level 1
        flaky_fallback.fail = True
        decision = ladder.decide(_view(time=600.0), _raise_infeasible)  # level 2
        assert decision.active == {0: 7, 1: 2}
        assert [level for _, level, _ in ladder.timeline] == [1, 2]


def _raise_infeasible():
    raise SolverInfeasible("LP failed", status=2)


class TestForcedSolverFailureIntegration:
    def test_mid_run_relax_failure_degrades_not_crashes(self, monkeypatch):
        trace = generate_trace(
            SyntheticTraceConfig(
                horizon_hours=0.5, seed=11, total_machines=120, load_factor=0.4
            )
        )
        classifier = TaskClassifier(ClassifierConfig(seed=11)).fit(list(trace.tasks))

        real_solve = CbsRelaxSolver.solve
        calls = {"n": 0}

        def flaky_solve(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] in (3, 4):
                raise SolverInfeasible("forced failure for test", status=99)
            return real_solve(self, *args, **kwargs)

        monkeypatch.setattr(CbsRelaxSolver, "solve", flaky_solve)

        config = HarmonyConfig(policy="cbs", predictor="ewma")
        result = HarmonySimulation(config, trace, classifier=classifier).run()

        degradation = result.summary()["resilience"]["degradation"]
        assert degradation["max_level"] == 1
        assert degradation["degraded_ticks"] == 2
        assert degradation["levels"]["threshold"] == 2
        assert degradation["levels"]["mpc"] >= 1
        assert degradation["levels"]["hold"] == 0

        timeline = result.metrics.degradation_timeline
        degraded = [(t, lvl, reason) for t, lvl, reason in timeline if lvl > 0]
        assert len(degraded) == 2
        assert all("solver_infeasible" in reason for _, _, reason in degraded)

    def test_clean_run_reports_level_zero(self):
        trace = generate_trace(
            SyntheticTraceConfig(
                horizon_hours=0.25, seed=3, total_machines=60, load_factor=0.4
            )
        )
        config = HarmonyConfig(policy="cbs", predictor="ewma")
        result = HarmonySimulation(config, trace).run()
        degradation = result.summary()["resilience"]["degradation"]
        assert degradation["max_level"] == 0
        assert degradation["degraded_ticks"] == 0
        assert degradation["levels"]["threshold"] == 0
        assert degradation["levels"]["hold"] == 0
        assert degradation["levels"]["mpc"] == len(
            result.metrics.degradation_timeline
        )

    def test_non_mpc_policy_has_empty_timeline(self):
        trace = generate_trace(
            SyntheticTraceConfig(
                horizon_hours=0.25, seed=3, total_machines=60, load_factor=0.4
            )
        )
        config = HarmonyConfig(policy="threshold")
        result = HarmonySimulation(config, trace).run()
        assert result.metrics.degradation_timeline == []
        degradation = result.summary()["resilience"]["degradation"]
        assert degradation["max_level"] == 0
        assert degradation["degraded_ticks"] == 0
