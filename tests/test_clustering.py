"""Tests for the K-means substrate (Lloyd + k-means++, scaling, k selection)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering import (
    KMeans,
    LogScaler,
    StandardScaler,
    inertia_curve,
    select_k_elbow,
    silhouette_score,
)


def three_blobs(n_per=50, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
    return np.vstack(
        [rng.normal(c, 0.5, size=(n_per, 2)) for c in centers]
    ), centers


class TestKMeans:
    def test_recovers_separated_blobs(self):
        data, centers = three_blobs()
        result = KMeans(k=3, seed=1).fit(data)
        assert result.converged
        recovered = sorted(tuple(np.round(c)) for c in result.centroids)
        expected = sorted(tuple(c) for c in centers)
        assert recovered == expected

    def test_labels_partition_data(self):
        data, _ = three_blobs()
        result = KMeans(k=3, seed=1).fit(data)
        assert result.labels.shape == (data.shape[0],)
        assert set(result.labels) == {0, 1, 2}
        assert result.cluster_sizes().sum() == data.shape[0]

    def test_inertia_decreases_with_k(self):
        data, _ = three_blobs()
        curve = inertia_curve(data, [1, 2, 3, 4], seed=0)
        values = [curve[k] for k in (1, 2, 3, 4)]
        assert values[0] >= values[1] >= values[2] >= values[3]

    def test_k_one_centroid_is_mean(self):
        data, _ = three_blobs()
        result = KMeans(k=1, seed=0).fit(data)
        assert np.allclose(result.centroids[0], data.mean(axis=0))

    def test_k_capped_at_sample_count(self):
        data = np.array([[0.0], [1.0]])
        result = KMeans(k=5, seed=0).fit(data)
        assert result.k == 2

    def test_deterministic_given_seed(self):
        data, _ = three_blobs()
        a = KMeans(k=3, seed=7).fit(data)
        b = KMeans(k=3, seed=7).fit(data)
        assert np.array_equal(a.labels, b.labels)

    def test_predict_nearest_centroid(self):
        data, _ = three_blobs()
        model = KMeans(k=3, seed=1)
        model.fit(data)
        label_at_origin = model.predict(np.array([[0.1, -0.2]]))[0]
        origin_centroid = model.result.centroids[label_at_origin]
        assert np.linalg.norm(origin_centroid) < 2.0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KMeans(k=2).predict(np.zeros((3, 2)))

    def test_transform_shape(self):
        data, _ = three_blobs()
        model = KMeans(k=3, seed=1)
        model.fit(data)
        distances = model.transform(data[:10])
        assert distances.shape == (10, 3)
        assert (distances >= 0).all()

    def test_identical_points(self):
        data = np.ones((20, 2))
        result = KMeans(k=3, seed=0).fit(data)
        assert result.inertia == pytest.approx(0.0)

    def test_collapses_k_to_distinct_point_count(self):
        # 40 samples but only 2 distinct points: k=5 must collapse to 2
        # instead of thrashing empty-cluster reseeds / NaN centroids.
        data = np.array([[0.0, 0.0], [1.0, 1.0]] * 20)
        result = KMeans(k=5, seed=0).fit(data)
        assert result.collapsed
        assert result.k == 2
        assert np.isfinite(result.centroids).all()
        assert result.inertia == pytest.approx(0.0)

    def test_zero_variance_data_yields_single_cluster(self):
        data = np.full((30, 2), 0.25)
        result = KMeans(k=4, seed=1).fit(data)
        assert result.collapsed
        assert result.k == 1
        assert result.centroids[0] == pytest.approx([0.25, 0.25])

    def test_reseed_counter_surfaces(self):
        rng = np.random.default_rng(0)
        result = KMeans(k=3, seed=0).fit(rng.normal(size=(50, 2)))
        assert result.reseeds >= 0  # field exists and is an int
        assert not result.collapsed

    def test_rejects_empty_and_nan(self):
        with pytest.raises(ValueError):
            KMeans(k=2).fit(np.empty((0, 2)))
        with pytest.raises(ValueError):
            KMeans(k=2).fit(np.array([[1.0, np.nan]]))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            KMeans(k=0)
        with pytest.raises(ValueError):
            KMeans(k=2, n_init=0)
        with pytest.raises(ValueError):
            KMeans(k=2, max_iter=0)

    def test_cluster_std(self):
        data, _ = three_blobs()
        result = KMeans(k=3, seed=1).fit(data)
        stds = result.cluster_std(data)
        assert stds.shape == (3, 2)
        assert (stds < 1.0).all()  # blobs have sigma 0.5

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=60),
        k=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=99),
    )
    def test_property_no_empty_clusters_and_inertia_finite(self, n, k, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n, 3))
        result = KMeans(k=k, n_init=1, seed=seed).fit(data)
        assert (result.cluster_sizes() > 0).all()
        assert np.isfinite(result.inertia)
        # Inertia equals the sum of squared distances to assigned centroids.
        manual = sum(
            float(np.sum((data[result.labels == j] - result.centroids[j]) ** 2))
            for j in range(result.k)
        )
        assert result.inertia == pytest.approx(manual, rel=1e-6, abs=1e-9)


class TestSelection:
    def test_elbow_finds_three_blobs(self):
        data, _ = three_blobs(n_per=80)
        k, curve = select_k_elbow(data, k_max=8, seed=0)
        assert k == 3
        assert set(curve) == set(range(1, 9))

    def test_elbow_on_single_cluster(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1, size=(100, 2))
        k, _ = select_k_elbow(data, k_max=6, improvement_threshold=0.3, seed=0)
        assert k <= 2

    def test_silhouette_high_for_separated(self):
        data, _ = three_blobs()
        labels = KMeans(k=3, seed=1).fit(data).labels
        assert silhouette_score(data, labels) > 0.8

    def test_silhouette_single_cluster_zero(self):
        data, _ = three_blobs()
        assert silhouette_score(data, np.zeros(len(data), dtype=int)) == 0.0

    def test_silhouette_misaligned_raises(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((5, 2)), np.zeros(4, dtype=int))


class TestScalers:
    def test_standard_scaler_zero_mean_unit_var(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 3.0, size=(200, 2))
        scaled = StandardScaler().fit_transform(data)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_round_trip(self):
        data = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        scaler = StandardScaler().fit(data)
        assert np.allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_standard_scaler_constant_feature(self):
        data = np.array([[1.0, 7.0], [2.0, 7.0]])
        scaled = StandardScaler().fit_transform(data)
        assert np.allclose(scaled[:, 1], 0.0)

    def test_standard_scaler_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_log_scaler_round_trip(self):
        data = np.array([0.001, 0.1, 1.0])
        scaler = LogScaler()
        assert np.allclose(scaler.inverse_transform(scaler.transform(data)), data)

    def test_log_scaler_floors_nonpositive(self):
        scaler = LogScaler(floor=1e-6)
        assert scaler.transform(np.array([0.0]))[0] == pytest.approx(-6.0)

    def test_log_scaler_bad_floor(self):
        with pytest.raises(ValueError):
            LogScaler(floor=0.0)
