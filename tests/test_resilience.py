"""Resilience subsystem: fault injection, guarded control, recovery metrics.

Covers the fault-plan API and injector determinism, the
:class:`~repro.resilience.guard.GuardedController` invariants (validation,
clamping, solver fallback, circuit breaker), the new recovery metrics, and
the two end-to-end acceptance scenarios: a correlated outage absorbed by
the guarded CBS controller, and a monitoring blackout that trips the
circuit breaker into reactive threshold mode and recovers.
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.energy import table2_fleet
from repro.provisioning import ProvisioningDecision
from repro.resilience import (
    CorrelatedOutage,
    FaultPlan,
    GuardConfig,
    GuardedController,
    MachineDegradation,
    MonitoringBlackout,
    RandomMachineFailures,
)
from repro.simulation import (
    ClusterConfig,
    ClusterSimulator,
    HarmonyConfig,
    HarmonySimulation,
    SimulationMetrics,
)
from repro.simulation.cluster import ClusterView
from repro.trace import SyntheticTraceConfig, generate_trace
from tests.conftest import make_task


# --------------------------------------------------------------------------
# Fault-plan API


class TestFaultSpecs:
    def test_plan_is_immutable_and_composable(self):
        plan = FaultPlan(seed=3)
        extended = plan.with_fault(MonitoringBlackout(time=100.0))
        assert not plan.has_faults
        assert extended.has_faults
        assert extended.seed == 3

    def test_poisson_preset(self):
        plan = FaultPlan.poisson(rate_per_machine_hour=0.1, seed=5)
        assert plan.has_faults
        assert plan.seed == 5

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: CorrelatedOutage(time=-1.0, fraction=0.5),
            lambda: CorrelatedOutage(time=0.0, fraction=0.0),
            lambda: CorrelatedOutage(time=0.0, fraction=1.5),
            lambda: CorrelatedOutage(time=0.0, fraction=0.5, repair_seconds=-1.0),
            lambda: MachineDegradation(time=0.0, duration=0.0, fraction=0.5),
            lambda: MachineDegradation(time=0.0, duration=60.0, fraction=0.5, slowdown=1.0),
            lambda: MonitoringBlackout(time=0.0, intervals=0),
            lambda: RandomMachineFailures(rate_per_machine_hour=-0.1),
        ],
    )
    def test_bad_fault_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            bad()


# --------------------------------------------------------------------------
# ClusterConfig validation (regression: these used to be accepted silently)


class TestClusterConfigValidation:
    def test_defaults_valid(self):
        ClusterConfig()

    @pytest.mark.parametrize("value", [0, -1])
    def test_max_schedule_attempts_must_be_positive(self, value):
        with pytest.raises(ValueError, match="max_schedule_attempts"):
            ClusterConfig(max_schedule_attempts=value)

    @pytest.mark.parametrize("value", [0, -5])
    def test_backfill_attempts_must_be_positive(self, value):
        with pytest.raises(ValueError, match="backfill_attempts"):
            ClusterConfig(backfill_attempts=value)


# --------------------------------------------------------------------------
# GuardedController unit behaviour, against a hand-built view


def _view(time=0.0, powered=None, available=None, arrivals=None, fleet=None):
    fleet = fleet or table2_fleet(0.02)
    powered = powered if powered is not None else {m.platform_id: 10 for m in fleet}
    available = available if available is not None else {m.platform_id: m.count for m in fleet}
    return ClusterView(
        time=time,
        backlog={},
        running={},
        running_by_platform={},
        demand_cpu=5.0,
        demand_memory=5.0,
        available=available,
        powered=powered,
        arrivals=arrivals or {0: 50.0},
    )


class _ScriptedPolicy:
    """Replays a fixed list of decisions (or raises on ``None``)."""

    def __init__(self, actives):
        self.actives = list(actives)

    def decide(self, view):
        active = self.actives.pop(0)
        if active is None:
            raise RuntimeError("solver exploded")
        return ProvisioningDecision(time=view.time, active=active, quotas=None)


class TestGuardedController:
    @pytest.fixture
    def fleet(self):
        return table2_fleet(0.02)

    def test_nan_target_replaced_by_last_good(self, fleet):
        pid = fleet[0].platform_id
        guard = GuardedController(
            _ScriptedPolicy([{pid: 12}, {pid: float("nan")}]), fleet
        )
        first = guard.decide(_view(time=0.0))
        second = guard.decide(_view(time=300.0))
        assert guard.stats.invalid_decisions == 1
        assert all(
            math.isfinite(v) and v >= 0 for v in second.active.values()
        )
        assert second.active[pid] == first.active[pid]

    def test_negative_target_rejected(self, fleet):
        pid = fleet[0].platform_id
        guard = GuardedController(_ScriptedPolicy([{pid: -3}]), fleet)
        decision = guard.decide(_view())
        assert guard.stats.invalid_decisions == 1
        assert all(v >= 0 for v in decision.active.values())

    def test_solver_exception_falls_back(self, fleet):
        pid = fleet[0].platform_id
        guard = GuardedController(_ScriptedPolicy([{pid: 12}, None]), fleet)
        first = guard.decide(_view(time=0.0))
        second = guard.decide(_view(time=300.0))
        assert guard.stats.solver_failures == 1
        assert guard.stats.fallback_decisions == 1
        assert second.active[pid] == first.active[pid]

    def test_step_clamp_limits_per_tick_delta(self, fleet):
        pid = fleet[0].platform_id
        config = GuardConfig(max_step_fraction=0.1, min_step_machines=2)
        guard = GuardedController(
            _ScriptedPolicy([{m.platform_id: m.count for m in fleet}]),
            fleet,
            config=config,
        )
        powered = {m.platform_id: 0 for m in fleet}
        decision = guard.decide(_view(powered=powered))
        step = max(2, math.ceil(0.1 * fleet[0].count))
        assert decision.active[pid] <= step
        assert guard.stats.clamped_decisions == 1

    def test_target_never_exceeds_availability(self, fleet):
        pid = fleet[0].platform_id
        guard = GuardedController(
            _ScriptedPolicy([{pid: 10_000}]),
            fleet,
            config=GuardConfig(max_step_fraction=1.0),
        )
        available = {m.platform_id: 3 for m in fleet}
        powered = {m.platform_id: 3 for m in fleet}
        decision = guard.decide(_view(powered=powered, available=available))
        assert decision.active[pid] <= 3

    def test_breaker_trips_and_recovers_on_residuals(self, fleet):
        pid = fleet[0].platform_id
        config = GuardConfig(trip_after=2, recover_after=2, min_residual=5.0)
        guard = GuardedController(
            _ScriptedPolicy([{pid: 5}] * 20), fleet, config=config
        )
        t = 0.0
        # Steady arrivals: prediction converges, no strikes.
        for _ in range(3):
            guard.decide(_view(time=t, arrivals={0: 100.0}))
            t += 300.0
        assert not guard.tripped
        # Arrivals vanish (blackout-like): two big residuals trip it.
        for _ in range(2):
            guard.decide(_view(time=t, arrivals={0: 0.0}))
            t += 300.0
        assert guard.tripped
        assert guard.stats.trips == 1
        # EWMA decays below the absolute residual floor: calm intervals
        # close the breaker again.
        for _ in range(10):
            guard.decide(_view(time=t, arrivals={0: 0.0}))
            t += 300.0
        assert not guard.tripped
        assert guard.stats.recoveries == 1
        modes = {mode for _, mode in guard.mode_timeline}
        assert modes == {"mpc", "reactive"}

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            GuardedController(_ScriptedPolicy([]), ())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_step_fraction": 0.0},
            {"max_step_fraction": 1.5},
            {"min_step_machines": 0},
            {"residual_threshold": 0.0},
            {"trip_after": 0},
            {"recover_after": 0},
            {"ewma_alpha": 0.0},
            {"solve_timeout_seconds": -1.0},
        ],
    )
    def test_bad_guard_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GuardConfig(**kwargs)


# --------------------------------------------------------------------------
# Recovery metrics on hand-fed episodes


class TestResilienceMetrics:
    def test_mttr_and_availability(self):
        metrics = SimulationMetrics()
        metrics.machine_failed(machine_id=1, time=100.0)
        metrics.machine_recovered(machine_id=1, time=700.0)
        metrics.machine_failed(machine_id=2, time=200.0)  # never repaired
        metrics.fault_sample(0.0, failed_machines=0, total_machines=10)
        metrics.fault_sample(300.0, failed_machines=2, total_machines=10)
        assert metrics.availability() == pytest.approx(0.9)
        # Open episode censored at the horizon: (600 + (1000-200)) / 2.
        assert metrics.mttr(censor_at=1000.0) == pytest.approx(700.0)

    def test_recover_without_failure_is_noop(self):
        metrics = SimulationMetrics()
        metrics.machine_recovered(machine_id=9, time=50.0)
        assert metrics.failure_events == []

    def test_restart_latency_closed_by_next_schedule(self):
        metrics = SimulationMetrics()
        task = make_task(job_id=7, submit_time=0.0)
        metrics.task_submitted(task, time=0.0)
        metrics.task_scheduled(task, time=10.0, class_id=0, platform_id=1)
        metrics.task_killed(task, time=100.0)
        metrics.task_scheduled(task, time=160.0, class_id=0, platform_id=1)
        assert metrics.mean_restart_latency() == pytest.approx(60.0)

    def test_slo_attainment_counts_unscheduled_as_miss(self):
        metrics = SimulationMetrics()
        fast, slow, never = (
            make_task(job_id=1, submit_time=0.0),
            make_task(job_id=2, submit_time=0.0),
            make_task(job_id=3, submit_time=0.0),
        )
        for task in (fast, slow, never):
            metrics.task_submitted(task, time=0.0)
        metrics.task_scheduled(fast, time=30.0, class_id=0, platform_id=1)
        metrics.task_scheduled(slow, time=900.0, class_id=0, platform_id=1)
        attained = metrics.slo_attainment(300.0, include_unscheduled_at=3600.0)
        assert attained == pytest.approx(1 / 3)


# --------------------------------------------------------------------------
# Failure-injection determinism (same seed => same run, bit for bit)


def _crash_run(seed, rate=0.1, plan=None):
    fleet = table2_fleet(0.02)
    tasks = tuple(
        make_task(job_id=i, submit_time=1.0 + i, duration=2500.0, cpu=0.05, memory=0.05)
        for i in range(40)
    )

    class AllOn:
        def decide(self, view):
            return ProvisioningDecision(
                time=view.time,
                active={m.platform_id: m.count for m in fleet},
                quotas=None,
            )

    if plan is None:
        config = ClusterConfig(
            control_interval=300.0,
            failure_rate_per_machine_hour=rate,
            repair_seconds=1800.0,
            failure_seed=seed,
        )
    else:
        config = ClusterConfig(control_interval=300.0, fault_plan=plan)
    simulator = ClusterSimulator(
        tasks=tasks,
        horizon=7200.0,
        machine_models=fleet,
        policy=AllOn(),
        class_of=lambda task: 0,
        config=config,
    )
    metrics = simulator.run()
    signature = (
        tuple((f.machine_id, f.fail_time, f.recover_time) for f in metrics.failure_events),
        simulator.tasks_killed,
        metrics.num_scheduled,
        metrics.num_finished,
    )
    return simulator, metrics, signature


class TestFailureDeterminism:
    def test_same_seed_same_crash_schedule_and_metrics(self):
        _, _, first = _crash_run(seed=3)
        _, _, second = _crash_run(seed=3)
        assert first == second
        assert len(first[0]) > 0  # the runs actually crashed machines

    def test_different_seed_different_schedule(self):
        _, _, first = _crash_run(seed=3)
        _, _, second = _crash_run(seed=4)
        assert first[0] != second[0]

    def test_legacy_knob_matches_explicit_fault_plan(self):
        """failure_rate_per_machine_hour is a thin preset over FaultPlan."""
        _, _, legacy = _crash_run(seed=3, rate=0.1)
        plan = FaultPlan(seed=3).with_fault(
            RandomMachineFailures(rate_per_machine_hour=0.1, repair_seconds=1800.0)
        )
        _, _, explicit = _crash_run(seed=3, plan=plan)
        assert legacy == explicit


# --------------------------------------------------------------------------
# Scripted degradation (stragglers) stretches running work


class TestDegradation:
    def test_stragglers_slow_but_do_not_lose_tasks(self):
        plan = FaultPlan(seed=1).with_fault(
            MachineDegradation(time=600.0, duration=1800.0, fraction=0.5, slowdown=3.0)
        )
        simulator, metrics, _ = _crash_run(seed=1, plan=plan)
        assert simulator.fault_injector.stats.machines_degraded > 0
        # Nothing is killed by a slowdown; every task still finishes once,
        # and never earlier than its nominal duration allows.
        assert simulator.tasks_killed == 0
        assert metrics.num_finished == metrics.num_scheduled
        for record in metrics.records.values():
            if record.finish_time is not None:
                assert (
                    record.finish_time
                    >= record.schedule_time + record.task.duration - 1e-6
                )
        # The degradation window ended inside the horizon: slowdowns reset.
        for pool in simulator.pools:
            assert all(m.slowdown == 1.0 for m in pool.machines)


# --------------------------------------------------------------------------
# End-to-end acceptance: outage absorption and blackout breaker


@pytest.fixture(scope="module")
def res_trace():
    """One-hour trace shared by the end-to-end resilience scenarios."""
    return generate_trace(
        SyntheticTraceConfig(
            horizon_hours=1.0, seed=5, total_machines=150, load_factor=0.5
        )
    )


@pytest.fixture(scope="module")
def guarded_runs(res_trace):
    """Clean / outage / blackout runs of the guarded CBS controller."""
    base = HarmonyConfig(
        policy="cbs",
        predictor="ewma",
        guard=True,
        guard_config=GuardConfig(trip_after=2, recover_after=2),
        classifier_sample=1000,
    )
    plans = {
        "clean": None,
        "outage": FaultPlan(seed=1).with_fault(
            CorrelatedOutage(time=res_trace.horizon / 2, fraction=0.3)
        ),
        "blackout": FaultPlan(seed=1).with_fault(
            MonitoringBlackout(time=600.0, intervals=3)
        ),
    }
    results = {}
    classifier = None
    for name, plan in plans.items():
        simulation = HarmonySimulation(
            replace(base, fault_plan=plan), res_trace, classifier=classifier
        )
        classifier = simulation.classifier
        results[name] = simulation.run()
    return results


class TestOutageAcceptance:
    def test_outage_kills_quarter_of_a_pool(self, guarded_runs):
        outage = guarded_runs["outage"]
        biggest = max(HarmonyConfig().fleet, key=lambda m: m.count)
        assert len(outage.metrics.failure_events) >= math.ceil(0.25 * biggest.count)
        assert outage.tasks_killed > 0
        assert outage.fault_stats.outages == 1

    def test_guarded_run_absorbs_outage(self, guarded_runs):
        clean, outage = guarded_runs["clean"], guarded_runs["outage"]
        assert outage.metrics.num_scheduled >= 0.85 * clean.metrics.num_scheduled
        assert outage.guard_stats.invalid_decisions == 0

    def test_every_emitted_decision_is_valid(self, guarded_runs):
        fleet_size = {m.platform_id: m.count for m in HarmonyConfig().fleet}
        for result in guarded_runs.values():
            for decision in result.decisions:
                for pid, target in decision.active.items():
                    assert math.isfinite(target)
                    assert 0 <= target <= fleet_size[pid]

    def test_recovery_metrics_populated(self, guarded_runs, res_trace):
        outage = guarded_runs["outage"]
        assert outage.metrics.availability() < 1.0
        assert outage.metrics.mttr(censor_at=res_trace.horizon) > 0.0
        summary = outage.summary()["resilience"]
        assert summary["machines_failed"] > 0
        assert 0.0 < summary["availability"] < 1.0


class TestBlackoutAcceptance:
    def test_blackout_trips_breaker_into_reactive_and_recovers(self, guarded_runs):
        """A 3-interval monitoring blackout must trip the circuit breaker
        into threshold mode and anneal back to MPC before the horizon."""
        blackout = guarded_runs["blackout"]
        stats = blackout.guard_stats
        assert stats.trips >= 1
        assert stats.reactive_ticks >= 1
        assert stats.recoveries >= 1
        assert blackout.fault_stats.blackout_ticks == 3

    def test_mode_timeline_returns_to_mpc(self, guarded_runs):
        timeline = guarded_runs["blackout"].guard_timeline
        modes = [mode for _, mode in timeline]
        assert "reactive" in modes
        assert modes[-1] == "mpc"
        # Reactive ticks sit inside the run, bracketed by MPC control.
        assert modes[0] == "mpc"

    def test_blackout_masks_arrivals_in_fault_timeline(self, guarded_runs):
        samples = guarded_runs["blackout"].metrics.fault_timeline
        blackout_ticks = [s.time for s in samples if s.blackout]
        assert blackout_ticks == [600.0, 900.0, 1200.0]


# --------------------------------------------------------------------------
# Public prepare() accessor


class TestPrepareAccessor:
    def test_prepare_matches_internal_pipeline(self, res_trace):
        simulation = HarmonySimulation(
            HarmonyConfig(policy="cbs", predictor="ewma", classifier_sample=1000),
            res_trace,
        )
        tasks, class_of = simulation.prepare()
        assert len(tasks) == res_trace.num_tasks
        assert [t.submit_time for t in tasks] == sorted(t.submit_time for t in tasks)
        labels = {class_of(task) for task in tasks[:50]}
        assert labels  # resolvable class ids for every prepared task
        for task in tasks[:50]:
            assert class_of(task) == simulation._class_by_uid[task.uid]
