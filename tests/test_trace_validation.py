"""Tests for the trace-calibration validator."""

import pytest

from repro.trace import (
    MachineType,
    Trace,
    validate_trace,
)
from tests.conftest import make_task


class TestValidateTrace:
    def test_calibrated_trace_passes(self, small_trace):
        report = validate_trace(small_trace)
        assert report.passed, [c.name for c in report.failures()]
        assert len(report.checks) >= 8

    def test_uncalibrated_trace_fails(self):
        """A trivial homogeneous workload misses the paper's marginals."""
        machines = (
            MachineType(platform_id=1, cpu_capacity=1.0, memory_capacity=1.0, count=10),
        )
        tasks = [
            make_task(job_id=i, submit_time=float(i), duration=500.0,
                      cpu=0.1, memory=0.1, priority=0)
            for i in range(100)
        ]
        report = validate_trace(Trace.from_tasks(machines, tasks))
        assert not report.passed
        failed_names = {c.name for c in report.failures()}
        assert "short task fraction (<100 s)" in failed_names
        assert "all priority groups populated" in failed_names

    @pytest.mark.parametrize("num_tasks", [0, 1])
    def test_degenerate_trace_fails_instead_of_crashing(self, num_tasks):
        """Empty/single-task traces (e.g. everything quarantined) must
        produce a failing report, not a divide-by-zero."""
        machines = (
            MachineType(platform_id=1, cpu_capacity=1.0, memory_capacity=1.0, count=10),
        )
        tasks = [make_task(job_id=i) for i in range(num_tasks)]
        report = validate_trace(Trace.from_tasks(machines, tasks, horizon=100.0))
        assert not report.passed
        assert [c.name for c in report.failures()] == ["minimum sample size"]
        assert report.checks[0].measured == float(num_tasks)

    def test_check_rows_renderable(self, small_trace):
        report = validate_trace(small_trace)
        for check in report.checks:
            row = check.row()
            assert len(row) == 4
            assert row[3] in ("ok", "MISS")
