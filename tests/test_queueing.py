"""Tests for the M/G/N model (Eqs. 1-2): Erlang formulas and inversion."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.queueing import (
    MGNQueue,
    erlang_b,
    erlang_c,
    mgn_mean_wait,
    required_containers,
)


class TestErlangB:
    def test_zero_servers_blocks_everything(self):
        assert erlang_b(1.0, 0) == 1.0

    def test_known_value(self):
        # Classic reference point: B(a=2, k=3) = (8/6)/(1+2+2+8/6) = 0.2105...
        assert erlang_b(2.0, 3) == pytest.approx(4.0 / 19.0, rel=1e-9)

    def test_monotone_decreasing_in_servers(self):
        values = [erlang_b(5.0, k) for k in range(1, 20)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_large_load_stable(self):
        # The recurrence must not overflow at data-center scales.
        value = erlang_b(5000.0, 5100)
        assert 0.0 <= value <= 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            erlang_b(-1.0, 3)


class TestErlangC:
    def test_mm1_equals_rho(self):
        # For M/M/1, P(wait) = rho.
        assert erlang_c(0.6, 1) == pytest.approx(0.6, rel=1e-9)

    def test_saturated_queue_always_waits(self):
        assert erlang_c(5.0, 5) == 1.0
        assert erlang_c(7.0, 5) == 1.0

    def test_zero_load_never_waits(self):
        assert erlang_c(0.0, 3) == 0.0

    def test_matches_direct_formula(self):
        # Direct evaluation of Eq. 2 for small N.
        a, n = 1.5, 3
        direct_num = a**n / (math.factorial(n) * (1 - a / n))
        direct_den = sum(a**k / math.factorial(k) for k in range(n)) + direct_num
        assert erlang_c(a, n) == pytest.approx(direct_num / direct_den, rel=1e-9)

    def test_requires_servers(self):
        with pytest.raises(ValueError):
            erlang_c(1.0, 0)

    @settings(max_examples=50, deadline=None)
    @given(
        a=st.floats(min_value=0.01, max_value=50.0),
        n=st.integers(min_value=1, max_value=100),
    )
    def test_property_probability_bounds(self, a, n):
        value = erlang_c(a, n)
        assert 0.0 <= value <= 1.0


class TestMeanWait:
    def test_mm1_formula(self):
        # M/M/1: W_q = rho / (mu - lambda).
        lam, mu = 0.5, 1.0
        expected = (lam / mu) / (mu - lam)
        assert mgn_mean_wait(lam, mu, 1, scv=1.0) == pytest.approx(expected, rel=1e-9)

    def test_md1_half_of_mm1(self):
        # Deterministic service (scv=0) halves the M/M/1 wait.
        lam, mu = 0.5, 1.0
        mm1 = mgn_mean_wait(lam, mu, 1, scv=1.0)
        md1 = mgn_mean_wait(lam, mu, 1, scv=0.0)
        assert md1 == pytest.approx(mm1 / 2, rel=1e-9)

    def test_unstable_is_infinite(self):
        assert mgn_mean_wait(2.0, 1.0, 1) == math.inf
        assert mgn_mean_wait(1.0, 1.0, 1) == math.inf

    def test_monotone_decreasing_in_servers(self):
        waits = [mgn_mean_wait(5.0, 1.0, n) for n in range(6, 20)]
        assert all(a >= b for a, b in zip(waits, waits[1:]))

    def test_zero_arrivals_zero_wait(self):
        assert mgn_mean_wait(0.0, 1.0, 3) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mgn_mean_wait(-1.0, 1.0, 1)
        with pytest.raises(ValueError):
            mgn_mean_wait(1.0, 0.0, 1)
        with pytest.raises(ValueError):
            mgn_mean_wait(1.0, 1.0, 0)
        with pytest.raises(ValueError):
            mgn_mean_wait(1.0, 1.0, 1, scv=-0.5)


class TestRequiredContainers:
    def test_meets_target_and_is_minimal(self):
        lam, mu, target = 3.0, 0.5, 2.0
        n = required_containers(lam, mu, target)
        assert mgn_mean_wait(lam, mu, n) <= target
        assert n == int(math.floor(lam / mu)) + 1 or mgn_mean_wait(lam, mu, n - 1) > target

    def test_zero_arrivals_zero_containers(self):
        assert required_containers(0.0, 1.0, 1.0) == 0

    def test_stability_floor(self):
        # Even a lax target needs rho < 1.
        n = required_containers(10.0, 1.0, 1e9)
        assert n >= 11

    def test_tight_target_needs_more(self):
        lax = required_containers(5.0, 1.0, 10.0)
        tight = required_containers(5.0, 1.0, 0.01)
        assert tight > lax

    def test_high_scv_needs_more(self):
        low = required_containers(20.0, 0.1, 5.0, scv=0.5)
        high = required_containers(20.0, 0.1, 5.0, scv=20.0)
        assert high >= low

    def test_bad_target(self):
        with pytest.raises(ValueError):
            required_containers(1.0, 1.0, 0.0)

    def test_max_servers_guard(self):
        with pytest.raises(ValueError, match="exceeds max_servers|no container count"):
            required_containers(1e6, 1e-6, 1e-9, max_servers=100)

    def test_unstable_queue_raises_structured_code(self):
        from repro.errors import CapacityModelUnstable

        with pytest.raises(CapacityModelUnstable) as excinfo:
            required_containers(1e6, 1e-6, 1e-9, max_servers=100)
        error = excinfo.value
        assert error.code == "capacity_model_unstable"
        assert error.context["max_servers"] == 100
        # Still a ValueError so pre-taxonomy call sites (and the
        # degradation ladder's except clause) keep working.
        assert isinstance(error, ValueError)

    def test_halfin_whitt_matches_exact_inversion(self):
        """The large-load fast path agrees with the exact bisection."""
        lam, mean_duration = 2.0, 1500.0  # offered = 3000 (HW path)
        mu = 1.0 / mean_duration
        fast = required_containers(lam, mu, target_delay=30.0, scv=1.5)
        # Exact check at the returned N and minimality at N-1.
        assert mgn_mean_wait(lam, mu, fast, 1.5) <= 30.0
        assert mgn_mean_wait(lam, mu, fast - 1, 1.5) > 30.0

    @settings(max_examples=40, deadline=None)
    @given(
        # Keep the offered load (lam * mean_duration) below ~5e4: the
        # Erlang-B recurrence is O(N) and the bisection calls it ~20 times.
        lam=st.floats(min_value=0.001, max_value=10.0),
        mean_duration=st.floats(min_value=1.0, max_value=5000.0),
        target=st.floats(min_value=0.1, max_value=3600.0),
        scv=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_property_result_meets_target(self, lam, mean_duration, target, scv):
        mu = 1.0 / mean_duration
        n = required_containers(lam, mu, target, scv=scv)
        assert n >= 1
        assert mgn_mean_wait(lam, mu, n, scv=scv) <= target
        # Stability always holds.
        assert lam / (n * mu) < 1.0


class TestMGNQueue:
    def test_wrapper_consistency(self):
        queue = MGNQueue(arrival_rate=2.0, service_rate=0.5, scv=1.5)
        assert queue.offered_load == pytest.approx(4.0)
        n = queue.containers_for_delay(5.0)
        assert queue.mean_wait(n) <= 5.0
        assert queue.utilization(n) < 1.0
        assert 0 <= queue.wait_probability(n) <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MGNQueue(arrival_rate=-1.0, service_rate=1.0)
        with pytest.raises(ValueError):
            MGNQueue(arrival_rate=1.0, service_rate=0.0)
        with pytest.raises(ValueError):
            MGNQueue(arrival_rate=1.0, service_rate=1.0, scv=-1.0)
        queue = MGNQueue(arrival_rate=1.0, service_rate=1.0)
        with pytest.raises(ValueError):
            queue.utilization(0)


class TestAgainstDiscreteEventQueue:
    """Eq. 1 validated against the library's M/G/N simulator."""

    def test_mmn_close_to_simulation(self):
        from repro.queueing import simulate_mgn_queue

        lam, mu, n = 8.0, 1.0, 10
        predicted = mgn_mean_wait(lam, mu, n, scv=1.0)
        result = simulate_mgn_queue(lam, mu, n, scv=1.0, num_tasks=8000)
        assert predicted == pytest.approx(result.mean_wait, rel=0.35)
        # The Erlang-C wait probability should also roughly agree.
        from repro.queueing import erlang_c

        assert erlang_c(lam / mu, n) == pytest.approx(
            result.wait_probability, abs=0.15
        )

    def test_mgn_with_high_scv_close_to_simulation(self):
        from repro.queueing import simulate_mgn_queue

        lam, mu, n = 4.0, 1.0, 6
        predicted = mgn_mean_wait(lam, mu, n, scv=4.0)
        result = simulate_mgn_queue(lam, mu, n, scv=4.0, num_tasks=20000)
        # The Allen-Cunneen form is an approximation; 50% agreement is the
        # accepted accuracy class for heavy-tailed service.
        assert predicted == pytest.approx(result.mean_wait, rel=0.5)

    def test_deterministic_service(self):
        from repro.queueing import simulate_mgn_queue

        result = simulate_mgn_queue(0.5, 1.0, 2, scv=0.0, num_tasks=4000)
        assert result.mean_wait < 0.2  # M/D/2 at rho=0.25 barely queues
        assert 0.0 <= result.utilization <= 1.0

    def test_simulator_validation(self):
        from repro.queueing import simulate_mgn_queue

        with pytest.raises(ValueError):
            simulate_mgn_queue(0.0, 1.0, 1)
        with pytest.raises(ValueError):
            simulate_mgn_queue(1.0, 1.0, 0)
        with pytest.raises(ValueError):
            simulate_mgn_queue(1.0, 1.0, 1, num_tasks=5)
        with pytest.raises(ValueError):
            simulate_mgn_queue(1.0, 1.0, 1, warmup_fraction=1.0)


class TestScvBranchBoundary:
    """Service-model selection is tolerance-based, not exact float equality.

    An ``scv`` that reaches the simulator as ``1.0 +/- 1 ulp`` (a common
    artifact of upstream moment computations) must draw from the same
    exponential model as an exact ``1.0``, and likewise near zero.
    """

    def test_scv_one_ulp_above_one_matches_exponential(self):
        from repro.queueing import simulate_mgn_queue

        exact = simulate_mgn_queue(2.0, 1.0, 4, scv=1.0, num_tasks=2000)
        nudged = simulate_mgn_queue(
            2.0, 1.0, 4, scv=math.nextafter(1.0, 2.0), num_tasks=2000
        )
        assert nudged == exact  # bit-identical: same branch, same rng draws

    def test_scv_one_ulp_below_one_matches_exponential(self):
        from repro.queueing import simulate_mgn_queue

        exact = simulate_mgn_queue(2.0, 1.0, 4, scv=1.0, num_tasks=2000)
        nudged = simulate_mgn_queue(
            2.0, 1.0, 4, scv=math.nextafter(1.0, 0.0), num_tasks=2000
        )
        assert nudged == exact

    def test_subtolerance_scv_is_deterministic_service(self):
        from repro.queueing import simulate_mgn_queue

        exact = simulate_mgn_queue(0.5, 1.0, 2, scv=0.0, num_tasks=1000)
        nudged = simulate_mgn_queue(0.5, 1.0, 2, scv=1e-13, num_tasks=1000)
        assert nudged == exact

    def test_scv_outside_tolerance_uses_lognormal(self):
        from repro.queueing import simulate_mgn_queue

        exponential = simulate_mgn_queue(2.0, 1.0, 4, scv=1.0, num_tasks=2000)
        lognormal = simulate_mgn_queue(2.0, 1.0, 4, scv=1.01, num_tasks=2000)
        assert lognormal != exponential
