"""Tests for the shared scenario-execution subsystem (repro.runner).

Covers the registry, the runner's serial and spawned-parallel paths, the
serial/parallel determinism contract, the perf-baseline writer, the shared
bench defaults, the fault-scenario catalog and the phase-timing hook.
"""

import json

import pytest

from repro.errors import NonFiniteSummary
from repro.resilience import FaultPlan
from repro.resilience.scenarios import SCENARIOS, build_scenario_plan
from repro.runner import (
    BenchDefaults,
    RunnerReport,
    Scenario,
    ScenarioFailure,
    ScenarioResult,
    ScenarioRunner,
    baseline_payload,
    bench_defaults,
    canonical_json,
    get_task,
    registered_tasks,
    summary_digest,
    trace_config_from_params,
    write_baseline,
)
from repro.simulation import PhaseTimer

#: Small, fast scenarios reused by the runner tests (one LP solve each).
SMALL = [
    Scenario(
        name=f"relax_s{seed}",
        task="relax_solve",
        params={"num_classes": 8, "num_types": 2, "W": 2, "seed": seed, "repeats": 1},
    )
    for seed in (0, 1)
]


class TestScenarioRegistry:
    def test_builtin_tasks_registered(self):
        names = registered_tasks()
        for expected in (
            "simulate", "relax_solve", "omega_round", "horizon_solve",
            "predictor_eval", "consolidation",
        ):
            assert expected in names

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError, match="unknown scenario task"):
            get_task("no_such_task")

    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            Scenario(name="", task="relax_solve")
        with pytest.raises(ValueError):
            Scenario(name="x", task="")

    def test_duplicate_registration_rejected(self):
        from repro.runner.scenario import register_task

        with pytest.raises(ValueError, match="already registered"):
            register_task("simulate")(lambda params: {"summary": {}})


class TestScenarioRunnerSerial:
    def test_results_preserve_input_order(self):
        report = ScenarioRunner("unit").run(SMALL, workers=1)
        assert [r.name for r in report] == [s.name for s in SMALL]
        assert report.workers == 1
        assert report["relax_s1"].summary["num_classes"] == 8

    def test_serial_runs_are_reproducible(self):
        runner = ScenarioRunner("unit")
        first = runner.run(SMALL, workers=1)
        second = runner.run(SMALL, workers=1)
        assert first.digests() == second.digests()

    def test_duplicate_names_rejected(self):
        twice = [SMALL[0], SMALL[0]]
        with pytest.raises(ValueError, match="unique"):
            ScenarioRunner("unit").run(twice, workers=1)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ScenarioRunner("unit").run(SMALL, workers=0)

    def test_phases_and_walls_recorded(self):
        report = ScenarioRunner("unit").run(SMALL[:1], workers=1)
        result = report.results[0]
        assert result.wall_seconds > 0
        assert "solve" in result.phases
        assert report.serial_seconds == pytest.approx(
            sum(r.wall_seconds for r in report.results)
        )


class TestScenarioRunnerParallel:
    """The tentpole contract: spawn workers, bit-identical summaries."""

    def test_parallel_matches_serial_bit_for_bit(self):
        runner = ScenarioRunner("unit")
        serial, parallel = runner.verify_determinism(SMALL, workers=2)
        assert serial.digests() == parallel.digests()
        assert parallel.workers == 2
        assert serial.summaries() == parallel.summaries()


class TestBaseline:
    def test_payload_shape(self):
        report = ScenarioRunner("unit").run(SMALL, workers=1)
        payload = baseline_payload(report)
        assert payload["bench"] == "unit"
        assert payload["workers"] == 1
        assert len(payload["scenarios"]) == len(SMALL)
        entry = payload["scenarios"][0]
        assert entry["name"] == SMALL[0].name
        assert entry["task"] == "relax_solve"
        assert len(entry["summary_digest"]) == 64

    def test_payload_schema_is_pinned(self):
        """The exact key sets downstream consumers parse.

        ``scripts/check_bench_regression.py`` and the committed
        ``BENCH_*.json`` baselines read these keys; any addition or
        rename must update the gate script and this pin together.
        """
        report = ScenarioRunner("unit").run(SMALL[:1], workers=1)
        payload = baseline_payload(report, compare_serial=report)
        assert set(payload) == {
            "bench", "workers", "python", "platform", "cpu_count",
            "total_wall_s", "sum_scenario_wall_s", "tasks_per_second",
            "scenarios", "quarantined", "peak_rss_mb",
            "serial_wall_s", "speedup_vs_serial", "summaries_match_serial",
        }
        entry = payload["scenarios"][0]
        assert set(entry) == {
            "name", "task", "wall_s", "phases", "summary_digest",
            "rss_peak_mb",
        }
        # RSS rides along per scenario and as the run high-water mark.
        assert entry["rss_peak_mb"] > 0
        assert payload["peak_rss_mb"] >= entry["rss_peak_mb"]

    def test_compare_serial_fields(self):
        runner = ScenarioRunner("unit")
        serial = runner.run(SMALL, workers=1)
        payload = baseline_payload(serial, compare_serial=serial)
        assert payload["summaries_match_serial"] is True
        assert "serial_wall_s" in payload

    def test_write_baseline_roundtrips(self, tmp_path):
        report = ScenarioRunner("unit").run(SMALL[:1], workers=1)
        path = write_baseline(report, tmp_path)
        assert path == tmp_path / "BENCH_unit.json"
        payload = json.loads(path.read_text())
        assert payload["scenarios"][0]["summary_digest"] == report.results[0].digest()

    def test_summary_digest_is_order_insensitive(self):
        assert summary_digest({"a": 1, "b": 2}) == summary_digest({"b": 2, "a": 1})
        assert summary_digest({"a": 1}) != summary_digest({"a": 2})

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_digest_rejects_non_finite_floats(self, bad):
        with pytest.raises(NonFiniteSummary):
            summary_digest({"value": bad})
        with pytest.raises(NonFiniteSummary):
            canonical_json({"nested": {"deep": [1.0, bad]}})
        # Compatibility: pre-taxonomy callers caught json.dumps' ValueError.
        with pytest.raises(ValueError):
            summary_digest({"value": bad})

    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1.5, "x"]}) == '{"a":[1.5,"x"],"b":1}'


def _zero_wall_report(quarantined=()):
    """A report whose total wall is 0.0 — the divide-by-zero edge."""
    result = ScenarioResult(
        scenario=SMALL[0],
        summary={"tasks_submitted": 100},
        phases={},
        wall_seconds=0.0,
    )
    return RunnerReport(
        suite="unit",
        workers=1,
        results=(result,),
        total_wall_seconds=0.0,
        quarantined=quarantined,
    )


class TestReportEdgeCases:
    def test_tasks_per_second_zero_wall_returns_zero(self):
        assert _zero_wall_report().tasks_per_second() == 0.0

    def test_empty_report_throughput_is_zero(self):
        report = RunnerReport(
            suite="unit", workers=1, results=(), total_wall_seconds=0.0
        )
        assert report.tasks_per_second() == 0.0
        assert report.serial_seconds == 0.0

    def test_speedup_vs_serial_zero_wall_is_zero(self):
        report = _zero_wall_report()
        payload = baseline_payload(report, compare_serial=report)
        assert payload["speedup_vs_serial"] == 0.0
        assert payload["tasks_per_second"] == 0.0

    def test_quarantined_always_serialized(self):
        payload = baseline_payload(_zero_wall_report())
        assert payload["quarantined"] == []
        failure = ScenarioFailure(
            scenario=SMALL[1], kind="timeout", attempts=3, message="hung"
        )
        payload = baseline_payload(_zero_wall_report(quarantined=(failure,)))
        assert payload["quarantined"] == [
            {"name": SMALL[1].name, "kind": "timeout", "attempts": 3}
        ]

    def test_attempts_excluded_from_baseline_payload(self):
        # Retried-then-recovered runs must stay byte-identical to clean
        # ones; the attempt count therefore never reaches BENCH JSON.
        payload = baseline_payload(_zero_wall_report())
        assert "attempts" not in payload["scenarios"][0]


class TestBenchDefaults:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_HOURS", "0.25")
        monkeypatch.setenv("REPRO_BENCH_MACHINES", "50")
        monkeypatch.setenv("REPRO_BENCH_SEED", "99")
        monkeypatch.setenv("REPRO_BENCH_LOAD", "0.3")
        defaults = bench_defaults()
        assert defaults == BenchDefaults(hours=0.25, machines=50, seed=99, load=0.3)

    def test_trace_params_roundtrip(self):
        defaults = BenchDefaults(hours=0.5, machines=120, seed=11, load=0.4)
        config = trace_config_from_params(defaults.trace_params())
        assert config.horizon_hours == 0.5
        assert config.total_machines == 120
        assert config.seed == 11
        assert config.load_factor == 0.4
        assert config.constraint_platforms is None

    def test_constraints_flag_builds_platforms(self):
        params = {"hours": 0.5, "seed": 1, "machines": 10, "load": 0.4,
                  "constraints": True}
        config = trace_config_from_params(params)
        assert config.constraint_platforms  # Table II fleet platforms


class TestFaultScenarioCatalog:
    def test_clean_has_no_plan(self):
        assert build_scenario_plan("clean", horizon=3600.0) is None

    @pytest.mark.parametrize("name", [s for s in SCENARIOS if s != "clean"])
    def test_named_scenarios_build_plans(self, name):
        plan = build_scenario_plan(name, horizon=3600.0, seed=3)
        assert isinstance(plan, FaultPlan)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            build_scenario_plan("meteor_strike", horizon=3600.0)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError):
            build_scenario_plan("outage", horizon=0.0)


class TestPhaseTimer:
    def test_phases_accumulate(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        snapshot = timer.snapshot()
        assert set(snapshot) == {"a", "b"}
        assert snapshot["a"] >= 0.0

    def test_record_and_validation(self):
        timer = PhaseTimer()
        timer.record("x", 0.5)
        timer.record("x", 0.25)
        assert timer.snapshot()["x"] == pytest.approx(0.75)
        with pytest.raises(ValueError):
            timer.record("x", -1.0)

    def test_snapshot_is_a_copy(self):
        timer = PhaseTimer()
        timer.record("x", 1.0)
        snapshot = timer.snapshot()
        snapshot["x"] = 99.0
        assert timer.snapshot()["x"] == pytest.approx(1.0)

    def test_simulation_records_phases(self):
        """HarmonySimulation.run() exposes the per-phase timing hook."""
        from repro.simulation import HarmonyConfig, HarmonySimulation
        from repro.trace import SyntheticTraceConfig, generate_trace

        trace = generate_trace(
            SyntheticTraceConfig(
                horizon_hours=0.25, seed=5, total_machines=60, load_factor=0.3
            )
        )
        result = HarmonySimulation(HarmonyConfig(policy="static"), trace).run()
        for phase in ("classifier_fit", "policy_build", "prepare", "replay"):
            assert phase in result.phase_timings
            assert result.phase_timings[phase] >= 0.0
        # Timings are observability, not behaviour: never in the summary.
        assert "phase_timings" not in result.summary()


class TestThroughputAudit:
    """Suite throughput must not silently divide to zero.

    Regression: the committed scalability baseline reported
    ``tasks_per_second: 0.0`` because relax_solve summaries carry no task
    counts and the suite had no simulate scenarios.  The contract now is
    (a) every simulate-task summary counts its submitted tasks, (b) the
    baseline payload surfaces that count per scenario, and (c) a suite
    containing at least one simulate scenario reports positive throughput.
    """

    @staticmethod
    def _result(name, task, summary, wall=1.0):
        return ScenarioResult(
            scenario=Scenario(name=name, task=task, params={"seed": 0}),
            summary=summary,
            phases={},
            wall_seconds=wall,
        )

    def test_simulate_task_counts_submitted_tasks(self):
        outcome = get_task("simulate")(
            {
                "trace": {"hours": 0.25, "seed": 3, "machines": 60, "load": 0.4},
                "policy": "threshold",
                "engine": "columnar",
            }
        )
        assert outcome["summary"]["tasks_submitted"] > 0

    def test_mixed_suite_reports_positive_throughput(self):
        report = RunnerReport(
            suite="unit",
            workers=1,
            results=(
                self._result("relax_c20_t4_s0", "relax_solve", {"objective": 1.0}),
                self._result("replay_object", "simulate", {"tasks_submitted": 500}),
            ),
            total_wall_seconds=2.0,
        )
        assert report.tasks_per_second() == pytest.approx(250.0)
        payload = baseline_payload(report)
        assert payload["tasks_per_second"] > 0.0

    def test_scenario_entry_surfaces_task_count(self):
        payload = baseline_payload(
            RunnerReport(
                suite="unit",
                workers=1,
                results=(
                    self._result("relax_c20_t4_s0", "relax_solve", {"objective": 1.0}),
                    self._result("replay_object", "simulate", {"tasks_submitted": 500}),
                ),
                total_wall_seconds=2.0,
            )
        )
        by_name = {entry["name"]: entry for entry in payload["scenarios"]}
        assert by_name["replay_object"]["tasks"] == 500
        assert "tasks" not in by_name["relax_c20_t4_s0"]

    def test_replay_pair_in_scalability_suite(self):
        from repro.runner import replay_scenarios

        pair = replay_scenarios()
        assert [s.name for s in pair] == ["replay_object", "replay_columnar"]
        for scenario in pair:
            assert scenario.task == "simulate"
            assert scenario.params["trace"] == pair[0].params["trace"]
        assert pair[0].params["engine"] == "object"
        assert pair[1].params["engine"] == "columnar"
