"""Fabric fault universe: topology model, link faults, partition tolerance.

Unit tests pin the deterministic topology/state model
(:mod:`repro.resilience.fabric`) and the bisect-backed blackout index;
cluster-level tests drive link degradation and partial partitions through
:class:`ClusterSimulator` and assert the exact service-time stretch and
placement-deferral semantics; the end-to-end acceptance test shows the
guarded CBS controller degrading *per cell* under a partial partition —
healthy cells keep the MPC rung while the severed cell is held and then
reconciled on heal — with everything surfaced in
``summary()["resilience"]["fabric"]``.  The differential test proves a
no-op fabric plan reproduces the clean summary digest bit for bit, and
the suite-level tests pin serial/parallel/SIGKILL-resume digest equality
for the ``network_faults`` suite.
"""

from __future__ import annotations

from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.cli import main
from repro.provisioning.controller import ProvisioningDecision
from repro.resilience import (
    FabricState,
    FabricTopology,
    FabricView,
    FaultPlan,
    FlappingLink,
    LinkDegradation,
    MonitoringBlackout,
    PartialPartition,
    build_scenario_plan,
    link_key,
    link_label,
)
from repro.resilience.faults import FaultInjector
from repro.runner import (
    BenchDefaults,
    Scenario,
    ScenarioRunner,
    ScenarioSupervisor,
    SupervisorConfig,
    baseline_payload,
)
from repro.runner.suites import NETWORK_FAULT_SCENARIOS, network_faults_scenarios
from repro.simulation import (
    ClusterConfig,
    ClusterSimulator,
    DegradationLadder,
    HarmonyConfig,
    HarmonySimulation,
)
from repro.trace import SyntheticTraceConfig, generate_trace
from tests.conftest import make_task

# --------------------------------------------------------------------------
# Topology model


class TestLinkKey:
    def test_canonical_order(self):
        assert link_key(3, 1) == (1, 3)
        assert link_key(1, 3) == (1, 3)

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            link_key(2, 2)

    def test_label(self):
        assert link_label((1, 3)) == "1-3"


class TestFabricTopology:
    def test_full_mesh(self):
        topo = FabricTopology.full_mesh((1, 2, 3))
        assert topo.cells == (1, 2, 3)
        assert topo.links == ((1, 2), (1, 3), (2, 3))
        assert topo.ingest_cell == 1

    def test_ingest_defaults_to_smallest_cell(self):
        assert FabricTopology.full_mesh((4, 2, 9)).ingest_cell == 2

    def test_explicit_ingest_cell(self):
        assert FabricTopology.full_mesh((1, 2), ingest_cell=2).ingest_cell == 2

    def test_link_to_unknown_cell_rejected(self):
        with pytest.raises(ValueError):
            FabricTopology(cells=(1, 2), links=((1, 5),), ingest_cell=1)

    def test_unknown_ingest_rejected(self):
        with pytest.raises(ValueError):
            FabricTopology(cells=(1, 2), links=((1, 2),), ingest_cell=7)

    def test_has_link_is_order_insensitive(self):
        topo = FabricTopology.full_mesh((1, 2, 3))
        assert topo.has_link((3, 1))
        assert not topo.has_link((1, 4))


class TestFabricState:
    def test_initially_everything_reachable(self):
        state = FabricState(FabricTopology.full_mesh((1, 2, 3, 4)))
        assert state.reachable_cells() == frozenset({1, 2, 3, 4})
        assert state.unreachable_cells() == ()
        assert not state.partitioned

    def test_severing_all_links_to_a_cell_partitions_it(self):
        state = FabricState(FabricTopology.full_mesh((1, 2, 3, 4)))
        for pair in ((1, 4), (2, 4), (3, 4)):
            state.sever(pair)
        assert state.unreachable_cells() == (4,)
        assert state.partitioned
        state.heal((2, 4))
        assert state.unreachable_cells() == ()

    def test_mesh_survives_single_cut(self):
        # 1-2 severed, but 2 stays reachable via 1-3-2 (or any other cell).
        state = FabricState(FabricTopology.full_mesh((1, 2, 3)))
        state.sever((1, 2))
        assert state.reachable_cells() == frozenset({1, 2, 3})

    def test_heal_underflow_rejected(self):
        state = FabricState(FabricTopology.full_mesh((1, 2)))
        with pytest.raises(ValueError):
            state.heal((1, 2))

    def test_overlapping_cuts_are_counted(self):
        state = FabricState(FabricTopology.full_mesh((1, 2)))
        state.sever((1, 2))
        state.sever((1, 2))
        state.heal((1, 2))
        assert state.link_severed((1, 2))
        state.heal((1, 2))
        assert not state.link_severed((1, 2))

    def test_stretch_compounds_multiplicatively(self):
        state = FabricState(FabricTopology.full_mesh((1, 2)))
        state.degrade((1, 2), 2.0)
        state.degrade((1, 2), 1.5)
        assert state.link_stretch((1, 2)) == pytest.approx(3.0)
        state.restore((1, 2), 2.0)
        assert state.link_stretch((1, 2)) == pytest.approx(1.5)

    def test_restore_without_degrade_rejected(self):
        state = FabricState(FabricTopology.full_mesh((1, 2)))
        with pytest.raises(ValueError):
            state.restore((1, 2), 2.0)

    def test_cell_stretch_takes_the_cheapest_path(self):
        # Direct 1-3 degraded 4x; detour 1-2-3 degraded 1.5 * 1.2 = 1.8x.
        state = FabricState(FabricTopology.full_mesh((1, 2, 3)))
        state.degrade((1, 3), 4.0)
        state.degrade((1, 2), 1.5)
        state.degrade((2, 3), 1.2)
        stretch = state.cell_stretch()
        assert stretch[1] == pytest.approx(1.0)  # ingest cell never stretches
        assert stretch[3] == pytest.approx(1.8)

    def test_degraded_links_lists_cut_and_stretched(self):
        state = FabricState(FabricTopology.full_mesh((1, 2, 3)))
        state.sever((1, 2))
        state.degrade((2, 3), 2.0)
        assert state.degraded_links() == ((1, 2), (2, 3))


# --------------------------------------------------------------------------
# Scenario plans and suite wiring


class TestFabricScenarios:
    @pytest.mark.parametrize(
        "name, fault_type",
        [
            ("link_degradation", LinkDegradation),
            ("partial_partition", PartialPartition),
            ("link_flapping", FlappingLink),
        ],
    )
    def test_named_scenarios_build_fabric_plans(self, name, fault_type):
        plan = build_scenario_plan(name, 7200.0, seed=3)
        assert isinstance(plan, FaultPlan)
        assert len(plan.faults) == 1
        assert isinstance(plan.faults[0], fault_type)

    def test_partition_scenario_severs_cell_4(self):
        plan = build_scenario_plan("partial_partition", 7200.0)
        assert plan.faults[0].cut == ((1, 4), (2, 4), (3, 4))

    def test_suite_covers_every_fabric_scenario(self):
        scenarios = network_faults_scenarios(
            BenchDefaults(hours=0.5, machines=120, seed=11, load=0.4)
        )
        assert [s.name for s in scenarios] == [
            f"net_{name}" for name in NETWORK_FAULT_SCENARIOS
        ]
        assert all(s.task == "simulate" for s in scenarios)

    def test_unknown_link_in_plan_rejected_at_attach(self):
        plan = FaultPlan(seed=0, topology=FabricTopology.full_mesh((1, 2))).with_fault(
            PartialPartition(time=10.0, duration=10.0, cut=((1, 9),))
        )
        injector = FaultInjector(plan)
        stub = SimpleNamespace(
            config=SimpleNamespace(control_interval=300.0),
            schedule_fault=lambda time, payload: None,
            fabric_cells=lambda: [1, 2],
            attach_fabric=lambda fabric: None,
        )
        with pytest.raises(ValueError, match="unknown link"):
            injector.attach(stub)


# --------------------------------------------------------------------------
# Satellite: blackout bisect index replaces the linear scan


class TestBlackoutBisect:
    def _attached(self, plan: FaultPlan) -> FaultInjector:
        injector = FaultInjector(plan)
        injector.attach(
            SimpleNamespace(
                config=SimpleNamespace(control_interval=300.0),
                schedule_fault=lambda time, payload: None,
            )
        )
        return injector

    def test_many_overlapping_windows_match_linear_reference(self):
        plan = FaultPlan(seed=0)
        # 150 windows with deliberately non-monotone extents: window i
        # starts at 37*i and lasts 1..5 intervals, so later-starting
        # windows frequently end before earlier-starting ones.
        for i in range(150):
            plan = plan.with_fault(
                MonitoringBlackout(time=37.0 * i, intervals=1 + (i * 7) % 5)
            )
        injector = self._attached(plan)
        windows = list(injector._blackouts)
        assert len(windows) == 150
        for tick in range(0, 7000, 13):
            now = float(tick)
            linear = any(start <= now < end for start, end in windows)
            assert injector.in_blackout(now) == linear, f"diverged at t={now}"

    def test_boundaries_are_half_open(self):
        injector = self._attached(
            FaultPlan(seed=0).with_fault(MonitoringBlackout(time=600.0, intervals=2))
        )
        assert not injector.in_blackout(599.9)
        assert injector.in_blackout(600.0)
        assert injector.in_blackout(1199.9)
        assert not injector.in_blackout(1200.0)

    def test_no_windows_never_in_blackout(self):
        injector = self._attached(FaultPlan(seed=0))
        assert not injector.in_blackout(0.0)
        assert not injector.in_blackout(1e9)


# --------------------------------------------------------------------------
# Cluster-level semantics: stretch, deferral, heal


def _fabric_cluster(plan, tasks, horizon=3600.0):
    """An AllOn ClusterSimulator over the Table II fleet with ``plan``."""
    from repro.energy import table2_fleet

    fleet = table2_fleet(0.1)

    class AllOn:
        def decide(self, view):
            return ProvisioningDecision(
                time=view.time,
                active={m.platform_id: m.count for m in fleet},
                quotas=None,
            )

    return ClusterSimulator(
        tasks=tasks,
        horizon=horizon,
        machine_models=fleet,
        policy=AllOn(),
        class_of=lambda task: 0,
        config=ClusterConfig(control_interval=300.0, fault_plan=plan),
    )


#: cpu/memory that only the cell-4 platform (DL585 G7) can host.
_CELL4_ONLY = {"cpu": 0.6, "memory": 0.6}


class TestLinkDegradationStretch:
    def test_degraded_path_stretches_service_time_exactly(self):
        # All links into cell 4 carry stretch 2 for the whole run; the
        # task (placeable only in cell 4) must take exactly twice as long.
        plan = FaultPlan(seed=0).with_fault(
            LinkDegradation(
                time=0.5,
                duration=10_000.0,
                links=((1, 4), (2, 4), (3, 4)),
                throughput_factor=0.5,
                latency_factor=1.0,
            )
        )
        task = make_task(job_id=1, submit_time=1.0, duration=1000.0, **_CELL4_ONLY)
        simulator = _fabric_cluster(plan, (task,))
        metrics = simulator.run()
        record = metrics.records[task.uid]
        # Placement waits for the machine boot; the run itself is 2x.
        assert record.finish_time == pytest.approx(record.schedule_time + 2000.0)
        assert metrics.fabric.degraded_link_ticks["1-4"] > 0

    def test_restore_mid_flight_rescales_remaining_work(self):
        plan = FaultPlan(seed=0).with_fault(
            LinkDegradation(
                time=0.5,
                duration=1500.0,  # restored at t=1500.5, task half done
                links=((1, 4), (2, 4), (3, 4)),
                throughput_factor=0.5,
                latency_factor=1.0,
            )
        )
        task = make_task(job_id=1, submit_time=1.0, duration=1000.0, **_CELL4_ONLY)
        simulator = _fabric_cluster(plan, (task,))
        metrics = simulator.run()
        record = metrics.records[task.uid]
        # Stretched (2x) progress until the restore at t=1500.5, then the
        # remaining work units complete at full speed.
        restore = 1500.5
        done_at_restore = (restore - record.schedule_time) / 2.0
        expected = restore + (1000.0 - done_at_restore)
        assert record.finish_time == pytest.approx(expected)

    def test_noop_degradation_changes_nothing(self):
        plan = FaultPlan(seed=0).with_fault(
            LinkDegradation(time=0.5, duration=10_000.0, links=())
        )
        task = make_task(job_id=1, submit_time=1.0, duration=1000.0, **_CELL4_ONLY)
        metrics = _fabric_cluster(plan, (task,)).run()
        record = metrics.records[task.uid]
        assert record.finish_time == pytest.approx(record.schedule_time + 1000.0)
        assert metrics.fabric.degraded_link_ticks == {}


class TestPartialPartitionPlacement:
    def test_unreachable_cell_defers_placement_until_heal(self):
        # Cell 4 is cut from t=100 to t=1000; the task (cell-4-only,
        # arriving at 200) must wait for the heal and the next control
        # tick before it is placed.
        plan = FaultPlan(seed=0).with_fault(
            PartialPartition(
                time=100.0, duration=900.0, cut=((1, 4), (2, 4), (3, 4))
            )
        )
        task = make_task(job_id=1, submit_time=200.0, duration=100.0, **_CELL4_ONLY)
        simulator = _fabric_cluster(plan, (task,))
        metrics = simulator.run()
        record = metrics.records[task.uid]
        assert record.schedule_time is not None
        assert record.schedule_time >= 1000.0
        assert record.finish_time is not None
        assert metrics.fabric.deferred_placements > 0
        assert metrics.fabric.partition_seconds == pytest.approx(900.0)
        assert metrics.fabric.max_unreachable_cells == 1

    def test_reachable_placement_is_not_deferred(self):
        plan = FaultPlan(seed=0).with_fault(
            PartialPartition(
                time=100.0, duration=900.0, cut=((1, 4), (2, 4), (3, 4))
            )
        )
        # Fits the (reachable) small cells: placed immediately on arrival.
        task = make_task(
            job_id=1, submit_time=200.0, duration=100.0, cpu=0.05, memory=0.05
        )
        metrics = _fabric_cluster(plan, (task,)).run()
        assert metrics.records[task.uid].schedule_time == pytest.approx(200.0)


# --------------------------------------------------------------------------
# Ladder: per-cell degradation and deterministic reconciliation


def _fabric_view(unreachable=(), now=600.0):
    return FabricView(
        unreachable=tuple(unreachable),
        last_heard={cell: now for cell in (1, 2)},
        degraded_links=(),
        partitioned=bool(unreachable),
    )


def _ladder_view(time=600.0, fabric=None):
    return SimpleNamespace(
        time=time,
        demand_cpu=10.0,
        demand_memory=8.0,
        powered={1: 5, 2: 3},
        available={1: 10, 2: 10},
        fabric=fabric,
    )


class _FallbackStub:
    def decide(self, time, cpu, memory, powered=None, available=None):
        raise AssertionError("fallback must not run when the primary succeeds")


def _decision(time, active):
    return ProvisioningDecision(time=time, active=active, quotas=None)


class TestLadderPartitionOverlay:
    def test_healthy_cells_keep_mpc_while_partitioned_cell_holds(self):
        ladder = DegradationLadder(_FallbackStub())
        ladder.decide(
            _ladder_view(time=300.0, fabric=_fabric_view()),
            lambda: _decision(300.0, {1: 4, 2: 6}),
        )
        decision = ladder.decide(
            _ladder_view(time=600.0, fabric=_fabric_view(unreachable=(2,))),
            lambda: _decision(600.0, {1: 5, 2: 9}),
        )
        # Cell 1 takes the fresh target, cell 2 is held at last-known-good.
        assert decision.active == {1: 5, 2: 6}
        assert ladder.cell_hold_ticks == {2: 1}
        time, level, reason = ladder.timeline[-1]
        assert (time, level) == (600.0, 2)
        assert "partition_hold: cells [2]" in reason
        assert ladder.cell_timeline[-1] == (600.0, {1: "mpc", 2: "hold"})

    def test_heal_reconciles_to_fresh_decision_and_records_divergence(self):
        ladder = DegradationLadder(_FallbackStub())
        ladder.decide(
            _ladder_view(time=300.0, fabric=_fabric_view()),
            lambda: _decision(300.0, {1: 4, 2: 6}),
        )
        ladder.decide(
            _ladder_view(time=600.0, fabric=_fabric_view(unreachable=(2,))),
            lambda: _decision(600.0, {1: 5, 2: 9}),
        )
        decision = ladder.decide(
            _ladder_view(time=900.0, fabric=_fabric_view()),
            lambda: _decision(900.0, {1: 5, 2: 9}),
        )
        # Fresh control wins on heal; |held 6 - fresh 9| is recorded.
        assert decision.active == {1: 5, 2: 9}
        assert ladder.reconciliations == 1
        assert ladder.reconciliation_divergence == 3
        time, level, reason = ladder.timeline[-1]
        assert level == 0
        assert "heal: cells [2] reconciled" in reason
        assert ladder.cell_timeline[-1] == (900.0, {1: "mpc", 2: "mpc"})

    def test_partition_before_any_decision_holds_powered_count(self):
        ladder = DegradationLadder(_FallbackStub())
        decision = ladder.decide(
            _ladder_view(time=300.0, fabric=_fabric_view(unreachable=(2,))),
            lambda: _decision(300.0, {1: 4, 2: 9}),
        )
        assert decision.active == {1: 4, 2: 3}  # view.powered[2]

    def test_no_fabric_view_means_no_overlay(self):
        ladder = DegradationLadder(_FallbackStub())
        ladder.decide(_ladder_view(fabric=None), lambda: _decision(600.0, {1: 4}))
        assert ladder.cell_timeline == []
        assert ladder.timeline == [(600.0, 0, "")]


# --------------------------------------------------------------------------
# End-to-end acceptance: partial partition under guarded CBS


@pytest.fixture(scope="module")
def fabric_trace():
    return generate_trace(
        SyntheticTraceConfig(
            horizon_hours=1.0, seed=5, total_machines=150, load_factor=0.5
        )
    )


@pytest.fixture(scope="module")
def partition_run(fabric_trace):
    config = HarmonyConfig(
        policy="cbs",
        predictor="ewma",
        guard=True,
        classifier_sample=1000,
        fault_plan=build_scenario_plan(
            "partial_partition", fabric_trace.horizon, seed=3
        ),
    )
    return HarmonySimulation(config, fabric_trace).run()


class TestPartialPartitionAcceptance:
    def test_fabric_block_shows_partition_exposure(self, partition_run):
        fabric = partition_run.summary()["resilience"]["fabric"]
        assert fabric["partition_seconds"] == pytest.approx(900.0)  # horizon/4
        assert fabric["partition_ticks"] > 0
        assert fabric["max_unreachable_cells"] == 1
        assert fabric["cell_hold_ticks"].get("4", 0) > 0
        assert fabric["reconciliations"] >= 1
        assert set(fabric["degraded_link_ticks"]) == {"1-4", "2-4", "3-4"}

    def test_timeline_shows_hold_then_heal(self, partition_run):
        timeline = partition_run.metrics.degradation_timeline
        holds = [e for e in timeline if "partition_hold: cells [4]" in e[2]]
        heals = [e for e in timeline if "heal: cells [4] reconciled" in e[2]]
        assert holds and heals
        assert all(level == 2 for _, level, _ in holds)
        # Ticks outside the partition stay on the full MPC rung.
        clean_ticks = [e for e in timeline if not e[2]]
        assert clean_ticks
        assert all(level == 0 for _, level, _ in clean_ticks)
        # Recovery: the last hold strictly precedes the heal annotation.
        assert holds[-1][0] < heals[0][0]

    def test_no_tasks_lost_to_the_partition(self, partition_run):
        # Partitions defer placements; they never kill running work.  (The
        # tail of late arrivals is unscheduled at the horizon even in a
        # clean run, so require the bulk rather than all.)
        metrics = partition_run.metrics
        assert partition_run.tasks_killed == 0
        assert metrics.num_scheduled >= 0.85 * metrics.num_submitted
        assert partition_run.guard_stats.partition_held_ticks > 0


# --------------------------------------------------------------------------
# Differential: a no-op fabric plan reproduces the clean digest


class TestNoopFabricDifferential:
    def test_noop_plan_matches_clean_digest_bit_for_bit(self, tiny_trace):
        from repro.runner.runner import summary_digest

        base = HarmonyConfig(policy="cbs", predictor="ewma", guard=True)
        clean = HarmonySimulation(base, tiny_trace).run()
        noop_plan = FaultPlan(seed=3).with_fault(
            LinkDegradation(
                time=tiny_trace.horizon / 4,
                duration=tiny_trace.horizon / 3,
                links=(),
            )
        )
        noop = HarmonySimulation(
            replace(base, fault_plan=noop_plan),
            tiny_trace,
            classifier=clean.classifier,
        ).run()
        assert summary_digest(noop.summary()) == summary_digest(clean.summary())


# --------------------------------------------------------------------------
# Suite determinism: serial vs parallel vs SIGKILL-then-resume


_SUITE_DEFAULTS = BenchDefaults(hours=0.5, machines=120, seed=11, load=0.4)

#: Keep retry waits negligible in tests.
_FAST = SupervisorConfig(backoff_base_seconds=0.01, backoff_cap_seconds=0.05)


class TestNetworkFaultsSuiteDeterminism:
    def test_serial_and_parallel_digests_identical(self):
        suite = network_faults_scenarios(_SUITE_DEFAULTS)
        runner = ScenarioRunner("network_faults")
        serial, parallel = runner.verify_determinism(suite, workers=2)
        assert serial.digests() == parallel.digests()

    def test_sigkill_then_resume_matches_uninterrupted_digests(self, tmp_path):
        from repro.resilience import transient_fault_scenario

        suite = network_faults_scenarios(_SUITE_DEFAULTS)
        partition = next(s for s in suite if s.name == "net_partial_partition")
        reference = (
            ScenarioRunner("ref").run([partition], workers=1)[partition.name].digest()
        )

        # The worker is SIGKILLed mid-scenario on its first attempt; the
        # supervisor respawns it and journals the completion.
        flaky = transient_fault_scenario(
            "net_kill", partition, tmp_path / "markers", fail_attempts=1, mode="kill"
        )
        supervisor = ScenarioSupervisor("network_faults", _FAST, journal_dir=tmp_path)
        report = supervisor.run([flaky])
        assert report.quarantined == ()
        assert report["net_kill"].attempts == 2
        assert report["net_kill"].digest() == reference

        # A resumed supervisor replays the journaled result bit-for-bit
        # without re-executing, fabric block included.
        resumed = ScenarioSupervisor("network_faults", _FAST, journal_dir=tmp_path)
        resumed_report = resumed.run([flaky], resume=True)
        assert resumed.executed == []
        assert resumed_report["net_kill"].digest() == reference

    def test_baseline_payload_carries_fabric_block(self):
        suite = network_faults_scenarios(
            _SUITE_DEFAULTS, scenarios=("clean", "partial_partition")
        )
        report = ScenarioRunner("network_faults").run(suite, workers=1)
        payload = baseline_payload(report)
        by_name = {entry["name"]: entry for entry in payload["scenarios"]}
        assert by_name["net_clean"]["fabric"]["partition_seconds"] == 0.0
        assert by_name["net_partial_partition"]["fabric"]["partition_seconds"] > 0.0

    def test_non_simulation_scenarios_have_no_fabric_block(self):
        tiny = Scenario(
            name="relax_tiny",
            task="relax_solve",
            params={"num_classes": 4, "num_types": 2, "W": 2, "seed": 0, "repeats": 1},
        )
        report = ScenarioRunner("unit").run([tiny], workers=1)
        (entry,) = baseline_payload(report)["scenarios"]
        assert "fabric" not in entry


# --------------------------------------------------------------------------
# Satellite: CLI rejects unknown scenarios with a usage hint


class TestResilienceCliValidation:
    def test_unknown_scenario_exits_2_with_hint(self, capsys):
        assert main(["resilience", "--scenario", "frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario 'frobnicate'" in err
        assert "partial_partition" in err  # the hint lists every scenario

    def test_known_fabric_scenario_is_accepted_by_the_parser(self):
        # Parsing alone must not reject it (full runs are covered by the
        # bench suite tests; this guards the argparse wiring).
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["resilience", "--scenario", "partial_partition"]
        )
        assert args.scenario == "partial_partition"
