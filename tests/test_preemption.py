"""Tests for priority preemption in the cluster simulator."""

import pytest

from repro.energy import table2_fleet
from repro.simulation import ClusterConfig, ClusterSimulator
from tests.conftest import make_task
from tests.test_cluster_simulation import AllOnPolicy


def run(tasks, preemption=True, horizon=3600.0, fleet_scale=0.002):
    fleet = table2_fleet(fleet_scale)
    simulator = ClusterSimulator(
        tasks=tuple(sorted(tasks, key=lambda t: t.submit_time)),
        horizon=horizon,
        machine_models=fleet,
        policy=AllOnPolicy(fleet),
        class_of=lambda task: 0,
        config=ClusterConfig(
            control_interval=300.0,
            enable_preemption=preemption,
            preemption_priority_gap=2,
        ),
    )
    metrics = simulator.run()
    return simulator, metrics


def big_task(job_id, submit, priority, duration=2000.0):
    return make_task(
        job_id=job_id, submit_time=submit, duration=duration,
        priority=priority, cpu=0.9, memory=0.9,
    )


class TestPreemption:
    def test_production_evicts_gratis(self):
        # Fleet 0.002: exactly one DL585 can host 0.9/0.9 tasks.
        gratis = big_task(1, submit=400.0, priority=0)
        production = big_task(2, submit=800.0, priority=11)
        simulator, metrics = run([gratis, production])
        assert simulator.tasks_preempted == 1
        prod_record = metrics.records[(2, 0)]
        gratis_record = metrics.records[(1, 0)]
        # Production placed immediately at arrival (after eviction)...
        assert prod_record.schedule_time == pytest.approx(800.0)
        # ...and the gratis task restarted later (or stayed pending).
        assert gratis_record.schedule_time is None or gratis_record.schedule_time > 800.0

    def test_no_preemption_when_disabled(self):
        gratis = big_task(1, submit=400.0, priority=0)
        production = big_task(2, submit=800.0, priority=11)
        simulator, metrics = run([gratis, production], preemption=False)
        assert simulator.tasks_preempted == 0
        prod_record = metrics.records[(2, 0)]
        # Production must wait for the gratis task to finish.
        assert prod_record.schedule_time is None or prod_record.schedule_time > 2000.0

    def test_priority_gap_respected(self):
        """A task only 1 level above cannot preempt with gap=2."""
        low = big_task(1, submit=400.0, priority=9)
        slightly_higher = big_task(2, submit=800.0, priority=10)
        simulator, _ = run([low, slightly_higher])
        assert simulator.tasks_preempted == 0

    def test_equal_priority_never_preempts(self):
        a = big_task(1, submit=400.0, priority=11)
        b = big_task(2, submit=800.0, priority=11)
        simulator, _ = run([a, b])
        assert simulator.tasks_preempted == 0

    def test_minimal_victim_set(self):
        """Eviction removes as few tasks as needed, smallest first."""
        # Four small gratis tasks on the DL585 plus a production task that
        # needs most of the machine.
        smalls = [
            make_task(job_id=i, submit_time=300.0 + i, duration=5000.0,
                      priority=0, cpu=0.2, memory=0.2,
                      allowed_platforms=frozenset({4}))
            for i in range(1, 5)
        ]
        production = make_task(
            job_id=9, submit_time=600.0, duration=1000.0,
            priority=11, cpu=0.5, memory=0.5,
            allowed_platforms=frozenset({4}),
        )
        simulator, metrics = run(smalls + [production])
        # 0.2 free after 4 smalls; need 0.3 more -> evict exactly 2 smalls.
        assert simulator.tasks_preempted == 2
        assert metrics.records[(9, 0)].schedule_time == pytest.approx(600.0)

    def test_evicted_tasks_eventually_finish(self):
        gratis = big_task(1, submit=300.0, priority=0, duration=500.0)
        production = big_task(2, submit=400.0, priority=11, duration=500.0)
        simulator, metrics = run([gratis, production], horizon=7200.0)
        assert metrics.num_finished == 2
        # No double finish: the evicted task's stale finish event is void.
        gratis_record = metrics.records[(1, 0)]
        assert gratis_record.finish_time == pytest.approx(
            gratis_record.schedule_time + 500.0
        )
