"""Tests for the structured error taxonomy (repro.errors).

Pins the stable ``code`` strings, the context-rendering ``__str__``, and
the compatibility MRO that keeps pre-taxonomy ``except RuntimeError`` /
``except ValueError`` call sites working.
"""

import pytest

from repro.errors import (
    CapacityModelError,
    CapacityModelUnstable,
    ContainerSizingError,
    JournalCorrupt,
    NonFiniteSummary,
    ReproError,
    ScenarioCrash,
    ScenarioError,
    ScenarioFailed,
    ScenarioTimeout,
    SolverError,
    SolverInfeasible,
    TraceCorrupt,
    TraceFieldCorrupt,
)


class TestHierarchy:
    def test_scenario_family(self):
        for cls in (ScenarioTimeout, ScenarioCrash, ScenarioFailed):
            assert issubclass(cls, ScenarioError)
            assert issubclass(cls, ReproError)

    def test_solver_infeasible_is_runtime_error(self):
        assert issubclass(SolverInfeasible, SolverError)
        # Legacy call sites caught RuntimeError from the LP layer.
        assert issubclass(SolverInfeasible, RuntimeError)
        with pytest.raises(RuntimeError):
            raise SolverInfeasible("LP failed", status=2)

    def test_non_finite_summary_is_value_error(self):
        assert issubclass(NonFiniteSummary, TraceCorrupt)
        # Legacy call sites caught ValueError from json.dumps.
        assert issubclass(NonFiniteSummary, ValueError)
        with pytest.raises(ValueError):
            raise NonFiniteSummary("NaN in summary")

    def test_journal_corrupt_is_trace_corrupt(self):
        assert issubclass(JournalCorrupt, TraceCorrupt)

    def test_trace_field_corrupt_is_value_error(self):
        assert issubclass(TraceFieldCorrupt, TraceCorrupt)
        # load_tasks_csv used to raise bare ValueError from float().
        with pytest.raises(ValueError):
            raise TraceFieldCorrupt("bad cell", row=3, column="duration", value="x")

    def test_capacity_model_family_is_value_error(self):
        for cls in (CapacityModelUnstable, ContainerSizingError):
            assert issubclass(cls, CapacityModelError)
            assert issubclass(cls, ReproError)
            # Legacy call sites caught ValueError from the queueing/sizing math.
            with pytest.raises(ValueError):
                raise cls("degenerate capacity model")


class TestCodes:
    @pytest.mark.parametrize(
        ("cls", "code"),
        [
            (ReproError, "repro_error"),
            (ScenarioError, "scenario_error"),
            (ScenarioTimeout, "scenario_timeout"),
            (ScenarioCrash, "scenario_crash"),
            (ScenarioFailed, "scenario_failed"),
            (SolverError, "solver_error"),
            (SolverInfeasible, "solver_infeasible"),
            (TraceCorrupt, "trace_corrupt"),
            (NonFiniteSummary, "non_finite_summary"),
            (JournalCorrupt, "journal_corrupt"),
            (TraceFieldCorrupt, "trace_field_corrupt"),
            (CapacityModelError, "capacity_model_error"),
            (CapacityModelUnstable, "capacity_model_unstable"),
            (ContainerSizingError, "container_sizing_error"),
        ],
    )
    def test_stable_code(self, cls, code):
        assert cls.code == code


class TestContext:
    def test_context_kept_and_rendered(self):
        error = ScenarioTimeout(
            "scenario hung", scenario="relax_s0", attempt=2, timeout_seconds=1.5
        )
        assert error.context == {
            "scenario": "relax_s0", "attempt": 2, "timeout_seconds": 1.5
        }
        rendered = str(error)
        assert rendered.startswith("scenario hung (")
        assert "scenario='relax_s0'" in rendered
        assert "attempt=2" in rendered

    def test_plain_message_without_context(self):
        assert str(ReproError("plain")) == "plain"
