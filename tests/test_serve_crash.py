"""Subprocess crash drills for ``repro serve``.

A real daemon process is SIGKILLed mid-run — no atexit handlers, no
graceful shutdown, possibly a torn journal tail — and a ``--restore``
run over the same state directory must finish the stream and report the
exact summary (chain digest included) of a never-interrupted reference
run.  This is the end-to-end version of the in-process round-trip tests
in ``test_serve.py``: it exercises the write-ahead ordering, fsync
placement and torn-tail tolerance that only a hard kill can prove.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]

TRACE_ARGS = ["--hours", "1", "--seed", "13", "--load", "0.8"]


def serve_command(state_dir: Path, *extra: str) -> list[str]:
    return [
        sys.executable, "-m", "repro", "serve",
        "--state-dir", str(state_dir), *TRACE_ARGS, *extra,
    ]


def serve_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def run_serve(state_dir: Path, *extra: str) -> dict:
    result = subprocess.run(
        serve_command(state_dir, *extra),
        env=serve_env(), capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout)


def journaled_ticks(state_dir: Path) -> int:
    """Complete (newline-terminated) tick records durably on disk."""
    journals = list(state_dir.glob("TICKS_*.jsonl"))
    if not journals:
        return 0
    raw = journals[0].read_text(encoding="utf-8", errors="replace")
    return sum(
        1
        for line in raw.split("\n")[:-1]
        if line.strip() and '"kind":"header"' not in line
    )


def kill_after_ticks(state_dir: Path, min_ticks: int, timeout: float = 120.0):
    """Start a paced daemon and SIGKILL it once >= min_ticks are journaled."""
    process = subprocess.Popen(
        serve_command(state_dir, "--tick-delay", "0.05", "--checkpoint-interval", "3"),
        env=serve_env(), stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + timeout
    try:
        while journaled_ticks(state_dir) < min_ticks:
            if process.poll() is not None:
                pytest.fail(
                    "daemon exited before the kill: "
                    + process.stderr.read().decode(errors="replace")
                )
            if time.monotonic() > deadline:
                pytest.fail("timed out waiting for journal progress")
            time.sleep(0.02)
        process.kill()
    finally:
        process.wait()


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """Summary of an uninterrupted run over the same trace and config."""
    return run_serve(
        tmp_path_factory.mktemp("ref"), "--checkpoint-interval", "3"
    )


@pytest.mark.parametrize("kill_at", [1, 4, 9])
def test_sigkill_then_restore_is_bit_identical(tmp_path, reference, kill_at):
    kill_after_ticks(tmp_path, kill_at)
    survived = journaled_ticks(tmp_path)
    assert survived >= kill_at
    summary = run_serve(tmp_path, "--restore", "--checkpoint-interval", "3")
    assert summary["ticks"] == reference["ticks"]
    assert summary == reference, (
        f"restore after SIGKILL at >={survived} journaled ticks diverged"
    )


def test_restore_flag_required_after_crash(tmp_path):
    kill_after_ticks(tmp_path, 2)
    result = subprocess.run(
        serve_command(tmp_path),
        env=serve_env(), capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 1
    assert "--restore" in result.stderr


def test_double_restore_is_idempotent(tmp_path, reference):
    kill_after_ticks(tmp_path, 3)
    first = run_serve(tmp_path, "--restore", "--checkpoint-interval", "3")
    # The first restore ran to stream end; a second restore has nothing
    # left to apply and must report the same terminal summary.
    second = run_serve(tmp_path, "--restore", "--checkpoint-interval", "3")
    assert first == reference
    assert second == reference
