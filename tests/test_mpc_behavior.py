"""Behavioral tests of the MPC look-ahead (Algorithm 1).

These check that the receding-horizon structure actually changes decisions:
anticipating a surge, riding out a dip, and exploiting a price valley.
"""

import numpy as np
import pytest

from repro.provisioning import (
    CbsRelaxSolver,
    ContainerType,
    MachineClass,
    ProvisioningProblem,
    UtilityFunction,
)


def problem(demand, prices, switch_cost=0.05, boot_like_interval=300.0):
    machines = (
        MachineClass(1, "m", (1.0, 1.0), 50, 200.0, (150.0, 40.0), switch_cost),
    )
    containers = (
        ContainerType(0, "c", (0.1, 0.1), UtilityFunction.capped_linear(0.05, 10_000)),
    )
    demand = np.asarray(demand, dtype=float).reshape(-1, 1)
    return ProvisioningProblem(
        machines=machines,
        containers=containers,
        demand=demand,
        prices=np.asarray(prices, dtype=float),
        interval_seconds=boot_like_interval,
    )


class TestSurgeAnticipation:
    def test_lookahead_plans_the_ramp(self):
        """With the surge inside the horizon, the plan ramps machines ahead
        of it; a W=1 controller cannot."""
        surge = [10.0, 10.0, 200.0, 200.0]
        solution = CbsRelaxSolver().solve(problem(surge, [0.1] * 4))
        # Step 2 onward hosts the full surge.
        assert solution.z[2, 0] > solution.z[0, 0]
        assert solution.scheduled(2)[0] == pytest.approx(200.0, abs=1e-6)

    def test_dip_riding_with_switch_costs(self):
        dip = [100.0, 5.0, 100.0]
        # Switch cost moderate: turning on is still worth it, flapping not.
        sticky = CbsRelaxSolver().solve(problem(dip, [0.1] * 3, switch_cost=0.3))
        flappy = CbsRelaxSolver().solve(problem(dip, [0.1] * 3, switch_cost=0.0))
        # Capacity held through the dip instead of cycling off and on.
        assert sticky.z[1, 0] > flappy.z[1, 0] + 1.0
        assert sticky.switch_down.sum() < flappy.switch_down.sum() - 1.0
        # Both serve the surge fully.
        assert sticky.scheduled(2)[0] == pytest.approx(100.0, abs=1e-6)


class TestPriceAwareness:
    def test_marginal_work_shifts_to_cheap_interval(self):
        """Low-value demand is served in the cheap hour, shed in the
        expensive one."""
        machines = (MachineClass(1, "m", (1.0, 1.0), 50, 200.0, (150.0, 40.0), 0.0),)
        containers = (
            # Weight chosen between the cheap-hour and peak-hour energy cost
            # of hosting the container for one 3600 s interval.
            ContainerType(0, "c", (0.2, 0.2), UtilityFunction.capped_linear(0.012, 1000)),
        )
        prob = ProvisioningProblem(
            machines=machines,
            containers=containers,
            demand=np.array([[100.0], [100.0]]),
            prices=np.array([0.05, 0.50]),
            interval_seconds=3600.0,
        )
        solution = CbsRelaxSolver().solve(prob)
        cheap_served = solution.scheduled(0)[0]
        pricey_served = solution.scheduled(1)[0]
        assert cheap_served > pricey_served

    def test_uniform_prices_uniform_plan(self):
        solution = CbsRelaxSolver().solve(problem([50.0, 50.0], [0.1, 0.1]))
        assert solution.z[0, 0] == pytest.approx(solution.z[1, 0], abs=1e-6)


class TestHorizonConsistency:
    def test_first_step_stable_under_horizon_extension(self):
        """Appending identical future steps should not change step 0 much
        (receding-horizon consistency on a stationary profile)."""
        short = CbsRelaxSolver().solve(problem([50.0, 50.0], [0.1] * 2))
        long = CbsRelaxSolver().solve(problem([50.0] * 6, [0.1] * 6))
        assert short.z[0, 0] == pytest.approx(long.z[0, 0], rel=0.05)
