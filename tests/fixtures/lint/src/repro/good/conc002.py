"""Good: spawn workers communicate through params and returns only."""

from multiprocessing import get_context


def run_shard(item):
    name, count = item
    return name, count + 1


def run_all(counts: dict):
    ctx = get_context("spawn")
    with ctx.Pool(2) as pool:
        return dict(pool.map(run_shard, sorted(counts.items())))
