"""DET003-clean: set iteration goes through sorted()."""


def emit(rows):
    for label in sorted({"b", "a", "c"}):
        print(label)
    names = [r for r in sorted(set(rows))]
    return sorted({row.key for row in rows}), names
