"""DET004-clean: float comparison via tolerance."""

import math


def classify(scv: float) -> str:
    if math.isclose(scv, 1.0, rel_tol=1e-9):
        return "exponential"
    if scv > 1e-12:
        return "general"
    return "deterministic"
