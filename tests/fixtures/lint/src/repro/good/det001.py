"""DET001-clean: every generator is explicitly seeded."""

import random

import numpy as np


def jitter(seed: int) -> float:
    rng = random.Random(seed)
    return rng.random()


def seeded_rng(seed: int):
    return np.random.default_rng(seed)


def seeded_rng_keyword(config):
    return np.random.default_rng(seed=config.seed)
