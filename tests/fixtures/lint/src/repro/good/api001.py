"""API001-clean: None defaults, constructed inside the function."""


def accumulate(value, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(value)
    return bucket


def lookup(key, *, cache=None):
    return (cache or {}).get(key)
