"""ERR001-clean: broad excepts that re-raise, examine, or map the failure."""

from repro.errors import SolverError


def load(path: str, log):
    try:
        with open(path) as handle:
            return handle.read()
    except Exception as exc:
        log.append(f"{type(exc).__name__}: {exc}")
        return None


def decide(policy, view):
    try:
        return policy.decide(view)
    except Exception as exc:
        raise SolverError("decide failed", stage="decide") from exc


def narrow(callback) -> bool:
    try:
        callback()
        return True
    except (ValueError, OSError):
        return False
