"""PCK001-clean: module-level callables at spawn entry points."""

from multiprocessing import Process


def task(x):
    return x + 1


def run(pool, items):
    pool.map(task, items)
    worker = Process(target=task, args=(0,))
    worker.start()
    return pool.starmap(task, [(i,) for i in items])
