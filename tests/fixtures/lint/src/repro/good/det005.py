"""DET005-clean: filesystem listings wrapped in sorted()."""

import glob
import os
from pathlib import Path


def discover(root: str) -> list[str]:
    found = []
    for name in sorted(os.listdir(root)):
        found.append(name)
    found.extend(sorted(glob.glob("*.json")))
    found.extend(str(p) for p in sorted(Path(root).glob("*.csv")))
    return found
