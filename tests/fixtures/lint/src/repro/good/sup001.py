"""SUP001-clean: the suppression below matches a real finding, so it is used."""


def is_sentinel(value: float) -> bool:
    # The sentinel is assigned verbatim, never computed, so exact
    # equality is intentional here.
    return value == 1.5  # repro: noqa[DET004]
