"""NUM001-clean: every risky input is examined before use."""

import math


def inverse_rate(rate: float) -> float:
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    return 1.0 / rate


def log_load(load: float) -> float:
    if not math.isfinite(load) or load <= 0:
        raise ValueError(f"load must be finite and positive, got {load}")
    return math.log(load)
