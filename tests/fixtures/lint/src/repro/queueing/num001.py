"""NUM001 triggers: unguarded division/log in a numeric hot path."""

import math


def inverse_rate(rate: float) -> float:
    return 1.0 / rate


def log_load(load: float) -> float:
    return math.log(load)
