"""SUP001 triggers: suppressions that name unknown codes or match nothing."""

ANSWER = 42  # repro: noqa[DET004]
TOTAL = ANSWER + 1  # repro: noqa[ZZZ999]
LABEL = "clean line"  # repro: noqa
