"""DET001 triggers: global / unseeded randomness."""

import random

import numpy as np


def jitter() -> float:
    return random.random() + random.uniform(0.0, 1.0)


def make_generator():
    return random.Random()


def legacy_draw():
    return np.random.rand(4)


def unseeded_rng():
    return np.random.default_rng()
