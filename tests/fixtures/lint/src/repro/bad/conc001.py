"""Bad: unpicklable callables cross the spawn boundary (CONC001)."""

from multiprocessing import get_context


class ShardRunner:
    def __init__(self, shards):
        self.shards = shards

    def work(self, shard):
        return shard * 2

    def run_all(self):
        ctx = get_context("spawn")
        with ctx.Pool(2) as pool:
            return pool.map(self.work, self.shards)


def run_with_lambda_local(shards):
    scale = lambda shard: shard * 2  # noqa: E731 (deliberate fixture)
    ctx = get_context("spawn")
    with ctx.Pool(2) as pool:
        return pool.map(scale, shards)
