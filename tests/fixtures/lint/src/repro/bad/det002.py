"""DET002 triggers: wall-clock reads outside the timing allowlist."""

import datetime
import time


def stamp() -> float:
    return time.time()


def today() -> str:
    return datetime.datetime.now().isoformat()
