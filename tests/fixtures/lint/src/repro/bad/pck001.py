"""PCK001 triggers: unpicklable callables at spawn entry points."""

from multiprocessing import Process


def run(pool, items):
    def local_task(x):
        return x + 1

    pool.map(local_task, items)
    worker = Process(target=lambda: None)
    worker.start()
    return pool.map(lambda x: x * 2, items)
