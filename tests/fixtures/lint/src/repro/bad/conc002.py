"""Bad: spawn worker mutates a module-global registry (CONC002).

Each spawned worker mutates its *own* copy of ``_COUNTS``; the parent
never sees the updates and the state silently diverges across processes.
"""

from multiprocessing import get_context

_COUNTS: dict = {}


def _bump(name):
    _COUNTS[name] = _COUNTS.get(name, 0) + 1


def run_shard(name):
    _bump(name)
    return name


def run_all(names):
    ctx = get_context("spawn")
    with ctx.Pool(2) as pool:
        return pool.map(run_shard, names)
