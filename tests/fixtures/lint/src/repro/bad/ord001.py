"""Bad: unsorted set / dict.keys() iteration on a digest path (ORD001)."""

import json


def canonical_json(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def _labels(tags: set) -> list:
    ordered = []
    for tag in tags:
        ordered.append(str(tag))
    return ordered


def _key_order(counts: dict) -> list:
    names = []
    for name in counts.keys():
        names.append(name)
    return names


def render(tags: set) -> str:
    return canonical_json({"labels": _labels(tags)})


def summarize(counts: dict) -> str:
    return canonical_json({"keys": _key_order(counts)})
