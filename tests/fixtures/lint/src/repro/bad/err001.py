"""ERR001 triggers: broad excepts that swallow the failure."""


def load(path: str):
    try:
        with open(path) as handle:
            return handle.read()
    except Exception:
        return None


def tick(callback) -> bool:
    try:
        callback()
        return True
    except (ValueError, Exception):
        return False
