"""DET004 triggers: exact float equality outside tests."""


def classify(scv: float) -> str:
    if scv == 1.0:
        return "exponential"
    if scv != 0.0:
        return "general"
    return "deterministic"
