"""DET005 triggers: filesystem-order iteration without sorted()."""

import glob
import os
from pathlib import Path


def discover(root: str) -> list[str]:
    found = []
    for name in os.listdir(root):
        found.append(name)
    found.extend(glob.glob("*.json"))
    found.extend(str(p) for p in Path(root).glob("*.csv"))
    return found
