"""DET003 triggers: unsorted iteration over set expressions."""


def emit(rows):
    for label in {"b", "a", "c"}:
        print(label)
    names = [r.name for r in set(rows)]
    return list({row.key for row in rows}), names
