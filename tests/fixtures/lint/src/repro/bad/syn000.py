"""SYN000 trigger: a file that does not parse."""


def broken(:
    return None
