"""API001 triggers: mutable default arguments."""


def accumulate(value, bucket=[]):
    bucket.append(value)
    return bucket


def lookup(key, *, cache={}):
    return cache.get(key)


def fresh(items=list()):
    return items
