"""DET002-clean: wall-clock reads are allowed under runner/."""

import time


def measure(work) -> float:
    started = time.perf_counter()
    work()
    return time.perf_counter() - started
