"""DET006-clean: pacing and randomness arrive through injected seams."""

from repro.serve.clock import Clock


def paced_backoff(clock: Clock, rng, attempt: int) -> float:
    delay = rng.uniform(0.0, 0.1) * attempt
    clock.sleep(delay)
    return delay
