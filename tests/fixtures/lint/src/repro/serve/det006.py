"""DET006: ad-hoc RNG and raw sleep inside the serve control plane.

The RNG is seeded (so DET001 stays quiet) and ``time.sleep`` is not a
DET002 clock read — exactly DET006 fires here.
"""

import random
import time


def jittered_backoff(attempt: int) -> float:
    rng = random.Random(7)
    delay = rng.uniform(0.0, 0.1) * attempt
    time.sleep(delay)
    return delay
