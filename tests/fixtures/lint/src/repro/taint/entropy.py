"""Bad: os.urandom entropy crosses a module boundary into a digest.

The FLOW001 pair: the nondeterministic *source* lives here, the digest
*sink* lives in :mod:`repro.taint.ledger`.  Linted alone this file is
clean — only the whole-program pass connects the two.
"""

import os

from repro.taint.ledger import record_entry


def stamp_entry(payload: dict) -> str:
    nonce = os.urandom(8).hex()
    return record_entry(dict(payload, nonce=nonce))
