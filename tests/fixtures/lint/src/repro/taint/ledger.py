"""Digest-sink half of the FLOW001 fixture pair (clean on its own)."""

import json


def canonical_json(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def record_entry(entry: dict) -> str:
    return canonical_json(entry)
