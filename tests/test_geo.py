"""Tests for the geo-distributed provisioning extension."""

import numpy as np
import pytest

from repro.energy import constant_price, table2_fleet
from repro.provisioning import (
    CbsRelaxSolver,
    DataCenter,
    auto_offsets,
    build_geo_problem,
    machines_by_dc,
)


@pytest.fixture(scope="module")
def two_dcs():
    fleet = table2_fleet(0.02)
    return auto_offsets(
        [
            DataCenter(name="cheap", fleet=fleet, price=constant_price(0.05)),
            DataCenter(name="pricey", fleet=fleet, price=constant_price(0.20)),
        ]
    )


@pytest.fixture(scope="module")
def geo_problem(two_dcs, manager):
    class_ids = sorted(manager.specs)
    demand = np.full((1, len(class_ids)), 2.0)
    return build_geo_problem(
        two_dcs, manager.specs, demand, interval_seconds=300.0
    )


class TestDataCenter:
    def test_validation(self):
        with pytest.raises(ValueError):
            DataCenter(name="x", fleet=())
        with pytest.raises(ValueError):
            DataCenter(name="x", fleet=table2_fleet(0.02), platform_offset=-1)

    def test_auto_offsets_distinct(self, two_dcs):
        ids_a = set(two_dcs[0].platform_ids())
        ids_b = set(two_dcs[1].platform_ids())
        assert not (ids_a & ids_b)


class TestBuildGeoProblem:
    def test_machine_classes_from_both_sites(self, geo_problem, two_dcs):
        assert len(geo_problem.machines) == len(two_dcs[0].fleet) * 2
        names = {m.name.split("/")[0] for m in geo_problem.machines}
        assert names == {"cheap", "pricey"}

    def test_price_multipliers_reflect_tariffs(self, geo_problem):
        multipliers = {
            m.name.split("/")[0]: m.price_multiplier for m in geo_problem.machines
        }
        # Reference price = mean(0.05, 0.20) = 0.125.
        assert multipliers["cheap"] == pytest.approx(0.05 / 0.125)
        assert multipliers["pricey"] == pytest.approx(0.20 / 0.125)

    def test_duplicate_offsets_rejected(self, manager):
        fleet = table2_fleet(0.02)
        dcs = [
            DataCenter(name="a", fleet=fleet),
            DataCenter(name="b", fleet=fleet),
        ]
        class_ids = sorted(manager.specs)
        with pytest.raises(ValueError, match="distinct platform offsets"):
            build_geo_problem(dcs, manager.specs, np.ones((1, len(class_ids))), 300.0)

    def test_demand_shape_validated(self, two_dcs, manager):
        with pytest.raises(ValueError):
            build_geo_problem(two_dcs, manager.specs, np.ones((1, 2)), 300.0)


class TestGeoOptimization:
    def test_load_follows_cheap_energy(self, geo_problem):
        solution = CbsRelaxSolver().solve(geo_problem)
        by_dc = machines_by_dc(geo_problem, solution.z[0])
        assert by_dc.get("cheap", 0.0) > 0
        # The pricey site hosts (essentially) nothing while the cheap one
        # has capacity to spare.
        assert by_dc.get("pricey", 0.0) <= 0.05 * by_dc["cheap"] + 1e-6

    def test_locality_pins_class_to_site(self, two_dcs, manager):
        class_ids = sorted(manager.specs)
        pinned = class_ids[0]
        demand = np.zeros((1, len(class_ids)))
        demand[0, 0] = 5.0
        problem = build_geo_problem(
            two_dcs,
            manager.specs,
            demand,
            interval_seconds=300.0,
            locality={pinned: frozenset({"pricey"})},
        )
        solution = CbsRelaxSolver().solve(problem)
        by_dc = machines_by_dc(problem, solution.z[0])
        # Despite the tariff, the pinned demand lands on the pricey site.
        assert by_dc.get("pricey", 0.0) > 0

    def test_spillover_when_cheap_site_full(self, manager):
        tiny_fleet = table2_fleet(0.002)  # 14+3+2+1 machines
        dcs = auto_offsets(
            [
                DataCenter(name="cheap", fleet=tiny_fleet, price=constant_price(0.05)),
                DataCenter(name="pricey", fleet=tiny_fleet, price=constant_price(0.20)),
            ]
        )
        class_ids = sorted(manager.specs)
        demand = np.full((1, len(class_ids)), 10.0)
        problem = build_geo_problem(dcs, manager.specs, demand, 300.0)
        solution = CbsRelaxSolver().solve(problem)
        by_dc = machines_by_dc(problem, solution.z[0])
        assert by_dc.get("pricey", 0.0) > 0  # overflow crosses sites
