"""Additional clustering coverage: determinism, k-selection, quality."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering import KMeans, select_k_elbow, silhouette_score
from repro.clustering.kmeans import kmeans_plus_plus_init


class TestKMeansPlusPlus:
    def test_seeds_are_data_points(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(50, 2))
        centroids = kmeans_plus_plus_init(data, 4, np.random.default_rng(1))
        for centroid in centroids:
            assert any(np.allclose(centroid, point) for point in data)

    def test_spreads_over_clusters(self):
        """k-means++ picks one seed per well-separated blob (w.h.p.)."""
        rng = np.random.default_rng(0)
        centers = np.array([[0, 0], [100, 0], [0, 100], [100, 100]], dtype=float)
        data = np.vstack([rng.normal(c, 0.1, size=(25, 2)) for c in centers])
        hits = 0
        for seed in range(10):
            centroids = kmeans_plus_plus_init(data, 4, np.random.default_rng(seed))
            nearest = {
                int(np.argmin(np.linalg.norm(centers - c, axis=1))) for c in centroids
            }
            hits += len(nearest) == 4
        assert hits >= 9

    def test_degenerate_all_identical(self):
        data = np.ones((10, 2))
        centroids = kmeans_plus_plus_init(data, 3, np.random.default_rng(0))
        assert centroids.shape == (3, 2)


class TestKMeansQuality:
    def test_more_restarts_never_worse(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(200, 4))
        single = KMeans(k=6, n_init=1, seed=9).fit(data).inertia
        multi = KMeans(k=6, n_init=6, seed=9).fit(data).inertia
        assert multi <= single + 1e-9

    def test_one_dimensional_input(self):
        data = np.concatenate([np.zeros(20), np.ones(20) * 10])
        result = KMeans(k=2, seed=0).fit(data)
        centers = sorted(float(c) for c in result.centroids.ravel())
        assert centers[0] == pytest.approx(0.0, abs=0.1)
        assert centers[1] == pytest.approx(10.0, abs=0.1)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_fit_deterministic_per_seed(self, seed):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(60, 2))
        a = KMeans(k=3, seed=seed).fit(data)
        b = KMeans(k=3, seed=seed).fit(data)
        assert np.array_equal(a.labels, b.labels)
        assert a.inertia == b.inertia


class TestSelectionEdges:
    def test_k_max_one(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(30, 2))
        k, curve = select_k_elbow(data, k_max=1)
        assert k == 1
        assert set(curve) == {1}

    def test_fewer_points_than_k_max(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        k, curve = select_k_elbow(data, k_max=10)
        assert k <= 3

    def test_invalid_k_max(self):
        with pytest.raises(ValueError):
            select_k_elbow(np.zeros((5, 2)), k_max=0)

    def test_silhouette_subsampling_deterministic(self):
        rng = np.random.default_rng(1)
        data = np.vstack([
            rng.normal(0, 1, size=(2000, 2)),
            rng.normal(20, 1, size=(2000, 2)),
        ])
        labels = (data[:, 0] > 10).astype(int)
        a = silhouette_score(data, labels, sample_cap=500, seed=3)
        b = silhouette_score(data, labels, sample_cap=500, seed=3)
        assert a == b
        assert a > 0.8
