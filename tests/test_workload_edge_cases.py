"""Edge-case tests across the pipeline: empty groups, degenerate inputs."""

import numpy as np
import pytest

from repro.classification import ClassifierConfig, TaskClassifier
from repro.containers import ContainerManager
from repro.energy import table2_fleet
from repro.provisioning import HarmonyController, ControllerConfig
from repro.forecasting import EwmaPredictor
from repro.trace import MachineType, Trace
from tests.conftest import make_task


class TestSingleGroupWorkload:
    """A trace with only one priority group must flow end to end."""

    @pytest.fixture(scope="class")
    def gratis_only_classifier(self):
        tasks = [
            make_task(job_id=i, duration=50.0 + (i % 7) * 400,
                      cpu=0.01 + (i % 3) * 0.05, memory=0.02, priority=0)
            for i in range(120)
        ]
        return TaskClassifier(ClassifierConfig(seed=1)).fit(tasks)

    def test_only_gratis_classes(self, gratis_only_classifier):
        groups = {leaf.group.name for leaf in gratis_only_classifier.classes}
        assert groups == {"GRATIS"}

    def test_classify_foreign_group_raises(self, gratis_only_classifier):
        production_task = make_task(priority=11)
        with pytest.raises(KeyError):
            gratis_only_classifier.classify(production_task)

    def test_controller_works_single_group(self, gratis_only_classifier):
        manager = ContainerManager(gratis_only_classifier)
        controller = HarmonyController(
            table2_fleet(0.05),
            manager,
            ControllerConfig(predictor_factory=lambda: EwmaPredictor()),
        )
        controller.prime({cid: 2.0 for cid in controller.class_ids})
        decision = controller.decide(now=0.0)
        assert decision.total_active() > 0


class TestUniformWorkload:
    """All tasks identical: one class, everything still works."""

    def test_single_point_classes(self):
        tasks = [
            make_task(job_id=i, duration=100.0, cpu=0.05, memory=0.05, priority=4)
            for i in range(60)
        ]
        classifier = TaskClassifier(ClassifierConfig(seed=0)).fit(tasks)
        assert classifier.num_classes >= 1
        for leaf in classifier.classes:
            assert leaf.cpu_std == pytest.approx(0.0, abs=1e-12)
        manager = ContainerManager(classifier)
        spec = next(iter(manager.specs.values()))
        # Zero variance -> container exactly at the mean.
        assert spec.cpu == pytest.approx(0.05)

    def test_scv_zero_for_constant_durations(self):
        tasks = [
            make_task(job_id=i, duration=100.0, cpu=0.05, memory=0.05, priority=4)
            for i in range(30)
        ]
        classifier = TaskClassifier(ClassifierConfig(seed=0)).fit(tasks)
        for leaf in classifier.classes:
            assert leaf.duration_scv == pytest.approx(0.0, abs=1e-12)


class TestEmptyishTraces:
    def test_trace_with_no_tasks(self):
        machines = (MachineType(platform_id=1, cpu_capacity=1.0,
                                memory_capacity=1.0, count=2),)
        trace = Trace(machine_types=machines, tasks=(), horizon=100.0)
        assert trace.num_tasks == 0
        assert trace.num_jobs == 0
        assert list(trace.jobs()) == []

    def test_simulator_with_no_tasks(self):
        from repro.simulation import ClusterSimulator, ClusterConfig
        from tests.test_cluster_simulation import AllOnPolicy

        fleet = table2_fleet(0.02)
        simulator = ClusterSimulator(
            tasks=(), horizon=900.0, machine_models=fleet,
            policy=AllOnPolicy(fleet), class_of=lambda t: 0,
            config=ClusterConfig(control_interval=300.0),
        )
        metrics = simulator.run()
        assert metrics.num_submitted == 0
        assert simulator.energy.total_kwh > 0  # idle fleet still burns power


class TestControllerDegenerateInputs:
    def test_all_zero_everything(self, classifier):
        manager = ContainerManager(classifier)
        controller = HarmonyController(
            table2_fleet(0.05), manager,
            ControllerConfig(predictor_factory=lambda: EwmaPredictor()),
        )
        decision = controller.decide(
            now=0.0, backlog={}, running={}, running_by_platform={}, powered={}
        )
        assert decision.total_active() == 0
        assert sum(decision.demand.values()) == 0

    def test_huge_backlog_caps_at_availability(self, classifier):
        manager = ContainerManager(classifier)
        fleet = table2_fleet(0.01)
        controller = HarmonyController(
            fleet, manager,
            ControllerConfig(predictor_factory=lambda: EwmaPredictor()),
        )
        cid = controller.class_ids[0]
        decision = controller.decide(now=0.0, backlog={cid: 100_000})
        for model in fleet:
            assert decision.active[model.platform_id] <= model.count
