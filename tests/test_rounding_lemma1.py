"""Randomized Lemma 1 check: First-Fit always places the guaranteed share.

Lemma 1: given a fractional CBS-RELAX solution assigning ``x*_{m,n}``
containers and ``z*_m`` machines to type m, first-fit packing places at
least ``floor(x*_{m,n} / (2|R|))`` containers of *every* type n into
``floor(z*_m) + 1`` machines.  The bench ``bench_rounding_guarantee``
reports how far the practical rounder beats the bound; this tier-1 test
fuzzes the guarantee itself over random fleets, container mixes and
demand levels — every machine class of every instance must pack its
scaled counts with nothing left over.
"""

import numpy as np
import pytest

from repro.provisioning import (
    CbsRelaxSolver,
    ContainerType,
    FirstFitRounder,
    MachineClass,
    ProvisioningProblem,
    UtilityFunction,
    first_fit_pack,
)

NUM_TRIALS = 12


def fuzzed_problem(rng):
    """A random instance: 2-3 machine classes, 2-6 container types."""
    num_machines = int(rng.integers(2, 4))
    machines = tuple(
        MachineClass(
            platform_id=m + 1,
            name=f"m{m}",
            capacity=(
                float(rng.uniform(0.2, 1.0)),
                float(rng.uniform(0.2, 1.0)),
            ),
            available=int(rng.integers(3, 25)),
            idle_watts=float(rng.uniform(50, 250)),
            alpha_watts=(float(rng.uniform(20, 150)), float(rng.uniform(5, 50))),
            switch_cost=0.0,
        )
        for m in range(num_machines)
    )
    num_containers = int(rng.integers(2, 7))
    containers = tuple(
        ContainerType(
            class_id=n,
            name=f"c{n}",
            # Sizes up to half the smallest capacity dimension, so every
            # type fits *some* machine (Lemma 1 presumes feasible x*).
            size=(float(rng.uniform(0.01, 0.4)), float(rng.uniform(0.01, 0.4))),
            utility=UtilityFunction.capped_linear(float(rng.uniform(0.01, 0.1)), 1000),
        )
        for n in range(num_containers)
    )
    demand = rng.uniform(0.5, 50, size=(1, num_containers))
    return ProvisioningProblem(
        machines=machines,
        containers=containers,
        demand=demand,
        prices=np.array([0.1]),
        interval_seconds=300.0,
    )


@pytest.mark.parametrize("trial", range(NUM_TRIALS))
def test_lemma1_guarantee_on_fuzzed_instances(trial):
    rng = np.random.default_rng(9000 + trial)
    problem = fuzzed_problem(rng)
    solution = CbsRelaxSolver().solve(problem)
    rounder = FirstFitRounder()
    scaled = rounder.lemma1_scaled_counts(problem, solution)

    for m, machine in enumerate(problem.machines):
        budget = int(np.floor(solution.z[0, m])) + 1
        machines_used, leftover = first_fit_pack(
            scaled[m],
            [c.size for c in problem.containers],
            machine.capacity,
            max_machines=budget,
        )
        assert leftover.sum() == 0, (
            f"trial {trial}, machine class {m}: Lemma 1 violated — "
            f"{leftover.sum()} of {scaled[m].sum()} scaled containers left "
            f"over in floor(z*)+1 = {budget} machines (z* = {solution.z[0, m]:.3f})"
        )
        assert len(machines_used) <= budget
        # Packed machines never exceed capacity in any dimension.
        for packed in machines_used:
            assert (packed.used <= np.asarray(machine.capacity) + 1e-9).all()


def test_scaled_counts_are_the_lemma_fraction():
    """lemma1_scaled_counts really is floor(x* / (2|R|)) elementwise."""
    rng = np.random.default_rng(77)
    problem = fuzzed_problem(rng)
    solution = CbsRelaxSolver().solve(problem)
    scaled = FirstFitRounder().lemma1_scaled_counts(problem, solution)
    two_r = 2 * problem.num_resources  # |R| = resource dimensions (CPU, mem)
    expected = np.floor(solution.x[0] / two_r).astype(int)
    assert (scaled == expected).all()


def test_practical_rounder_beats_lemma_bound_on_average():
    """The FFD rounder places far more than the worst-case 1/(2|R|)."""
    rng = np.random.default_rng(424242)
    rounder = FirstFitRounder()
    solver = CbsRelaxSolver()
    ratios = []
    for _ in range(6):
        problem = fuzzed_problem(rng)
        solution = solver.solve(problem)
        plan = rounder.round(problem, solution)
        ratios.append(plan.placement_ratio(solution.scheduled(0)))
    assert float(np.mean(ratios)) > 0.5
