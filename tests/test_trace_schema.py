"""Unit tests for the trace schema (tasks, jobs, machines, traces)."""

import math

import pytest

from repro.trace import (
    Job,
    MachineType,
    PriorityGroup,
    Task,
    Trace,
)
from tests.conftest import make_task


class TestPriorityGroup:
    def test_gratis_range(self):
        assert PriorityGroup.from_priority(0) is PriorityGroup.GRATIS
        assert PriorityGroup.from_priority(1) is PriorityGroup.GRATIS

    def test_other_range(self):
        for p in range(2, 9):
            assert PriorityGroup.from_priority(p) is PriorityGroup.OTHER

    def test_production_range(self):
        for p in range(9, 12):
            assert PriorityGroup.from_priority(p) is PriorityGroup.PRODUCTION

    @pytest.mark.parametrize("priority", [-1, 12, 100])
    def test_out_of_range_rejected(self, priority):
        with pytest.raises(ValueError):
            PriorityGroup.from_priority(priority)

    def test_priorities_property_partitions_all_12(self):
        seen = []
        for group in PriorityGroup:
            seen.extend(group.priorities)
        assert sorted(seen) == list(range(12))

    def test_labels_match_paper(self):
        assert PriorityGroup.GRATIS.label == "gratis (0-1)"
        assert PriorityGroup.PRODUCTION.label == "production (9-11)"


class TestTask:
    def test_valid_task(self):
        task = make_task(cpu=0.5, memory=0.25, priority=9)
        assert task.priority_group is PriorityGroup.PRODUCTION
        assert task.demand == (0.5, 0.25)
        assert task.uid == (1, 0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cpu": 0.0},
            {"cpu": 1.5},
            {"memory": -0.1},
            {"duration": 0.0},
            {"duration": math.inf},
            {"submit_time": -1.0},
            {"priority": 13},
            {"scheduling_class": 7},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make_task(**kwargs)

    def test_fits_on_capacity(self):
        machine = MachineType(platform_id=1, cpu_capacity=0.5, memory_capacity=0.5, count=1)
        assert make_task(cpu=0.5, memory=0.5).fits_on(machine)
        assert not make_task(cpu=0.6, memory=0.1).fits_on(machine)
        assert not make_task(cpu=0.1, memory=0.6).fits_on(machine)

    def test_fits_on_respects_platform_constraint(self):
        machine = MachineType(platform_id=3, cpu_capacity=1.0, memory_capacity=1.0, count=1)
        constrained = make_task(allowed_platforms=frozenset({1, 2}))
        unconstrained = make_task()
        assert not constrained.fits_on(machine)
        assert unconstrained.fits_on(machine)

    def test_with_submit_time_copies(self):
        task = make_task(submit_time=5.0)
        moved = task.with_submit_time(50.0)
        assert moved.submit_time == 50.0
        assert task.submit_time == 5.0
        assert moved.uid == task.uid


class TestJob:
    def test_job_aggregates(self):
        tasks = tuple(make_task(job_id=7, index=i, submit_time=10.0 + i) for i in range(3))
        job = Job(job_id=7, tasks=tasks)
        assert job.num_tasks == 3
        assert job.submit_time == 10.0

    def test_job_rejects_foreign_tasks(self):
        with pytest.raises(ValueError):
            Job(job_id=7, tasks=(make_task(job_id=8),))

    def test_job_rejects_empty(self):
        with pytest.raises(ValueError):
            Job(job_id=7, tasks=())


class TestMachineType:
    def test_capacity_bounds(self):
        with pytest.raises(ValueError):
            MachineType(platform_id=1, cpu_capacity=0.0, memory_capacity=0.5, count=1)
        with pytest.raises(ValueError):
            MachineType(platform_id=1, cpu_capacity=1.2, memory_capacity=0.5, count=1)
        with pytest.raises(ValueError):
            MachineType(platform_id=1, cpu_capacity=0.5, memory_capacity=0.5, count=-1)


class TestTrace:
    def _machines(self):
        return (MachineType(platform_id=1, cpu_capacity=1.0, memory_capacity=1.0, count=4),)

    def test_from_tasks_sorts_and_infers_horizon(self):
        tasks = [make_task(job_id=i, submit_time=t) for i, t in enumerate((30.0, 10.0, 20.0))]
        trace = Trace.from_tasks(self._machines(), tasks)
        times = [t.submit_time for t in trace.tasks]
        assert times == sorted(times)
        assert trace.horizon == pytest.approx(31.0)

    def test_unsorted_tasks_rejected_by_constructor(self):
        tasks = (make_task(job_id=1, submit_time=30.0), make_task(job_id=2, submit_time=10.0))
        with pytest.raises(ValueError):
            Trace(machine_types=self._machines(), tasks=tasks, horizon=100.0)

    def test_task_after_horizon_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                machine_types=self._machines(),
                tasks=(make_task(submit_time=200.0),),
                horizon=100.0,
            )

    def test_duplicate_platform_ids_rejected(self):
        machines = (
            MachineType(platform_id=1, cpu_capacity=1.0, memory_capacity=1.0, count=1),
            MachineType(platform_id=1, cpu_capacity=0.5, memory_capacity=0.5, count=1),
        )
        with pytest.raises(ValueError):
            Trace(machine_types=machines, tasks=(), horizon=10.0)

    def test_window_rebases_times(self):
        tasks = [make_task(job_id=i, submit_time=float(t)) for i, t in enumerate((5, 15, 25))]
        trace = Trace.from_tasks(self._machines(), tasks, horizon=30.0)
        window = trace.window(10.0, 20.0)
        assert window.num_tasks == 1
        assert window.tasks[0].submit_time == pytest.approx(5.0)
        assert window.horizon == pytest.approx(10.0)

    def test_window_bad_bounds(self):
        trace = Trace.from_tasks(self._machines(), [make_task()], horizon=30.0)
        with pytest.raises(ValueError):
            trace.window(20.0, 10.0)

    def test_tasks_in_group(self):
        tasks = [
            make_task(job_id=1, priority=0),
            make_task(job_id=2, priority=5),
            make_task(job_id=3, priority=11),
        ]
        trace = Trace.from_tasks(self._machines(), tasks)
        assert len(trace.tasks_in_group(PriorityGroup.GRATIS)) == 1
        assert len(trace.tasks_in_group(PriorityGroup.OTHER)) == 1
        assert len(trace.tasks_in_group(PriorityGroup.PRODUCTION)) == 1

    def test_jobs_grouping(self):
        tasks = [make_task(job_id=1, index=i) for i in range(3)]
        tasks += [make_task(job_id=2, index=0, submit_time=1.0)]
        trace = Trace.from_tasks(self._machines(), tasks)
        jobs = list(trace.jobs())
        assert {j.job_id: j.num_tasks for j in jobs} == {1: 3, 2: 1}

    def test_machine_lookup(self):
        trace = Trace.from_tasks(self._machines(), [make_task()])
        assert trace.machine_type_by_platform(1).cpu_capacity == 1.0
        with pytest.raises(KeyError):
            trace.machine_type_by_platform(99)
