"""Tests for the simulator core: event queue, machines, schedulers, metrics."""

import pytest

from repro.energy import table2_fleet
from repro.simulation import (
    BestFitScheduler,
    Event,
    EventQueue,
    FirstFitScheduler,
    Machine,
    MachinePool,
    MachineState,
    QuotaLedger,
    SimulationMetrics,
)
from repro.simulation.engine import EventKind
from repro.trace import PriorityGroup
from tests.conftest import make_task


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        queue.schedule(5.0, EventKind.TASK_ARRIVAL, "b")
        queue.schedule(1.0, EventKind.TASK_ARRIVAL, "a")
        queue.schedule(9.0, EventKind.TASK_ARRIVAL, "c")
        assert [queue.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_kind_priority_at_equal_time(self):
        """Finishes process before arrivals before control ticks."""
        queue = EventQueue()
        queue.schedule(1.0, EventKind.CONTROL_TICK, "tick")
        queue.schedule(1.0, EventKind.TASK_ARRIVAL, "arrive")
        queue.schedule(1.0, EventKind.TASK_FINISH, "finish")
        assert [queue.pop().payload for _ in range(3)] == ["finish", "arrive", "tick"]

    def test_insertion_order_stable(self):
        queue = EventQueue()
        for i in range(5):
            queue.schedule(1.0, EventKind.TASK_ARRIVAL, i)
        assert [queue.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        queue = EventQueue()
        queue.schedule(3.0, EventKind.TASK_ARRIVAL)
        queue.pop()
        assert queue.now == 3.0

    def test_past_event_rejected(self):
        queue = EventQueue()
        queue.schedule(5.0, EventKind.TASK_ARRIVAL)
        queue.pop()
        with pytest.raises(ValueError):
            queue.schedule(4.0, EventKind.TASK_ARRIVAL)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        assert not queue
        queue.schedule(2.0, EventKind.TASK_ARRIVAL)
        assert queue.peek_time() == 2.0
        assert len(queue) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(time=-1.0, kind=EventKind.TASK_ARRIVAL)


class TestMachine:
    def _machine(self):
        model = table2_fleet(0.1)[3]  # DL585: 1.0 / 1.0
        machine = Machine(machine_id=0, model=model, state=MachineState.ON)
        return machine

    def test_place_and_release(self):
        machine = self._machine()
        task = make_task(cpu=0.4, memory=0.3)
        machine.place(task, class_id=7)
        assert machine.cpu_free == pytest.approx(0.6)
        assert machine.memory_free == pytest.approx(0.7)
        assert not machine.is_idle
        assert machine.release(task) == 7
        assert machine.is_idle
        assert machine.cpu_free == pytest.approx(1.0)

    def test_fits_only_when_on(self):
        machine = self._machine()
        task = make_task(cpu=0.1, memory=0.1)
        assert machine.fits(task)
        # Draining machines stay schedulable (their power is sunk anyway).
        machine.draining = True
        assert machine.fits(task)
        machine.draining = False
        machine.state = MachineState.BOOTING
        assert not machine.fits(task)

    def test_fits_platform_constraint(self):
        machine = self._machine()
        task = make_task(cpu=0.1, memory=0.1, allowed_platforms=frozenset({99}))
        assert not machine.fits(task)

    def test_place_overflow_rejected(self):
        machine = self._machine()
        machine.place(make_task(cpu=0.9, memory=0.1), class_id=0)
        with pytest.raises(ValueError):
            machine.place(make_task(job_id=2, cpu=0.2, memory=0.1), class_id=0)

    def test_release_unknown_raises(self):
        with pytest.raises(KeyError):
            self._machine().release(make_task())


class TestMachinePool:
    def _pool(self):
        return MachinePool(table2_fleet(0.1)[2])  # 100 x DL385

    def test_initially_off(self):
        pool = self._pool()
        assert pool.powered == 0
        assert pool.count_state(MachineState.OFF) == pool.total == 100

    def test_reconcile_up_boots_machines(self):
        pool = self._pool()
        started = pool.reconcile(10)
        assert len(started) == 10
        assert pool.count_state(MachineState.BOOTING) == 10
        assert pool.stats.switch_on_events == 10
        for machine in started:
            pool.machine_ready(machine)
        assert pool.count_state(MachineState.ON) == 10
        assert len(pool.schedulable_machines()) == 10

    def test_reconcile_down_prefers_idle(self):
        pool = self._pool()
        started = pool.reconcile(3)
        for machine in started:
            pool.machine_ready(machine)
        busy = pool.machines[0]
        busy.place(make_task(cpu=0.1, memory=0.1), class_id=0)
        pool.reconcile(1)
        # The two idle machines shut off; the busy one stays.
        assert busy.state is MachineState.ON
        assert pool.count_state(MachineState.ON) == 1
        assert pool.stats.switch_off_events == 2

    def test_reconcile_down_drains_busy(self):
        pool = self._pool()
        for machine in pool.reconcile(1):
            pool.machine_ready(machine)
        task = make_task(cpu=0.1, memory=0.1)
        pool.machines[0].place(task, class_id=0)
        pool.reconcile(0)
        assert pool.machines[0].draining
        assert pool.machines[0].state is MachineState.ON
        # Once the task finishes the machine can power off.
        pool.machines[0].release(task)
        assert pool.maybe_power_off(pool.machines[0])
        assert pool.machines[0].state is MachineState.OFF

    def test_reconcile_revives_draining_first(self):
        pool = self._pool()
        for machine in pool.reconcile(2):
            pool.machine_ready(machine)
        task = make_task(cpu=0.1, memory=0.1)
        pool.machines[0].place(task, class_id=0)
        pool.machines[1].place(make_task(job_id=2, cpu=0.1, memory=0.1), class_id=0)
        pool.reconcile(0)  # both drain (busy)
        switch_ons_before = pool.stats.switch_on_events
        pool.reconcile(2)
        # No new boots: draining machines were revived.
        assert pool.stats.switch_on_events == switch_ons_before
        assert pool.active_non_draining == 2

    def test_reconcile_caps_at_total(self):
        pool = self._pool()
        pool.reconcile(10_000)
        assert pool.powered == pool.total

    def test_utilization(self):
        pool = self._pool()
        for machine in pool.reconcile(2):
            pool.machine_ready(machine)
        pool.machines[0].place(make_task(cpu=0.25, memory=0.125), class_id=0)
        cpu, mem = pool.utilization()
        # 0.25 cpu over 2 machines x 0.5 capacity.
        assert cpu == pytest.approx(0.25)
        assert mem == pytest.approx(0.25)

    def test_running_count_by_class(self):
        pool = self._pool()
        for machine in pool.reconcile(1):
            pool.machine_ready(machine)
        pool.machines[0].place(make_task(cpu=0.1, memory=0.1), class_id=3)
        pool.machines[0].place(make_task(job_id=2, cpu=0.1, memory=0.1), class_id=3)
        assert pool.running_count_by_class() == {3: 2}


class TestQuotaLedger:
    def test_unrestricted_by_default(self):
        ledger = QuotaLedger()
        assert ledger.admits(1, 5)

    def test_quota_stock_semantics(self):
        ledger = QuotaLedger()
        ledger.set_quotas({1: {5: 2}})
        assert ledger.admits(1, 5)
        ledger.place(1, 5)
        ledger.place(1, 5)
        assert not ledger.admits(1, 5)
        ledger.release(1, 5)
        assert ledger.admits(1, 5)

    def test_unlisted_class_denied(self):
        ledger = QuotaLedger()
        ledger.set_quotas({1: {5: 2}})
        assert not ledger.admits(1, 6)
        assert not ledger.admits(2, 5)

    def test_release_without_place_raises(self):
        with pytest.raises(ValueError):
            QuotaLedger().release(1, 1)

    def test_snapshot(self):
        ledger = QuotaLedger()
        ledger.place(1, 5)
        ledger.place(2, 6)
        ledger.place(1, 5)
        assert ledger.snapshot() == {1: {5: 2}, 2: {6: 1}}


class TestSchedulers:
    def _pools(self):
        fleet = table2_fleet(0.02)  # 14 R210, 3 R515, 2 DL385, 1 DL585
        pools = [MachinePool(m, id_offset=i * 1000) for i, m in enumerate(fleet)]
        for pool in pools:
            for machine in pool.reconcile(pool.total):
                pool.machine_ready(machine)
        return pools

    def test_small_task_goes_to_small_machine(self):
        pools = self._pools()
        scheduler = FirstFitScheduler(pools)
        machine = scheduler.try_place(make_task(cpu=0.05, memory=0.05), 0, QuotaLedger())
        assert machine is not None
        assert machine.model.name == "Dell PowerEdge R210"

    def test_big_task_goes_to_big_machine(self):
        pools = self._pools()
        scheduler = FirstFitScheduler(pools)
        machine = scheduler.try_place(make_task(cpu=0.9, memory=0.9), 0, QuotaLedger())
        assert machine is not None
        assert machine.model.name == "HP DL585 G7"

    def test_quota_blocks_placement(self):
        pools = self._pools()
        scheduler = FirstFitScheduler(pools)
        ledger = QuotaLedger()
        ledger.set_quotas({})  # nothing allowed anywhere
        assert scheduler.try_place(make_task(cpu=0.05, memory=0.05), 0, ledger) is None

    def test_quota_allows_specific_platform(self):
        pools = self._pools()
        scheduler = FirstFitScheduler(pools)
        ledger = QuotaLedger()
        dl585_pid = pools[3].platform_id
        ledger.set_quotas({dl585_pid: {0: 1}})
        machine = scheduler.try_place(make_task(cpu=0.05, memory=0.05), 0, ledger)
        assert machine is not None
        assert machine.model.platform_id == dl585_pid

    def test_schedule_backfill(self):
        """A blocked big task does not block smaller ones behind it."""
        pools = self._pools()
        scheduler = FirstFitScheduler(pools)
        huge = make_task(job_id=1, cpu=1.0, memory=1.0, priority=11)
        small = make_task(job_id=2, cpu=0.05, memory=0.05, priority=0)
        # Fill every DL585 so the huge task cannot place anywhere.
        for i, machine in enumerate(pools[3].machines):
            machine.place(make_task(job_id=100 + i, cpu=0.9, memory=0.9), 0)
        placements, leftover = scheduler.schedule(
            [huge, small], QuotaLedger(), class_of=lambda t: 0
        )
        assert [p.task.job_id for p in placements] == [2]
        assert [t.job_id for t in leftover] == [1]

    def test_max_attempts_caps_scan(self):
        pools = self._pools()
        scheduler = FirstFitScheduler(pools)
        tasks = [make_task(job_id=i, cpu=0.01, memory=0.01) for i in range(10)]
        placements, leftover = scheduler.schedule(
            tasks, QuotaLedger(), class_of=lambda t: 0, max_attempts=4
        )
        assert len(placements) == 4
        assert len(leftover) == 6

    def test_best_fit_prefers_tightest(self):
        pools = self._pools()
        scheduler = BestFitScheduler(pools)
        # Pre-fill one DL385 to 0.4 cpu free; the other is empty.
        dl385 = pools[2]
        dl385.machines[0].place(make_task(job_id=9, cpu=0.1, memory=0.01), 0)
        task = make_task(cpu=0.3, memory=0.05)
        machine = scheduler.try_place(task, 0, QuotaLedger())
        # R210/R515 can't host 0.3 cpu; best fit picks the pre-filled DL385.
        assert machine is dl385.machines[0]

    def test_empty_pools_rejected(self):
        with pytest.raises(ValueError):
            FirstFitScheduler([])

    def test_failed_demand_memo_skips_dominating_tasks(self):
        """Within a round, a task dominating an already-failed demand skips
        the machine scan (and is correctly left pending)."""
        pools = self._pools()
        scheduler = FirstFitScheduler(pools)
        # Saturate everything except tiny gaps.
        for pool in pools:
            for machine in pool.machines:
                filler_cpu = machine.model.cpu_capacity * 0.97
                filler_mem = machine.model.memory_capacity * 0.97
                machine.place(
                    make_task(job_id=hash((pool.platform_id, machine.machine_id)) % 10**6,
                              cpu=filler_cpu, memory=filler_mem),
                    0,
                )
        big = [make_task(job_id=10_000 + i, cpu=0.5, memory=0.5) for i in range(20)]
        placements, leftover = scheduler.schedule(big, QuotaLedger(), lambda t: 0)
        assert placements == []
        assert len(leftover) == 20

    def test_memo_does_not_block_smaller_tasks(self):
        pools = self._pools()
        scheduler = FirstFitScheduler(pools)
        dl585 = pools[3]
        # Leave exactly one 0.3/0.3 hole in the DL585 pool.
        for i, machine in enumerate(dl585.machines):
            fill = 0.7 if i == 0 else 0.95
            machine.place(make_task(job_id=500 + i, cpu=fill, memory=fill), 0)
        tasks = [
            make_task(job_id=1, cpu=0.6, memory=0.6, priority=11),   # fails
            make_task(job_id=2, cpu=0.25, memory=0.25, priority=0),  # fits hole
        ]
        placements, leftover = scheduler.schedule(tasks, QuotaLedger(), lambda t: 0)
        placed_ids = {p.task.job_id for p in placements}
        assert 2 in placed_ids
        assert [t.job_id for t in leftover] == [1]


class TestSimulationMetrics:
    def test_lifecycle_and_delays(self):
        metrics = SimulationMetrics()
        task = make_task(priority=10, submit_time=5.0)
        metrics.task_submitted(task, 5.0)
        metrics.task_scheduled(task, 8.0, class_id=1, platform_id=2)
        metrics.task_finished(task, 108.0)
        assert metrics.num_submitted == metrics.num_scheduled == metrics.num_finished == 1
        delays = metrics.delays_by_group()
        assert delays[PriorityGroup.PRODUCTION][0] == pytest.approx(3.0)
        assert metrics.mean_delay(PriorityGroup.PRODUCTION) == pytest.approx(3.0)

    def test_unscheduled_censoring(self):
        metrics = SimulationMetrics()
        task = make_task(priority=0, submit_time=10.0)
        metrics.task_submitted(task, 10.0)
        assert metrics.num_unscheduled == 1
        assert metrics.delays_by_group()[PriorityGroup.GRATIS].size == 0
        censored = metrics.delays_by_group(include_unscheduled_at=100.0)
        assert censored[PriorityGroup.GRATIS][0] == pytest.approx(90.0)

    def test_immediate_fraction(self):
        metrics = SimulationMetrics()
        for i, delay in enumerate((0.0, 0.5, 30.0)):
            task = make_task(job_id=i, priority=9, submit_time=0.0)
            metrics.task_submitted(task, 0.0)
            metrics.task_scheduled(task, delay, class_id=0, platform_id=1)
        assert metrics.immediate_fraction(PriorityGroup.PRODUCTION) == pytest.approx(2 / 3)

    def test_series_helpers(self):
        metrics = SimulationMetrics()
        metrics.machine_timeline.append((0.0, 10, 8))
        metrics.machine_timeline.append((300.0, 20, 18))
        times, powered = metrics.machines_series()
        assert list(times) == [0.0, 300.0]
        assert list(powered) == [10, 20]
        assert metrics.mean_active_machines() == 15.0
