"""Tests for the sharded fleet layer (repro.fleet + repro.simulation.merge).

Covers the partition/router determinism contract, the two differential
guarantees the fleet design rests on — a shards=1 fleet run is
bit-identical to a directly-constructed unsharded simulation, and the
merged digest is invariant across execution topology (serial, parallel,
supervised, killed-and-retried, journal-resumed) — plus merge semantics
(partial-merge marking, policy-mismatch rejection), per-shard progress
journals, the worker-side memory budget's quarantine path and the
supervisor's memory-ceiling admission backpressure.
"""

import json

import pytest

from repro.classification import ClassifierConfig, TaskClassifier
from repro.cli import main
from repro.energy.catalog import google_like_energy_models
from repro.fleet import (
    FleetConfig,
    TaskRouter,
    fleet_scenarios,
    max_shards,
    merge_fleet_report,
    partition_census,
    run_fleet,
    shard_progress_path,
)
from repro.resilience import transient_fault_scenario
from repro.runner import (
    Journal,
    JournalEntry,
    ScenarioSupervisor,
    SupervisorConfig,
    journal_path,
    suite_run_id,
)
from repro.runner.defaults import trace_config_from_params
from repro.runner.journal import read_journal_records
from repro.runner.runner import RunnerReport, ScenarioFailure, summary_digest
from repro.simulation import (
    HarmonyConfig,
    HarmonySimulation,
    merge_shard_summaries,
)
from repro.trace import generate_trace
from repro.trace.schema import Task

#: Small fleet-wide workload: ~2.2k tasks over 150 machines, ~1 s serial.
TRACE = {"hours": 0.5, "seed": 7, "machines": 150, "load": 0.5}

#: Keep retry waits negligible in tests.
FAST = SupervisorConfig(backoff_base_seconds=0.01, backoff_cap_seconds=0.05)


def small_census():
    return trace_config_from_params(TRACE).census()


@pytest.fixture(scope="module")
def reference_fleet():
    """Uninterrupted serial run — the digest-invariance reference."""
    return run_fleet(TRACE, FleetConfig(shards=3, suite="unit"), workers=1)


class TestPartition:
    def test_cells_cover_census_disjointly(self):
        census = small_census()
        cells = partition_census(census, 4)
        platforms = [p for cell in cells for p in cell.platforms]
        assert sorted(platforms) == sorted(m.platform_id for m in census)
        assert len(platforms) == len(set(platforms))
        assert sum(cell.machines for cell in cells) == sum(
            m.count for m in census
        )

    def test_partition_is_deterministic(self):
        census = small_census()
        assert partition_census(census, 4) == partition_census(census, 4)

    def test_partition_balances_capacity(self):
        cells = partition_census(small_census(), 3)
        capacities = [cell.cpu_capacity for cell in cells]
        # Greedy LPT: no cell may dwarf the others at this census shape.
        assert max(capacities) <= 3 * min(capacities)

    def test_shards_below_one_rejected(self):
        with pytest.raises(ValueError, match="shards must be >= 1, got 0"):
            partition_census(small_census(), 0)

    def test_shards_above_cell_count_rejected(self):
        census = small_census()
        bound = max_shards(census)
        with pytest.raises(
            ValueError, match=f"<= the {bound} machine-type cells"
        ):
            partition_census(census, bound + 1)

    def test_max_shards_is_census_size(self):
        census = small_census()
        assert max_shards(census) == len(census)
        assert len(partition_census(census, max_shards(census))) == len(census)


class TestRouter:
    def _tasks(self, n=50):
        return [
            Task(
                job_id=i // 5,
                index=i % 5,
                submit_time=float(i),
                duration=60.0,
                priority=2,
                scheduling_class=1,
                cpu=0.2,
                memory=0.2,
            )
            for i in range(n)
        ]

    def test_all_tasks_of_a_job_share_a_cell(self):
        router = TaskRouter(partition_census(small_census(), 3))
        by_job: dict[int, set[int]] = {}
        for task in self._tasks():
            by_job.setdefault(task.job_id, set()).add(router.route(task))
        assert all(len(cells) == 1 for cells in by_job.values())

    def test_routing_is_order_free(self):
        cells = partition_census(small_census(), 3)
        tasks = self._tasks()
        forward = [TaskRouter(cells).route(t) for t in tasks]
        backward = [TaskRouter(cells).route(t) for t in reversed(tasks)]
        assert forward == list(reversed(backward))

    def test_single_cell_short_circuits(self):
        router = TaskRouter(partition_census(small_census(), 1))
        assert {router.route(t) for t in self._tasks()} == {0}

    def test_infeasible_task_falls_back_to_largest_cell(self):
        cells = partition_census(small_census(), 3)
        largest = max(
            range(len(cells)), key=lambda i: cells[i].cpu_capacity
        )
        impossible = Task(
            job_id=1,
            index=0,
            submit_time=0.0,
            duration=60.0,
            priority=2,
            scheduling_class=1,
            cpu=1.0,
            memory=1.0,
            allowed_platforms=(999,),
        )
        assert TaskRouter(cells).route(impossible) == largest

    def test_route_seed_changes_assignment(self):
        cells = partition_census(small_census(), 3)
        tasks = self._tasks(200)
        a = [TaskRouter(cells, route_seed=0).route(t) for t in tasks]
        b = [TaskRouter(cells, route_seed=1).route(t) for t in tasks]
        assert a != b


class TestFleetDifferential:
    def test_single_shard_matches_unsharded_simulation(self):
        """shards=1 must be *the* unsharded run, not an approximation."""
        fleet = run_fleet(TRACE, FleetConfig(shards=1, suite="unit1"))
        config = trace_config_from_params(TRACE)
        trace = generate_trace(config)
        classifier = TaskClassifier(ClassifierConfig(seed=config.seed)).fit(
            list(trace.tasks)
        )
        plain = HarmonySimulation(
            HarmonyConfig(
                policy="cbs",
                predictor="ewma",
                engine="columnar",
                fleet=google_like_energy_models(config.census()),
            ),
            trace,
            classifier=classifier,
        ).run()
        shard = fleet.report.results[0]
        assert summary_digest(shard.summary["simulation"]) == summary_digest(
            plain.summary()
        )
        assert shard.summary["shard"]["tasks_routed"] == trace.num_tasks

    def test_parallel_and_supervised_match_serial(self, reference_fleet):
        parallel = run_fleet(
            TRACE, FleetConfig(shards=3, suite="unit"), workers=3
        )
        supervised = run_fleet(
            TRACE,
            FleetConfig(shards=3, suite="unit"),
            workers=2,
            supervise=True,
            supervisor_config=FAST,
        )
        assert parallel.digest == reference_fleet.digest
        assert supervised.digest == reference_fleet.digest
        assert not parallel.partial and not supervised.partial

    @pytest.mark.parametrize(
        ("policy", "fault"),
        [("cbs", "outage"), ("cbp", None), ("cbs", "poisson")],
    )
    def test_matrix_serial_parallel_invariance(self, policy, fault):
        config = FleetConfig(
            shards=3, suite="unit_mx", policy=policy, fault_scenario=fault
        )
        serial = run_fleet(TRACE, config, workers=1)
        parallel = run_fleet(TRACE, config, workers=3)
        assert serial.digest == parallel.digest
        assert serial.merged["policy"] == policy

    def test_merged_totals_cover_the_fleet(self, reference_fleet):
        merged = reference_fleet.merged
        shards = [r.summary["shard"] for r in reference_fleet.report.results]
        assert merged["tasks_submitted"] == sum(
            s["tasks_routed"] for s in shards
        )
        assert merged["shards"]["machines"] == sum(
            m.count for m in small_census()
        )
        assert merged["shards"]["missing"] == []
        # Every task the generator emitted was routed exactly once.
        assert merged["shards"]["tasks_routed"] == shards[0]["tasks_seen"]


class TestMerge:
    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError, match="zero shard summaries"):
            merge_shard_summaries([])

    def test_policy_mismatch_rejected(self, reference_fleet):
        shards = [dict(r.summary) for r in reference_fleet.report.results]
        impostor = {
            "simulation": {**shards[0]["simulation"], "policy": "cbp"},
            "shard": shards[0]["shard"],
        }
        with pytest.raises(ValueError, match="different policies"):
            merge_shard_summaries([shards[1], impostor])

    def test_partial_merge_is_marked_inside_the_digest(self, reference_fleet):
        full = reference_fleet.report
        lost = full.results[-1]
        partial_report = RunnerReport(
            suite=full.suite,
            workers=full.workers,
            results=full.results[:-1],
            total_wall_seconds=full.total_wall_seconds,
            quarantined=(
                ScenarioFailure(
                    scenario=lost.scenario,
                    kind="error",
                    attempts=3,
                    message="synthetic loss",
                ),
            ),
        )
        partial = merge_fleet_report("unit", 3, partial_report)
        assert partial.partial
        assert partial.missing == (lost.name,)
        assert partial.merged["shards"]["missing"] == [
            int(lost.name.rsplit("_", 1)[1])
        ]
        # The quarantine marker lives inside the digested payload, so a
        # partial digest can never impersonate the complete one.
        assert partial.digest != reference_fleet.digest

    def test_all_shards_lost_yields_no_merge(self, reference_fleet):
        full = reference_fleet.report
        empty = RunnerReport(
            suite=full.suite,
            workers=full.workers,
            results=(),
            total_wall_seconds=0.0,
            quarantined=tuple(
                ScenarioFailure(
                    scenario=r.scenario, kind="error", attempts=3, message="x"
                )
                for r in full.results
            ),
        )
        report = merge_fleet_report("unit", 3, empty)
        assert report.partial
        assert report.merged is None and report.digest is None


class TestResume:
    def test_resumed_fleet_matches_uninterrupted_digest(
        self, reference_fleet, tmp_path
    ):
        # "Interrupted" run: only shard 0 made it into the suite journal
        # before the (simulated) coordinator kill.
        scenarios = fleet_scenarios(TRACE, FleetConfig(shards=3, suite="unit"))
        run_id = suite_run_id("unit", scenarios)
        journal = Journal(journal_path("unit", tmp_path, run_id), run_id)
        done = reference_fleet.report.results[0]
        journal.append(
            JournalEntry(
                suite="unit",
                scenario=scenarios[0],
                summary=done.summary,
                phases=done.phases,
                wall_seconds=done.wall_seconds,
                attempts=1,
            )
        )

        resumed = run_fleet(
            TRACE,
            FleetConfig(shards=3, suite="unit"),
            workers=2,
            resume=True,
            journal_dir=tmp_path,
            supervisor_config=FAST,
        )
        assert resumed.digest == reference_fleet.digest
        assert not resumed.partial

    def test_killed_shard_worker_retries_to_same_digest(
        self, reference_fleet, tmp_path
    ):
        scenarios = list(
            fleet_scenarios(TRACE, FleetConfig(shards=3, suite="unit"))
        )
        # SIGKILL shard 1's worker on its first attempt; keep its name so
        # the fleet digest (keyed per shard name) stays comparable.
        scenarios[1] = transient_fault_scenario(
            scenarios[1].name,
            scenarios[1],
            tmp_path / "markers",
            fail_attempts=1,
            mode="kill",
        )
        supervisor = ScenarioSupervisor("unit", FAST)
        report = supervisor.run(scenarios, workers=2)
        assert report.quarantined == ()
        assert report[scenarios[1].name].attempts == 2
        fleet = merge_fleet_report("unit", 3, report)
        assert fleet.digest == reference_fleet.digest


class TestProgressJournal:
    def test_progress_checkpoints_and_done_marker(self, tmp_path):
        fleet = run_fleet(
            TRACE,
            FleetConfig(shards=2, suite="prog", progress_every=500),
            progress_dir=tmp_path,
        )
        total = fleet.report.results[0].summary["shard"]["tasks_seen"]
        for index in range(2):
            records = read_journal_records(
                shard_progress_path(tmp_path, "prog", index)
            )
            kinds = [r["kind"] for r in records]
            assert kinds.count("fleet_shard_done") == 1
            assert kinds[-1] == "fleet_shard_done"
            assert len(records) == total // 500 + 1
            assert records[-1]["tasks_seen"] == total
            seen = [r["tasks_seen"] for r in records]
            assert seen == sorted(seen)

    def test_fresh_attempt_truncates_stale_progress(self, tmp_path):
        path = shard_progress_path(tmp_path, "prog", 0)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("stale garbage from a killed attempt\n")
        run_fleet(
            TRACE,
            FleetConfig(shards=2, suite="prog", progress_every=500),
            progress_dir=tmp_path,
        )
        records = read_journal_records(path)
        assert records[0]["kind"] == "fleet_progress"


#: CLI args pinning the fleet run to the small test workload.
CLI_TRACE = ["--hours", "0.5", "--machines", "150", "--seed", "7",
             "--load", "0.5"]


class TestFleetCli:
    def test_fleet_run_writes_baseline_with_digest(
        self, reference_fleet, tmp_path, capsys
    ):
        code = main(
            ["fleet", "--shards", "3", "--workers", "1",
             "--output", str(tmp_path), "--progress-dir", str(tmp_path),
             *CLI_TRACE]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert reference_fleet.digest in out
        payload = json.loads((tmp_path / "BENCH_google_fleet.json").read_text())
        assert payload["fleet"]["digest"] == reference_fleet.digest
        assert payload["fleet"]["shards"] == 3
        assert payload["fleet"]["partial"] is False
        assert payload["fleet"]["missing"] == []
        assert payload["peak_rss_mb"] > 0
        # Per-shard phases and RSS ride along in the scenario entries.
        for entry in payload["scenarios"]:
            assert "stream" in entry["phases"]
            assert entry["rss_peak_mb"] > 0
        for index in range(3):
            assert shard_progress_path(tmp_path, "google_fleet", index).exists()

    def test_shards_below_one_exits_2(self, capsys):
        assert main(["fleet", "--shards", "0"]) == 2
        err = capsys.readouterr().err
        assert "--shards must be >= 1" in err and "hint" in err

    def test_shards_above_cells_exits_2(self, capsys):
        assert main(["fleet", "--shards", "99", *CLI_TRACE]) == 2
        err = capsys.readouterr().err
        assert "exceeds the 10 machine-type cells" in err

    def test_engine_both_exits_2(self, capsys):
        assert main(["fleet", "--engine", "both", *CLI_TRACE]) == 2
        assert "exactly one engine" in capsys.readouterr().err

    def test_workers_below_one_exits_2(self, capsys):
        assert main(["fleet", "--workers", "0", *CLI_TRACE]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_unknown_fault_scenario_exits_2(self, capsys):
        assert main(["fleet", "--fault", "meteor", *CLI_TRACE]) == 2
        err = capsys.readouterr().err
        assert "unknown fault scenario" in err and "outage" in err

    def test_bench_shards_on_other_suite_exits_2(self, capsys):
        assert main(["bench", "scalability", "--shards", "4"]) == 2
        err = capsys.readouterr().err
        assert "--shards only applies to the google_fleet suite" in err

    def test_bench_google_fleet_rejects_verify(self, capsys):
        assert main(["bench", "google_fleet", "--verify"]) == 2
        assert "fleet-chaos" in capsys.readouterr().err

    def test_bench_google_fleet_rejects_engine_both(self, capsys):
        assert main(["bench", "google_fleet", "--engine", "both"]) == 2
        assert "exactly one engine" in capsys.readouterr().err

    def test_bench_all_excludes_google_fleet(self):
        from repro.runner import SUITES

        assert "google_fleet" not in SUITES


class TestMemoryControls:
    def test_budget_breach_quarantines_into_partial_merge(self, tmp_path):
        fleet = run_fleet(
            TRACE,
            FleetConfig(
                shards=3,
                suite="oom",
                progress_every=100,
                memory_budget_mb=1.0,
            ),
            supervise=True,
            supervisor_config=SupervisorConfig(
                max_attempts=1,
                backoff_base_seconds=0.01,
                backoff_cap_seconds=0.05,
            ),
        )
        assert fleet.partial
        assert len(fleet.missing) == 3
        assert fleet.merged is None
        for failure in fleet.report.quarantined:
            assert failure.kind == "error"
            assert "memory budget" in failure.message

    def test_ceiling_backpressure_defers_spawns_without_digest_drift(
        self, reference_fleet
    ):
        scenarios = fleet_scenarios(TRACE, FleetConfig(shards=3, suite="unit"))
        supervisor = ScenarioSupervisor(
            "unit",
            SupervisorConfig(
                backoff_base_seconds=0.01,
                backoff_cap_seconds=0.05,
                memory_ceiling_mb=1.0,
                memory_watermark=0.5,
            ),
        )
        report = supervisor.run(scenarios, workers=3)
        # A 1 MiB ceiling is always over watermark, so admission control
        # must have throttled spawns — yet results are digest-identical.
        assert supervisor.deferred_spawns > 0
        assert supervisor.peak_rss_mb is not None
        assert supervisor.peak_rss_mb > 1.0
        fleet = merge_fleet_report("unit", 3, report)
        assert fleet.digest == reference_fleet.digest
