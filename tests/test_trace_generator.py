"""Tests for the synthetic trace generator's calibration to Section III."""

import numpy as np
import pytest

from repro.trace import (
    PriorityGroup,
    SyntheticTraceConfig,
    generate_trace,
    google_like_machine_census,
    size_scatter_by_group,
    trace_summary,
)


class TestMachineCensus:
    def test_ten_types(self):
        census = google_like_machine_census(1200)
        assert len(census) == 10

    def test_total_machines_exact(self):
        for total in (1200, 12000, 500):
            census = google_like_machine_census(total)
            assert sum(m.count for m in census) == total

    def test_share_shape_matches_fig5(self):
        """Types 1-2 hold ~50%/~30%; types 5-10 are tiny (<1% each)."""
        census = google_like_machine_census(12000)
        shares = [m.count / 12000 for m in census]
        assert 0.45 <= shares[0] <= 0.60
        assert 0.25 <= shares[1] <= 0.35
        for share in shares[4:]:
            assert share < 0.01

    def test_largest_machine_normalized_to_one(self):
        census = google_like_machine_census(1200)
        assert max(m.cpu_capacity for m in census) == pytest.approx(1.0)
        assert max(m.memory_capacity for m in census) == pytest.approx(1.0)

    def test_too_few_machines_rejected(self):
        with pytest.raises(ValueError):
            google_like_machine_census(5)


class TestGeneratorDeterminism:
    def test_same_seed_same_trace(self):
        config = SyntheticTraceConfig(horizon_hours=0.5, seed=3, total_machines=100)
        a, b = generate_trace(config), generate_trace(config)
        assert a.num_tasks == b.num_tasks
        assert [t.uid for t in a.tasks] == [t.uid for t in b.tasks]
        assert [t.cpu for t in a.tasks] == [t.cpu for t in b.tasks]

    def test_different_seed_different_trace(self):
        base = SyntheticTraceConfig(horizon_hours=0.5, seed=3, total_machines=100)
        other = SyntheticTraceConfig(horizon_hours=0.5, seed=4, total_machines=100)
        a, b = generate_trace(base), generate_trace(other)
        assert [t.cpu for t in a.tasks] != [t.cpu for t in b.tasks]


class TestWorkloadMarginals:
    """The Section III statistics the generator must reproduce."""

    def test_all_groups_present(self, small_trace):
        summary = trace_summary(small_trace)
        for group in ("gratis", "other", "production"):
            assert summary["group_counts"][group] > 0

    def test_majority_of_tasks_short(self, small_trace):
        """'More than 50% of the tasks are short (less than 100 seconds)'."""
        summary = trace_summary(small_trace)
        assert summary["short_task_fraction"] > 0.5

    def test_gratis_modal_spike(self, small_trace):
        """'43% of gratis tasks have the same CPU and memory requirements'."""
        scatter = size_scatter_by_group(small_trace)[PriorityGroup.GRATIS]
        fraction = scatter.modal_fraction(0.0125, 0.0159)
        assert 0.30 <= fraction <= 0.55

    def test_size_span_orders_of_magnitude(self, small_trace):
        """'The difference in task size can span several orders of magnitude'."""
        scatter = size_scatter_by_group(small_trace)[PriorityGroup.GRATIS]
        assert scatter.size_span_orders >= 1.5

    def test_low_cpu_memory_correlation(self, small_trace):
        """'There is usually no correlation between CPU and memory'."""
        for group, scatter in size_scatter_by_group(small_trace).items():
            if scatter.num_tasks > 50:
                assert abs(scatter.cpu_memory_correlation) < 0.6

    def test_production_durations_longest(self, small_trace):
        durations = {
            group: np.median([t.duration for t in small_trace.tasks_in_group(group)])
            for group in PriorityGroup
        }
        assert durations[PriorityGroup.PRODUCTION] > durations[PriorityGroup.GRATIS]

    def test_sizes_on_request_grid(self, small_trace):
        """Requests are quantized like real user requests (Section III-D)."""
        step = 0.0125 / 8
        for task in small_trace.tasks[:500]:
            ratio = task.cpu / step
            assert abs(ratio - round(ratio)) < 1e-6 or task.cpu == 1.0

    def test_mode_on_grid(self):
        """The gratis modal point itself must be representable on the grid."""
        step = 0.0125 / 8
        assert abs(0.0125 / step - round(0.0125 / step)) < 1e-9

    def test_tasks_within_job_share_size(self, small_trace):
        jobs = [j for j in small_trace.jobs() if j.num_tasks >= 2][:20]
        assert jobs, "expected some multi-task jobs"
        for job in jobs:
            cpus = {t.cpu for t in job.tasks}
            assert len(cpus) == 1

    def test_load_scaling_hits_target(self):
        """The calibrated p90 demand tracks load_factor."""
        import numpy as np

        from repro.trace import demand_timeseries

        loads = {}
        for load in (0.25, 0.6):
            trace = generate_trace(
                SyntheticTraceConfig(
                    horizon_hours=2, seed=5, total_machines=100, load_factor=load
                )
            )
            _, cpu, _ = demand_timeseries(trace, 600.0)
            capacity = sum(m.cpu_capacity * m.count for m in trace.machine_types)
            loads[load] = float(np.percentile(cpu, 90)) / capacity
        assert loads[0.6] > 1.4 * loads[0.25]
        # Each realized p90 lands near its target.
        assert loads[0.25] == pytest.approx(0.25, rel=0.45)
        assert loads[0.6] == pytest.approx(0.6, rel=0.45)


class TestSizeCatalog:
    def test_popular_sizes_dominate(self, small_trace):
        """Zipf popularity: the top handful of request sizes covers most
        tasks (the discrete-request structure of the real trace)."""
        from collections import Counter

        counts = Counter((t.cpu, t.memory) for t in small_trace.tasks)
        total = sum(counts.values())
        top10 = sum(c for _, c in counts.most_common(10))
        assert top10 / total > 0.5

    def test_memory_ratio_calibrated_per_trace(self):
        """The realized p90-of-series memory/cpu ratio is pinned to the
        configured memory bias on every seed (regime stability)."""
        import numpy as np

        from repro.trace import demand_timeseries

        for seed in (4, 8, 15):
            trace = generate_trace(
                SyntheticTraceConfig(
                    horizon_hours=1.5, seed=seed, total_machines=200,
                    load_factor=0.5,
                )
            )
            _, cpu, mem = demand_timeseries(trace, 600.0)
            ratio = float(np.percentile(mem, 90)) / float(np.percentile(cpu, 90))
            assert ratio == pytest.approx(1.3, rel=0.15)

    def test_modal_point_survives_calibration(self, small_trace):
        """Memory calibration must not move the (0.0125, 0.0159) atom."""
        modal = [
            t for t in small_trace.tasks
            if t.cpu == pytest.approx(0.0125) and t.memory == pytest.approx(0.0159)
        ]
        assert modal, "modal tasks must exist at their exact point"

    def test_constraint_platforms_override(self):
        from repro.energy import table2_fleet

        fleet_types = tuple(m.to_machine_type() for m in table2_fleet(0.1))
        trace = generate_trace(
            SyntheticTraceConfig(
                horizon_hours=1.0, seed=5, total_machines=150,
                constrained_fraction=0.3,
                constraint_platforms=fleet_types,
            )
        )
        constrained = [t for t in trace.tasks if t.allowed_platforms is not None]
        assert constrained
        fleet_ids = {m.platform_id for m in fleet_types}
        for task in constrained:
            assert task.allowed_platforms <= fleet_ids
            # Constraints only name platforms that can host the task.
            for pid in task.allowed_platforms:
                machine = next(m for m in fleet_types if m.platform_id == pid)
                assert task.cpu <= machine.cpu_capacity
                assert task.memory <= machine.memory_capacity


class TestConfigValidation:
    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(horizon_hours=0)

    def test_bad_load_factor(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(load_factor=0.0)

    def test_bad_constrained_fraction(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(constrained_fraction=1.0)

    def test_constrained_tasks_generated(self):
        trace = generate_trace(
            SyntheticTraceConfig(
                horizon_hours=1, seed=9, total_machines=100, constrained_fraction=0.5
            )
        )
        constrained = [t for t in trace.tasks if t.allowed_platforms is not None]
        assert len(constrained) > 0.2 * trace.num_tasks


class TestCorrelationDegenerateBoundary:
    """Zero-variance samples get correlation 0.0 via a span tolerance."""

    def test_constant_resource_returns_zero(self):
        from repro.trace.statistics import SizeScatter

        scatter = SizeScatter(
            group=PriorityGroup.GRATIS,
            cpu=np.full(10, 0.25),
            memory=np.linspace(0.1, 0.9, 10),
        )
        assert scatter.cpu_memory_correlation == 0.0

    def test_subtolerance_span_treated_as_constant(self):
        from repro.trace.statistics import SizeScatter

        cpu = np.full(10, 0.25)
        cpu[0] += 1e-14  # numerical noise, not real variance
        scatter = SizeScatter(
            group=PriorityGroup.GRATIS,
            cpu=cpu,
            memory=np.linspace(0.1, 0.9, 10),
        )
        assert scatter.cpu_memory_correlation == 0.0

    def test_real_variance_still_correlates(self):
        from repro.trace.statistics import SizeScatter

        values = np.linspace(0.1, 0.9, 10)
        scatter = SizeScatter(
            group=PriorityGroup.GRATIS, cpu=values, memory=values
        )
        assert scatter.cpu_memory_correlation == pytest.approx(1.0)
