"""Tests for the container reassignment (migration) planner."""

import numpy as np
import pytest

from repro.provisioning import MigrationPlan, consolidation_savings, plan_consolidation
from repro.provisioning.rounding import MachineAssignment


def machine(machine_id, containers, sizes, capacity=(1.0, 1.0)):
    m = MachineAssignment(
        platform_id=1, capacity=capacity, used=np.zeros(len(capacity)),
        containers={}, machine_id=machine_id,
    )
    for index, count in containers.items():
        m.add(index, sizes[index], count)
    return m


SIZES = {0: (0.2, 0.2), 1: (0.5, 0.4)}


class TestPlanConsolidation:
    def test_consolidates_two_half_empty_machines(self):
        machines = [
            machine(0, {0: 2}, SIZES),  # 0.4 used
            machine(1, {0: 1}, SIZES),  # 0.2 used
        ]
        plan = plan_consolidation(machines, SIZES, target_active=1)
        assert plan.released_machines == [1]
        assert plan.num_moves == 1
        move = plan.moves[0]
        assert move.source == 1 and move.destination == 0

    def test_keeps_machine_that_cannot_empty(self):
        machines = [
            machine(0, {1: 1}, SIZES),   # 0.5/0.4 used
            machine(1, {1: 1}, SIZES),   # cannot move: 0.5+0.5 == 1.0 fits!
        ]
        plan = plan_consolidation(machines, SIZES, target_active=1)
        # Two 0.5-cpu containers fit one machine exactly.
        assert plan.released_machines == [1] or plan.released_machines == [0]

    def test_infeasible_move_retains_machine(self):
        big = {2: (0.8, 0.8)}
        machines = [
            machine(0, {2: 1}, big),
            machine(1, {2: 1}, big),
        ]
        plan = plan_consolidation(machines, big, target_active=1)
        assert plan.released_machines == []
        assert sorted(plan.retained_machines) == [0, 1]
        assert plan.moves == []

    def test_target_at_or_above_count_is_noop(self):
        machines = [machine(0, {0: 1}, SIZES)]
        plan = plan_consolidation(machines, SIZES, target_active=1)
        assert plan.moves == []
        assert plan.released_machines == []

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            plan_consolidation([], SIZES, target_active=-1)

    def test_moves_respect_capacity(self):
        rng = np.random.default_rng(3)
        sizes = {i: (float(rng.uniform(0.05, 0.3)), float(rng.uniform(0.05, 0.3)))
                 for i in range(4)}
        machines = []
        for mid in range(8):
            counts = {i: int(rng.integers(0, 3)) for i in range(4)}
            counts = {i: c for i, c in counts.items() if c}
            machines.append(machine(mid, counts, sizes))
        plan = plan_consolidation(machines, sizes, target_active=4)
        # Apply the plan and verify no receiver overflows.
        by_id = {m.machine_id: m for m in machines}
        for move in plan.moves:
            src, dst = by_id[move.source], by_id[move.destination]
            size = np.asarray(sizes[move.container_index])
            dst.used = dst.used + size * move.count
            src.used = src.used - size * move.count
        for m in machines:
            if m.machine_id in plan.released_machines:
                continue
            assert (m.used <= np.asarray(m.capacity) + 1e-9).all()

    def test_released_machines_fully_emptied(self):
        machines = [
            machine(0, {0: 1}, SIZES),
            machine(1, {0: 2}, SIZES),
            machine(2, {0: 1}, SIZES),
        ]
        plan = plan_consolidation(machines, SIZES, target_active=1)
        moved_out = {}
        for move in plan.moves:
            moved_out[move.source] = moved_out.get(move.source, 0) + move.count
        for released in plan.released_machines:
            original = next(m for m in machines if m.machine_id == released)
            assert moved_out.get(released, 0) == sum(original.containers.values())


class TestConsolidationSavings:
    def test_positive_net_for_cheap_migration(self):
        machines = [machine(0, {0: 2}, SIZES), machine(1, {0: 1}, SIZES)]
        plan, net = consolidation_savings(
            machines, SIZES, target_active=1,
            idle_watts=200.0, horizon_seconds=3600.0,
            price_per_kwh=0.1, migration_cost=0.0001,
        )
        assert len(plan.released_machines) == 1
        assert net > 0

    def test_negative_net_for_expensive_migration(self):
        machines = [machine(0, {0: 2}, SIZES), machine(1, {0: 1}, SIZES)]
        _, net = consolidation_savings(
            machines, SIZES, target_active=1,
            idle_watts=200.0, horizon_seconds=60.0,
            price_per_kwh=0.1, migration_cost=10.0,
        )
        assert net < 0

    def test_cost_validation(self):
        plan = MigrationPlan()
        with pytest.raises(ValueError):
            plan.cost(-1.0)
