"""Shared fixtures: small deterministic traces and fitted classifiers.

Everything here is session-scoped and seeded — test runs are reproducible
and the expensive objects (trace, classifier) are built once.
"""

from __future__ import annotations

import pytest

from repro.classification import ClassifierConfig, TaskClassifier
from repro.containers import ContainerManager
from repro.energy import table2_fleet
from repro.trace import SyntheticTraceConfig, Task, generate_trace


@pytest.fixture(params=["object", "columnar"])
def engine(request):
    """Replay engine switch: parametrizes a test over both engines.

    The object engine is the oracle; the columnar engine must be
    outcome-identical (see ``tests/test_columnar_differential.py`` for
    the digest-level contract).  Simulator-level tests taking this
    fixture run their assertions against both.
    """
    return request.param


@pytest.fixture(scope="session")
def small_trace():
    """A 2-hour, ~200-machine trace: fast but statistically non-trivial."""
    return generate_trace(
        SyntheticTraceConfig(
            horizon_hours=2.0, seed=42, total_machines=200, load_factor=0.5
        )
    )


@pytest.fixture(scope="session")
def tiny_trace():
    """A 30-minute trace for tests that replay the simulator repeatedly."""
    return generate_trace(
        SyntheticTraceConfig(
            horizon_hours=0.5, seed=11, total_machines=120, load_factor=0.4
        )
    )


@pytest.fixture(scope="session")
def classifier(small_trace):
    """Classifier fitted on the small trace."""
    return TaskClassifier(ClassifierConfig(seed=0)).fit(list(small_trace.tasks))


@pytest.fixture(scope="session")
def manager(classifier):
    """Container manager over the session classifier."""
    return ContainerManager(classifier)


@pytest.fixture(scope="session")
def fleet():
    """The default 1/10-scale Table II fleet."""
    return table2_fleet(scale=0.1)


def make_task(
    job_id: int = 1,
    index: int = 0,
    submit_time: float = 0.0,
    duration: float = 100.0,
    priority: int = 0,
    scheduling_class: int = 0,
    cpu: float = 0.1,
    memory: float = 0.1,
    allowed_platforms=None,
) -> Task:
    """Terse Task factory for unit tests."""
    return Task(
        job_id=job_id,
        index=index,
        submit_time=submit_time,
        duration=duration,
        priority=priority,
        scheduling_class=scheduling_class,
        cpu=cpu,
        memory=memory,
        allowed_platforms=allowed_platforms,
    )
