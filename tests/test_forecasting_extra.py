"""Additional forecasting coverage: forecast_from, order selection, edges."""

import numpy as np
import pytest

from repro.forecasting import ArimaOrder, ArimaPredictor, fit_arima
from repro.forecasting.arima import _ols_ar_fit, select_order_aic


def ar1(n=150, phi=0.7, c=3.0, sigma=0.4, seed=2):
    rng = np.random.default_rng(seed)
    x = np.zeros(n)
    for t in range(1, n):
        x[t] = c + phi * x[t - 1] + rng.normal(0, sigma)
    return x


class TestForecastFrom:
    def test_matches_forecast_on_training_data(self):
        series = ar1()
        model = fit_arima(series, (2, 0, 1))
        np.testing.assert_allclose(
            model.forecast(3), model.forecast_from(series, 3), rtol=1e-9
        )

    def test_uses_fresh_observations(self):
        series = ar1()
        model = fit_arima(series[:100], (1, 0, 0))
        fresh = model.forecast_from(series[:120], 1)
        stale = model.forecast(1)
        # With 20 new observations the one-step forecast moves.
        expected = model.intercept + model.phi[0] * series[119]
        assert fresh[0] == pytest.approx(expected, rel=1e-9)
        assert fresh[0] != pytest.approx(stale[0], abs=1e-12) or series[99] == series[119]

    def test_differenced_forecast_from(self):
        t = np.arange(120, dtype=float)
        series = 2.0 * t
        model = fit_arima(series[:100], (0, 1, 0))
        forecast = model.forecast_from(series, 2)
        np.testing.assert_allclose(forecast, [240.0, 242.0], rtol=1e-6)

    def test_too_short_rejected(self):
        model = fit_arima(ar1(50), (1, 1, 0))
        with pytest.raises(ValueError):
            model.forecast_from([1.0], 1)


class TestConditionalSSE:
    def test_level_shift_does_not_kill_phi(self):
        """The regression that motivated conditioning: fitting a window far
        from zero must keep the AR coefficient."""
        series = ar1(phi=0.8, c=2.0) + 0.0  # mean = 10
        window = series[-64:]
        model = fit_arima(window, (1, 0, 0))
        assert model.phi[0] > 0.5

    def test_ols_ar_fit_short_series(self):
        phi, intercept = _ols_ar_fit(np.array([1.0, 2.0]), p=1)
        assert phi.shape == (1,)

    def test_ols_ar_fit_p_zero(self):
        phi, intercept = _ols_ar_fit(np.array([1.0, 2.0, 3.0]), p=0)
        assert phi.size == 0
        assert intercept == pytest.approx(2.0)


class TestOrderSelection:
    def test_prefers_differencing_for_trend(self):
        t = np.arange(150, dtype=float)
        series = 5.0 * t + np.random.default_rng(0).normal(0, 0.5, 150)
        model = select_order_aic(series, p_values=(0, 1), d_values=(0, 1), q_values=(0,))
        assert model.order.d == 1

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            select_order_aic([1.0, 2.0], p_values=(3,), d_values=(1,), q_values=(3,))


class TestArimaPredictorEdges:
    def test_forecast_clamped_to_observed_scale(self):
        predictor = ArimaPredictor(order=(1, 0, 0), window=16, refit_every=1)
        # A pathological ramp that could extrapolate wildly.
        for value in np.geomspace(1, 100, 16):
            predictor.update(value)
        forecast = predictor.forecast(8)
        assert forecast.max() <= 10.0 * 100.0

    def test_window_slides(self):
        predictor = ArimaPredictor(order=(1, 0, 0), window=8, refit_every=1)
        for value in [100.0] * 8 + [1.0] * 8:
            predictor.update(value)
        # The old level is forgotten with the window.
        assert predictor.forecast(1)[0] < 20.0

    def test_order_tuple_accepted(self):
        predictor = ArimaPredictor(order=(1, 1, 0))
        assert predictor.order == ArimaOrder(1, 1, 0)
