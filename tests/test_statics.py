"""Tests for repro.statics (harmonylint): rules, suppressions, baseline, CLI.

The fixture corpus under ``tests/fixtures/lint`` is a miniature tree
(``src/repro/...``) linted with ``--root tests/fixtures/lint`` so the
path-scoped rules (src-only, timing allowlist, numeric hot paths) see the
same layout they see in the real repository.
"""

import json
import shutil
import subprocess
from pathlib import Path

import pytest

from repro.cli import main
from repro.statics import (
    ALL_RULES,
    KNOWN_CODES,
    Baseline,
    BaselineError,
    Finding,
    LintEngine,
    build_baseline,
    lint_paths,
    load_baseline,
    save_baseline,
)

FIXTURE_ROOT = Path(__file__).parent / "fixtures" / "lint"
REPO_ROOT = Path(__file__).parents[1]


def lint_corpus(*paths: str):
    return lint_paths(list(paths) or ["src"], root=FIXTURE_ROOT)


def codes_in(report) -> set[str]:
    return {f.code for f in report.findings}


class TestRuleCatalog:
    def test_codes_are_unique(self):
        codes = [rule.code for rule in ALL_RULES]
        assert len(codes) == len(set(codes))

    def test_known_codes_cover_rules_and_syntax(self):
        assert {rule.code for rule in ALL_RULES} | {"SYN000"} == KNOWN_CODES

    def test_every_rule_documents_itself(self):
        for rule in ALL_RULES:
            assert rule.code and rule.name and rule.summary and rule.rationale
            assert rule.severity in ("error", "warning")


class TestBadCorpusTriggersEveryRule:
    def test_every_known_code_fires(self):
        report = lint_corpus("src")
        assert codes_in(report) == KNOWN_CODES

    @pytest.mark.parametrize(
        "fixture, code",
        [
            ("src/repro/bad/det001.py", "DET001"),
            ("src/repro/bad/det002.py", "DET002"),
            ("src/repro/bad/det003.py", "DET003"),
            ("src/repro/bad/det004.py", "DET004"),
            ("src/repro/bad/det005.py", "DET005"),
            ("src/repro/serve/det006.py", "DET006"),
            ("src/repro/bad/err001.py", "ERR001"),
            ("src/repro/bad/pck001.py", "PCK001"),
            ("src/repro/bad/api001.py", "API001"),
            ("src/repro/bad/sup001.py", "SUP001"),
            ("src/repro/bad/syn000.py", "SYN000"),
            ("src/repro/queueing/num001.py", "NUM001"),
            ("src/repro/bad/ord001.py", "ORD001"),
            ("src/repro/bad/conc001.py", "CONC001"),
            ("src/repro/bad/conc002.py", "CONC002"),
        ],
    )
    def test_bad_fixture_triggers_exactly_its_code(self, fixture, code):
        report = lint_corpus(fixture)
        assert codes_in(report) == {code}

    def test_det001_variants(self):
        report = lint_corpus("src/repro/bad/det001.py")
        messages = " ".join(f.message for f in report.findings)
        assert "random.Random() instantiated" in messages
        assert "legacy numpy global RNG" in messages
        assert "default_rng() without a seed" in messages

    def test_pck001_flags_lambda_and_closure(self):
        report = lint_corpus("src/repro/bad/pck001.py")
        messages = " ".join(f.message for f in report.findings)
        assert "lambda" in messages and "local_task" in messages


class TestGoodCorpusIsClean:
    @pytest.mark.parametrize(
        "fixture",
        [
            "src/repro/good/det001.py",
            "src/repro/good/det003.py",
            "src/repro/good/det004.py",
            "src/repro/good/det005.py",
            "src/repro/serve/det006_good.py",
            "src/repro/good/err001.py",
            "src/repro/good/pck001.py",
            "src/repro/good/api001.py",
            "src/repro/good/sup001.py",
            "src/repro/good/conc002.py",
            "src/repro/queueing/num001_good.py",
            "src/repro/runner/det002.py",
            # each half of the taint pair is clean on its own; FLOW001
            # only fires when both sides are linted together (see
            # TestProjectPasses).
            "src/repro/taint/entropy.py",
            "src/repro/taint/ledger.py",
        ],
    )
    def test_good_fixture_is_clean(self, fixture):
        report = lint_corpus(fixture)
        assert report.findings == []

    def test_det002_allowlist_is_path_scoped(self):
        """The same clock call flags outside runner/ but not inside it."""
        source = Path(FIXTURE_ROOT, "src/repro/runner/det002.py").read_text()
        engine = LintEngine()
        inside = engine.lint_source("src/repro/runner/det002.py", source)
        outside = engine.lint_source("src/repro/resilience/det002.py", source)
        assert inside == []
        assert {f.code for f in outside} == {"DET002"}

    def test_det006_is_scoped_to_the_control_plane(self):
        """Same source: flags in serve/ and simulation/, not elsewhere,
        and never in the seam files themselves."""
        source = Path(FIXTURE_ROOT, "src/repro/serve/det006.py").read_text()
        engine = LintEngine()
        serve = engine.lint_source("src/repro/serve/backoff.py", source)
        simulation = engine.lint_source("src/repro/simulation/pacing.py", source)
        elsewhere = engine.lint_source("src/repro/trace/backoff.py", source)
        seam = engine.lint_source("src/repro/serve/clock.py", source)
        assert {f.code for f in serve} == {"DET006"}
        assert {f.code for f in simulation} == {"DET006"}
        assert "DET006" not in {f.code for f in elsewhere}
        assert "DET006" not in {f.code for f in seam}

    def test_num001_only_fires_in_hot_paths(self):
        source = Path(FIXTURE_ROOT, "src/repro/queueing/num001.py").read_text()
        engine = LintEngine()
        hot = engine.lint_source("src/repro/queueing/num001.py", source)
        cold = engine.lint_source("src/repro/trace/num001.py", source)
        assert {f.code for f in hot} == {"NUM001"}
        assert cold == []


class TestSuppressions:
    def test_used_suppression_silences_and_counts(self):
        engine = LintEngine()
        source = Path(FIXTURE_ROOT, "src/repro/good/sup001.py").read_text()
        findings = engine.lint_source("src/repro/good/sup001.py", source)
        assert findings == []

    def test_unused_suppression_reports_sup001(self):
        report = lint_corpus("src/repro/bad/sup001.py")
        messages = sorted(f.message for f in report.findings)
        assert len(messages) == 3
        assert any("matched no finding" in m for m in messages)
        assert any("unknown rule code" in m for m in messages)
        assert any("blanket" in m for m in messages)

    def test_blanket_noqa_suppresses_any_code(self):
        engine = LintEngine()
        findings = engine.lint_source(
            "src/repro/x.py",
            "def f(scv):\n    return scv == 1.0  # repro: noqa\n",
        )
        assert findings == []

    def test_wrong_code_does_not_suppress(self):
        engine = LintEngine()
        findings = engine.lint_source(
            "src/repro/x.py",
            "def f(scv):\n    return scv == 1.0  # repro: noqa[DET005]\n",
        )
        codes = {f.code for f in findings}
        assert "DET004" in codes  # the violation still reports
        assert "SUP001" in codes  # and the mismatched noqa is called out

    def test_sup001_is_exempt_from_suppression(self):
        engine = LintEngine()
        findings = engine.lint_source(
            "src/repro/x.py",
            "X = 1  # repro: noqa[SUP001]\n",
        )
        assert {f.code for f in findings} == {"SUP001"}

    def test_directive_in_string_literal_is_ignored(self):
        engine = LintEngine()
        findings = engine.lint_source(
            "src/repro/x.py",
            'HELP = "# repro: noqa[DET004]"\n',
        )
        assert findings == []


class TestFingerprints:
    def test_fingerprint_is_line_number_independent(self):
        a = Finding(
            code="DET004", severity="error", path="src/repro/x.py",
            line=10, column=4, message="m", source_line="if x == 1.0:",
        )
        b = Finding(
            code="DET004", severity="error", path="src/repro/x.py",
            line=99, column=0, message="m", source_line="if x == 1.0:",
        )
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_distinguishes_code_and_path(self):
        base = dict(
            severity="error", line=1, column=0, message="m",
            source_line="if x == 1.0:",
        )
        a = Finding(code="DET004", path="src/repro/x.py", **base)
        b = Finding(code="DET003", path="src/repro/x.py", **base)
        c = Finding(code="DET004", path="src/repro/y.py", **base)
        assert len({a.fingerprint, b.fingerprint, c.fingerprint}) == 3


class TestBaseline:
    def _findings(self):
        return lint_corpus("src/repro/bad/det004.py").findings

    def test_round_trip(self, tmp_path):
        findings = self._findings()
        baseline = build_baseline(findings)
        path = tmp_path / "baseline.json"
        save_baseline(baseline, path)
        loaded = load_baseline(path)
        reported, absorbed = loaded.apply(findings)
        assert reported == []
        assert absorbed == len(findings)
        assert loaded.stale_fingerprints(findings) == []

    def test_new_findings_still_report(self, tmp_path):
        findings = self._findings()
        baseline = build_baseline(findings[:1])
        reported, absorbed = baseline.apply(findings)
        assert absorbed == 1
        assert len(reported) == len(findings) - 1

    def test_fixed_findings_become_stale(self):
        findings = self._findings()
        baseline = build_baseline(findings)
        assert baseline.stale_fingerprints([]) == sorted(
            f.fingerprint for f in findings
        )

    def test_justifications_survive_rebuild(self):
        findings = self._findings()
        first = build_baseline(findings)
        for entry in first.entries.values():
            entry.justification = "known-good: sentinel compare"
        second = build_baseline(findings, previous=first)
        assert all(
            e.justification == "known-good: sentinel compare"
            for e in second.entries.values()
        )

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}')
        with pytest.raises(BaselineError):
            load_baseline(path)
        path.write_text("not json")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_deterministic_serialization(self, tmp_path):
        findings = list(reversed(self._findings()))
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_baseline(build_baseline(findings), a)
        save_baseline(build_baseline(list(reversed(findings))), b)
        assert a.read_text() == b.read_text()


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        code = main(
            ["lint", "src/repro/good", "--root", str(FIXTURE_ROOT)]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_bad_corpus_exits_one(self, capsys):
        code = main(["lint", "src", "--root", str(FIXTURE_ROOT)])
        assert code == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "finding(s)" in out

    def test_missing_path_exits_two(self, capsys):
        code = main(["lint", "no/such/dir", "--root", str(FIXTURE_ROOT)])
        assert code == 2

    def test_bad_root_exits_two(self, capsys):
        code = main(["lint", "src", "--root", str(FIXTURE_ROOT / "nope")])
        assert code == 2

    def test_json_schema(self, capsys):
        code = main(
            ["lint", "src", "--root", str(FIXTURE_ROOT), "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "harmonylint"
        assert payload["version"] == 1
        assert set(payload["summary"]) == {
            "total", "baselined", "suppressed",
            "stale_baseline_entries", "by_code",
        }
        assert payload["summary"]["total"] == len(payload["findings"])
        required = {
            "code", "severity", "path", "line", "column",
            "message", "fingerprint",
        }
        for finding in payload["findings"]:
            # "trace" is only present on project-level findings that
            # carry a rendered call path.
            assert required <= set(finding) <= required | {"trace"}
        by_code = payload["summary"]["by_code"]
        assert sum(by_code.values()) == payload["summary"]["total"]
        assert set(by_code) == KNOWN_CODES

    def test_fix_baseline_then_clean(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        args = [
            "lint", "src", "--root", str(FIXTURE_ROOT),
            "--baseline", str(baseline),
        ]
        assert main(args + ["--fix-baseline"]) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "baselined" in capsys.readouterr().out

    def test_no_baseline_overrides_baseline_file(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        args = [
            "lint", "src", "--root", str(FIXTURE_ROOT),
            "--baseline", str(baseline),
        ]
        assert main(args + ["--fix-baseline"]) == 0
        capsys.readouterr()
        assert main(args + ["--no-baseline"]) == 1

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{broken")
        code = main(
            ["lint", "src", "--root", str(FIXTURE_ROOT),
             "--baseline", str(baseline)]
        )
        assert code == 2


class TestProjectPasses:
    def test_flow001_reports_cross_module_call_path(self):
        report = lint_corpus("src/repro/taint")
        [finding] = report.findings
        assert finding.code == "FLOW001"
        assert finding.path == "src/repro/taint/entropy.py"
        assert "os.urandom()" in finding.message
        assert "canonical_json()" in finding.message
        assert (
            "call path: repro.taint.entropy.stamp_entry"
            " -> repro.taint.ledger.record_entry" in finding.message
        )
        assert finding.trace == (
            "repro.taint.entropy.stamp_entry",
            "repro.taint.ledger.record_entry",
        )

    def test_ord001_names_the_container_and_path(self):
        report = lint_corpus("src/repro/bad/ord001.py")
        messages = sorted(f.message for f in report.findings)
        assert len(messages) == 2
        assert "dict.keys()" in messages[0]
        assert (
            "repro.bad.ord001._key_order -> repro.bad.ord001.summarize"
            in messages[0]
        )
        assert "set 'tags'" in messages[1]
        assert (
            "repro.bad.ord001._labels -> repro.bad.ord001.render"
            in messages[1]
        )

    def test_conc001_flags_bound_method_and_lambda_local(self):
        report = lint_corpus("src/repro/bad/conc001.py")
        messages = " ".join(f.message for f in report.findings)
        assert "bound method .work" in messages
        assert "local 'scale' holds a lambda" in messages
        assert "spawn site: repro.bad.conc001.ShardRunner.run_all:16" in messages

    def test_conc002_reports_global_and_spawn_site(self):
        report = lint_corpus("src/repro/bad/conc002.py")
        [finding] = report.findings
        assert finding.code == "CONC002"
        assert finding.severity == "warning"
        assert "module global '_COUNTS'" in finding.message
        assert "spawned at repro.bad.conc002.run_all:24" in finding.message
        assert finding.trace == (
            "repro.bad.conc002.run_shard",
            "repro.bad.conc002._bump",
        )

    def test_project_finding_respects_noqa(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "mod.py").write_text(
            "import json\n"
            "import os\n\n\n"
            "def canonical_json(payload) -> str:\n"
            "    return json.dumps(payload, sort_keys=True)\n\n\n"
            "def stamp() -> str:\n"
            "    nonce = os.urandom(4).hex()  # repro: noqa[FLOW001]\n"
            "    return canonical_json({'nonce': nonce})\n"
        )
        report = lint_paths(["src"], root=tmp_path)
        # FLOW001 is suppressed, and the suppression is counted as used
        # so no SUP001 appears either.
        assert report.findings == []
        assert report.suppressed == 1


class TestParallelLint:
    def test_parallel_matches_serial(self):
        serial = lint_corpus("src")
        parallel = lint_paths(["src"], root=FIXTURE_ROOT, jobs=2)
        assert [f.to_dict() for f in parallel.findings] == [
            f.to_dict() for f in serial.findings
        ]


class TestAnalysisCache:
    def _write_chain(self, root):
        pkg = root / "src" / "repro" / "chain"
        pkg.mkdir(parents=True)
        (pkg / "c.py").write_text("def h():\n    return 1\n")
        (pkg / "b.py").write_text(
            "from repro.chain.c import h\n\n\ndef f():\n    return h()\n"
        )
        (pkg / "a.py").write_text(
            "from repro.chain.b import f\n\n\ndef g():\n    return f()\n"
        )
        (pkg / "lone.py").write_text("def alone():\n    return 2\n")

    def test_warm_run_replays_identical_findings(self, tmp_path):
        cache = tmp_path / "cache.json"
        cold = lint_paths(["src"], root=FIXTURE_ROOT, cache=cache)
        assert cold.cache_hits == 0 and cold.cache_misses > 0
        warm = lint_paths(["src"], root=FIXTURE_ROOT, cache=cache)
        assert warm.cache_misses == 0
        assert warm.cache_hits == cold.cache_misses
        assert warm.suppressed == cold.suppressed
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]

    def test_transitive_import_invalidation(self, tmp_path):
        self._write_chain(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths(["src"], root=tmp_path, cache=cache)
        leaf = tmp_path / "src" / "repro" / "chain" / "c.py"
        leaf.write_text("def h():\n    return 3\n")
        warm = lint_paths(["src"], root=tmp_path, cache=cache)
        # c.py changed, so its importers b.py and a.py re-analyze too;
        # lone.py imports nothing in the chain and replays from cache.
        assert warm.cache_misses == 3
        assert warm.cache_hits == 1

    def test_corrupt_cache_falls_back_to_full_analysis(self, tmp_path):
        cache = tmp_path / "cache.json"
        cold = lint_paths(["src"], root=FIXTURE_ROOT, cache=cache)
        cache.write_text("{nonsense")
        warm = lint_paths(["src"], root=FIXTURE_ROOT, cache=cache)
        assert warm.cache_hits == 0
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]


class TestBaselineStability:
    def test_fingerprints_survive_line_moves(self):
        engine = LintEngine()
        src = "def f(scv):\n    return scv == 1.0\n"
        moved = "# header comment\n\n\n" + src
        a = engine.lint_source("src/repro/x.py", src)
        b = engine.lint_source("src/repro/x.py", moved)
        assert [f.fingerprint for f in a] == [f.fingerprint for f in b]

    def test_fingerprints_survive_function_reordering(self):
        engine = LintEngine()
        f1 = "def f(scv):\n    return scv == 1.0\n"
        f2 = "def g(load):\n    return load == 2.0\n"
        a = engine.lint_source("src/repro/x.py", f1 + "\n\n" + f2)
        b = engine.lint_source("src/repro/x.py", f2 + "\n\n" + f1)
        assert {f.fingerprint for f in a} == {f.fingerprint for f in b}

    def _saved_baseline(self, tmp_path):
        findings = lint_corpus("src/repro/bad/det004.py").findings
        path = tmp_path / "baseline.json"
        save_baseline(build_baseline(findings[:1]), path)
        return path

    def test_duplicate_fingerprint_entries_raise(self, tmp_path):
        path = self._saved_baseline(tmp_path)
        payload = json.loads(path.read_text())
        payload["findings"].append(dict(payload["findings"][0]))
        path.write_text(json.dumps(payload))
        with pytest.raises(BaselineError, match="duplicate"):
            load_baseline(path)

    def test_nonpositive_count_raises(self, tmp_path):
        path = self._saved_baseline(tmp_path)
        payload = json.loads(path.read_text())
        payload["findings"][0]["count"] = 0
        path.write_text(json.dumps(payload))
        with pytest.raises(BaselineError, match="count"):
            load_baseline(path)


class TestCliV2:
    def test_sarif_output(self, capsys):
        code = main(
            ["lint", "src", "--root", str(FIXTURE_ROOT),
             "--format", "sarif", "--no-cache"]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        [run] = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "harmonylint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert {"FLOW001", "ORD001", "CONC001", "CONC002"} <= rule_ids
        results = run["results"]
        assert results
        for result in results:
            assert "harmonylint/v1" in result["partialFingerprints"]
        flows = [r for r in results if r["ruleId"] == "FLOW001"]
        assert flows
        assert all("codeFlows" in r for r in flows)

    def test_graph_lists_callers_and_digest_paths(self, capsys):
        code = main(
            ["lint", "src", "--root", str(FIXTURE_ROOT),
             "--graph", "record_entry"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "repro.taint.ledger.record_entry" in out
        assert "repro.taint.entropy.stamp_entry" in out

    def test_graph_unknown_symbol_exits_two(self, capsys):
        code = main(
            ["lint", "src", "--root", str(FIXTURE_ROOT),
             "--graph", "no_such_symbol"]
        )
        assert code == 2

    def test_changed_only_scopes_report(self, tmp_path, capsys):
        if shutil.which("git") is None:
            pytest.skip("git unavailable")
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "stable.py").write_text(
            "def f(scv):\n    return scv == 1.0\n"
        )
        (pkg / "touched.py").write_text(
            "def g(load):\n    return load == 2.0\n"
        )
        git = ["git", "-C", str(tmp_path)]
        subprocess.run(git + ["init", "-q"], check=True)
        subprocess.run(git + ["add", "-A"], check=True)
        subprocess.run(
            git + ["-c", "user.email=t@example.com", "-c", "user.name=t",
                   "-c", "commit.gpgsign=false",
                   "commit", "-q", "--no-verify", "-m", "seed"],
            check=True,
        )
        (pkg / "touched.py").write_text(
            "def g(load):\n    return load == 2.5\n"
        )
        code = main(
            ["lint", "src", "--root", str(tmp_path),
             "--changed-only", "--no-baseline", "--no-cache"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "touched.py" in out
        assert "stable.py" not in out


class TestShippedTree:
    def test_repo_src_lints_clean_with_committed_baseline(self, capsys):
        code = main(["lint", "src", "--root", str(REPO_ROOT)])
        assert code == 0, capsys.readouterr().out

    def test_fixture_corpus_excluded_from_discovery(self):
        report = lint_paths(["tests"], root=REPO_ROOT)
        assert all("fixtures/lint" not in f.path for f in report.findings)
