"""Tests for the ARIMA substrate and streaming predictors (Section VI)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.forecasting import (
    ArimaModel,
    ArimaOrder,
    ArimaPredictor,
    EwmaPredictor,
    HoltPredictor,
    MovingAveragePredictor,
    NaivePredictor,
    fit_arima,
    make_predictor,
    rolling_origin_evaluation,
)
from repro.forecasting.arima import select_order_aic


def ar1_series(n=300, phi=0.8, c=2.0, sigma=0.5, seed=0):
    rng = np.random.default_rng(seed)
    x = np.zeros(n)
    for t in range(1, n):
        x[t] = c + phi * x[t - 1] + rng.normal(0, sigma)
    return x


class TestArimaOrder:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ArimaOrder(-1, 0, 0)

    def test_null_order_rejected(self):
        with pytest.raises(ValueError):
            ArimaOrder(0, 0, 0)


class TestArimaFit:
    def test_recovers_ar1_coefficient(self):
        series = ar1_series()
        model = fit_arima(series, (1, 0, 0))
        assert model.phi[0] == pytest.approx(0.8, abs=0.1)

    def test_forecast_converges_to_ar1_mean(self):
        series = ar1_series()
        model = fit_arima(series, (1, 0, 0))
        forecast = model.forecast(200)
        assert forecast[-1] == pytest.approx(2.0 / (1 - 0.8), rel=0.15)

    def test_d1_tracks_linear_trend(self):
        t = np.arange(100, dtype=float)
        series = 3.0 * t + 10.0
        model = fit_arima(series, (0, 1, 0))
        forecast = model.forecast(5)
        expected = 3.0 * np.arange(100, 105) + 10.0
        assert np.allclose(forecast, expected, rtol=0.05)

    def test_d2_tracks_quadratic(self):
        t = np.arange(80, dtype=float)
        series = 0.5 * t**2
        model = fit_arima(series, (0, 2, 0))
        forecast = model.forecast(3)
        expected = 0.5 * np.arange(80, 83) ** 2
        assert np.allclose(forecast, expected, rtol=0.1)

    def test_ma_fit_runs(self):
        rng = np.random.default_rng(1)
        e = rng.normal(size=300)
        series = 5.0 + e[1:] + 0.6 * e[:-1]
        model = fit_arima(series, (0, 0, 1))
        assert np.isfinite(model.aic)
        assert abs(model.theta[0]) < 1.5

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            fit_arima([1.0, 2.0], (2, 1, 2))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            fit_arima([1.0, np.nan, 2.0, 3.0, 4.0, 5.0], (1, 0, 0))

    def test_forecast_steps_validated(self):
        model = fit_arima(ar1_series(50), (1, 0, 0))
        with pytest.raises(ValueError):
            model.forecast(0)

    def test_residuals_and_sigma2(self):
        model = fit_arima(ar1_series(), (1, 0, 0))
        assert model.sigma2 == pytest.approx(0.25, rel=0.3)  # sigma=0.5

    def test_select_order_aic_prefers_structure(self):
        series = ar1_series()
        model = select_order_aic(series, p_values=(0, 1), d_values=(0,), q_values=(0,))
        assert model.order.p == 1

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 50), steps=st.integers(1, 10))
    def test_property_forecast_finite(self, seed, steps):
        series = ar1_series(n=80, seed=seed)
        model = fit_arima(series, (1, 0, 1))
        forecast = model.forecast(steps)
        assert forecast.shape == (steps,)
        assert np.isfinite(forecast).all()


class TestPredictors:
    def test_naive_repeats_last(self):
        p = NaivePredictor()
        p.update(3.0)
        p.update(7.0)
        assert list(p.forecast(3)) == [7.0, 7.0, 7.0]

    def test_naive_empty_forecasts_zero(self):
        assert NaivePredictor().forecast(2).tolist() == [0.0, 0.0]

    def test_moving_average_window(self):
        p = MovingAveragePredictor(window=2)
        for v in (1.0, 2.0, 3.0):
            p.update(v)
        assert p.forecast(1)[0] == pytest.approx(2.5)

    def test_ewma_smoothing(self):
        p = EwmaPredictor(alpha=0.5)
        p.update(0.0)
        p.update(10.0)
        assert p.forecast(1)[0] == pytest.approx(5.0)

    def test_holt_extrapolates_trend(self):
        p = HoltPredictor(alpha=0.8, beta=0.8)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            p.update(v)
        forecast = p.forecast(3)
        assert forecast[2] > forecast[0] > 5.0 * 0.8

    def test_forecasts_never_negative(self):
        for name in ("naive", "moving_average", "ewma", "holt", "arima"):
            p = make_predictor(name)
            for v in (-5.0, -3.0, -4.0, -6.0) * 5:
                p.update(v)
            assert (p.forecast(4) >= 0).all()

    def test_arima_predictor_falls_back_before_warmup(self):
        p = ArimaPredictor(order=(1, 0, 0))
        p.update(4.0)
        assert p.forecast(2).shape == (2,)

    def test_arima_predictor_learns_level(self):
        p = ArimaPredictor(order=(1, 0, 0), window=64, refit_every=4)
        rng = np.random.default_rng(0)
        for _ in range(60):
            p.update(10.0 + rng.normal(0, 0.5))
        assert p.forecast(1)[0] == pytest.approx(10.0, abs=1.5)

    def test_fallback_chain_uses_primary_when_healthy(self):
        from repro.forecasting import FallbackChainPredictor

        p = FallbackChainPredictor(primary="ewma")
        for v in (4.0, 5.0, 6.0):
            p.update(v)
        forecast = p.forecast(3)
        assert forecast.shape == (3,)
        assert p.rung_counts == {"primary": 1, "seasonal_naive": 0, "last_value": 0}
        assert p.timeline == []

    def test_fallback_chain_degrades_on_broken_primary(self):
        from repro.forecasting import FallbackChainPredictor

        class Broken:
            def update(self, value):
                pass

            def forecast(self, steps):
                raise RuntimeError("solver exploded")

        p = FallbackChainPredictor(primary=Broken(), period=2)
        for v in (3.0, 7.0, 3.0, 7.0):
            p.update(v)
        forecast = p.forecast(2)
        # Seasonal-naive rung: same slot one period ago.
        assert forecast == pytest.approx([3.0, 7.0])
        assert p.rung_counts["seasonal_naive"] == 1
        tick, rung, reason = p.timeline[0]
        assert (rung, reason) == (1, "RuntimeError")

    def test_fallback_chain_bottoms_out_at_last_value(self):
        from repro.forecasting import FallbackChainPredictor

        class NaNPredictor:
            def update(self, value):
                pass

            def forecast(self, steps):
                return np.full(steps, np.nan)

        p = FallbackChainPredictor(primary=NaNPredictor(), period=4)
        p._seasonal = NaNPredictor()  # both upper rungs emit garbage
        p.update(5.0)
        forecast = p.forecast(3)
        assert forecast == pytest.approx([5.0, 5.0, 5.0])
        assert p.rung_counts["last_value"] == 1
        assert p.timeline[-1][1] == 2

    def test_fallback_chain_survives_poisoned_observation(self):
        from repro.forecasting import FallbackChainPredictor

        p = FallbackChainPredictor(primary="naive")
        p.update(4.0)
        p.update(float("nan"))
        forecast = p.forecast(2)
        assert np.isfinite(forecast).all()
        assert any(reason == "nonfinite_observation" for _, _, reason in p.timeline)

    def test_fallback_registered_in_factory(self):
        from repro.forecasting import FallbackChainPredictor

        assert isinstance(make_predictor("fallback"), FallbackChainPredictor)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            make_predictor("oracle")

    def test_factory_kwargs(self):
        p = make_predictor("ewma", alpha=0.9)
        assert isinstance(p, EwmaPredictor)
        assert p.alpha == 0.9

    def test_bad_params(self):
        with pytest.raises(ValueError):
            EwmaPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            MovingAveragePredictor(window=0)
        with pytest.raises(ValueError):
            HoltPredictor(alpha=2.0)
        with pytest.raises(ValueError):
            ArimaPredictor(window=2)
        with pytest.raises(ValueError):
            ArimaPredictor(refit_every=0)


class TestEvaluation:
    def test_arima_beats_naive_on_ar1(self):
        series = ar1_series(n=200)
        naive = rolling_origin_evaluation(series, NaivePredictor, warmup=20)
        arima = rolling_origin_evaluation(
            series, lambda: ArimaPredictor(order=(1, 0, 0), window=64), warmup=20
        )
        assert arima.rmse < naive.rmse

    def test_score_fields(self):
        score = rolling_origin_evaluation(ar1_series(100), NaivePredictor)
        assert score.num_forecasts > 0
        assert score.mae <= score.rmse + 1e-9
        assert set(score.as_dict()) == {"mae", "rmse", "mape", "num_forecasts"}

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            rolling_origin_evaluation([1.0, 2.0], NaivePredictor, warmup=5)
