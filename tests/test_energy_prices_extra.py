"""Additional price-schedule and google-like energy-model tests."""

import numpy as np
import pytest

from repro.energy import (
    PriceSchedule,
    constant_price,
    google_like_energy_models,
    spot_price_series,
    time_of_use_price,
)
from repro.trace import google_like_machine_census


class TestPriceScheduleContract:
    def test_custom_schedule_callable(self):
        schedule = PriceSchedule(fn=lambda t: 0.05 + 0.01 * (t > 100), name="step")
        assert schedule(0) == pytest.approx(0.05)
        assert schedule(200) == pytest.approx(0.06)

    def test_negative_custom_price_rejected_at_call(self):
        schedule = PriceSchedule(fn=lambda t: -1.0, name="bad")
        with pytest.raises(ValueError, match="negative price"):
            schedule(0.0)

    def test_series_length(self):
        series = constant_price(0.1).series(horizon=3600, interval=300)
        assert series.shape == (12,)
        assert np.allclose(series, 0.1)

    def test_spot_mean_reverts(self):
        schedule = spot_price_series(
            horizon=86400 * 4, interval=300, base=0.10,
            volatility=0.01, mean_reversion=0.3, seed=2,
        )
        series = schedule.series(86400 * 4, 300)
        assert abs(float(series.mean()) - 0.10) < 0.05

    def test_spot_validation(self):
        with pytest.raises(ValueError):
            spot_price_series(horizon=0, interval=300)

    def test_tou_continuity_over_midnight(self):
        tou = time_of_use_price()
        # 23:59 and 00:01 are both off-peak.
        assert tou(23.98 * 3600) == tou(0.02 * 3600)


class TestGoogleLikeEnergyModels:
    def test_idle_scales_with_size(self):
        census = google_like_machine_census(200)
        models = google_like_energy_models(census)
        by_platform = {m.platform_id: m for m in models}
        big = by_platform[4]    # 1.0 / 1.0
        small = by_platform[5]  # 0.25 / 0.25
        assert big.idle_watts > small.idle_watts

    def test_power_monotone_in_utilization(self):
        census = google_like_machine_census(200)
        for model in google_like_energy_models(census):
            low = model.power_at(0.1, 0.1)
            high = model.power_at(0.9, 0.9)
            assert high > low
            assert model.power_at(0.0, 0.0) == pytest.approx(model.idle_watts)

    def test_counts_preserved(self):
        census = google_like_machine_census(200)
        models = google_like_energy_models(census)
        assert [m.count for m in models] == [mt.count for mt in census]
