"""Tests for the CBS-RELAX LP and the Lemma 1 first-fit rounding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.provisioning import (
    CbsRelaxSolver,
    ContainerType,
    FirstFitRounder,
    MachineClass,
    ProvisioningProblem,
    UtilityFunction,
    first_fit_pack,
)
from repro.provisioning.rounding import _largest_remainder_targets


def simple_problem(
    demand=None,
    W=1,
    available=(10, 10),
    price=0.1,
    switch_cost=0.0,
    omega=None,
):
    """Two machine classes (big efficient, small cheap), two containers."""
    machines = (
        MachineClass(1, "small", (0.25, 0.25), available[0], 60.0, (40.0, 10.0), switch_cost),
        MachineClass(2, "big", (1.0, 1.0), available[1], 200.0, (150.0, 40.0), switch_cost),
    )
    containers = (
        ContainerType(0, "tiny", (0.05, 0.05), UtilityFunction.capped_linear(0.01, 1000)),
        ContainerType(1, "large", (0.5, 0.4), UtilityFunction.capped_linear(0.1, 1000)),
    )
    if demand is None:
        demand = np.array([[20.0, 4.0]] * W)
    return ProvisioningProblem(
        machines=machines,
        containers=containers,
        demand=np.asarray(demand, dtype=float),
        prices=np.full(W, price),
        interval_seconds=300.0,
        overprovision=omega,
    )


class TestRelaxSolver:
    def test_satisfies_demand_when_profitable(self):
        problem = simple_problem()
        solution = CbsRelaxSolver().solve(problem)
        scheduled = solution.scheduled(0)
        assert scheduled[0] == pytest.approx(20.0, abs=1e-6)
        assert scheduled[1] == pytest.approx(4.0, abs=1e-6)

    def test_capacity_constraint_respected(self):
        problem = simple_problem()
        solution = CbsRelaxSolver().solve(problem)
        for m, machine in enumerate(problem.machines):
            for r in range(2):
                used = sum(
                    problem.containers[n].size[r] * solution.x[0, m, n]
                    for n in range(2)
                )
                assert used <= machine.capacity[r] * solution.z[0, m] + 1e-6

    def test_availability_respected(self):
        problem = simple_problem(demand=[[1000.0, 100.0]], available=(2, 2))
        solution = CbsRelaxSolver().solve(problem)
        assert solution.z[0, 0] <= 2 + 1e-9
        assert solution.z[0, 1] <= 2 + 1e-9

    def test_large_container_only_on_big_machine(self):
        problem = simple_problem()
        solution = CbsRelaxSolver().solve(problem)
        assert solution.x[0, 0, 1] == pytest.approx(0.0, abs=1e-9)

    def test_energy_cost_trades_off_utility(self):
        """With utility below energy cost, nothing is scheduled."""
        machines = (MachineClass(1, "m", (1.0, 1.0), 10, 500.0, (100.0, 0.0), 0.0),)
        containers = (
            ContainerType(0, "c", (0.9, 0.1), UtilityFunction.capped_linear(1e-9, 100)),
        )
        problem = ProvisioningProblem(
            machines, containers, np.array([[50.0]]), np.array([1.0]), 3600.0
        )
        solution = CbsRelaxSolver().solve(problem)
        assert solution.scheduled(0)[0] == pytest.approx(0.0, abs=1e-6)
        assert solution.z[0, 0] == pytest.approx(0.0, abs=1e-6)

    def test_switching_cost_damps_scale_down(self):
        """With big switch costs, the optimizer keeps machines on through a
        one-interval demand dip."""
        dip = [[20.0, 4.0], [0.0, 0.0], [20.0, 4.0]]
        cheap = CbsRelaxSolver().solve(simple_problem(demand=dip, W=3, switch_cost=0.0))
        sticky = CbsRelaxSolver().solve(simple_problem(demand=dip, W=3, switch_cost=50.0))
        assert sticky.z[1].sum() >= cheap.z[1].sum() - 1e-6
        assert sticky.switch_down.sum() <= cheap.switch_down.sum() + 1e-9

    def test_initial_active_charges_switching(self):
        problem = simple_problem(switch_cost=1.0)
        cold = CbsRelaxSolver().solve(problem, initial_active=np.zeros(2))
        warm_start = np.array([5.0, 5.0])
        warm = CbsRelaxSolver().solve(problem, initial_active=warm_start)
        assert cold.switch_up.sum() > warm.switch_up.sum() - 1e-9

    def test_committed_lower_bound(self):
        problem = simple_problem()
        committed = np.array([[5.0, 0.0], [0.0, 2.0]])
        solution = CbsRelaxSolver().solve(problem, committed=committed)
        assert solution.x[0, 0, 0] >= 5.0 - 1e-6
        assert solution.x[0, 1, 1] >= 2.0 - 1e-6

    def test_committed_clipped_to_capacity(self):
        problem = simple_problem(available=(1, 1))
        committed = np.array([[1000.0, 0.0], [0.0, 1000.0]])
        # Must not raise: infeasible stocks are scaled down.
        solution = CbsRelaxSolver().solve(problem, committed=committed)
        assert solution.status == "optimal"

    def test_committed_shape_validated(self):
        problem = simple_problem()
        with pytest.raises(ValueError):
            CbsRelaxSolver().solve(problem, committed=np.zeros((3, 3)))

    def test_higher_price_fewer_machines(self):
        """Price-aware provisioning: marginal (low-utility) work is shed
        when electricity is expensive."""
        machines = (MachineClass(1, "m", (1.0, 1.0), 50, 200.0, (150.0, 40.0), 0.0),)
        containers = (
            ContainerType(0, "c", (0.2, 0.2), UtilityFunction.capped_linear(0.002, 1000)),
        )
        def at_price(p):
            problem = ProvisioningProblem(
                machines, containers, np.array([[100.0]]), np.array([p]), 3600.0
            )
            return CbsRelaxSolver().solve(problem)
        cheap = at_price(0.01)
        expensive = at_price(10.0)
        assert expensive.z[0, 0] <= cheap.z[0, 0] + 1e-9
        assert expensive.scheduled(0)[0] < cheap.scheduled(0)[0]

    def test_objective_decomposition(self):
        problem = simple_problem()
        solution = CbsRelaxSolver().solve(problem)
        assert solution.objective == pytest.approx(
            solution.utility - solution.energy_cost - solution.switching_cost, abs=1e-6
        )


class TestFirstFitPack:
    def test_exact_fill(self):
        machines, leftover = first_fit_pack(
            counts=np.array([8]),
            sizes=[(0.25, 0.25)],
            capacity=(1.0, 1.0),
            max_machines=2,
        )
        assert len(machines) == 2
        assert leftover[0] == 0
        assert all(m.containers[0] == 4 for m in machines)

    def test_leftover_when_machines_exhausted(self):
        machines, leftover = first_fit_pack(
            counts=np.array([10]),
            sizes=[(0.5, 0.5)],
            capacity=(1.0, 1.0),
            max_machines=3,
        )
        assert len(machines) == 3
        assert leftover[0] == 4

    def test_oversized_container_never_placed(self):
        machines, leftover = first_fit_pack(
            counts=np.array([2]),
            sizes=[(1.5, 0.5)],
            capacity=(1.0, 1.0),
            max_machines=5,
        )
        assert leftover[0] == 2
        assert len(machines) == 0

    def test_priority_order_sheds_low_priority(self):
        machines, leftover = first_fit_pack(
            counts=np.array([4, 4]),
            sizes=[(0.5, 0.5), (0.5, 0.5)],
            capacity=(1.0, 1.0),
            max_machines=2,
            priorities=np.array([0.1, 10.0]),
        )
        # Type 1 (high priority) fully placed; type 0 sheds.
        assert leftover[1] == 0
        assert leftover[0] == 4

    def test_mixed_sizes_two_dimensional(self):
        # Greedy sequential fill is not optimal bin packing; with one spare
        # machine (Lemma 1's +1) everything must place.
        machines, leftover = first_fit_pack(
            counts=np.array([2, 4]),
            sizes=[(0.5, 0.1), (0.1, 0.4)],
            capacity=(1.0, 1.0),
            max_machines=3,
        )
        assert leftover.sum() == 0
        for machine in machines:
            assert machine.used[0] <= 1.0 + 1e-9
            assert machine.used[1] <= 1.0 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            first_fit_pack(np.array([1, 2]), [(0.1, 0.1)], (1.0, 1.0), 1)
        with pytest.raises(ValueError):
            first_fit_pack(np.array([-1]), [(0.1, 0.1)], (1.0, 1.0), 1)
        with pytest.raises(ValueError):
            first_fit_pack(np.array([1]), [(0.1, 0.1)], (1.0, 1.0), -1)

    @settings(max_examples=30, deadline=None)
    @given(
        counts=st.lists(st.integers(0, 30), min_size=1, max_size=4),
        seed=st.integers(0, 100),
    )
    def test_property_capacity_never_violated(self, counts, seed):
        rng = np.random.default_rng(seed)
        sizes = [tuple(rng.uniform(0.05, 0.6, size=2)) for _ in counts]
        machines, leftover = first_fit_pack(
            np.array(counts), sizes, (1.0, 1.0), max_machines=20
        )
        placed = np.zeros(len(counts), dtype=int)
        for machine in machines:
            assert (machine.used <= 1.0 + 1e-9).all()
            for n, c in machine.containers.items():
                placed[n] += c
        assert (placed + leftover == np.array(counts)).all()


class TestLargestRemainder:
    def test_column_totals_preserved(self):
        x = np.array([[0.4, 1.2], [0.4, 0.3], [0.4, 0.0]])
        targets = _largest_remainder_targets(x)
        assert targets[:, 0].sum() == 2  # ceil(1.2)
        assert targets[:, 1].sum() == 2  # ceil(1.5)

    def test_integers_pass_through(self):
        x = np.array([[2.0, 3.0], [1.0, 0.0]])
        assert np.array_equal(_largest_remainder_targets(x), x.astype(int))

    def test_thin_spread_not_zeroed(self):
        """The motivating bug: 0.4 + 0.4 must not round to zero."""
        x = np.array([[0.4], [0.4]])
        assert _largest_remainder_targets(x).sum() == 1


class TestFirstFitRounder:
    def test_lemma1_guarantee(self):
        """Lemma 1: floor(x/(2|R|)) containers of each type fit in
        floor(z*)+1 machines."""
        rng = np.random.default_rng(0)
        for trial in range(20):
            problem = simple_problem(
                demand=[[float(rng.integers(1, 60)), float(rng.integers(1, 10))]]
            )
            solution = CbsRelaxSolver().solve(problem)
            rounder = FirstFitRounder()
            scaled = rounder.lemma1_scaled_counts(problem, solution)
            for m, machine in enumerate(problem.machines):
                budget = int(np.floor(solution.z[0, m])) + 1
                _, leftover = first_fit_pack(
                    scaled[m],
                    [c.size for c in problem.containers],
                    machine.capacity,
                    max_machines=budget,
                )
                assert leftover.sum() == 0, f"trial {trial}: Lemma 1 violated"

    def test_round_respects_availability(self):
        problem = simple_problem(demand=[[500.0, 50.0]], available=(3, 3))
        solution = CbsRelaxSolver().solve(problem)
        plan = FirstFitRounder().round(problem, solution)
        assert plan.active[0] <= 3
        assert plan.active[1] <= 3

    def test_round_places_most_containers(self):
        problem = simple_problem()
        solution = CbsRelaxSolver().solve(problem)
        plan = FirstFitRounder().round(problem, solution)
        assert plan.placement_ratio(solution.scheduled(0)) >= 0.9
        assert plan.dropped.sum() <= 2

    def test_assignments_match_packed(self):
        problem = simple_problem()
        solution = CbsRelaxSolver().solve(problem)
        plan = FirstFitRounder().round(problem, solution)
        for m in range(len(problem.machines)):
            counted = np.zeros(len(problem.containers), dtype=int)
            for assignment in plan.assignments[m]:
                for n, c in assignment.containers.items():
                    counted[n] += c
            assert np.array_equal(counted, plan.packed[m])

    def test_bad_step_rejected(self):
        problem = simple_problem()
        solution = CbsRelaxSolver().solve(problem)
        with pytest.raises(ValueError):
            FirstFitRounder().round(problem, solution, t=5)

    def test_omega_inflates_packing_sizes(self):
        problem_plain = simple_problem()
        problem_omega = simple_problem(omega=np.array([2.0, 2.0]))
        s1 = CbsRelaxSolver().solve(problem_plain)
        s2 = CbsRelaxSolver().solve(problem_omega)
        # Same scheduled demand needs more machines under omega.
        assert s2.z[0].sum() >= s1.z[0].sum() - 1e-6
