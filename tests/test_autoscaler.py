"""Tests for the reactive threshold autoscaler."""

import pytest

from repro.energy import table2_fleet
from repro.provisioning import ThresholdAutoscaler, ThresholdConfig


@pytest.fixture()
def autoscaler():
    return ThresholdAutoscaler(table2_fleet(0.1), ThresholdConfig())


class TestThresholdConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdConfig(high_watermark=0.3, low_watermark=0.5)
        with pytest.raises(ValueError):
            ThresholdConfig(high_watermark=1.5)


class TestThresholdAutoscaler:
    def test_cold_start_boots_one_step(self, autoscaler):
        decision = autoscaler.decide(0.0, demand_cpu=5.0, demand_memory=5.0)
        assert decision.total_active() >= 1
        assert decision.quotas is None

    def test_zero_demand_stays_off(self, autoscaler):
        decision = autoscaler.decide(0.0, demand_cpu=0.0, demand_memory=0.0)
        assert decision.total_active() == 0

    def test_scales_up_under_pressure(self, autoscaler):
        previous = 0
        for tick in range(12):
            decision = autoscaler.decide(tick * 300.0, demand_cpu=40.0, demand_memory=40.0)
        assert decision.total_active() > 10
        # Capacity eventually covers demand below the high watermark.
        cpu, mem = autoscaler._capacity_of(autoscaler._target_total, None)
        assert max(40.0 / cpu, 40.0 / mem) <= ThresholdConfig().high_watermark + 0.15

    def test_scales_down_when_idle(self, autoscaler):
        for tick in range(12):
            autoscaler.decide(tick * 300.0, demand_cpu=40.0, demand_memory=40.0)
        high = autoscaler._target_total
        for tick in range(12, 40):
            decision = autoscaler.decide(tick * 300.0, demand_cpu=1.0, demand_memory=1.0)
        assert autoscaler._target_total < high

    def test_hysteresis_band_is_stable(self, autoscaler):
        """Within the band, the target does not oscillate."""
        for tick in range(15):
            autoscaler.decide(tick * 300.0, demand_cpu=30.0, demand_memory=30.0)
        stable = autoscaler._target_total
        for tick in range(15, 20):
            autoscaler.decide(tick * 300.0, demand_cpu=30.0, demand_memory=30.0)
            # Utilization sits inside (low, high): no movement.
            cpu, mem = autoscaler._capacity_of(stable, None)
            util = max(30.0 / cpu, 30.0 / mem)
            if ThresholdConfig().low_watermark < util < ThresholdConfig().high_watermark:
                assert autoscaler._target_total == stable

    def test_efficiency_order_fill(self, autoscaler):
        for tick in range(6):
            decision = autoscaler.decide(tick * 300.0, demand_cpu=20.0, demand_memory=10.0)
        # DL385 (platform 3) is the most efficient and fills first.
        assert decision.active[3] > 0

    def test_respects_availability(self):
        autoscaler = ThresholdAutoscaler(table2_fleet(0.1))
        available = {m.platform_id: 1 for m in table2_fleet(0.1)}
        for tick in range(20):
            decision = autoscaler.decide(
                tick * 300.0, demand_cpu=100.0, demand_memory=100.0, available=available
            )
        assert decision.total_active() <= 4

    def test_negative_demand_rejected(self, autoscaler):
        with pytest.raises(ValueError):
            autoscaler.decide(0.0, demand_cpu=-1.0, demand_memory=0.0)

    def test_end_to_end_policy(self, tiny_trace):
        from repro.simulation import HarmonyConfig, HarmonySimulation

        config = HarmonyConfig(policy="threshold", classifier_sample=1000)
        result = HarmonySimulation(config, tiny_trace).run()
        assert result.metrics.num_scheduled > 0.5 * tiny_trace.num_tasks
        assert len(result.decisions) > 0
