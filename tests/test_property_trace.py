"""Property-based tests on the trace layer (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.trace import MachineType, Trace, bin_arrivals, demand_timeseries
from repro.trace.reader import load_tasks_csv, save_tasks_csv
from tests.conftest import make_task

sizes = st.floats(min_value=1e-4, max_value=1.0, allow_nan=False)
times = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)
durations = st.floats(min_value=1.0, max_value=1e6, allow_nan=False)


@st.composite
def task_lists(draw, max_size=25):
    n = draw(st.integers(min_value=1, max_value=max_size))
    tasks = []
    for i in range(n):
        tasks.append(
            make_task(
                job_id=i + 1,
                index=0,
                submit_time=draw(times),
                duration=draw(durations),
                priority=draw(st.integers(0, 11)),
                scheduling_class=draw(st.integers(0, 3)),
                cpu=draw(sizes),
                memory=draw(sizes),
            )
        )
    return tasks


MACHINES = (MachineType(platform_id=1, cpu_capacity=1.0, memory_capacity=1.0, count=4),)


@settings(max_examples=30, deadline=None)
@given(tasks=task_lists())
def test_from_tasks_invariants(tasks):
    trace = Trace.from_tasks(MACHINES, tasks)
    assert trace.num_tasks == len(tasks)
    submit_times = [t.submit_time for t in trace.tasks]
    assert submit_times == sorted(submit_times)
    assert trace.horizon >= max(submit_times)


@settings(max_examples=30, deadline=None)
@given(tasks=task_lists())
def test_window_partition(tasks):
    """Tasks split across two windows exactly partition the trace."""
    trace = Trace.from_tasks(MACHINES, tasks)
    mid = trace.horizon / 2
    first = trace.window(0.0, mid) if mid > 0 else None
    second = trace.window(mid, trace.horizon) if mid < trace.horizon else None
    count = 0
    if first is not None:
        count += first.num_tasks
    if second is not None:
        count += second.num_tasks
    # Tasks exactly at the horizon edge belong to the second window.
    assert count == trace.num_tasks


@settings(max_examples=20, deadline=None)
@given(tasks=task_lists())
def test_csv_round_trip_property(tasks, tmp_path_factory):
    path = tmp_path_factory.mktemp("prop") / "tasks.csv"
    save_tasks_csv(tasks, path)
    loaded = load_tasks_csv(path)
    assert len(loaded) == len(tasks)
    for a, b in zip(sorted(loaded, key=lambda t: t.uid), sorted(tasks, key=lambda t: t.uid)):
        assert a.cpu == pytest.approx(b.cpu, rel=1e-6)
        assert a.submit_time == pytest.approx(b.submit_time, abs=1e-5)
        assert a.priority == b.priority


@settings(max_examples=30, deadline=None)
@given(tasks=task_lists(), bin_seconds=st.floats(min_value=10.0, max_value=5000.0))
def test_arrival_binning_conserves_mass(tasks, bin_seconds):
    trace = Trace.from_tasks(MACHINES, tasks)
    series = bin_arrivals(trace.tasks, trace.horizon, bin_seconds)
    assert series.total().sum() == trace.num_tasks


@settings(max_examples=20, deadline=None)
@given(tasks=task_lists())
def test_demand_series_non_negative_and_bounded(tasks):
    trace = Trace.from_tasks(MACHINES, tasks)
    _, cpu, mem = demand_timeseries(trace, 300.0)
    assert (cpu >= -1e-9).all() and (mem >= -1e-9).all()
    assert cpu.max() <= sum(t.cpu for t in tasks) + 1e-9
    assert mem.max() <= sum(t.memory for t in tasks) + 1e-9
