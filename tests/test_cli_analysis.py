"""Tests for the CLI and the analysis/report helpers."""

import json

import numpy as np
import pytest

from repro.analysis import (
    ascii_series,
    ascii_table,
    fig_arrival_rates,
    fig_classification,
    fig_demand_series,
    fig_duration_cdf,
    fig_energy_curves,
    fig_machine_census,
    fig_task_sizes,
    format_cdf_rows,
)
from repro.cli import main
from repro.energy import TABLE2_MODELS
from repro.trace import save_trace


class TestCli:
    def test_generate_and_analyze(self, tiny_trace, tmp_path, capsys):
        out = tmp_path / "trace"
        assert main(["generate", "--hours", "0.1", "--machines", "60",
                     "--seed", "1", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "saved" in captured
        assert main(["analyze", "--trace", str(out)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["num_machines"] == 60

    def test_classify_command(self, tiny_trace, tmp_path, capsys):
        out = tmp_path / "trace"
        save_trace(tiny_trace, out)
        assert main(["classify", "--trace", str(out)]) == 0
        table = capsys.readouterr().out
        assert "class" in table and "gratis" in table

    def test_simulate_command(self, tiny_trace, tmp_path, capsys):
        out = tmp_path / "trace"
        save_trace(tiny_trace, out)
        assert main(["simulate", "--trace", str(out), "--policy", "baseline"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["policy"] == "baseline"
        assert summary["tasks_submitted"] == tiny_trace.num_tasks

    def test_validate_command(self, small_trace, tmp_path, capsys):
        out = tmp_path / "trace"
        save_trace(small_trace, out)
        rc = main(["validate", "--trace", str(out)])
        output = capsys.readouterr().out
        assert "Calibration" in output
        assert rc == 0

    def test_figures_trace_only(self, tiny_trace, tmp_path, capsys):
        out = tmp_path / "trace"
        save_trace(tiny_trace, out)
        figures_dir = tmp_path / "figs"
        rc = main(["figures", "--trace", str(out), "--trace-only", str(figures_dir)])
        assert rc == 0
        svgs = list(figures_dir.glob("*.svg"))
        assert len(svgs) == 5

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestReportHelpers:
    def test_ascii_table_alignment(self):
        table = ascii_table(["a", "bb"], [[1, 2.5], ["xxx", 0.001]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_ascii_series_renders(self):
        times = np.arange(100.0)
        values = np.sin(times / 10.0)
        art = ascii_series(times, values, width=40, height=6, label="wave")
        assert "wave" in art
        assert "#" in art

    def test_ascii_series_empty(self):
        assert "(empty series)" in ascii_series(np.array([]), np.array([]), label="x")

    def test_format_cdf_rows(self):
        rows = format_cdf_rows(np.array([1.0, 2.0, 3.0, 4.0]), [2.5, 10.0])
        assert rows[0] == ("<= 2.5s", 0.5)
        assert rows[1] == ("<= 10s", 1.0)


class TestFigureHelpers:
    def test_fig_demand_series(self, tiny_trace):
        fig1, fig2 = fig_demand_series(tiny_trace)
        assert "cpu_demand" in fig1.series
        assert "memory_demand" in fig2.series

    def test_fig_machine_census(self, tiny_trace):
        fig = fig_machine_census(tiny_trace)
        assert len(fig.rows) == len(tiny_trace.machine_types)

    def test_fig_duration_cdf(self, tiny_trace):
        fig = fig_duration_cdf(tiny_trace)
        assert set(fig.series) == {"gratis", "other", "production"}

    def test_fig_task_sizes(self, tiny_trace):
        fig = fig_task_sizes(tiny_trace)
        assert {row["group"] for row in fig.rows} == {"gratis", "other", "production"}

    def test_fig_energy_curves(self):
        fig = fig_energy_curves(TABLE2_MODELS, points=5)
        assert len(fig.series) == 4
        for utilization, watts in fig.series.values():
            assert watts[0] < watts[-1]  # power grows with utilization

    def test_fig_classification(self, classifier):
        fig = fig_classification(classifier)
        assert len(fig.rows) == classifier.num_classes

    def test_fig_arrival_rates(self, tiny_trace):
        fig = fig_arrival_rates(tiny_trace)
        assert set(fig.series) == {"gratis", "other", "production"}
