"""Tests for the data-plane hardening layer.

Covers the streaming sanitizer (repro.trace.sanitize), the structured
reader errors it fronts, the deterministic trace-corruption fault
(repro.resilience.scenarios.corrupt_tasks_csv) and the dirty-trace
end-to-end path (``sanitized_simulate``), including the determinism
contract: same dirty bytes -> byte-identical report digest and summary.
"""

import json

import pytest

from repro.errors import TraceCorrupt, TraceFieldCorrupt
from repro.resilience import CORRUPTION_KINDS, corrupt_tasks_csv
from repro.trace import (
    load_tasks_csv,
    load_trace,
    save_trace,
    sanitize_tasks_csv,
    sanitize_trace,
)
from repro.trace.sanitize import (
    MIN_DURATION,
    QUARANTINE_RULES,
    REPAIR_RULES,
    RESOURCE_FLOOR,
    expected_columns,
)

HEADER = ",".join(expected_columns())

#: Hand-written dirty corpus: every row labelled with its expected fate.
#: Columns: timestamp, job_id, task_index, priority, scheduling_class,
#: cpu_request, memory_request, duration, allowed_platforms.
DIRTY_ROWS = (
    ("10.0,1,0,0,0,0.1,0.1,50.0,", "clean"),
    ("20.0,1,1,0,0,0.1,0.1,-5.0,", "duration_clamped"),
    ("oops,1,2,0,0,0.1,0.1,50.0,", "unparseable"),
    ("30.0,2,0,0,0,not-a-number,0.1,50.0,", "unparseable"),
    ("40.0,2,1,0,0,0.1,nan,50.0,", "nonfinite_resource"),
    ("inf,2,2,0,0,0.1,0.1,50.0,", "nonfinite_time"),
    ("50.0,3,0,99,0,0.1,0.1,50.0,", "priority_out_of_range"),
    ("-1.0,3,1,0,0,0.1,0.1,50.0,", "timestamp_out_of_range"),
    ("60.0,1,0,0,0,0.1,0.1,50.0,", "duplicate_id_renumbered"),
    ("70.0,3,2,0,9,0.1,0.1,50.0,", "scheduling_class_defaulted"),
    ("80.0,3,3,0,0,7.5,0.1,50.0,", "resource_clamped"),
    ("90.0,3,4", "unparseable"),  # truncated line
    ("95.0,3,5,0,0,0.1,0.1,50.0,2|4", "clean"),
)


def write_dirty_csv(path):
    path.write_text(HEADER + "\n" + "\n".join(row for row, _ in DIRTY_ROWS) + "\n")
    return path


class TestReaderErrors:
    def test_malformed_cell_locates_row_column_value(self, tmp_path):
        path = tmp_path / "tasks.csv"
        path.write_text(HEADER + "\n10.0,1,0,0,0,bogus,0.1,50.0,\n")
        with pytest.raises(TraceFieldCorrupt) as excinfo:
            load_tasks_csv(path)
        error = excinfo.value
        assert error.context["row"] == 1
        assert error.context["column"] == "cpu_request"
        assert error.context["value"] == "bogus"
        assert isinstance(error, ValueError)
        assert isinstance(error, TraceCorrupt)

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "tasks.csv"
        path.write_text("timestamp,job_id\n1.0,1\n")
        with pytest.raises(TraceFieldCorrupt) as excinfo:
            load_tasks_csv(path)
        assert excinfo.value.context["row"] == 0


class TestSanitizer:
    def test_classifies_every_row(self, tmp_path):
        tasks, report = sanitize_tasks_csv(write_dirty_csv(tmp_path / "t.csv"))
        assert report.records_total == len(DIRTY_ROWS)
        expected_quarantined = sum(
            1 for _, fate in DIRTY_ROWS if fate in QUARANTINE_RULES
        )
        expected_clean = sum(1 for _, fate in DIRTY_ROWS if fate == "clean")
        assert report.records_quarantined == expected_quarantined
        assert report.records_clean == expected_clean
        assert report.records_repaired == (
            len(DIRTY_ROWS) - expected_quarantined - expected_clean
        )
        assert len(tasks) == report.records_clean + report.records_repaired
        for _, fate in DIRTY_ROWS:
            if fate in QUARANTINE_RULES:
                assert report.quarantine_by_rule[fate] >= 1
            elif fate in REPAIR_RULES:
                assert report.repairs_by_rule[fate] >= 1

    def test_repairs_land_in_schema_bounds(self, tmp_path):
        tasks, _ = sanitize_tasks_csv(write_dirty_csv(tmp_path / "t.csv"))
        uids = [t.uid for t in tasks]
        assert len(uids) == len(set(uids))
        for task in tasks:
            assert task.duration >= MIN_DURATION or task.duration > 0
            assert RESOURCE_FLOOR <= task.cpu <= 1.0
            assert RESOURCE_FLOOR <= task.memory <= 1.0
            assert 0 <= task.scheduling_class <= 3

    def test_quarantine_file_is_jsonl_with_raw_record(self, tmp_path):
        _, report = sanitize_tasks_csv(write_dirty_csv(tmp_path / "t.csv"))
        lines = [
            json.loads(line)
            for line in open(report.quarantine_path, encoding="utf-8")
        ]
        assert len(lines) == report.records_quarantined
        for entry in lines:
            assert set(entry) == {"row", "rule", "detail", "record"}
            assert entry["rule"] in QUARANTINE_RULES
        rows = [entry["row"] for entry in lines]
        assert rows == sorted(rows)
        assert tuple((e["row"], e["rule"]) for e in lines) == report.quarantined_rows

    def test_digest_deterministic_across_directories(self, tmp_path):
        first = write_dirty_csv(tmp_path / "t.csv")
        # Same bytes, different directory and quarantine path.
        other_dir = tmp_path / "elsewhere"
        other_dir.mkdir()
        second = other_dir / "renamed.csv"
        second.write_text(first.read_text())
        _, report_a = sanitize_tasks_csv(first)
        _, report_b = sanitize_tasks_csv(second, quarantine_path=other_dir / "q.jsonl")
        assert report_a.quarantine_path != report_b.quarantine_path
        assert report_a.to_dict() == report_b.to_dict()
        assert report_a.digest == report_b.digest
        # And the digest payload never mentions the filesystem.
        assert "quarantine_path" not in report_a.to_dict()

    def test_never_raises_on_fuzzed_garbage(self, tmp_path):
        import numpy as np

        rng = np.random.default_rng(0)
        cells = ["nan", "inf", "-inf", "", "x", "-1", "99", "1e400", "0", "3.5"]
        rows = [
            ",".join(rng.choice(cells, size=int(rng.integers(1, 12))))
            for _ in range(200)
        ]
        path = tmp_path / "garbage.csv"
        path.write_text(HEADER + "\n" + "\n".join(rows) + "\n")
        tasks, report = sanitize_tasks_csv(path)
        # csv skips fully blank lines (a lone empty cell renders as one).
        expected = sum(1 for row in rows if row)
        assert report.records_total == expected
        assert report.records_quarantined + len(tasks) == expected
        assert report.digest  # canonical JSON serializes (no NaN leaked)

    def test_clean_trace_passes_through_bit_identically(self, tiny_trace, tmp_path):
        save_trace(tiny_trace, tmp_path / "trace")
        sanitized, report = sanitize_trace(tmp_path / "trace")
        loaded = load_trace(tmp_path / "trace")
        assert sanitized.tasks == loaded.tasks
        assert sanitized.horizon == loaded.horizon
        assert report.records_repaired == 0
        assert report.records_quarantined == 0
        assert report.records_clean == report.records_total == len(loaded.tasks)
        assert (tmp_path / "trace" / "task_events.csv.quarantine.jsonl").stat().st_size == 0


class TestCorruptTasksCsv:
    def test_deterministic_bytes(self, tiny_trace, tmp_path):
        for name in ("a", "b"):
            save_trace(tiny_trace, tmp_path / name)
            corrupt_tasks_csv(tmp_path / name / "task_events.csv", 0.2, seed=7)
        assert (
            (tmp_path / "a" / "task_events.csv").read_bytes()
            == (tmp_path / "b" / "task_events.csv").read_bytes()
        )

    def test_touches_requested_fraction(self, tiny_trace, tmp_path):
        save_trace(tiny_trace, tmp_path / "trace")
        path = tmp_path / "trace" / "task_events.csv"
        total = len(path.read_text().splitlines()) - 1
        corrupted = corrupt_tasks_csv(path, 0.25, seed=3)
        assert corrupted == min(max(1, round(0.25 * total)), total)

    def test_exercises_repairs_and_quarantines(self, tiny_trace, tmp_path):
        save_trace(tiny_trace, tmp_path / "trace")
        path = tmp_path / "trace" / "task_events.csv"
        corrupted = corrupt_tasks_csv(path, 0.3, seed=1)
        assert corrupted >= len(CORRUPTION_KINDS)  # every kind fired at least once
        _, report = sanitize_trace(tmp_path / "trace")
        assert report.records_quarantined > 0
        assert report.records_repaired > 0
        assert report.records_total - report.records_quarantined > 0

    def test_bad_fraction_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            corrupt_tasks_csv(tmp_path / "nope.csv", fraction=0.0)


class TestDirtyEndToEnd:
    PARAMS = {
        "trace": {"hours": 0.5, "machines": 120, "seed": 11, "load": 0.4},
        "corrupt_fraction": 0.15,
        "corrupt_seed": 7,
        "policy": "cbs",
        "predictor": "fallback",
        "guard": True,
        "window_hours": 0.5,
    }

    @pytest.fixture(scope="class")
    def dirty_summaries(self):
        from repro.runner import get_task

        task = get_task("sanitized_simulate")
        return task(dict(self.PARAMS))["summary"], task(dict(self.PARAMS))["summary"]

    def test_completes_and_is_deterministic(self, dirty_summaries):
        first, second = dirty_summaries
        blob = lambda s: json.dumps(  # noqa: E731
            s, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
        assert blob(first) == blob(second)  # also proves every value is finite

    def test_data_plane_block_reports_counts_and_rungs(self, dirty_summaries):
        data_plane = dirty_summaries[0]["resilience"]["data_plane"]
        sanitizer = data_plane["sanitizer"]
        assert sanitizer["records_quarantined"] > 0
        assert sanitizer["records_repaired"] > 0
        assert sanitizer["digest"]
        assert set(data_plane["forecast_fallback"]["rungs"]) == {
            "primary", "seasonal_naive", "last_value",
        }
        assert set(data_plane["classifier"]) == {
            "collapsed_fits", "kmeans_reseeds", "nonfinite_features_dropped",
        }
        assert set(data_plane["capacity_guard"]) == {
            "capacity_model_unstable", "container_sizing_error",
        }

    def test_clean_simulation_reports_null_sanitizer(self, tiny_trace):
        from repro.simulation import HarmonyConfig, HarmonySimulation

        result = HarmonySimulation(HarmonyConfig(policy="baseline"), tiny_trace).run()
        data_plane = result.summary()["resilience"]["data_plane"]
        assert data_plane["sanitizer"] is None


class TestSanitizeCli:
    def test_sanitize_command_reports_and_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        directory = tmp_path / "trace"
        directory.mkdir()
        write_dirty_csv(directory / "task_events.csv")
        (directory / "machine_types.csv").write_text(
            "platform_id,cpu_capacity,memory_capacity,count,name\n"
            "1,0.5,0.5,10,small\n"
        )
        (directory / "meta.csv").write_text('horizon,metadata_json\n100.0,{}\n')
        assert main(["sanitize", str(directory)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sanitization"]["records_quarantined"] > 0
        assert payload["digest"]
        # --strict turns a dirty ingest into a non-zero exit.
        assert main(["sanitize", str(directory), "--strict"]) == 1
