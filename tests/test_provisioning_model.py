"""Tests for the CBS problem model (utilities, machine/container classes)."""

import numpy as np
import pytest

from repro.energy import table2_fleet
from repro.provisioning import (
    ContainerType,
    MachineClass,
    ProvisioningProblem,
    UtilityFunction,
    build_problem,
)
from repro.provisioning.model import (
    _MIN_WORST_CASE_COST,
    default_utility_weight,
    group_utility_multiplier,
)


class TestUtilityFunction:
    def test_capped_linear(self):
        f = UtilityFunction.capped_linear(weight=2.0, demand=10.0)
        assert f(0) == 0.0
        assert f(5) == 10.0
        assert f(10) == 20.0
        assert f(15) == 20.0  # saturates
        assert f.saturation == 10.0

    def test_multi_segment_concave(self):
        f = UtilityFunction(segments=((5.0, 3.0), (5.0, 1.0)))
        assert f(5) == 15.0
        assert f(10) == 20.0
        assert f(100) == 20.0

    def test_increasing_slopes_rejected(self):
        with pytest.raises(ValueError, match="non-increasing"):
            UtilityFunction(segments=((5.0, 1.0), (5.0, 3.0)))

    def test_bad_segments(self):
        with pytest.raises(ValueError):
            UtilityFunction(segments=())
        with pytest.raises(ValueError):
            UtilityFunction(segments=((0.0, 1.0),))
        with pytest.raises(ValueError):
            UtilityFunction(segments=((5.0, -1.0),))
        with pytest.raises(ValueError):
            UtilityFunction.capped_linear(1.0, 0.0)

    def test_negative_argument(self):
        f = UtilityFunction.capped_linear(1.0, 1.0)
        with pytest.raises(ValueError):
            f(-1)

    def test_concavity_property(self):
        f = UtilityFunction(segments=((3.0, 5.0), (4.0, 2.0), (10.0, 0.5)))
        xs = np.linspace(0, 20, 41)
        values = [f(x) for x in xs]
        diffs = np.diff(values)
        assert all(a >= b - 1e-9 for a, b in zip(diffs, diffs[1:]))


class TestMachineClass:
    def test_from_machine_model(self, fleet):
        mc = MachineClass.from_machine_model(fleet[0])
        assert mc.platform_id == fleet[0].platform_id
        assert mc.available == fleet[0].count
        assert mc.capacity == (fleet[0].cpu_capacity, fleet[0].memory_capacity)

    def test_available_override(self, fleet):
        mc = MachineClass.from_machine_model(fleet[0], available=3)
        assert mc.available == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineClass(1, "m", (0.5,), 1, 10.0, (1.0, 2.0), 0.0)  # dim mismatch
        with pytest.raises(ValueError):
            MachineClass(1, "m", (0.0, 0.5), 1, 10.0, (1.0, 1.0), 0.0)
        with pytest.raises(ValueError):
            MachineClass(1, "m", (0.5, 0.5), -1, 10.0, (1.0, 1.0), 0.0)


class TestContainerType:
    def test_fits_capacity_and_platform(self):
        machine = MachineClass(2, "m", (0.5, 0.5), 10, 100.0, (50.0, 10.0), 0.01)
        small = ContainerType(0, "c", (0.1, 0.1), UtilityFunction.capped_linear(1, 1))
        big = ContainerType(1, "c", (0.6, 0.1), UtilityFunction.capped_linear(1, 1))
        pinned = ContainerType(
            2, "c", (0.1, 0.1), UtilityFunction.capped_linear(1, 1),
            allowed_platforms=frozenset({9}),
        )
        assert small.fits(machine)
        assert not big.fits(machine)
        assert not pinned.fits(machine)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            ContainerType(0, "c", (0.0, 0.1), UtilityFunction.capped_linear(1, 1))


class TestProvisioningProblem:
    def _problem(self, fleet, W=2):
        machines = tuple(MachineClass.from_machine_model(m) for m in fleet)
        containers = (
            ContainerType(0, "a", (0.05, 0.05), UtilityFunction.capped_linear(1.0, 10)),
            ContainerType(1, "b", (0.3, 0.2), UtilityFunction.capped_linear(2.0, 5)),
        )
        return ProvisioningProblem(
            machines=machines,
            containers=containers,
            demand=np.ones((W, 2)) * 4,
            prices=np.full(W, 0.1),
            interval_seconds=300.0,
        )

    def test_shapes(self, fleet):
        problem = self._problem(fleet)
        assert problem.horizon == 2
        assert problem.num_resources == 2
        assert problem.compatibility().shape == (len(fleet), 2)

    def test_compatibility_small_fits_everything(self, fleet):
        problem = self._problem(fleet)
        compat = problem.compatibility()
        assert compat[:, 0].all()  # the tiny container fits every model
        # The 0.3-cpu container cannot fit the R210 (cpu 4/48).
        assert not compat[0, 1]

    def test_energy_cost_terms(self, fleet):
        problem = self._problem(fleet)
        idle = problem.idle_cost_per_interval(price=0.1)
        assert idle.shape == (len(fleet),)
        # R210 (58 W idle) for 300 s at $0.1/kWh.
        assert idle[0] == pytest.approx(58.0 / 1000 * (300 / 3600) * 0.1, rel=1e-9)
        run = problem.container_energy_cost(price=0.1)
        assert run.shape == (len(fleet), 2)
        assert (run >= 0).all()
        # Bigger container costs more to run on the same machine.
        assert run[3, 1] > run[3, 0]

    def test_validation(self, fleet):
        machines = tuple(MachineClass.from_machine_model(m) for m in fleet)
        container = ContainerType(0, "a", (0.05, 0.05), UtilityFunction.capped_linear(1, 1))
        with pytest.raises(ValueError):
            ProvisioningProblem(machines, (container,), np.ones((2, 3)), np.full(2, 0.1), 300.0)
        with pytest.raises(ValueError):
            ProvisioningProblem(machines, (container,), -np.ones((2, 1)), np.full(2, 0.1), 300.0)
        with pytest.raises(ValueError):
            ProvisioningProblem(machines, (container,), np.ones((2, 1)), np.full(3, 0.1), 300.0)
        with pytest.raises(ValueError):
            ProvisioningProblem(machines, (container,), np.ones((2, 1)), np.full(2, 0.1), 0.0)
        with pytest.raises(ValueError):
            ProvisioningProblem(
                machines, (container,), np.ones((2, 1)), np.full(2, 0.1), 300.0,
                overprovision=np.array([0.5]),
            )

    def test_omega_default_ones(self, fleet):
        problem = self._problem(fleet)
        assert np.allclose(problem.omega(), 1.0)


class TestBuildProblem:
    def test_build_from_manager_specs(self, fleet, manager):
        class_ids = sorted(manager.specs)
        demand = np.ones((3, len(class_ids)))
        problem = build_problem(
            fleet, manager.specs, demand, prices=np.full(3, 0.1), interval_seconds=300.0
        )
        assert len(problem.containers) == len(class_ids)
        assert problem.horizon == 3
        # Containers are ordered by sorted class id.
        assert [c.class_id for c in problem.containers] == class_ids

    def test_demand_shape_mismatch(self, fleet, manager):
        with pytest.raises(ValueError):
            build_problem(
                fleet, manager.specs, np.ones((2, 1)), np.full(2, 0.1), 300.0
            )

    def test_default_weight_dominates_energy(self, fleet, manager):
        """Scheduling must beat idling whenever demand is real (margin > 1)."""
        machines = tuple(MachineClass.from_machine_model(m) for m in fleet)
        for spec in list(manager.specs.values())[:10]:
            weight = default_utility_weight(machines, spec, price=0.1, interval_seconds=300.0)
            costs = []
            for machine in machines:
                if all(s <= c for s, c in zip(spec.demand, machine.capacity)):
                    fill = max(s / c for s, c in zip(spec.demand, machine.capacity))
                    watts = machine.idle_watts * fill + sum(
                        a * s / c
                        for a, s, c in zip(machine.alpha_watts, spec.demand, machine.capacity)
                    )
                    costs.append(watts / 1000 * (300 / 3600) * 0.1)
            assert weight > max(costs)

    def test_group_multiplier_ordering(self, manager):
        by_group = {}
        for spec in manager.specs.values():
            by_group[spec.task_class.group.name] = group_utility_multiplier(spec)
        assert by_group["PRODUCTION"] > by_group["OTHER"] > by_group["GRATIS"]


class TestUtilityWeightFloor:
    """Boundary behavior of the worst-case-cost floor in the default weight."""

    def test_no_compatible_machine_gets_floor(self, manager):
        spec = next(iter(manager.specs.values()))
        weight = default_utility_weight((), spec, price=0.1, interval_seconds=300.0)
        assert weight == pytest.approx(3.0 * 0.001)

    def test_subfloor_cost_gets_same_floor(self, manager):
        """A cost of a few ulps must behave exactly like a cost of zero."""
        spec = next(iter(manager.specs.values()))
        ghost = MachineClass(
            platform_id=99,
            name="ghost",
            capacity=(1.0, 1.0),
            available=1,
            idle_watts=0.0,
            alpha_watts=(1e-12, 1e-12),
            switch_cost=0.0,
        )
        weight = default_utility_weight(
            (ghost,), spec, price=0.1, interval_seconds=300.0
        )
        assert weight == pytest.approx(3.0 * 0.001)

    def test_real_cost_unaffected_by_floor(self, fleet, manager):
        """A genuine cost above the tolerance is preserved, not floored."""
        spec = next(iter(manager.specs.values()))
        machines = tuple(MachineClass.from_machine_model(m) for m in fleet)
        weight = default_utility_weight(
            machines, spec, price=0.1, interval_seconds=300.0
        )
        worst = 0.0
        for machine in machines:
            if all(s <= c + 1e-12 for s, c in zip(spec.demand, machine.capacity)):
                fill = max(s / c for s, c in zip(spec.demand, machine.capacity))
                watts = machine.idle_watts * fill + sum(
                    a * s / c
                    for a, s, c in zip(machine.alpha_watts, spec.demand, machine.capacity)
                )
                worst = max(worst, watts / 1000.0 * (300.0 / 3600.0) * 0.1)
        assert worst > _MIN_WORST_CASE_COST
        assert weight == pytest.approx(3.0 * worst)
