"""Unit tests for the CI perf-gate comparator (scripts/check_bench_regression.py)."""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from check_bench_regression import (  # noqa: E402
    MIN_GATED_RSS_MB,
    MIN_GATED_WALL_S,
    compare_reports,
    main,
    measured_speedup,
)


def report(scenarios):
    return {
        "bench": "scalability",
        "scenarios": [
            {"name": name, "wall_s": wall, "summary_digest": digest}
            for name, wall, digest in scenarios
        ],
    }


BASELINE = report(
    [
        ("relax_c20_t4_s0", 2.0, "aaa"),
        ("relax_c80_t4_s0", 4.0, "bbb"),
        ("replay_object", 80.0, "ddd"),
        ("replay_columnar", 8.0, "ddd"),
    ]
)


class TestShares:
    def test_identical_run_passes(self):
        assert compare_reports(BASELINE, BASELINE) == []

    def test_uniform_slowdown_passes(self):
        # Twice as slow everywhere = slower hardware, not a regression.
        slower = report(
            [(s["name"], s["wall_s"] * 2, s["summary_digest"])
             for s in BASELINE["scenarios"]]
        )
        assert compare_reports(BASELINE, slower) == []

    def test_single_scenario_blowup_fails(self):
        fresh = report(
            [
                ("relax_c20_t4_s0", 2.0, "aaa"),
                ("relax_c80_t4_s0", 4.0, "bbb"),
                ("replay_object", 80.0, "ddd"),
                ("replay_columnar", 40.0, "ddd"),  # 5x slower than baseline
            ]
        )
        problems = compare_reports(BASELINE, fresh)
        assert len(problems) == 1
        assert "replay_columnar" in problems[0]
        assert "share regressed" in problems[0]

    def test_tiny_scenarios_not_gated(self):
        base = report([("tiny", MIN_GATED_WALL_S / 10, "x"), ("big", 50.0, "y")])
        fresh = report([("tiny", MIN_GATED_WALL_S / 2, "x"), ("big", 50.0, "y")])
        assert compare_reports(base, fresh) == []

    def test_missing_scenario_fails(self):
        fresh = report([("relax_c20_t4_s0", 2.0, "aaa")])
        problems = compare_reports(BASELINE, fresh)
        assert any("missing from fresh run" in p for p in problems)


class TestReplayPair:
    def test_speedup_measured(self):
        assert measured_speedup(BASELINE) == 10.0

    def test_speedup_none_without_pair(self):
        assert measured_speedup(report([("relax_c20_t4_s0", 2.0, "aaa")])) is None

    def test_digest_divergence_fails(self):
        fresh = report(
            [
                ("replay_object", 80.0, "ddd"),
                ("replay_columnar", 8.0, "EEE"),
            ]
        )
        problems = compare_reports(fresh, fresh)
        assert any("determinism contract" in p for p in problems)

    def test_speedup_floor_enforced(self):
        fresh = report(
            [
                ("replay_object", 16.0, "ddd"),
                ("replay_columnar", 8.0, "ddd"),
            ]
        )
        assert compare_reports(fresh, fresh, min_speedup=1.5) == []
        problems = compare_reports(fresh, fresh, min_speedup=4.0)
        assert any("below floor" in p for p in problems)

    def test_speedup_floor_requires_pair(self):
        fresh = report([("relax_c20_t4_s0", 2.0, "aaa")])
        problems = compare_reports(fresh, fresh, min_speedup=2.0)
        assert any("cannot measure" in p for p in problems)


def rss_report(scenarios, peak=None):
    payload = {
        "bench": "google_fleet",
        "scenarios": [
            {"name": name, "wall_s": 10.0, "summary_digest": "d",
             "rss_peak_mb": rss}
            for name, rss in scenarios
        ],
    }
    if peak is not None:
        payload["peak_rss_mb"] = peak
    return payload


RSS_BASELINE = rss_report(
    [("fleet_shard_00", 400.0), ("fleet_shard_01", 400.0),
     ("fleet_shard_02", 400.0)],
    peak=900.0,
)


class TestRssGate:
    def test_identical_run_passes(self):
        assert compare_reports(RSS_BASELINE, RSS_BASELINE) == []

    def test_uniform_growth_passes_shares_but_trips_peak(self):
        # All shards 2x: shares are flat, but the run high-water mark
        # doubled — exactly what the absolute peak check exists for.
        fresh = rss_report(
            [(s["name"], s["rss_peak_mb"] * 2)
             for s in RSS_BASELINE["scenarios"]],
            peak=1800.0,
        )
        problems = compare_reports(RSS_BASELINE, fresh)
        assert len(problems) == 1
        assert "run peak RSS regressed" in problems[0]

    def test_single_shard_blowup_fails_share(self):
        fresh = rss_report(
            [("fleet_shard_00", 1200.0), ("fleet_shard_01", 400.0),
             ("fleet_shard_02", 400.0)],
            peak=900.0,
        )
        problems = compare_reports(RSS_BASELINE, fresh)
        assert any(
            "fleet_shard_00" in p and "peak-RSS share regressed" in p
            for p in problems
        )

    def test_missing_rss_data_skips_checks(self):
        # A pre-RSS baseline (no rss_peak_mb, no peak_rss_mb) gates
        # nothing — old baselines stay comparable.
        legacy = report([("fleet_shard_00", 10.0, "d")])
        fresh = rss_report([("fleet_shard_00", 4000.0)], peak=4000.0)
        assert compare_reports(legacy, fresh) == []

    def test_tiny_rss_not_gated(self):
        base = rss_report(
            [("a", MIN_GATED_RSS_MB / 2), ("b", 400.0)], peak=MIN_GATED_RSS_MB / 2
        )
        fresh = rss_report(
            [("a", MIN_GATED_RSS_MB - 1), ("b", 400.0)], peak=4000.0
        )
        # Interpreter-baseline-sized readings never flap the gate, and a
        # sub-threshold baseline peak cannot anchor the growth check.
        assert compare_reports(base, fresh) == []

    def test_ceiling_enforced(self):
        problems = compare_reports(
            RSS_BASELINE, RSS_BASELINE, rss_ceiling_mb=800.0
        )
        assert any("exceeds ceiling" in p for p in problems)
        assert compare_reports(
            RSS_BASELINE, RSS_BASELINE, rss_ceiling_mb=1000.0
        ) == []

    def test_ceiling_requires_fresh_peak(self):
        fresh = rss_report([("fleet_shard_00", 400.0)])
        problems = compare_reports(fresh, fresh, rss_ceiling_mb=800.0)
        assert any("cannot check RSS ceiling" in p for p in problems)

    def test_cli_rss_ceiling(self, tmp_path, capsys):
        base_path = tmp_path / "base.json"
        fresh_path = tmp_path / "fresh.json"
        base_path.write_text(json.dumps(RSS_BASELINE))
        fresh_path.write_text(json.dumps(RSS_BASELINE))
        args = ["--baseline", str(base_path), "--fresh", str(fresh_path)]
        assert main([*args, "--rss-ceiling-mb", "1000"]) == 0
        assert "peak RSS (fresh run): 900 MiB" in capsys.readouterr().out
        assert main([*args, "--rss-ceiling-mb", "800"]) == 1
        assert "exceeds ceiling" in capsys.readouterr().err


class TestCli:
    def test_main_pass_and_fail(self, tmp_path, capsys):
        base_path = tmp_path / "base.json"
        fresh_path = tmp_path / "fresh.json"
        base_path.write_text(json.dumps(BASELINE))
        fresh_path.write_text(json.dumps(BASELINE))
        assert (
            main(["--baseline", str(base_path), "--fresh", str(fresh_path)]) == 0
        )
        out = capsys.readouterr().out
        assert "10.00x" in out and "perf gate passed" in out

        assert (
            main(
                [
                    "--baseline", str(base_path),
                    "--fresh", str(fresh_path),
                    "--min-speedup", "50",
                ]
            )
            == 1
        )
        assert "below floor" in capsys.readouterr().err
