"""Property tests for the columnar engine's numpy kernels in isolation.

Each kernel has a scalar reference implementation transcribed from the
object engine's code path; hypothesis drives randomized agreement checks:

- :func:`first_fit_index` must pick exactly the machine the rotating
  first-fit scan of :class:`FirstFitScheduler._pick_machine` picks;
- :func:`capacity_room` must make ``demand <= room`` equivalent to
  :meth:`Machine.fits`'s ``demand <= free + 1e-9`` (and unsatisfiable for
  non-schedulable machines);
- :func:`reissue_finish_times` must match the object engine's per-task
  stretch update and scale total remaining service time by exactly the
  stretch ratio.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.simulation.columnar import (
    FIT_EPS,
    capacity_room,
    first_fit_index,
    reissue_finish_times,
)

finite = st.floats(
    min_value=0.0, max_value=8.0, allow_nan=False, allow_infinity=False
)


def room_arrays(draw, count):
    cpu_free = np.array([draw(finite) for _ in range(count)])
    memory_free = np.array([draw(finite) for _ in range(count)])
    schedulable = np.array([draw(st.booleans()) for _ in range(count)])
    return (
        capacity_room(cpu_free, schedulable),
        capacity_room(memory_free, schedulable),
        cpu_free,
        memory_free,
        schedulable,
    )


def scalar_first_fit(cpu_room, memory_room, cpu, memory, start):
    """The object engine's rotating scan, transcribed over room arrays."""
    count = len(cpu_room)
    if count == 0:
        return -1
    start = start % count
    for offset in range(count):
        index = (start + offset) % count
        if cpu <= cpu_room[index] and memory <= memory_room[index]:
            return index
    return -1


class TestFirstFitIndex:
    @given(st.data())
    def test_matches_scalar_reference(self, data):
        count = data.draw(st.integers(min_value=0, max_value=12))
        cpu_room, memory_room, _, _, _ = room_arrays(data.draw, count)
        cpu = data.draw(finite)
        memory = data.draw(finite)
        start = data.draw(st.integers(min_value=0, max_value=30))
        expected = scalar_first_fit(cpu_room, memory_room, cpu, memory, start)
        assert first_fit_index(cpu_room, memory_room, cpu, memory, start) == expected

    def test_wraps_around_hint(self):
        cpu_room = np.array([1.0, 0.0, 1.0]) + FIT_EPS
        memory_room = np.array([1.0, 1.0, 1.0]) + FIT_EPS
        # From hint 1: index 1 has no cpu room, index 2 fits first.
        assert first_fit_index(cpu_room, memory_room, 0.5, 0.5, 1) == 2
        # From hint 2 it fits immediately; wrap to 0 only after the tail.
        assert first_fit_index(cpu_room, memory_room, 0.5, 0.5, 2) == 2

    def test_empty_pool(self):
        empty = np.empty(0)
        assert first_fit_index(empty, empty, 0.1, 0.1, 0) == -1


class TestCapacityRoom:
    @given(st.data())
    def test_fit_semantics_match_machine_fits(self, data):
        count = data.draw(st.integers(min_value=1, max_value=8))
        cpu_room, memory_room, cpu_free, memory_free, schedulable = room_arrays(
            data.draw, count
        )
        cpu = data.draw(finite)
        memory = data.draw(finite)
        for i in range(count):
            # Machine.fits: schedulable and demand <= free + 1e-9 per dim.
            expected = bool(
                schedulable[i]
                and cpu <= cpu_free[i] + 1e-9
                and memory <= memory_free[i] + 1e-9
            )
            got = bool(cpu <= cpu_room[i] and memory <= memory_room[i])
            assert got == expected

    def test_non_schedulable_is_unsatisfiable(self):
        room = capacity_room(np.array([5.0]), np.array([False]))
        assert room[0] == -np.inf
        assert not (0.0 <= room[0])


class TestReissueFinishTimes:
    @given(st.data())
    def test_matches_scalar_update(self, data):
        count = data.draw(st.integers(min_value=1, max_value=16))
        now = data.draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
        finishes = np.array(
            [
                now + data.draw(st.floats(min_value=-100.0, max_value=1e5,
                                          allow_nan=False))
                for _ in range(count)
            ]
        )
        ratio = data.draw(st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
        got = reissue_finish_times(finishes, now, ratio)
        for i in range(count):
            expected = now + max(finishes[i] - now, 0.0) * ratio
            assert got[i] == expected

    @given(st.data())
    def test_total_remaining_service_scales_by_ratio(self, data):
        count = data.draw(st.integers(min_value=1, max_value=16))
        now = 1000.0
        remaining = np.array(
            [data.draw(st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
             for _ in range(count)]
        )
        ratio = data.draw(st.floats(min_value=0.25, max_value=4.0, allow_nan=False))
        new_finishes = reissue_finish_times(now + remaining, now, ratio)
        total_before = float(np.sum(remaining))
        total_after = float(np.sum(new_finishes - now))
        assert np.isclose(total_after, ratio * total_before, rtol=1e-9, atol=1e-9)

    def test_past_finishes_clamp_to_now(self):
        finishes = np.array([50.0, 100.0])
        got = reissue_finish_times(finishes, 100.0, 2.0)
        assert got[0] == 100.0  # already overdue: fires immediately, no stretch
        assert got[1] == 100.0
