"""Differential test: Eq. 1 analytics vs the discrete-event M/G/N queue.

The analytical layer (:mod:`repro.queueing.mgn`) and the simulator
(:mod:`repro.queueing.simulate`) implement the same queue independently —
one via the Allen-Cunneen approximation over Erlang-C, one by replaying
arrivals against N servers.  Running both on matched parameters bounds the
modelling error the container manager inherits.

Documented tolerances (matching ``bench_queueing_model``'s accuracy
classes):

- ``scv <= 1`` (M/M/N and hypo-exponential service): Eq. 1 is near-exact;
  we demand 35% relative agreement on mean wait, which covers the Monte
  Carlo noise of ~10k simulated tasks.
- ``scv > 1`` (heavy-tailed service): Allen-Cunneen is a two-moment
  approximation; the accepted accuracy class is a factor of 2, and the
  prediction must not *undershoot* the simulation by more than 2x either.
"""

import math

import pytest

from repro.queueing import (
    erlang_c,
    mgn_mean_wait,
    required_containers,
    simulate_mgn_queue,
)

#: (arrival_rate, service_rate, servers, scv) — matched parameter grid
#: spanning light/heavy load and low/high service variability.
GRID = [
    (6.0, 1.0, 8, 1.0),   # rho = 0.75, exponential service
    (8.0, 1.0, 12, 1.0),  # rho = 0.67, more servers
    (3.0, 1.0, 5, 0.5),   # rho = 0.60, low-variance service
    (9.0, 1.0, 10, 1.0),  # rho = 0.90, near-critical
    (4.0, 1.0, 6, 2.0),   # rho = 0.67, heavy-tailed
    (5.0, 1.0, 7, 4.0),   # rho = 0.71, heavier tail
]


@pytest.mark.parametrize("lam,mu,n,scv", GRID)
def test_mean_wait_matches_simulation(lam, mu, n, scv):
    predicted = mgn_mean_wait(lam, mu, n, scv=scv)
    simulated = simulate_mgn_queue(
        lam, mu, n, scv=scv, num_tasks=12_000, seed=1
    ).mean_wait
    assert math.isfinite(predicted)
    if scv <= 1.0:
        assert predicted == pytest.approx(simulated, rel=0.35)
    else:
        # Two-moment approximation class: within a factor of 2, both ways.
        assert predicted <= simulated * 2.0 + 1e-9
        assert predicted >= simulated * 0.5 - 1e-9


@pytest.mark.parametrize("lam,mu,n", [(6.0, 1.0, 8), (9.0, 1.0, 10), (3.0, 1.0, 5)])
def test_wait_probability_matches_simulation(lam, mu, n):
    predicted = erlang_c(lam / mu, n)
    simulated = simulate_mgn_queue(
        lam, mu, n, scv=1.0, num_tasks=12_000, seed=2
    ).wait_probability
    assert predicted == pytest.approx(simulated, abs=0.15)


def test_required_containers_honoured_by_simulation():
    """The inverted count actually delivers the delay in the event queue.

    This is the contract the container manager relies on: schedule
    ``required_containers`` servers and the measured mean wait lands at or
    under the target (up to Monte Carlo noise — we allow 50% headroom,
    well inside the over-provisioning the controller applies anyway).
    """
    lam, mu, target = 7.0, 0.5, 3.0
    n = required_containers(lam, mu, target)
    result = simulate_mgn_queue(lam, mu, n, scv=1.0, num_tasks=15_000, seed=3)
    assert result.mean_wait <= target * 1.5
    # One fewer server must be visibly worse or unstable.
    stability_floor = int(math.floor(lam / mu)) + 1
    if n > stability_floor:
        worse = simulate_mgn_queue(lam, mu, n - 1, scv=1.0, num_tasks=15_000, seed=3)
        assert worse.mean_wait > result.mean_wait
