"""Public API surface tests: everything advertised in __all__ imports."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


@pytest.mark.parametrize(
    "module",
    [
        "repro.trace",
        "repro.clustering",
        "repro.classification",
        "repro.forecasting",
        "repro.queueing",
        "repro.containers",
        "repro.energy",
        "repro.provisioning",
        "repro.simulation",
        "repro.analysis",
    ],
)
def test_subpackage_all_resolves(module):
    mod = importlib.import_module(module)
    assert hasattr(mod, "__all__") and mod.__all__
    for name in mod.__all__:
        assert getattr(mod, name, None) is not None, f"{module}.{name}"


def test_every_public_symbol_documented():
    """Every public class/function in __all__ carries a docstring."""
    for module_name in (
        "repro.trace",
        "repro.clustering",
        "repro.classification",
        "repro.forecasting",
        "repro.queueing",
        "repro.containers",
        "repro.energy",
        "repro.provisioning",
        "repro.simulation",
    ):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            obj = getattr(module, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
