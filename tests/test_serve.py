"""Tests for repro.serve: the crash-safe online provisioning daemon.

Covers the config split (deterministic vs hot-reloadable, validate-then-
swap reload), the three feeders and the arrival line protocol, the online
classifier, the determinism contract of :class:`ServeState` (chain
digests, checkpoint round-trips, idempotent restore), chaos projection
(blackouts, outages, partitions, solver outages, control-step crashes),
collision-safe tick journals and digest-verified checkpoints, the
watchdog's snapshot/rollback/retry invariance, hot reload and the HTTP
health/readiness/metrics endpoints.

Everything in-process runs on :class:`ManualClock` — no wall-clock reads,
no sleeps.  The subprocess SIGKILL drills live in ``test_serve_crash.py``.
"""

import json
import threading
import urllib.request

import pytest

from repro.energy.catalog import table2_fleet
from repro.errors import (
    ConfigInvalid,
    ControlStepFailed,
    JournalCorrupt,
    ServeError,
)
from repro.serve import (
    CHAOS_PRESETS,
    ArrivalRecord,
    CheckpointStore,
    ControlCrash,
    FileTailFeeder,
    HealthServer,
    ManualClock,
    OnlineClassifier,
    RELOADABLE_FIELDS,
    ReplayFeeder,
    ServeChaos,
    ServeConfig,
    ServeDaemon,
    ServeMetrics,
    ServeState,
    SocketFeeder,
    SolverOutage,
    TickBatch,
    TickJournal,
    derive_run_id,
    load_config_file,
    parse_arrival_line,
    restore,
)
from repro.serve.chaos import drill_plan
from repro.serve.state import NO_EFFECTS, ChaosEffects
from repro.trace import SyntheticTraceConfig, generate_trace

CONFIG = ServeConfig(checkpoint_interval_ticks=4)
HORIZON = 2 * 3600.0  # 24 ticks at the default 300 s


@pytest.fixture(scope="module")
def trace_tasks():
    trace = generate_trace(
        SyntheticTraceConfig(horizon_hours=2.0, seed=11, load_factor=0.8)
    )
    return trace.tasks


def make_feeder(tasks, max_ticks=None):
    return ReplayFeeder(
        tasks, horizon=HORIZON, tick_seconds=CONFIG.tick_seconds, max_ticks=max_ticks
    )


def make_chaos(preset="drill", config=CONFIG):
    plan, serve_faults = CHAOS_PRESETS[preset](config.tick_seconds)
    return ServeChaos(
        plan,
        table2_fleet(config.fleet_scale),
        config.tick_seconds,
        serve_faults=serve_faults,
    )


def run_state(tasks, chaos=None, ticks=None, config=CONFIG):
    state = ServeState(config)
    for batch in make_feeder(tasks, max_ticks=ticks).batches():
        effects = chaos.effects(batch.tick) if chaos else NO_EFFECTS
        state.apply_tick(batch, effects)
    return state


# ---------------------------------------------------------------- config


class TestServeConfig:
    def test_defaults_are_valid(self):
        config = ServeConfig()
        assert config.tick_seconds == 300.0
        assert set(RELOADABLE_FIELDS) <= set(config.to_dict())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tick_seconds": 0.0},
            {"num_classes": 0},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"seasonal_period": 0},
            {"target_delay_seconds": -1.0},
            {"overprovision": 0.5},
            {"fleet_scale": 0.0},
            {"checkpoint_interval_ticks": 0},
            {"watchdog_attempts": 0},
            {"watchdog_backoff_base_seconds": -0.1},
            {"stage_budget_seconds": 0.0},
            {"tick_delay_seconds": -1.0},
            {"health_stale_seconds": 0.0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigInvalid):
            ServeConfig(**kwargs)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigInvalid, match="unknown config field"):
            ServeConfig.from_dict({"tick_secnds": 300.0})

    def test_deterministic_fields_exclude_ops_knobs(self):
        fields = ServeConfig().deterministic_fields()
        assert not set(fields) & RELOADABLE_FIELDS
        assert "tick_seconds" in fields

    def test_reload_swaps_ops_knobs(self):
        old = ServeConfig(checkpoint_interval_ticks=8)
        candidate = ServeConfig(checkpoint_interval_ticks=2, watchdog_attempts=5)
        merged = old.reloaded(candidate)
        assert merged.checkpoint_interval_ticks == 2
        assert merged.watchdog_attempts == 5

    def test_reload_rejects_deterministic_drift(self):
        old = ServeConfig()
        candidate = ServeConfig(tick_seconds=60.0)
        with pytest.raises(ConfigInvalid, match="tick_seconds"):
            old.reloaded(candidate)

    def test_load_config_file_round_trip(self, tmp_path):
        path = tmp_path / "serve.json"
        path.write_text(json.dumps({"checkpoint_interval_ticks": 3}))
        assert load_config_file(path).checkpoint_interval_ticks == 3

    def test_load_config_file_rejects_bad_json(self, tmp_path):
        path = tmp_path / "serve.json"
        path.write_text("{nope")
        with pytest.raises(ConfigInvalid, match="not valid JSON"):
            load_config_file(path)


# ---------------------------------------------------------------- feeders


class TestLineProtocol:
    def test_parses_valid_arrival(self):
        record = parse_arrival_line(
            '{"time": 10.0, "cpu": 0.1, "memory": 0.2, "duration": 60}'
        )
        assert record == ArrivalRecord(10.0, 0.1, 0.2, 60.0, 0)

    @pytest.mark.parametrize("keyword", ["tick", "end"])
    def test_control_keywords(self, keyword):
        assert parse_arrival_line(json.dumps({"kind": keyword})) == keyword

    @pytest.mark.parametrize(
        "line",
        [
            "",
            "not json",
            "[1, 2]",
            '{"time": 1.0}',
            '{"time": -5, "cpu": 0.1, "memory": 0.1, "duration": 60}',
            '{"time": 1, "cpu": 0.0, "memory": 0.1, "duration": 60}',
            '{"time": 1, "cpu": 1.5, "memory": 0.1, "duration": 60}',
            '{"time": 1, "cpu": 0.1, "memory": 0.1, "duration": 0}',
            '{"time": NaN, "cpu": 0.1, "memory": 0.1, "duration": 60}',
        ],
    )
    def test_rejects_malformed(self, line):
        assert parse_arrival_line(line) is None


class TestReplayFeeder:
    def test_bins_by_tick_and_resumes(self, trace_tasks):
        feeder = make_feeder(trace_tasks)
        batches = list(feeder.batches())
        assert [b.tick for b in batches] == list(range(24))
        assert sum(len(b.arrivals) for b in batches) > 0
        # start_tick resumes the identical suffix.
        assert list(feeder.batches(start_tick=10)) == batches[10:]

    def test_within_tick_order_is_stable(self, trace_tasks):
        shuffled = list(reversed(trace_tasks))
        a = list(make_feeder(trace_tasks).batches())
        b = list(make_feeder(shuffled).batches())
        assert a == b


class TestFileTailFeeder:
    def test_reads_protocol_and_counts_rejects(self, tmp_path):
        path = tmp_path / "arrivals.jsonl"
        lines = [
            '{"time": 5.0, "cpu": 0.1, "memory": 0.1, "duration": 30}',
            "garbage line",
            '{"time": 12.0, "cpu": 0.2, "memory": 0.1, "duration": 30}',
            '{"kind": "end"}',
        ]
        path.write_text("\n".join(lines) + "\n")
        feeder = FileTailFeeder(path, tick_seconds=10.0, clock=ManualClock())
        batches = list(feeder.batches())
        assert [b.tick for b in batches] == [0, 1]
        assert len(batches[0].arrivals) == 1
        assert len(batches[1].arrivals) == 1
        assert feeder.rejected == 1


class TestSocketFeeder:
    def test_accepts_one_client_stream(self):
        feeder = SocketFeeder(port=0, tick_seconds=10.0, accept_timeout=5.0)
        host, port = feeder.address

        def client():
            import socket

            with socket.create_connection((host, port), timeout=5.0) as conn:
                conn.sendall(
                    b'{"time": 3.0, "cpu": 0.1, "memory": 0.1, "duration": 30}\n'
                    b'{"kind": "tick"}\n'
                    b'{"kind": "end"}\n'
                )

        thread = threading.Thread(target=client)
        thread.start()
        batches = list(feeder.batches())
        thread.join()
        assert len(batches) >= 1
        assert len(batches[0].arrivals) == 1


# ------------------------------------------------------------- classifier


class TestOnlineClassifier:
    def test_first_k_arrivals_seed_centroids(self):
        classifier = OnlineClassifier(2)
        assert classifier.observe(0.1, 0.1) == 0
        assert classifier.observe(0.8, 0.8) == 1
        # Nearest-centroid afterwards.
        assert classifier.observe(0.12, 0.11) == 0
        assert classifier.observe(0.75, 0.9) == 1

    def test_masked_observation_does_not_learn(self):
        classifier = OnlineClassifier(1)
        classifier.observe(0.2, 0.2)
        before = classifier.centroid(0)
        classifier.observe(0.9, 0.9, update=False)
        assert classifier.centroid(0) == before

    def test_round_trip(self):
        classifier = OnlineClassifier(3)
        for cpu in (0.1, 0.5, 0.9, 0.11, 0.52):
            classifier.observe(cpu, cpu)
        restored = OnlineClassifier.from_state(classifier.to_state(), 3)
        assert restored.to_state() == classifier.to_state()


# ------------------------------------------------------------ state core


class TestServeStateDeterminism:
    def test_two_runs_chain_identical(self, trace_tasks):
        a = run_state(trace_tasks, ticks=8)
        b = run_state(trace_tasks, ticks=8)
        assert a.chain == b.chain
        assert a.digest() == b.digest()

    def test_out_of_order_tick_rejected(self, trace_tasks):
        state = ServeState(CONFIG)
        batches = list(make_feeder(trace_tasks).batches())
        state.apply_tick(batches[0])
        with pytest.raises(ServeError, match="out of order"):
            state.apply_tick(batches[5])

    def test_checkpoint_round_trip_plus_replay_is_bit_identical(
        self, trace_tasks
    ):
        reference = run_state(trace_tasks, ticks=12)
        state = ServeState(CONFIG)
        batches = list(make_feeder(trace_tasks, max_ticks=12).batches())
        for batch in batches[:7]:
            state.apply_tick(batch)
        resumed = ServeState.from_state(state.to_state(), CONFIG)
        for batch in batches[7:]:
            resumed.apply_tick(batch)
        assert resumed.digest() == reference.digest()
        assert resumed.summary() == reference.summary()

    def test_snapshot_digest_is_stable_without_replay(self, trace_tasks):
        """A freshly deserialized state reports the same digest it saved —
        the semantic-verification invariant of CheckpointStore.load."""
        state = run_state(trace_tasks, ticks=9)
        restored = ServeState.from_state(state.to_state(), CONFIG)
        assert restored.digest() == state.digest()

    def test_config_mismatch_rejected(self, trace_tasks):
        state = run_state(trace_tasks, ticks=2)
        other = ServeConfig(num_classes=2)
        with pytest.raises(ServeError, match="deterministic config"):
            ServeState.from_state(state.to_state(), other)


# ----------------------------------------------------------------- chaos


class TestServeChaos:
    def test_drill_story(self, trace_tasks):
        chaos = make_chaos("drill")
        state = run_state(trace_tasks, chaos=chaos)
        summary = state.summary()
        assert summary["masked_ticks"] == 3
        # The ladder left mpc at least once (outage/partition pressure)...
        assert summary["rung_counts"]["mpc"] < 24
        assert (
            summary["rung_counts"]["threshold"] + summary["rung_counts"]["hold"] > 0
        )
        # ...and the partition held at least one cell.
        assert summary["partition_hold_ticks"]

    def test_effects_are_pure_per_tick(self):
        chaos = make_chaos("drill")
        forward = [chaos.effects(t) for t in range(24)]
        fresh = make_chaos("drill")
        backward = [fresh.effects(t) for t in reversed(range(24))]
        assert forward == list(reversed(backward))

    def test_partition_preset_heals(self, trace_tasks):
        chaos = make_chaos("partition")
        state = run_state(trace_tasks, chaos=chaos)
        assert state.summary()["partition_hold_ticks"]
        assert state.ladder.reconciliations >= 1

    def test_solver_outage_steps_ladder_down(self, trace_tasks):
        chaos = ServeChaos(
            None,
            table2_fleet(CONFIG.fleet_scale),
            CONFIG.tick_seconds,
            serve_faults=(SolverOutage(tick=3, ticks=2),),
        )
        state = run_state(trace_tasks, chaos=chaos, ticks=8)
        assert state.summary()["rung_counts"]["threshold"] >= 2

    def test_control_crash_flagged_by_tick(self):
        chaos = ServeChaos(
            None,
            table2_fleet(CONFIG.fleet_scale),
            CONFIG.tick_seconds,
            serve_faults=(ControlCrash(tick=5, attempts=2),),
        )
        assert chaos.effects(5).crash_attempts == 2
        assert chaos.effects(4).crash_attempts == 0

    def test_chaos_restore_is_bit_identical_mid_partition(self, trace_tasks):
        reference = run_state(trace_tasks, chaos=make_chaos("drill"))
        state = ServeState(CONFIG)
        chaos = make_chaos("drill")
        batches = list(make_feeder(trace_tasks).batches())
        for batch in batches[:11]:  # stop inside the partition window
            state.apply_tick(batch, chaos.effects(batch.tick))
        resumed = ServeState.from_state(state.to_state(), CONFIG)
        fresh_chaos = make_chaos("drill")
        for batch in batches[11:]:
            resumed.apply_tick(batch, fresh_chaos.effects(batch.tick))
        assert resumed.digest() == reference.digest()


# -------------------------------------------------- journal + checkpoints


class TestTickJournal:
    def batch(self, tick=0):
        return TickBatch(
            tick=tick,
            time=tick * 300.0,
            arrivals=(ArrivalRecord(tick * 300.0, 0.1, 0.1, 60.0, 0),),
        )

    def test_append_load_round_trip(self, tmp_path):
        journal = TickJournal(tmp_path, "run000000001")
        journal.append(self.batch(0))
        journal.append(self.batch(1))
        assert journal.load() == [self.batch(0), self.batch(1)]
        assert journal.tick_count() == 2

    def test_refuses_foreign_run_id(self, tmp_path):
        journal = TickJournal(tmp_path, "run000000001")
        journal.append(self.batch(0))
        imposter = TickJournal(tmp_path, "run000000002")
        imposter.path = journal.path  # same file, different run
        with pytest.raises(JournalCorrupt, match="refusing to mix runs"):
            imposter.append(self.batch(1))
        with pytest.raises(JournalCorrupt, match="refusing to mix runs"):
            imposter.load()


class TestCheckpointStore:
    def test_write_load_round_trip(self, tmp_path, trace_tasks):
        state = run_state(trace_tasks, ticks=5)
        store = CheckpointStore(tmp_path, "run000000001")
        store.write(state)
        loaded = store.load(CONFIG)
        assert loaded.digest() == state.digest()

    def test_missing_checkpoint_loads_none(self, tmp_path):
        assert CheckpointStore(tmp_path, "run000000001").load(CONFIG) is None

    def test_tampered_checkpoint_rejected(self, tmp_path, trace_tasks):
        state = run_state(trace_tasks, ticks=3)
        store = CheckpointStore(tmp_path, "run000000001")
        store.write(state)
        raw = store.path.read_text()
        store.path.write_text(raw.replace('"ticks_applied":3', '"ticks_applied":4'))
        with pytest.raises(JournalCorrupt, match="digest mismatch"):
            store.load(CONFIG)

    def test_foreign_run_id_rejected(self, tmp_path, trace_tasks):
        state = run_state(trace_tasks, ticks=3)
        store = CheckpointStore(tmp_path, "run000000001")
        store.write(state)
        imposter = CheckpointStore(tmp_path, "run000000002")
        imposter.path = store.path
        with pytest.raises(JournalCorrupt, match="refusing to mix runs"):
            imposter.load(CONFIG)


class TestRestore:
    def run_daemon(self, tasks, tmp_path, run_id, max_ticks=None, chaos=None):
        daemon = ServeDaemon(
            CONFIG,
            make_feeder(tasks),
            state_dir=tmp_path,
            run_id=run_id,
            chaos=chaos,
            clock=ManualClock(),
        )
        return daemon, daemon.run(max_ticks=max_ticks)

    @pytest.mark.parametrize("interrupt_at", [1, 4, 7, 11])
    def test_restore_is_bit_identical_at_any_interrupt(
        self, tmp_path, trace_tasks, interrupt_at
    ):
        _, reference = self.run_daemon(
            trace_tasks, tmp_path / "ref", "run000000001"
        )
        chaos_dir = tmp_path / f"cut{interrupt_at}"
        self.run_daemon(
            trace_tasks, chaos_dir, "run000000001", max_ticks=interrupt_at
        )
        resumed = ServeDaemon(
            CONFIG,
            make_feeder(trace_tasks),
            state_dir=chaos_dir,
            run_id="run000000001",
            clock=ManualClock(),
        )
        summary = resumed.run(restore_state=True)
        assert summary == reference

    def test_restore_is_idempotent(self, tmp_path, trace_tasks):
        self.run_daemon(trace_tasks, tmp_path, "run000000001", max_ticks=9)
        first = restore(CONFIG, tmp_path, "run000000001")
        second = restore(CONFIG, tmp_path, "run000000001")
        assert first.digest() == second.digest()
        # Pure read path: restoring never mutates the files it reads.
        third = restore(CONFIG, tmp_path, "run000000001")
        assert third.digest() == first.digest()

    def test_journal_gap_is_unrecoverable(self, tmp_path, trace_tasks):
        daemon, _ = self.run_daemon(
            trace_tasks, tmp_path, "run000000001", max_ticks=6
        )
        # Drop a mid-journal tick record and the checkpoint that would
        # otherwise paper over it: replay must notice the hole.
        daemon.checkpoints.path.unlink()
        lines = daemon.journal.path.read_text().splitlines()
        kept = [line for line in lines if '"tick":2,' not in line]
        assert len(kept) == len(lines) - 1
        daemon.journal.path.write_text("\n".join(kept) + "\n")
        with pytest.raises(JournalCorrupt, match="gap"):
            restore(CONFIG, tmp_path, "run000000001")


# ---------------------------------------------------------------- daemon


class TestServeDaemon:
    def test_refuses_fresh_run_over_existing_journal(self, tmp_path, trace_tasks):
        daemon = ServeDaemon(
            CONFIG,
            make_feeder(trace_tasks),
            state_dir=tmp_path,
            run_id="run000000001",
            clock=ManualClock(),
        )
        daemon.run(max_ticks=3)
        again = ServeDaemon(
            CONFIG,
            make_feeder(trace_tasks),
            state_dir=tmp_path,
            run_id="run000000001",
            clock=ManualClock(),
        )
        with pytest.raises(ServeError, match="--restore"):
            again.run()

    def test_watchdog_retries_are_digest_invisible(self, tmp_path, trace_tasks):
        clean = ServeDaemon(
            CONFIG,
            make_feeder(trace_tasks),
            state_dir=tmp_path / "clean",
            run_id="run000000001",
            clock=ManualClock(),
        )
        reference = clean.run(max_ticks=8)

        chaos = ServeChaos(
            None,
            table2_fleet(CONFIG.fleet_scale),
            CONFIG.tick_seconds,
            serve_faults=(ControlCrash(tick=3, attempts=2),),
        )
        crashy = ServeDaemon(
            CONFIG,
            make_feeder(trace_tasks),
            state_dir=tmp_path / "crashy",
            run_id="run000000001",
            chaos=chaos,
            clock=ManualClock(),
        )
        summary = crashy.run(max_ticks=8)
        assert crashy.metrics.snapshot()["restarts"] == 2
        assert summary == reference

    def test_watchdog_exhaustion_fails_loudly_but_recoverably(
        self, tmp_path, trace_tasks
    ):
        config = ServeConfig(
            checkpoint_interval_ticks=4, watchdog_attempts=2,
            watchdog_backoff_base_seconds=0.0,
        )
        chaos = ServeChaos(
            None,
            table2_fleet(config.fleet_scale),
            config.tick_seconds,
            serve_faults=(ControlCrash(tick=5, attempts=99),),
        )
        doomed = ServeDaemon(
            config,
            ReplayFeeder(trace_tasks, horizon=HORIZON, tick_seconds=300.0),
            state_dir=tmp_path,
            run_id="run000000001",
            chaos=chaos,
            clock=ManualClock(),
        )
        with pytest.raises(ControlStepFailed, match="--restore"):
            doomed.run()
        # Disk state is consistent: a restore (without the sabotage)
        # finishes the window and matches a clean run.
        reference = ServeDaemon(
            config,
            ReplayFeeder(trace_tasks, horizon=HORIZON, tick_seconds=300.0),
            state_dir=tmp_path / "ref",
            run_id="run000000001",
            clock=ManualClock(),
        ).run()
        resumed = ServeDaemon(
            config,
            ReplayFeeder(trace_tasks, horizon=HORIZON, tick_seconds=300.0),
            state_dir=tmp_path,
            run_id="run000000001",
            clock=ManualClock(),
        )
        summary = resumed.run(restore_state=True)
        assert summary == reference

    def test_event_log_records_lifecycle(self, tmp_path, trace_tasks):
        daemon = ServeDaemon(
            CONFIG,
            make_feeder(trace_tasks),
            state_dir=tmp_path,
            run_id="run000000001",
            clock=ManualClock(),
        )
        daemon.run(max_ticks=5)
        events = [
            json.loads(line)["event"]
            for line in daemon.events.path.read_text().splitlines()
        ]
        assert events[0] == "started"
        assert "tick" in events
        assert "checkpoint" in events
        assert events[-1] == "drained"

    def test_hot_reload_swaps_ops_and_rejects_drift(self, tmp_path, trace_tasks):
        config_path = tmp_path / "serve.json"
        config_path.write_text(json.dumps({"checkpoint_interval_ticks": 4}))
        daemon = ServeDaemon(
            load_config_file(config_path),
            make_feeder(trace_tasks),
            state_dir=tmp_path,
            run_id="run000000001",
            clock=ManualClock(),
            config_path=config_path,
        )
        # Valid ops change: picked up via the reload request.
        config_path.write_text(json.dumps({"checkpoint_interval_ticks": 2}))
        daemon.request_reload()
        daemon.run(max_ticks=2)
        assert daemon.config.checkpoint_interval_ticks == 2
        assert daemon.metrics.snapshot()["config_reloads"] == 1

        # Deterministic drift: rejected, old config stays live.
        config_path.write_text(
            json.dumps({"tick_seconds": 60.0, "checkpoint_interval_ticks": 2})
        )
        daemon.request_reload()
        daemon._maybe_reload()
        assert daemon.config.tick_seconds == 300.0
        assert daemon.metrics.snapshot()["config_reload_rejections"] == 1


# ------------------------------------------------------------------ http


class TestHealthEndpoints:
    def get(self, port, path):
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=5.0
            ) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_endpoints_track_loop_liveness(self):
        clock = ManualClock()
        metrics = ServeMetrics(clock)
        server = HealthServer(metrics, port=0, health_stale_seconds=60.0)
        server.start()
        try:
            status, body = self.get(server.port, "/healthz")
            assert (status, body) == (503, {"healthy": False})
            assert self.get(server.port, "/readyz")[0] == 503

            metrics.update(ticks=1, rung=0, rung_name="mpc", chain="abc")
            metrics.tick_completed()
            assert self.get(server.port, "/healthz")[0] == 200
            assert self.get(server.port, "/readyz")[0] == 200
            status, body = self.get(server.port, "/metrics")
            assert status == 200
            assert body["ticks"] == 1
            assert body["rung_name"] == "mpc"
            assert body["drained"] is False

            # A stuck loop goes unhealthy after the staleness budget...
            clock.advance(120.0)
            assert self.get(server.port, "/healthz")[0] == 503
            # ...but a clean drain is healthy forever.
            metrics.mark_draining()
            metrics.mark_drained()
            assert self.get(server.port, "/healthz")[0] == 200
            assert self.get(server.port, "/readyz")[0] == 503
            assert self.get(server.port, "/nope")[0] == 404
        finally:
            server.stop()

    def test_daemon_serves_http_while_running(self, tmp_path, trace_tasks):
        daemon = ServeDaemon(
            CONFIG,
            make_feeder(trace_tasks),
            state_dir=tmp_path,
            run_id="run000000001",
            clock=ManualClock(),
            http_port=0,
        )
        daemon.run(max_ticks=4)
        # Server is stopped at shutdown; the metrics object retains the
        # final snapshot.
        snapshot = daemon.metrics.snapshot()
        assert snapshot["ticks"] == 4
        assert snapshot["drained"] is True
        assert snapshot["chain"] == daemon.state.chain
