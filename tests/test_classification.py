"""Tests for the two-step task classifier and run-time labeler (Section V)."""

import numpy as np
import pytest

from repro.classification import (
    ClassifierConfig,
    DurationCategory,
    RuntimeLabeler,
    TaskClassifier,
)
from repro.trace import PriorityGroup
from tests.conftest import make_task


def bimodal_tasks(num=200, seed=0):
    """Two clear size clusters x two clear duration modes, one group."""
    rng = np.random.default_rng(seed)
    tasks = []
    for i in range(num):
        small = i % 2 == 0
        cpu = 0.01 if small else 0.4
        mem = 0.02 if small else 0.3
        short = rng.random() < 0.7
        duration = float(rng.uniform(20, 60)) if short else float(rng.uniform(20000, 60000))
        tasks.append(
            make_task(job_id=i, duration=duration, cpu=cpu, memory=mem, priority=0)
        )
    return tasks


class TestFit:
    def test_finds_two_static_classes(self):
        classifier = TaskClassifier(ClassifierConfig(seed=0)).fit(bimodal_tasks())
        gratis_static = [s for s in classifier.static_classes if s.group is PriorityGroup.GRATIS]
        assert len(gratis_static) == 2

    def test_short_long_split(self):
        classifier = TaskClassifier(ClassifierConfig(seed=0)).fit(bimodal_tasks())
        categories = {leaf.duration_category for leaf in classifier.classes}
        assert categories == {DurationCategory.SHORT, DurationCategory.LONG}
        for leaf in classifier.classes:
            if leaf.duration_category is DurationCategory.LONG:
                assert leaf.duration_mean > 10000
            else:
                assert leaf.duration_mean < 100

    def test_class_statistics_match_members(self):
        tasks = bimodal_tasks()
        classifier = TaskClassifier(ClassifierConfig(seed=0)).fit(tasks)
        total = sum(leaf.num_tasks for leaf in classifier.classes)
        assert total == len(tasks)

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            TaskClassifier().fit([])

    def test_pinned_k(self):
        rng_sizes = [(0.01, 0.02), (0.05, 0.1), (0.2, 0.15), (0.6, 0.5)]
        tasks = [
            make_task(job_id=i, duration=50.0, cpu=c, memory=m, priority=0)
            for i in range(80)
            for c, m in [rng_sizes[i % 4]]
        ]
        config = ClassifierConfig(k_per_group={PriorityGroup.GRATIS: 4}, seed=0)
        classifier = TaskClassifier(config).fit(tasks)
        gratis_static = [s for s in classifier.static_classes if s.group is PriorityGroup.GRATIS]
        assert len(gratis_static) == 4

    def test_small_class_not_split(self):
        """A class with too few members stays a single 'short' leaf."""
        tasks = [make_task(job_id=i, duration=50.0, cpu=0.1, memory=0.1) for i in range(6)]
        classifier = TaskClassifier(ClassifierConfig(seed=0, min_subclass_size=5)).fit(tasks)
        assert all(
            leaf.duration_category is DurationCategory.SHORT for leaf in classifier.classes
        )

    def test_summary_rows(self, classifier):
        rows = classifier.summary()
        assert len(rows) == classifier.num_classes
        for row in rows:
            assert row["num_tasks"] > 0
            assert row["duration_mean_s"] > 0

    def test_classes_tight_relative_to_mean(self, classifier):
        """Section IX-A: 'the standard deviation is much less than the mean'."""
        weighted_ratio = 0.0
        weight = 0
        for leaf in classifier.classes:
            if leaf.cpu_mean > 0:
                weighted_ratio += leaf.num_tasks * (leaf.cpu_std / leaf.cpu_mean)
                weight += leaf.num_tasks
        assert weighted_ratio / weight < 0.6


class TestRuntimeClassification:
    def test_initial_label_is_short(self):
        classifier = TaskClassifier(ClassifierConfig(seed=0)).fit(bimodal_tasks())
        task = make_task(job_id=999, duration=50000.0, cpu=0.01, memory=0.02)
        leaf = classifier.classify(task, observed_runtime=0.0)
        assert leaf.duration_category is DurationCategory.SHORT

    def test_relabel_after_boundary(self):
        classifier = TaskClassifier(ClassifierConfig(seed=0)).fit(bimodal_tasks())
        task = make_task(job_id=999, duration=50000.0, cpu=0.01, memory=0.02)
        static = classifier.classify_static(task)
        assert np.isfinite(static.split_seconds)
        leaf = classifier.classify(task, observed_runtime=static.split_seconds * 2)
        assert leaf.duration_category is DurationCategory.LONG

    def test_true_class_uses_duration(self):
        classifier = TaskClassifier(ClassifierConfig(seed=0)).fit(bimodal_tasks())
        long_task = make_task(job_id=999, duration=50000.0, cpu=0.01, memory=0.02)
        short_task = make_task(job_id=998, duration=30.0, cpu=0.01, memory=0.02)
        assert classifier.true_class(long_task).duration_category is DurationCategory.LONG
        assert classifier.true_class(short_task).duration_category is DurationCategory.SHORT

    def test_classify_batch_matches_single(self, classifier, small_trace):
        tasks = list(small_trace.tasks[:200])
        batch = classifier.classify_batch(tasks)
        singles = [classifier.classify(t) for t in tasks]
        assert [b.class_id for b in batch] == [s.class_id for s in singles]

    def test_sibling_symmetry(self, classifier):
        for leaf in classifier.classes:
            sibling = classifier.sibling(leaf)
            if sibling is not None:
                assert classifier.sibling(sibling).class_id == leaf.class_id
                assert sibling.static_index == leaf.static_index

    def test_long_fraction_bounds(self, classifier):
        for static in classifier.static_classes:
            fraction = classifier.long_fraction(static.group, static.index)
            assert 0.0 <= fraction <= 1.0

    def test_unfitted_raises(self):
        classifier = TaskClassifier()
        with pytest.raises(RuntimeError):
            classifier.classify(make_task())

    def test_class_by_id(self, classifier):
        leaf = classifier.classes[0]
        assert classifier.class_by_id(leaf.class_id) is leaf
        with pytest.raises(KeyError):
            classifier.class_by_id(10_000)

    def test_service_rate_and_scv(self, classifier):
        for leaf in classifier.classes:
            assert leaf.service_rate == pytest.approx(1.0 / leaf.duration_mean)
            assert leaf.duration_scv >= 0


class TestRuntimeLabeler:
    def _fitted(self):
        return TaskClassifier(ClassifierConfig(seed=0)).fit(bimodal_tasks())

    def test_label_track_finish(self):
        classifier = self._fitted()
        labeler = RuntimeLabeler(classifier)
        task = make_task(job_id=5000, duration=30.0, cpu=0.01, memory=0.02)
        label = labeler.label_arrival(task, now=0.0)
        assert label.duration_category is DurationCategory.SHORT
        assert labeler.num_live == 1
        final = labeler.finish(task, now=30.0)
        assert final.class_id == label.class_id
        assert labeler.num_live == 0
        assert labeler.stats.final_accuracy == 1.0

    def test_advance_relabels_long_task(self):
        classifier = self._fitted()
        labeler = RuntimeLabeler(classifier)
        task = make_task(job_id=5001, duration=50000.0, cpu=0.01, memory=0.02)
        labeler.label_arrival(task, now=0.0)
        boundary = classifier.classify_static(task).split_seconds
        events = labeler.advance(now=boundary * 2)
        assert len(events) == 1
        assert events[0].new_class.duration_category is DurationCategory.LONG
        assert labeler.current_label(task).duration_category is DurationCategory.LONG
        labeler.finish(task, now=50000.0)
        assert labeler.stats.final_accuracy == 1.0
        assert labeler.stats.mislabel_seconds > 0

    def test_mislabel_seconds_bounded_by_boundary(self):
        """The error from optimistic labeling is 'small and short-lived':
        a relabeled task is mislabeled for at most the split boundary."""
        classifier = self._fitted()
        labeler = RuntimeLabeler(classifier)
        task = make_task(job_id=5002, duration=50000.0, cpu=0.01, memory=0.02)
        labeler.label_arrival(task, now=0.0)
        boundary = classifier.classify_static(task).split_seconds
        labeler.advance(now=boundary * 1.5)
        labeler.finish(task, now=50000.0)
        assert labeler.stats.mislabel_seconds <= boundary + 1e-9

    def test_finish_unknown_task_raises(self):
        labeler = RuntimeLabeler(self._fitted())
        with pytest.raises(KeyError):
            labeler.finish(make_task(job_id=1), now=1.0)

    def test_majority_correct_on_trace(self, classifier, small_trace):
        """End-to-end labeling accuracy on a realistic trace.

        Events are processed in time order (a task must finish at its end
        time, not after later advance sweeps, or short tasks would be
        spuriously relabeled long).
        """
        labeler = RuntimeLabeler(classifier)
        tasks = list(small_trace.tasks[:500])
        events = []
        for task in tasks:
            events.append((task.submit_time, 0, "arrive", task))
            events.append((task.submit_time + task.duration, 1, "finish", task))
        horizon = max(t for t, *_ in events)
        for k in range(1, 21):
            events.append((horizon * k / 20, 2, "advance", None))
        events.sort(key=lambda e: (e[0], e[1]))
        for time, _, kind, task in events:
            if kind == "arrive":
                labeler.label_arrival(task, now=time)
            elif kind == "finish":
                labeler.finish(task, now=time)
            else:
                labeler.advance(now=time)
        assert labeler.stats.final_accuracy > 0.7
