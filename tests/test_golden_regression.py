"""Golden seeded end-to-end regression: one small HARMONY run, snapshotted.

A complete pipeline run — synthetic trace, classifier fit, CBS control
loop, cluster replay — on a pinned 30-minute scenario, compared against a
checked-in JSON snapshot of :meth:`SimulationResult.summary`.  Any change
to the trace generator, classifier, queueing inversion, LP, rounder or
simulator that shifts the end-to-end numbers shows up here as a diff of
the exact fields that moved.

Regenerating the snapshot (after an *intentional* behaviour change)::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_regression.py

then review the fixture diff in ``tests/fixtures/golden_harmony_summary.json``
and commit it alongside the change that caused it.
"""

import json
import math
import os
from pathlib import Path

from repro.classification import ClassifierConfig, TaskClassifier
from repro.simulation import HarmonyConfig, HarmonySimulation
from repro.trace import SyntheticTraceConfig, generate_trace

GOLDEN_PATH = Path(__file__).parent / "fixtures" / "golden_harmony_summary.json"

#: The pinned scenario.  Everything is derived from these constants — do
#: not reuse a session fixture here, the snapshot must not depend on
#: conftest defaults drifting.
GOLDEN_TRACE = SyntheticTraceConfig(
    horizon_hours=0.5, seed=11, total_machines=120, load_factor=0.4
)
GOLDEN_SEED = 11
#: Relative tolerance for float leaves: the run is deterministic, but
#: BLAS/platform differences can wiggle the last bits of accumulated sums.
REL_TOL = 1e-6


def golden_summary() -> dict:
    trace = generate_trace(GOLDEN_TRACE)
    classifier = TaskClassifier(ClassifierConfig(seed=GOLDEN_SEED)).fit(
        list(trace.tasks)
    )
    config = HarmonyConfig(policy="cbs", predictor="ewma")
    result = HarmonySimulation(config, trace, classifier=classifier).run()
    return result.summary()


def assert_matches(actual, expected, path="summary"):
    assert type(actual) is type(expected) or (
        isinstance(actual, (int, float)) and isinstance(expected, (int, float))
    ), f"{path}: type changed {type(expected).__name__} -> {type(actual).__name__}"
    if isinstance(expected, dict):
        assert sorted(actual) == sorted(expected), (
            f"{path}: keys changed {sorted(expected)} -> {sorted(actual)}"
        )
        for key in expected:
            assert_matches(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, float):
        if math.isinf(expected) or math.isnan(expected):
            assert str(actual) == str(expected), f"{path}: {expected} -> {actual}"
        else:
            assert math.isclose(actual, expected, rel_tol=REL_TOL, abs_tol=1e-9), (
                f"{path}: {expected!r} -> {actual!r}"
            )
    else:
        assert actual == expected, f"{path}: {expected!r} -> {actual!r}"


def test_golden_end_to_end_summary():
    summary = golden_summary()
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    expected = json.loads(GOLDEN_PATH.read_text())
    assert_matches(summary, expected)


def test_golden_run_is_self_deterministic():
    """Two fresh pipelines on the pinned scenario agree exactly.

    Separates "the code is nondeterministic" from "the code changed" when
    the snapshot comparison fails.
    """
    first = json.dumps(golden_summary(), sort_keys=True)
    second = json.dumps(golden_summary(), sort_keys=True)
    assert first == second
