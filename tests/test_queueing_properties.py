"""Property tests for the queueing layer (Eqs. 1-3), stdlib-only sweeps.

Three families of invariants, each checked over seeded random parameter
sweeps (``random.Random`` — no third-party fuzzing dependency):

- Erlang-C is monotonically decreasing in the server count: adding a
  container can only lower the probability of waiting (Eq. 2).
- ``required_containers`` is monotone non-decreasing in the arrival rate:
  more traffic never needs fewer containers (Eq. 3).
- The inversion is consistent with the forward model: the returned N meets
  the delay target, N-1 does not (or is the stability floor), and the
  wait probability at N is a valid probability below saturation.

A final family asserts the memoization added for the MPC hot path is
*transparent*: cached answers are bit-identical to fresh computation, and
the caches actually register hits on repeated queries.
"""

import math
import random

from repro.queueing import (
    MGNQueue,
    clear_queueing_caches,
    erlang_b,
    erlang_c,
    mgn_mean_wait,
    queueing_cache_info,
    required_containers,
)

SWEEP_SEED = 20260806


class TestErlangCMonotonicity:
    def test_monotone_decreasing_in_servers_random_loads(self):
        rng = random.Random(SWEEP_SEED)
        for _ in range(25):
            offered = rng.uniform(0.1, 400.0)
            start = int(math.floor(offered)) + 1
            values = [erlang_c(offered, n) for n in range(start, start + 40)]
            assert all(a >= b - 1e-12 for a, b in zip(values, values[1:])), (
                f"Erlang-C not monotone at offered load {offered:.3f}"
            )
            assert all(0.0 <= v <= 1.0 for v in values)

    def test_saturated_then_stable_boundary(self):
        rng = random.Random(SWEEP_SEED + 1)
        for _ in range(25):
            offered = rng.uniform(0.5, 50.0)
            floor_n = int(math.floor(offered))
            if floor_n >= 1:
                assert erlang_c(offered, floor_n) == 1.0  # rho >= 1: all wait
            assert erlang_c(offered, floor_n + 1) < 1.0  # first stable N


class TestRequiredContainersMonotonicity:
    def test_monotone_nondecreasing_in_arrival_rate(self):
        rng = random.Random(SWEEP_SEED + 2)
        for _ in range(15):
            mu = rng.uniform(0.01, 2.0)
            target = rng.uniform(0.5, 600.0)
            scv = rng.uniform(0.0, 4.0)
            lam = rng.uniform(0.01, 1.0)
            previous = 0
            for _ in range(8):
                n = required_containers(lam, mu, target, scv=scv)
                assert n >= previous, (
                    f"required_containers decreased ({previous} -> {n}) as "
                    f"lambda grew to {lam:.4f} (mu={mu:.4f}, d={target:.2f})"
                )
                previous = n
                lam *= rng.uniform(1.2, 2.5)

    def test_monotone_nonincreasing_in_target_delay(self):
        rng = random.Random(SWEEP_SEED + 3)
        for _ in range(15):
            lam = rng.uniform(0.1, 20.0)
            mu = rng.uniform(0.05, 1.0)
            loose = required_containers(lam, mu, 100.0)
            tight = required_containers(lam, mu, 0.5)
            assert tight >= loose


class TestInverseConsistency:
    def test_returned_count_meets_target_and_is_minimal(self):
        rng = random.Random(SWEEP_SEED + 4)
        for _ in range(30):
            lam = rng.uniform(0.05, 30.0)
            mu = rng.uniform(0.01, 1.0)
            target = rng.uniform(0.1, 900.0)
            scv = rng.choice([0.0, 0.5, 1.0, 2.0, 8.0])
            n = required_containers(lam, mu, target, scv=scv)
            stability_floor = int(math.floor(lam / mu)) + 1
            assert n >= stability_floor
            assert mgn_mean_wait(lam, mu, n, scv=scv) <= target
            if n > stability_floor:
                assert mgn_mean_wait(lam, mu, n - 1, scv=scv) > target

    def test_wait_probability_consistent_at_returned_count(self):
        rng = random.Random(SWEEP_SEED + 5)
        for _ in range(30):
            queue = MGNQueue(
                arrival_rate=rng.uniform(0.1, 10.0),
                service_rate=rng.uniform(0.05, 1.0),
                scv=rng.uniform(0.0, 3.0),
            )
            n = queue.containers_for_delay(rng.uniform(1.0, 300.0))
            pi = queue.wait_probability(n)
            # Below saturation the Eq. 2 probability is a genuine probability
            # strictly under 1, and Eq. 1 is its scaled form: both vanish
            # together.
            assert 0.0 <= pi < 1.0
            assert queue.utilization(n) < 1.0
            if pi == 0.0:
                assert queue.mean_wait(n) == 0.0


class TestCacheTransparency:
    def test_cached_values_identical_to_fresh(self):
        rng = random.Random(SWEEP_SEED + 6)
        cases = [
            (rng.uniform(0.1, 200.0), rng.randint(1, 400)) for _ in range(40)
        ]
        clear_queueing_caches()
        first = [erlang_b(a, n) for a, n in cases]
        clear_queueing_caches()
        second = [erlang_b(a, n) for a, n in cases]
        assert first == second  # bit-identical across cache generations
        # And a warm re-query returns the very same values from cache.
        assert [erlang_b(a, n) for a, n in cases] == first

    def test_inverse_cache_registers_hits(self):
        clear_queueing_caches()
        args = (7.5, 0.25, 12.0)
        baseline = required_containers(*args)
        before = queueing_cache_info()["required_containers"]["hits"]
        for _ in range(5):
            assert required_containers(*args) == baseline
        after = queueing_cache_info()["required_containers"]["hits"]
        assert after >= before + 5

    def test_erlang_cache_registers_hits(self):
        clear_queueing_caches()
        value = erlang_b(12.0, 15)
        before = queueing_cache_info()["erlang_b"]["hits"]
        assert erlang_b(12.0, 15) == value
        after = queueing_cache_info()["erlang_b"]["hits"]
        assert after >= before + 1

    def test_validation_still_raised_in_front_of_cache(self):
        import pytest

        with pytest.raises(ValueError):
            erlang_b(-1.0, 3)
        with pytest.raises(ValueError):
            required_containers(1.0, 1.0, 0.0)
