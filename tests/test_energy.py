"""Tests for the energy models, Table II catalog, prices and accounting."""

import numpy as np
import pytest

from repro.energy import (
    EnergyMeter,
    LinearPowerModel,
    MachineModel,
    TABLE2_MODELS,
    constant_price,
    google_like_energy_models,
    models_for_machine_types,
    spot_price_series,
    table2_fleet,
    time_of_use_price,
)
from repro.trace import google_like_machine_census
from tests.conftest import make_task


class TestLinearPowerModel:
    def test_eq7_linearity(self):
        model = LinearPowerModel(idle_watts=100.0, alpha_watts=(80.0, 20.0))
        assert model.power((0.0, 0.0)) == 100.0
        assert model.power((1.0, 1.0)) == 200.0
        assert model.power((0.5, 0.5)) == 150.0
        assert model.peak_watts == 200.0

    def test_energy_kwh(self):
        model = LinearPowerModel(idle_watts=1000.0, alpha_watts=(0.0, 0.0))
        assert model.energy_kwh((0.0, 0.0), 3600.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearPowerModel(idle_watts=-1.0)
        with pytest.raises(ValueError):
            LinearPowerModel(idle_watts=1.0, alpha_watts=(-1.0, 0.0))
        model = LinearPowerModel(idle_watts=1.0, alpha_watts=(1.0, 1.0))
        with pytest.raises(ValueError):
            model.power((0.5,))
        with pytest.raises(ValueError):
            model.power((1.5, 0.0))
        with pytest.raises(ValueError):
            model.energy_kwh((0.0, 0.0), -1.0)


class TestTable2Catalog:
    def test_four_models(self):
        assert len(TABLE2_MODELS) == 4
        names = [m.name for m in TABLE2_MODELS]
        assert "HP DL585 G7" in names
        assert "Dell PowerEdge R210" in names

    def test_paper_counts_at_full_scale(self):
        counts = {m.name: m.count for m in TABLE2_MODELS}
        assert counts["Dell PowerEdge R210"] == 7000
        assert counts["Dell PowerEdge R515"] == 1500
        assert counts["HP DL385 G7"] == 1000
        assert counts["HP DL585 G7"] == 500

    def test_normalization_to_dl585(self):
        """'HP DL585 G7 has capacity 1 CPU and 1 memory unit (48 cores, 64 GB)'."""
        dl585 = next(m for m in TABLE2_MODELS if m.name == "HP DL585 G7")
        assert dl585.cpu_capacity == 1.0
        assert dl585.memory_capacity == 1.0
        r210 = next(m for m in TABLE2_MODELS if "R210" in m.name)
        assert r210.cpu_capacity == pytest.approx(4 / 48)
        assert r210.memory_capacity == pytest.approx(4 / 64)

    def test_scale_preserves_proportions(self):
        fleet = table2_fleet(scale=0.1)
        counts = [m.count for m in fleet]
        assert counts == [700, 150, 100, 50]

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            table2_fleet(scale=0.0)

    def test_fig9_efficiency_ordering(self):
        """The Fig. 9 story: DL385 G7 is the most efficient per CPU unit;
        the small R210 is the least; the 4-socket DL585 is capable but
        power-hungry."""
        by_name = {m.name: m for m in TABLE2_MODELS}
        eff = {name: m.efficiency for name, m in by_name.items()}
        assert eff["HP DL385 G7"] == max(eff.values())
        assert eff["Dell PowerEdge R210"] == min(eff.values())
        assert eff["HP DL385 G7"] > eff["HP DL585 G7"]

    def test_can_host_respects_capacity(self):
        r210 = next(m for m in TABLE2_MODELS if "R210" in m.name)
        assert r210.can_host(make_task(cpu=0.05, memory=0.05))
        assert not r210.can_host(make_task(cpu=0.2, memory=0.05))

    def test_can_host_respects_platform_constraint(self):
        r210 = TABLE2_MODELS[0]
        task = make_task(allowed_platforms=frozenset({99}), cpu=0.01, memory=0.01)
        assert not r210.can_host(task)

    def test_to_machine_type_round_trip(self):
        for model in TABLE2_MODELS:
            mt = model.to_machine_type()
            assert mt.platform_id == model.platform_id
            assert mt.cpu_capacity == model.cpu_capacity
            assert mt.count == model.count


class TestGoogleLikeEnergyModels:
    def test_covers_census(self):
        census = google_like_machine_census(500)
        models = google_like_energy_models(census)
        assert len(models) == len(census)
        mapping = models_for_machine_types(census, models)
        assert set(mapping) == {m.platform_id for m in census}

    def test_defaults_synthesized(self):
        census = google_like_machine_census(500)
        mapping = models_for_machine_types(census)
        for model in mapping.values():
            assert model.idle_watts > 0

    def test_missing_platform_raises(self):
        census = google_like_machine_census(500)
        with pytest.raises(KeyError):
            models_for_machine_types(census, models=(TABLE2_MODELS[0],))


class TestPrices:
    def test_constant(self):
        price = constant_price(0.12)
        assert price(0) == 0.12
        assert price(1e6) == 0.12

    def test_time_of_use_bands(self):
        price = time_of_use_price(off_peak=0.07, mid_peak=0.11, on_peak=0.15)
        assert price(3 * 3600) == 0.07      # 03:00
        assert price(9 * 3600) == 0.11      # 09:00
        assert price(13 * 3600) == 0.15     # 13:00
        assert price(22 * 3600) == 0.07     # 22:00
        assert price(27 * 3600) == 0.07     # 03:00 next day

    def test_spot_series_deterministic_positive(self):
        a = spot_price_series(horizon=3600 * 24, interval=300, seed=5)
        b = spot_price_series(horizon=3600 * 24, interval=300, seed=5)
        series_a = a.series(3600 * 24, 300)
        series_b = b.series(3600 * 24, 300)
        assert np.array_equal(series_a, series_b)
        assert (series_a > 0).all()

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            constant_price(-0.1)

    def test_series_validation(self):
        price = constant_price()
        with pytest.raises(ValueError):
            price.series(0, 300)


class TestEnergyMeter:
    def _meter(self):
        fleet = table2_fleet(scale=0.1)
        return EnergyMeter(
            models={m.platform_id: m for m in fleet}, price=constant_price(0.1)
        ), fleet

    def test_idle_interval_accounting(self):
        meter, fleet = self._meter()
        record = meter.record_interval(
            time=0.0, seconds=3600.0, platform_id=fleet[0].platform_id,
            active_machines=10, cpu_utilization=0.0, memory_utilization=0.0,
        )
        expected_kwh = 10 * fleet[0].idle_watts / 1000.0
        assert record.energy_kwh == pytest.approx(expected_kwh)
        assert meter.total_energy_cost == pytest.approx(expected_kwh * 0.1)

    def test_switch_cost_accumulates(self):
        meter, fleet = self._meter()
        meter.record_interval(0.0, 300.0, fleet[1].platform_id, 5, 0.5, 0.5, switches=4)
        assert meter.total_switch_cost == pytest.approx(4 * fleet[1].switch_cost)
        assert meter.switch_events == 4
        assert meter.total_cost == meter.total_energy_cost + meter.total_switch_cost

    def test_utilization_clamped(self):
        meter, fleet = self._meter()
        record = meter.record_interval(0.0, 300.0, fleet[0].platform_id, 1, 1.7, -0.2)
        assert record.cpu_utilization == 1.0
        assert record.memory_utilization == 0.0

    def test_kwh_by_platform_and_timeline(self):
        meter, fleet = self._meter()
        meter.record_interval(0.0, 300.0, fleet[0].platform_id, 2, 0.1, 0.1)
        meter.record_interval(0.0, 300.0, fleet[1].platform_id, 3, 0.1, 0.1)
        meter.record_interval(300.0, 300.0, fleet[0].platform_id, 2, 0.1, 0.1)
        by_platform = meter.kwh_by_platform()
        assert set(by_platform) == {fleet[0].platform_id, fleet[1].platform_id}
        timeline = meter.timeline()
        assert len(timeline) == 2
        assert timeline[0][0] == 0.0

    def test_validation(self):
        meter, fleet = self._meter()
        with pytest.raises(ValueError):
            meter.record_interval(0.0, -1.0, fleet[0].platform_id, 1, 0.0, 0.0)
        with pytest.raises(ValueError):
            meter.record_interval(0.0, 1.0, fleet[0].platform_id, -1, 0.0, 0.0)
        with pytest.raises(ValueError):
            meter.record_interval(0.0, 1.0, fleet[0].platform_id, 1, 0.0, 0.0, switches=-1)
