"""Tests for HarmonyConfig plumbing and the policy adapters."""

import pytest

from repro.containers import ContainerManagerConfig
from repro.energy import time_of_use_price
from repro.simulation import HarmonyConfig, HarmonySimulation
from repro.simulation.harmony import (
    POLICIES,
    _BaselinePolicy,
    _ControllerPolicy,
    _StaticPolicy,
    replace_constraint,
)
from tests.conftest import make_task


class TestHarmonyConfig:
    def test_policies_constant(self):
        assert set(POLICIES) == {"cbs", "cbp", "baseline", "threshold", "static"}

    def test_with_policy(self):
        config = HarmonyConfig(policy="cbs")
        other = config.with_policy("baseline")
        assert other.policy == "baseline"
        assert other.fleet == config.fleet
        assert config.policy == "cbs"

    def test_validation(self):
        with pytest.raises(ValueError):
            HarmonyConfig(policy="nope")
        with pytest.raises(ValueError):
            HarmonyConfig(classifier_sample=10)

    def test_custom_manager_config(self, tiny_trace):
        manager_config = ContainerManagerConfig(epsilon=0.2)
        config = HarmonyConfig(manager=manager_config, classifier_sample=1000)
        simulation = HarmonySimulation(config, tiny_trace)
        assert simulation.manager.config.epsilon == 0.2

    def test_price_schedule_plumbed(self, tiny_trace):
        config = HarmonyConfig(
            policy="cbs", price=time_of_use_price(), classifier_sample=1000
        )
        simulation = HarmonySimulation(config, tiny_trace)
        policy = simulation.build_policy()
        assert isinstance(policy, _ControllerPolicy)
        assert policy.controller.config.price.name == "time_of_use"


class TestPolicyAdapters:
    def test_build_policy_types(self, tiny_trace):
        classifier = None
        expected = {
            "cbs": _ControllerPolicy,
            "cbp": _ControllerPolicy,
            "baseline": _BaselinePolicy,
            "static": _StaticPolicy,
        }
        for name, cls in expected.items():
            config = HarmonyConfig(policy=name, classifier_sample=1000)
            simulation = HarmonySimulation(config, tiny_trace, classifier=classifier)
            classifier = simulation.classifier
            assert isinstance(simulation.build_policy(), cls)

    def test_replace_constraint(self):
        task = make_task(allowed_platforms=frozenset({1, 2}))
        assert replace_constraint(task).allowed_platforms is None

    def test_constraints_dropped_when_fleet_mismatches(self, tiny_trace):
        from dataclasses import replace as dc_replace

        from repro.trace import Trace

        # Force a constraint referencing a platform the fleet lacks (id 9).
        tasks = list(tiny_trace.tasks)
        tasks[0] = dc_replace(tasks[0], allowed_platforms=frozenset({9}))
        trace = Trace.from_tasks(
            tiny_trace.machine_types, tasks, horizon=tiny_trace.horizon
        )
        config = HarmonyConfig(policy="static", classifier_sample=1000)
        simulation = HarmonySimulation(config, trace)
        prepared = simulation._prepare_tasks()
        assert all(t.allowed_platforms is None for t in prepared)

    def test_constraints_kept_when_fleet_matches(self, tiny_trace):
        from dataclasses import replace as dc_replace

        from repro.trace import Trace

        # Constraints referencing only fleet platforms (1-4) are honored.
        tasks = [
            dc_replace(t, allowed_platforms=frozenset({4}) if t.allowed_platforms else None)
            for t in tiny_trace.tasks
        ]
        trace = Trace.from_tasks(
            tiny_trace.machine_types, tasks, horizon=tiny_trace.horizon
        )
        config = HarmonyConfig(policy="static", classifier_sample=1000)
        simulation = HarmonySimulation(config, trace)
        prepared = simulation._prepare_tasks()
        constrained = [t for t in prepared if t.allowed_platforms is not None]
        original = [t for t in tasks if t.allowed_platforms is not None]
        assert len(constrained) == len(original)

    def test_historical_counts_cover_all_observed_classes(self, tiny_trace):
        config = HarmonyConfig(policy="cbs", classifier_sample=1000)
        simulation = HarmonySimulation(config, tiny_trace)
        counts = simulation._historical_interval_counts()
        assert sum(counts.values()) == pytest.approx(
            tiny_trace.num_tasks
            / (tiny_trace.horizon / config.control_interval)
        )
