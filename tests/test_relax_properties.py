"""Property-based tests on the CBS-RELAX optimizer.

Hypothesis generates random problem instances; the LP optimum must always
satisfy the model's invariants regardless of the draw.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.provisioning import (
    CbsRelaxSolver,
    ContainerType,
    FirstFitRounder,
    MachineClass,
    ProvisioningProblem,
    UtilityFunction,
)


@st.composite
def problems(draw):
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    num_machines = draw(st.integers(1, 3))
    num_containers = draw(st.integers(1, 4))
    W = draw(st.integers(1, 3))
    machines = tuple(
        MachineClass(
            platform_id=m + 1,
            name=f"m{m}",
            capacity=(float(rng.uniform(0.2, 1.0)), float(rng.uniform(0.2, 1.0))),
            available=int(rng.integers(1, 20)),
            idle_watts=float(rng.uniform(50, 300)),
            alpha_watts=(float(rng.uniform(10, 200)), float(rng.uniform(5, 60))),
            switch_cost=float(rng.uniform(0.0, 0.2)),
        )
        for m in range(num_machines)
    )
    containers = tuple(
        ContainerType(
            class_id=n,
            name=f"c{n}",
            size=(float(rng.uniform(0.02, 0.8)), float(rng.uniform(0.02, 0.8))),
            utility=UtilityFunction.capped_linear(
                float(rng.uniform(0.001, 0.2)), float(rng.uniform(1, 200))
            ),
        )
        for n in range(num_containers)
    )
    demand = rng.uniform(0, 30, size=(W, num_containers))
    prices = rng.uniform(0.01, 0.5, size=W)
    return ProvisioningProblem(
        machines=machines,
        containers=containers,
        demand=demand,
        prices=prices,
        interval_seconds=300.0,
    )


@settings(max_examples=25, deadline=None)
@given(problem=problems())
def test_lp_invariants(problem):
    solution = CbsRelaxSolver().solve(problem)
    W = problem.horizon
    M = len(problem.machines)
    N = len(problem.containers)
    compat = problem.compatibility()

    for t in range(W):
        for m, machine in enumerate(problem.machines):
            # availability (15)
            assert solution.z[t, m] <= machine.available + 1e-6
            assert solution.z[t, m] >= -1e-9
            # capacity (16)
            for r in range(problem.num_resources):
                used = sum(
                    problem.containers[n].size[r] * solution.x[t, m, n]
                    for n in range(N)
                )
                assert used <= machine.capacity[r] * solution.z[t, m] + 1e-5
            # compatibility
            for n in range(N):
                if not compat[m, n]:
                    assert solution.x[t, m, n] <= 1e-9
        # scheduled never exceeds saturation by construction of utility caps
        for n, container in enumerate(problem.containers):
            assert solution.x[t, :, n].sum() >= -1e-9

    # switching consistency: z[t] - z[t-1] == up - down
    previous = np.zeros(M)
    for t in range(W):
        delta = solution.z[t] - previous
        assert np.allclose(
            delta, solution.switch_up[t] - solution.switch_down[t], atol=1e-5
        )
        previous = solution.z[t]

    # objective decomposition
    assert solution.objective == pytest.approx(
        solution.utility - solution.energy_cost - solution.switching_cost, abs=1e-4
    )


@settings(max_examples=15, deadline=None)
@given(problem=problems())
def test_rounding_invariants(problem):
    solution = CbsRelaxSolver().solve(problem)
    plan = FirstFitRounder().round(problem, solution)
    for m, machine in enumerate(problem.machines):
        assert plan.active[m] <= machine.available
        for assignment in plan.assignments[m]:
            assert (assignment.used <= np.asarray(machine.capacity) + 1e-9).all()
    # packed + dropped == integer targets (conservation)
    assert (plan.packed.sum(axis=0) + plan.dropped >= 0).all()


@settings(max_examples=10, deadline=None)
@given(problem=problems(), seed=st.integers(0, 100))
def test_more_utility_never_hurts_scheduling(problem, seed):
    """Scaling every utility up schedules at least as many containers."""
    solver = CbsRelaxSolver()
    base = solver.solve(problem)
    boosted = ProvisioningProblem(
        machines=problem.machines,
        containers=tuple(
            ContainerType(
                c.class_id,
                c.name,
                c.size,
                UtilityFunction(
                    segments=tuple((w, s * 10.0) for w, s in c.utility.segments)
                ),
                c.allowed_platforms,
            )
            for c in problem.containers
        ),
        demand=problem.demand,
        prices=problem.prices,
        interval_seconds=problem.interval_seconds,
    )
    more = solver.solve(boosted)
    assert more.scheduled(0).sum() >= base.scheduled(0).sum() - 1e-5
