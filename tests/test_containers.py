"""Tests for container sizing (Eq. 3) and the container manager."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.containers import (
    ContainerManager,
    ContainerManagerConfig,
    ContainerSpec,
    gaussian_container_size,
    hoeffding_container_size,
    per_resource_epsilon,
    size_container_for_class,
    z_quantile,
)
from repro.trace import PriorityGroup


class TestZQuantile:
    def test_median(self):
        assert z_quantile(0.5) == pytest.approx(0.0, abs=1e-12)

    def test_five_percent(self):
        assert z_quantile(0.05) == pytest.approx(1.6449, abs=1e-3)

    def test_invalid(self):
        for eps in (0.0, 1.0, -0.1):
            with pytest.raises(ValueError):
                z_quantile(eps)


class TestPerResourceEpsilon:
    def test_single_resource_identity(self):
        assert per_resource_epsilon(0.05, 1) == pytest.approx(0.05)

    def test_two_resources_smaller(self):
        eps2 = per_resource_epsilon(0.05, 2)
        assert eps2 < 0.05
        # Joint no-violation probability recomposes to 1 - eps.
        assert (1 - eps2) ** 2 == pytest.approx(0.95)

    def test_invalid(self):
        with pytest.raises(ValueError):
            per_resource_epsilon(0.05, 0)
        with pytest.raises(ValueError):
            per_resource_epsilon(1.5, 2)


class TestGaussianSizing:
    def test_eq3_formula(self):
        size = gaussian_container_size(0.1, 0.02, epsilon=0.05, cap=1.0)
        assert size == pytest.approx(0.1 + 1.6449 * 0.02, abs=1e-3)

    def test_never_below_mean(self):
        assert gaussian_container_size(0.3, 0.0, 0.5) >= 0.3

    def test_capped(self):
        assert gaussian_container_size(0.9, 0.5, 0.01) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gaussian_container_size(-0.1, 0.1, 0.05)

    def test_degenerate_moments_raise_structured_code(self):
        from repro.errors import ContainerSizingError

        for mean, std in ((float("nan"), 0.1), (0.1, float("inf")), (0.1, -0.5)):
            with pytest.raises(ContainerSizingError) as excinfo:
                gaussian_container_size(mean, std, 0.05)
            assert excinfo.value.code == "container_sizing_error"
            assert isinstance(excinfo.value, ValueError)

    def test_zero_std_is_valid_not_degenerate(self):
        # sigma=0 (constant demand) sizes to the mean, no error.
        assert gaussian_container_size(0.2, 0.0, 0.05) == pytest.approx(0.2)

    def test_multiplexing_guarantee_empirically(self):
        """Packing by Eq. 3 sizes keeps violation probability near epsilon."""
        rng = np.random.default_rng(0)
        mean, std, eps = 0.05, 0.01, 0.05
        size = gaussian_container_size(mean, std, eps)
        capacity = 1.0
        per_machine = int(capacity / size)
        violations = 0
        trials = 3000
        for _ in range(trials):
            actual = rng.normal(mean, std, size=per_machine).sum()
            if actual > capacity:
                violations += 1
        assert violations / trials <= eps * 1.6  # sampling slack

    @settings(max_examples=50, deadline=None)
    @given(
        mean=st.floats(min_value=0.001, max_value=0.9),
        std=st.floats(min_value=0.0, max_value=0.3),
        eps=st.floats(min_value=0.001, max_value=0.5),
    )
    def test_property_size_in_bounds(self, mean, std, eps):
        size = gaussian_container_size(mean, std, eps)
        assert mean - 1e-12 <= size <= 1.0
        # Monotone: tighter epsilon -> bigger container.
        tighter = gaussian_container_size(mean, std, eps / 2)
        assert tighter >= size - 1e-12


class TestMultiplexedSizing:
    def test_sqrt_group_gain(self):
        from repro.containers import multiplexed_container_size

        per_task = gaussian_container_size(0.05, 0.02, 0.05)
        grouped = multiplexed_container_size(0.05, 0.02, 0.05, group_size=16)
        # The pad shrinks by sqrt(16) = 4.
        assert (grouped - 0.05) == pytest.approx((per_task - 0.05) / 4, rel=1e-9)

    def test_group_of_one_equals_gaussian(self):
        from repro.containers import multiplexed_container_size

        assert multiplexed_container_size(0.1, 0.03, 0.05, group_size=1) == pytest.approx(
            gaussian_container_size(0.1, 0.03, 0.05)
        )

    def test_aggregate_violation_bound_holds(self):
        """Packing by multiplexed sizes keeps machine violations near eps:
        the empirical check behind inequality (3)."""
        from repro.containers import multiplexed_container_size

        rng = np.random.default_rng(1)
        mean, std, eps, capacity = 0.05, 0.015, 0.05, 1.0
        group = int(capacity / mean)
        size = multiplexed_container_size(mean, std, eps, group_size=group)
        per_machine = int(capacity / size)
        violations = sum(
            rng.normal(mean, std, size=per_machine).sum() > capacity
            for _ in range(3000)
        )
        assert violations / 3000 <= eps * 1.8  # sampling + integer slack

    def test_validation(self):
        from repro.containers import multiplexed_container_size

        with pytest.raises(ValueError):
            multiplexed_container_size(-0.1, 0.1, 0.05, 4)
        with pytest.raises(ValueError):
            multiplexed_container_size(0.1, 0.1, 0.05, 0)


class TestHoeffdingSizing:
    def test_larger_group_smaller_padding(self):
        small = hoeffding_container_size(0.1, 0.0, 0.2, 0.05, group_size=4)
        large = hoeffding_container_size(0.1, 0.0, 0.2, 0.05, group_size=64)
        assert large < small

    def test_degenerate_range_is_mean(self):
        assert hoeffding_container_size(0.1, 0.1, 0.1, 0.05, 10) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            hoeffding_container_size(0.1, 0.3, 0.2, 0.05, 10)
        with pytest.raises(ValueError):
            hoeffding_container_size(0.1, 0.0, 0.2, 0.05, 0)


class TestSizeContainerForClass:
    def test_gaussian_vs_hoeffding(self, classifier):
        leaf = max(classifier.classes, key=lambda c: c.num_tasks)
        gaussian = size_container_for_class(leaf, method="gaussian")
        hoeffding = size_container_for_class(leaf, method="hoeffding")
        assert gaussian.cpu >= leaf.cpu_mean - 1e-9
        assert hoeffding.cpu >= leaf.cpu_mean - 1e-9

    def test_unknown_method(self, classifier):
        with pytest.raises(ValueError):
            size_container_for_class(classifier.classes[0], method="magic")

    def test_spec_properties(self, classifier):
        spec = size_container_for_class(classifier.classes[0])
        assert spec.class_id == classifier.classes[0].class_id
        assert spec.overhead_ratio >= 1.0 or spec.cpu == pytest.approx(1.0)
        assert 0 < spec.cpu <= 1 and 0 < spec.memory <= 1


class TestContainerManager:
    def test_specs_cover_all_classes(self, classifier, manager):
        assert set(manager.specs) == {c.class_id for c in classifier.classes}

    def test_plan_counts_and_totals(self, manager):
        class_ids = list(manager.specs)[:3]
        rates = {cid: 0.02 for cid in class_ids}
        plan = manager.plan(rates)
        assert set(plan.counts) == set(class_ids)
        assert plan.total_containers() == sum(plan.counts.values())
        cpu, mem = plan.total_demand()
        assert cpu > 0 and mem > 0

    def test_plan_by_group_partition(self, manager):
        rates = {cid: 0.01 for cid in manager.specs}
        plan = manager.plan(rates)
        by_group = plan.by_group()
        assert sum(by_group.values()) == plan.total_containers()

    def test_zero_rate_zero_containers(self, manager):
        class_id = next(iter(manager.specs))
        task_class = manager.spec(class_id).task_class
        assert manager.containers_for_class(task_class, 0.0) == 0

    def test_negative_rate_rejected(self, manager):
        task_class = next(iter(manager.specs.values())).task_class
        with pytest.raises(ValueError):
            manager.containers_for_class(task_class, -1.0)

    def test_slo_floor_and_slowdown(self, manager):
        for leaf_spec in manager.specs.values():
            leaf = leaf_spec.task_class
            slo = manager.slo_for(leaf)
            assert slo >= manager.config.delay_slos[leaf.group]
            assert slo >= manager.config.relative_slo_factor * leaf.duration_mean - 1e-9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ContainerManagerConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            ContainerManagerConfig(min_containers=-1)
        with pytest.raises(ValueError):
            ContainerManagerConfig(relative_slo_factor=-0.1)
        with pytest.raises(ValueError):
            ContainerManagerConfig(
                delay_slos={
                    PriorityGroup.GRATIS: 0.0,
                    PriorityGroup.OTHER: 1.0,
                    PriorityGroup.PRODUCTION: 1.0,
                }
            )


class TestTransientDemand:
    def _short_and_long(self, manager):
        classes = [s.task_class for s in manager.specs.values()]
        short = min(classes, key=lambda c: c.duration_mean)
        long = max(classes, key=lambda c: c.duration_mean)
        return short, long

    def test_short_class_reaches_steady_state_immediately(self, manager):
        short, _ = self._short_and_long(manager)
        rate = 0.5
        steady = manager.containers_for_class(short, rate)
        # With occupancy at the offered load, the transient equals steady
        # state (up to ceil).
        occupancy = int(rate / short.service_rate)
        demand = manager.transient_demand(short, rate, occupancy, step=4,
                                          interval_seconds=300.0)
        assert abs(demand - steady) <= 2

    def test_long_class_tracks_occupancy(self, manager):
        _, long = self._short_and_long(manager)
        rate = 0.05
        demand = manager.transient_demand(long, rate, occupancy=10, step=0,
                                          interval_seconds=300.0)
        steady = manager.containers_for_class(long, rate)
        assert demand < steady  # far below steady state early on
        assert demand >= 10  # but covers what is already running

    def test_demand_monotone_in_occupancy(self, manager):
        _, long = self._short_and_long(manager)
        low = manager.transient_demand(long, 0.01, occupancy=5, step=0,
                                       interval_seconds=300.0)
        high = manager.transient_demand(long, 0.01, occupancy=50, step=0,
                                        interval_seconds=300.0)
        assert high > low

    def test_zero_everything_zero_demand(self, manager):
        task_class = next(iter(manager.specs.values())).task_class
        assert manager.transient_demand(task_class, 0.0, 0, 0, 300.0) == 0

    def test_validation(self, manager):
        task_class = next(iter(manager.specs.values())).task_class
        with pytest.raises(ValueError):
            manager.transient_demand(task_class, -1.0, 0, 0, 300.0)
        with pytest.raises(ValueError):
            manager.transient_demand(task_class, 1.0, -1, 0, 300.0)
        with pytest.raises(ValueError):
            manager.transient_demand(task_class, 1.0, 0, -1, 300.0)
        with pytest.raises(ValueError):
            manager.transient_demand(task_class, 1.0, 0, 0, 0.0)
