"""Tests for the paper's extension points.

Section III: "it is straightforward to extend our approach to consider
additional resource types" — the CBS model is dimension-generic.
Section VII-A closing remark: non-Gaussian sizing via concentration bounds.
Placement constraints (Section III-B's hard-to-schedule tasks) flow through
the LP's compatibility mask.
"""

import numpy as np
import pytest

from repro.containers import ContainerManager, ContainerManagerConfig
from repro.provisioning import (
    CbsRelaxSolver,
    ContainerType,
    FirstFitRounder,
    MachineClass,
    ProvisioningProblem,
    UtilityFunction,
)


class TestThreeResourceCbs:
    """CPU, memory and disk as a 3-dimensional CBS instance."""

    def _problem(self):
        machines = (
            MachineClass(1, "disky", (0.5, 0.5, 1.0), 10, 100.0, (50.0, 20.0, 10.0), 0.0),
            MachineClass(2, "compute", (1.0, 1.0, 0.1), 10, 200.0, (150.0, 40.0, 5.0), 0.0),
        )
        containers = (
            ContainerType(0, "io", (0.1, 0.1, 0.5), UtilityFunction.capped_linear(0.1, 100)),
            ContainerType(1, "cpu", (0.5, 0.3, 0.02), UtilityFunction.capped_linear(0.1, 100)),
        )
        return ProvisioningProblem(
            machines=machines,
            containers=containers,
            demand=np.array([[8.0, 6.0]]),
            prices=np.array([0.1]),
            interval_seconds=300.0,
        )

    def test_solves_and_respects_every_dimension(self):
        problem = self._problem()
        assert problem.num_resources == 3
        solution = CbsRelaxSolver().solve(problem)
        for m, machine in enumerate(problem.machines):
            for r in range(3):
                used = sum(
                    problem.containers[n].size[r] * solution.x[0, m, n]
                    for n in range(2)
                )
                assert used <= machine.capacity[r] * solution.z[0, m] + 1e-6

    def test_disk_bound_container_prefers_disky_machine(self):
        problem = self._problem()
        solution = CbsRelaxSolver().solve(problem)
        # The io container (0.5 disk) can only meaningfully pack on the
        # disky machine: the compute machine fits 0.1/0.5 of one per... no,
        # 0.5 > 0.1 disk capacity, so it cannot host it at all.
        assert solution.x[0, 1, 0] == pytest.approx(0.0, abs=1e-9)
        assert solution.x[0, 0, 0] > 0

    def test_rounding_in_three_dimensions(self):
        problem = self._problem()
        solution = CbsRelaxSolver().solve(problem)
        plan = FirstFitRounder().round(problem, solution)
        for m in range(2):
            for assignment in plan.assignments[m]:
                assert (assignment.used <= np.asarray(assignment.capacity) + 1e-9).all()

    def test_lemma1_scale_uses_dimension_count(self):
        problem = self._problem()
        solution = CbsRelaxSolver().solve(problem)
        scaled = FirstFitRounder().lemma1_scaled_counts(problem, solution)
        # 2|R| = 6 for three resources.
        assert (scaled <= np.floor(solution.x[0] / 6) + 1e-9).all()


class TestPlatformConstrainedContainers:
    def test_constrained_container_only_on_allowed_platform(self):
        machines = (
            MachineClass(1, "a", (1.0, 1.0), 10, 100.0, (50.0, 20.0), 0.0),
            MachineClass(2, "b", (1.0, 1.0), 10, 100.0, (50.0, 20.0), 0.0),
        )
        containers = (
            ContainerType(
                0, "pinned", (0.2, 0.2), UtilityFunction.capped_linear(0.1, 100),
                allowed_platforms=frozenset({2}),
            ),
        )
        problem = ProvisioningProblem(
            machines, containers, np.array([[10.0]]), np.array([0.1]), 300.0
        )
        solution = CbsRelaxSolver().solve(problem)
        assert solution.x[0, 0, 0] == pytest.approx(0.0, abs=1e-9)
        assert solution.x[0, 1, 0] == pytest.approx(10.0, abs=1e-6)

    def test_unsatisfiable_constraint_schedules_nothing(self):
        machines = (MachineClass(1, "a", (1.0, 1.0), 10, 100.0, (50.0, 20.0), 0.0),)
        containers = (
            ContainerType(
                0, "pinned", (0.2, 0.2), UtilityFunction.capped_linear(0.1, 100),
                allowed_platforms=frozenset({9}),
            ),
        )
        problem = ProvisioningProblem(
            machines, containers, np.array([[10.0]]), np.array([0.1]), 300.0
        )
        solution = CbsRelaxSolver().solve(problem)
        assert solution.scheduled(0)[0] == pytest.approx(0.0, abs=1e-9)


class TestHoeffdingManager:
    def test_manager_with_hoeffding_sizing(self, classifier):
        manager = ContainerManager(
            classifier, ContainerManagerConfig(sizing_method="hoeffding")
        )
        for spec in manager.specs.values():
            assert spec.cpu >= spec.task_class.cpu_mean - 1e-12
            assert 0 < spec.cpu <= 1

    def test_hoeffding_vs_gaussian_ordering_is_instancewise(self, classifier):
        """Neither dominates universally; both must stay within [mean, 1]."""
        gaussian = ContainerManager(classifier, ContainerManagerConfig())
        hoeffding = ContainerManager(
            classifier, ContainerManagerConfig(sizing_method="hoeffding")
        )
        for class_id in gaussian.specs:
            g = gaussian.spec(class_id)
            h = hoeffding.spec(class_id)
            assert g.cpu <= 1.0 and h.cpu <= 1.0
