"""Tests for the SVG chart writer and figure-file generation."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.analysis import BarChart, LineChart, render_trace_figures
from repro.analysis.svg import _format_tick, _nice_ticks


def parse_svg(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestNiceTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0.0, 97.0)
        assert ticks[0] <= 0.0 + 1e-9
        step = ticks[1] - ticks[0]
        # Ticks stay inside the domain but reach within one step of the top.
        assert ticks[-1] >= 97.0 - step
        assert all(a < b for a, b in zip(ticks, ticks[1:]))

    def test_degenerate_range(self):
        assert _nice_ticks(5.0, 5.0)

    def test_format_tick(self):
        assert _format_tick(0) == "0"
        assert _format_tick(12345.0) == "1e+04"
        assert _format_tick(150.0) == "150"
        assert _format_tick(2.0) == "2"


class TestLineChart:
    def _chart(self, **kwargs):
        chart = LineChart(title="T & T", x_label="x", y_label="y", **kwargs)
        chart.add("alpha", [0, 1, 2, 3], [0.0, 1.0, 4.0, 9.0])
        chart.add("beta", [0, 1, 2, 3], [9.0, 4.0, 1.0, 0.0], step=True)
        return chart

    def test_well_formed_xml(self):
        root = parse_svg(self._chart().render())
        assert root.tag.endswith("svg")

    def test_title_escaped(self):
        svg = self._chart().render()
        assert "T &amp; T" in svg

    def test_series_and_legend_present(self):
        svg = self._chart().render()
        assert svg.count("<polyline") == 2
        assert "alpha" in svg and "beta" in svg

    def test_log_x(self):
        chart = LineChart(title="log", log_x=True)
        chart.add("cdf", [1, 10, 100, 1000], [0.1, 0.5, 0.9, 1.0])
        root = parse_svg(chart.render())
        assert root is not None

    def test_log_x_drops_nonpositive(self):
        chart = LineChart(title="log", log_x=True)
        chart.add("cdf", [0, 1, 10], [0.0, 0.5, 1.0])
        # Renders without error; the zero point is dropped.
        parse_svg(chart.render())

    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError):
            LineChart(title="empty").render()

    def test_mismatched_series_rejected(self):
        chart = LineChart(title="bad")
        with pytest.raises(ValueError):
            chart.add("s", [1, 2], [1.0])

    def test_save(self, tmp_path):
        path = tmp_path / "chart.svg"
        self._chart().save(path)
        parse_svg(path.read_text())


class TestBarChart:
    def test_bars_rendered(self):
        chart = BarChart(title="Energy", y_label="kWh")
        chart.add("baseline", 70.5).add("cbs", 63.2)
        svg = chart.render()
        root = parse_svg(svg)
        rects = [el for el in root.iter() if el.tag.endswith("rect")]
        # background + 2 bars
        assert len(rects) == 3
        assert "baseline" in svg and "cbs" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BarChart(title="none").render()


class TestFigureFiles:
    def test_render_trace_figures(self, tiny_trace, tmp_path):
        written = render_trace_figures(tiny_trace, tmp_path)
        assert len(written) == 5
        for path in written:
            assert path.exists()
            parse_svg(path.read_text())

    def test_render_policy_figures(self, tiny_trace, tmp_path):
        from repro.analysis import render_policy_figures
        from repro.simulation import HarmonyConfig, HarmonySimulation

        config = HarmonyConfig(policy="baseline", classifier_sample=1000)
        result = HarmonySimulation(config, tiny_trace).run()
        written = render_policy_figures(
            {"baseline": result}, tiny_trace.horizon, tmp_path
        )
        assert len(written) == 5  # 21-22, 23, 24, 25, 26
        for path in written:
            parse_svg(path.read_text())
