"""Differential tests: streaming trace generation vs the materialized oracle.

The fleet layer (``repro.fleet``) relies on ``stream_trace`` producing the
*exact* task sequence ``generate_trace`` materializes — same seeds, same
calibration, same sort order — so every assertion here is bit-identity on
the full ``Task`` dataclasses, not statistical closeness.
"""

from __future__ import annotations

import json

import pytest

from repro.runner import canonical_json
from repro.trace import generate_trace, google_like_machine_census
from repro.trace.generator import (
    SyntheticTraceConfig,
    plan_from_params,
    plan_params,
    plan_trace,
    stream_trace,
)

# A spread of seeds, scales and loads: small/sparse traces exercise the
# calibration break paths, the constrained config exercises
# allowed-platform draws, and off-default loads force corrective rescales.
CONFIGS = [
    SyntheticTraceConfig(seed=7, total_machines=120, horizon_hours=1.0),
    SyntheticTraceConfig(seed=11, total_machines=200, horizon_hours=2.0, load_factor=0.7),
    SyntheticTraceConfig(seed=23, total_machines=150, horizon_hours=0.5, load_factor=0.3),
    SyntheticTraceConfig(
        seed=42,
        total_machines=180,
        horizon_hours=1.5,
        constraint_platforms=google_like_machine_census(180)[:4],
    ),
]


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: f"seed{c.seed}")
def test_stream_matches_materialized_bitwise(config):
    materialized = list(generate_trace(config).tasks)
    streamed = list(stream_trace(config))
    assert len(streamed) == len(materialized)
    # Frozen-dataclass equality covers every field (floats compare exact).
    assert streamed == materialized


def test_plan_matches_generate_trace_calibration():
    config = SyntheticTraceConfig(seed=11, total_machines=200, horizon_hours=2.0, load_factor=0.7)
    plan = plan_trace(config)
    trace = generate_trace(config)
    # The calibrated arrival rates differ from the analytic ones whenever a
    # corrective rescale fired; the plan must land on the same floats.
    realized_rates = [p.job_rate_per_hour for p in plan.profiles]
    metadata_load = trace.metadata["load_factor"]
    assert metadata_load == config.load_factor
    streamed = list(stream_trace(config, plan=plan))
    assert streamed == list(trace.tasks)
    assert realized_rates == [p.job_rate_per_hour for p in plan.profiles]


def test_plan_params_round_trip_is_exact():
    config = SyntheticTraceConfig(seed=23, total_machines=150, horizon_hours=0.5, load_factor=0.3)
    plan = plan_trace(config)
    params = plan_params(plan)
    # Must survive a JSON wire hop (journal lines, spawn-worker params).
    wire = json.loads(canonical_json(params))
    restored = plan_from_params(wire)
    assert restored == plan
    assert list(stream_trace(config, plan=restored)) == list(generate_trace(config).tasks)


def test_stream_is_sorted_and_constant_order():
    config = SyntheticTraceConfig(seed=7, total_machines=120, horizon_hours=1.0)
    tasks = list(stream_trace(config))
    keys = [(t.submit_time, t.job_id, t.index) for t in tasks]
    assert keys == sorted(keys)
    # Re-streaming from a fresh iterator reproduces the identical sequence.
    assert list(stream_trace(config)) == tasks
