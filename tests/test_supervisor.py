"""Tests for supervised, crash-safe scenario execution (repro.runner.supervisor).

Covers the deterministic backoff schedule, the supervisor's retry /
timeout / quarantine semantics (driven through the shipped
``transient_fault`` injection task so spawned workers can resolve it), the
digest-invariance contract — a scenario that fails transiently and
succeeds on retry must produce the same summary digest as an
uninterrupted run — and the crash-safe journal's append / verify / resume
behaviour, including torn-tail tolerance and corruption detection.
"""

import json

import pytest

from repro.errors import (
    JournalCorrupt,
    ScenarioCrash,
    ScenarioFailed,
    ScenarioTimeout,
)
from repro.resilience import transient_fault_scenario
from repro.runner import (
    Journal,
    JournalEntry,
    Scenario,
    ScenarioRunner,
    ScenarioSupervisor,
    SupervisorConfig,
    backoff_delay,
    baseline_payload,
    canonical_json,
    journal_path,
    suite_run_id,
)

#: One tiny LP solve — the cheapest spawnable unit of real work.
TINY = Scenario(
    name="relax_tiny",
    task="relax_solve",
    params={"num_classes": 4, "num_types": 2, "W": 2, "seed": 0, "repeats": 1},
)
TINY2 = Scenario(
    name="relax_tiny2",
    task="relax_solve",
    params={"num_classes": 4, "num_types": 2, "W": 2, "seed": 1, "repeats": 1},
)

#: Keep retry waits negligible in tests.
FAST = SupervisorConfig(backoff_base_seconds=0.01, backoff_cap_seconds=0.05)


def tiny_digest(scenario=TINY) -> str:
    """Digest of an uninterrupted in-process run, the invariance reference."""
    return ScenarioRunner("ref").run([scenario], workers=1)[scenario.name].digest()


class TestBackoffDelay:
    def test_deterministic_across_calls(self):
        config = SupervisorConfig()
        assert backoff_delay("s", 1, config) == backoff_delay("s", 1, config)
        assert backoff_delay("s", 2, config) == backoff_delay("s", 2, config)

    def test_decorrelated_across_scenarios(self):
        config = SupervisorConfig()
        assert backoff_delay("relax_a", 1, config) != backoff_delay("relax_b", 1, config)

    def test_exponential_and_capped(self):
        config = SupervisorConfig(
            backoff_base_seconds=0.1, backoff_factor=2.0,
            backoff_cap_seconds=1.0, jitter_fraction=0.0,
        )
        assert backoff_delay("s", 1, config) == pytest.approx(0.1)
        assert backoff_delay("s", 2, config) == pytest.approx(0.2)
        assert backoff_delay("s", 10, config) == pytest.approx(1.0)  # capped

    def test_jitter_bounded(self):
        config = SupervisorConfig(
            backoff_base_seconds=0.1, backoff_cap_seconds=10.0, jitter_fraction=0.25
        )
        for attempt in range(1, 6):
            delay = backoff_delay("s", attempt, config)
            base = min(10.0, 0.1 * 2.0 ** (attempt - 1))
            assert base <= delay <= base * 1.25

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError, match="attempt"):
            backoff_delay("s", 0, SupervisorConfig())


class TestSupervisorConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_seconds": 0.0},
            {"timeout_seconds": -1.0},
            {"max_attempts": 0},
            {"backoff_base_seconds": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_cap_seconds": -1.0},
            {"jitter_fraction": -0.1},
            {"jitter_fraction": 1.5},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs)


class TestSupervisorRun:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            ScenarioSupervisor("unit").run([TINY], workers=0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ScenarioSupervisor("unit").run([TINY, TINY])

    def test_resume_requires_journal_dir(self):
        with pytest.raises(ValueError, match="journal_dir"):
            ScenarioSupervisor("unit").run([TINY], resume=True)

    def test_clean_run_matches_plain_runner(self, tmp_path):
        supervisor = ScenarioSupervisor("unit", FAST, journal_dir=tmp_path)
        report = supervisor.run([TINY])
        assert report.quarantined == ()
        assert report["relax_tiny"].attempts == 1
        assert report["relax_tiny"].digest() == tiny_digest()
        # The journal path now carries the suite's run id.
        assert supervisor.journal is not None
        assert supervisor.journal.path.exists()
        assert supervisor.journal.path.name.startswith("JOURNAL_unit_")
        assert not journal_path("unit", tmp_path).exists()

    def test_transient_raise_retried_with_identical_digest(self, tmp_path):
        scenario = transient_fault_scenario(
            "flaky_raise", TINY, tmp_path / "markers", fail_attempts=1, mode="raise"
        )
        supervisor = ScenarioSupervisor("unit", FAST)
        report = supervisor.run([scenario])
        assert report.quarantined == ()
        result = report["flaky_raise"]
        assert result.attempts == 2
        # The invariance contract: recovery is indistinguishable from a
        # run that never failed.
        assert result.digest() == tiny_digest()
        assert [type(e) for e in supervisor.failure_log] == [ScenarioFailed]

    def test_worker_kill_detected_and_respawned(self, tmp_path):
        scenario = transient_fault_scenario(
            "flaky_kill", TINY, tmp_path / "markers", fail_attempts=1, mode="kill"
        )
        supervisor = ScenarioSupervisor("unit", FAST)
        report = supervisor.run([scenario])
        assert report.quarantined == ()
        assert report["flaky_kill"].attempts == 2
        assert report["flaky_kill"].digest() == tiny_digest()
        assert [type(e) for e in supervisor.failure_log] == [ScenarioCrash]

    def test_hung_scenario_times_out_into_quarantine(self, tmp_path):
        scenario = transient_fault_scenario(
            "hung", TINY, tmp_path / "markers",
            fail_attempts=99, mode="hang", hang_seconds=60.0,
        )
        config = SupervisorConfig(
            timeout_seconds=0.75, max_attempts=2,
            backoff_base_seconds=0.01, backoff_cap_seconds=0.05,
        )
        report = ScenarioSupervisor("unit", config).run([scenario])
        assert report.results == ()
        assert len(report.quarantined) == 1
        failure = report.quarantined[0]
        assert (failure.name, failure.kind, failure.attempts) == ("hung", "timeout", 2)

    def test_persistent_error_quarantined_without_sinking_suite(self, tmp_path):
        bad = transient_fault_scenario(
            "always_bad", TINY, tmp_path / "markers", fail_attempts=99, mode="raise"
        )
        config = SupervisorConfig(
            max_attempts=2, backoff_base_seconds=0.01, backoff_cap_seconds=0.05
        )
        report = ScenarioSupervisor("unit", config).run([bad, TINY], workers=2)
        # The healthy neighbour still completes; the poison scenario is
        # reported, not raised.
        assert [r.name for r in report.results] == ["relax_tiny"]
        assert [f.name for f in report.quarantined] == ["always_bad"]
        assert report.quarantined[0].kind == "error"
        payload = baseline_payload(report)
        assert payload["quarantined"] == [
            {"name": "always_bad", "kind": "error", "attempts": 2}
        ]

    def test_timeout_failures_logged_as_scenario_timeout(self, tmp_path):
        scenario = transient_fault_scenario(
            "hung_log", TINY, tmp_path / "markers",
            fail_attempts=99, mode="hang", hang_seconds=60.0,
        )
        config = SupervisorConfig(
            timeout_seconds=0.75, max_attempts=1, backoff_base_seconds=0.01
        )
        supervisor = ScenarioSupervisor("unit", config)
        supervisor.run([scenario])
        assert [type(e) for e in supervisor.failure_log] == [ScenarioTimeout]
        assert supervisor.failure_log[0].context["timeout_seconds"] == 0.75


class TestJournalResume:
    def test_interrupted_suite_resumes_to_identical_digests(self, tmp_path):
        suite = [TINY, TINY2]
        reference = ScenarioRunner("ref").run(suite, workers=1).digests()

        # "Interrupted" run: only the first scenario's entry made it into
        # the *full suite's* journal before the (simulated) kill — the
        # journal path and header carry the run id of the whole suite.
        run_id = suite_run_id("bench", suite)
        journal = Journal(journal_path("bench", tmp_path, run_id), run_id)
        done = ScenarioRunner("bench").run([TINY], workers=1)[TINY.name]
        journal.append(
            JournalEntry(
                suite="bench",
                scenario=TINY,
                summary=done.summary,
                phases=done.phases,
                wall_seconds=done.wall_seconds,
                attempts=1,
            )
        )

        resumed = ScenarioSupervisor("bench", FAST, journal_dir=tmp_path)
        report = resumed.run(suite, resume=True)
        assert resumed.resumed == ["relax_tiny"]
        assert resumed.executed == ["relax_tiny2"]
        assert [r.name for r in report.results] == ["relax_tiny", "relax_tiny2"]
        assert report.digests() == reference

    def test_full_resume_executes_nothing(self, tmp_path):
        supervisor = ScenarioSupervisor("bench", FAST, journal_dir=tmp_path)
        original = supervisor.run([TINY])

        again = ScenarioSupervisor("bench", FAST, journal_dir=tmp_path)
        report = again.run([TINY], resume=True)
        assert again.executed == []
        assert again.resumed == ["relax_tiny"]
        assert report.digests() == original.digests()

    def test_resume_ignores_entries_with_different_params(self, tmp_path):
        supervisor = ScenarioSupervisor("bench", FAST, journal_dir=tmp_path)
        supervisor.run([TINY])

        changed = Scenario(
            name=TINY.name, task=TINY.task, params={**TINY.params, "seed": 7}
        )
        again = ScenarioSupervisor("bench", FAST, journal_dir=tmp_path)
        again.run([changed], resume=True)
        assert again.resumed == []
        assert again.executed == [changed.name]


def _entry(name="s0", suite="unit", summary=None) -> JournalEntry:
    return JournalEntry(
        suite=suite,
        scenario=Scenario(name=name, task="relax_solve", params={"seed": 0}),
        summary=summary if summary is not None else {"value": 1.0},
        phases={"solve": 0.1},
        wall_seconds=0.123,
        attempts=1,
    )


class TestJournal:
    def test_append_load_round_trip(self, tmp_path):
        journal = Journal(journal_path("unit", tmp_path))
        journal.append(_entry("s0"))
        journal.append(_entry("s1"))
        entries = journal.load()
        assert [e.scenario.name for e in entries] == ["s0", "s1"]
        assert entries[0].to_result().summary == {"value": 1.0}

    def test_missing_journal_loads_empty(self, tmp_path):
        assert Journal(journal_path("unit", tmp_path)).load() == []

    def test_torn_final_line_is_dropped(self, tmp_path):
        journal = Journal(journal_path("unit", tmp_path))
        journal.append(_entry("s0"))
        journal.append(_entry("s1"))
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"version":1,"suite":"unit","na')  # writer died here
        entries = journal.load()
        assert [e.scenario.name for e in entries] == ["s0", "s1"]

    def test_tampered_line_raises_journal_corrupt(self, tmp_path):
        journal = Journal(journal_path("unit", tmp_path))
        journal.append(_entry("s0"))
        journal.append(_entry("s1"))
        lines = journal.path.read_text().splitlines()
        lines[0] = lines[0].replace('"value":1.0', '"value":2.0')
        journal.path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorrupt, match="line 1"):
            journal.load()

    def test_run_id_mismatch_refused_on_append_and_load(self, tmp_path):
        run_id = "aaa111bbb222"
        journal = Journal(journal_path("unit", tmp_path, run_id), run_id)
        journal.append(_entry("s0"))
        imposter = Journal(journal.path, "cccdddeeefff")
        with pytest.raises(JournalCorrupt, match="refusing to mix runs"):
            imposter.append(_entry("s1"))
        with pytest.raises(JournalCorrupt, match="refusing to mix runs"):
            imposter.load()
        # The rightful owner still appends and loads fine.
        journal.append(_entry("s1"))
        assert [e.scenario.name for e in journal.load()] == ["s0", "s1"]

    def test_headerless_file_refused_when_run_id_expected(self, tmp_path):
        legacy = Journal(journal_path("unit", tmp_path))
        legacy.append(_entry("s0"))
        strict = Journal(legacy.path, "aaa111bbb222")
        with pytest.raises(JournalCorrupt, match="no run-id header"):
            strict.append(_entry("s1"))

    def test_mid_file_garbage_raises_journal_corrupt(self, tmp_path):
        journal = Journal(journal_path("unit", tmp_path))
        journal.append(_entry("s0"))
        lines = journal.path.read_text().splitlines()
        journal.path.write_text("not json at all\n" + "\n".join(lines) + "\n")
        with pytest.raises(JournalCorrupt, match="line 1"):
            journal.load()

    def test_wrong_version_raises_journal_corrupt(self, tmp_path):
        import hashlib

        record = _entry("s0").record()
        record["version"] = 99
        digest = hashlib.sha256(canonical_json(record).encode()).hexdigest()
        path = journal_path("unit", tmp_path)
        path.write_text(canonical_json({**record, "sha256": digest}) + "\n")
        with pytest.raises(JournalCorrupt, match="version"):
            Journal(path).load()

    def test_matches_requires_suite_name_task_and_params(self):
        entry = _entry("s0", suite="unit")
        base = Scenario(name="s0", task="relax_solve", params={"seed": 0})
        assert entry.matches(base, "unit")
        assert not entry.matches(base, "other_suite")
        assert not entry.matches(
            Scenario(name="s1", task="relax_solve", params={"seed": 0}), "unit"
        )
        assert not entry.matches(
            Scenario(name="s0", task="simulate", params={"seed": 0}), "unit"
        )
        assert not entry.matches(
            Scenario(name="s0", task="relax_solve", params={"seed": 9}), "unit"
        )

    def test_later_entries_win(self, tmp_path):
        journal = Journal(journal_path("unit", tmp_path))
        journal.append(_entry("s0", summary={"value": 1.0}))
        journal.append(_entry("s0", summary={"value": 5.0}))
        scenario = Scenario(name="s0", task="relax_solve", params={"seed": 0})
        done = journal.completed([scenario], "unit")
        assert done["s0"].summary == {"value": 5.0}

    def test_journal_lines_are_canonical_json(self, tmp_path):
        journal = Journal(journal_path("unit", tmp_path))
        journal.append(_entry("s0"))
        line = journal.path.read_text().splitlines()[0]
        payload = json.loads(line)
        assert line == canonical_json(payload)
