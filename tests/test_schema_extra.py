"""Extra schema coverage: Job/Trace helpers, SchedulingClass semantics."""

import pytest

from repro.trace import MachineType, PriorityGroup, SchedulingClass, Trace
from tests.conftest import make_task


class TestSchedulingClass:
    def test_values_match_trace_semantics(self):
        assert SchedulingClass.BATCH == 0
        assert SchedulingClass.INTERACTIVE == 3

    def test_generated_classes_correlate_with_priority(self, small_trace):
        """Production tasks skew latency-sensitive, gratis skew batch
        (Section III: groups 'have strong correlation with task scheduling
        classes')."""
        import numpy as np

        means = {}
        for group in PriorityGroup:
            classes = [t.scheduling_class for t in small_trace.tasks_in_group(group)]
            means[group] = float(np.mean(classes))
        assert means[PriorityGroup.PRODUCTION] > means[PriorityGroup.GRATIS]


class TestTraceHelpers:
    def _machines(self):
        return (MachineType(platform_id=1, cpu_capacity=1.0, memory_capacity=1.0, count=2),)

    def test_num_jobs_counts_distinct(self):
        tasks = [
            make_task(job_id=1, index=0),
            make_task(job_id=1, index=1),
            make_task(job_id=2, index=0, submit_time=1.0),
        ]
        trace = Trace.from_tasks(self._machines(), tasks)
        assert trace.num_jobs == 2
        assert trace.num_tasks == 3

    def test_window_metadata_records_bounds(self, tiny_trace):
        window = tiny_trace.window(0.0, tiny_trace.horizon / 2)
        assert window.metadata["window"] == (0.0, tiny_trace.horizon / 2)

    def test_from_tasks_empty(self):
        trace = Trace.from_tasks(self._machines(), [])
        assert trace.num_tasks == 0
        assert trace.horizon == 1.0

    def test_jobs_iteration_order_by_first_arrival(self):
        tasks = [
            make_task(job_id=2, index=0, submit_time=0.0),
            make_task(job_id=1, index=0, submit_time=5.0),
        ]
        trace = Trace.from_tasks(self._machines(), tasks)
        job_ids = [job.job_id for job in trace.jobs()]
        assert job_ids == [2, 1]

    def test_machine_count_helpers(self, tiny_trace):
        assert tiny_trace.num_machines == sum(
            m.count for m in tiny_trace.machine_types
        )
        assert len(tiny_trace.machine_types) == 10
