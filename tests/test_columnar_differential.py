"""Columnar-vs-object differential harness: bit-identical summaries.

The columnar engine's determinism contract (see
``src/repro/simulation/columnar.py``) is that for *any* scenario its
``summary()`` is bit-identical to the object engine's — resilience and
fabric blocks, stretch rescaling and degradation timelines included.
This suite sweeps the contract across policies, fault scenarios
(machine-fault and network-fabric universes), preemption, predictors and
trace shapes, plus hypothesis-randomized traces, comparing the canonical
JSON digest of the full summary.

A digest mismatch here means the engines diverged somewhere; rerun with
engine-specific summaries dumped to JSON and diff them to find the field.
"""

from __future__ import annotations

import hashlib
import json

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.resilience.scenarios import SCENARIOS, build_scenario_plan
from repro.simulation import HarmonyConfig, HarmonySimulation
from repro.trace import SyntheticTraceConfig, generate_trace


def summary_digest(summary: dict) -> str:
    payload = json.dumps(summary, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


def run_engine(engine: str, trace, **config_kwargs) -> str:
    config = HarmonyConfig(engine=engine, **config_kwargs)
    return summary_digest(HarmonySimulation(config, trace).run().summary())


def assert_engines_agree(trace, **config_kwargs) -> None:
    digest_object = run_engine("object", trace, **config_kwargs)
    digest_columnar = run_engine("columnar", trace, **config_kwargs)
    assert digest_object == digest_columnar, (
        f"engines diverged for config {config_kwargs!r}"
    )


@pytest.fixture(scope="module")
def sweep_trace():
    """The golden-fixture trace shape (0.5 h, 120 machines, load 0.4)."""
    return generate_trace(
        SyntheticTraceConfig(
            horizon_hours=0.5, seed=11, total_machines=120, load_factor=0.4
        )
    )


class TestGoldenEquivalence:
    def test_golden_fixture_scenario(self, sweep_trace):
        """The exact golden-snapshot scenario, both engines."""
        assert_engines_agree(sweep_trace, policy="cbs", predictor="ewma", seed=11)


class TestFaultScenarioSweep:
    """Threshold policy under every fault scenario, including fabric faults."""

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_scenario(self, sweep_trace, scenario):
        plan = build_scenario_plan(scenario, sweep_trace.horizon, seed=3)
        assert_engines_agree(sweep_trace, policy="threshold", fault_plan=plan, seed=3)


class TestPolicySweep:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(policy="baseline", seed=5),
            dict(policy="static", seed=5),
            dict(policy="cbp", predictor="ewma", seed=7),
            dict(policy="cbs", predictor="fallback", seed=7),
            dict(policy="cbs", predictor="ewma", enable_preemption=True, seed=9),
        ],
        ids=lambda kw: "-".join(str(v) for v in kw.values()),
    )
    def test_policy(self, sweep_trace, kwargs):
        assert_engines_agree(sweep_trace, **kwargs)


class TestDeepBacklog:
    def test_degradation_under_blackout_on_bigger_trace(self):
        """A heavier trace exercising crash sweeps, stretch reissue and
        the degradation ladder — the paths the columnar engine batches."""
        trace = generate_trace(
            SyntheticTraceConfig(
                horizon_hours=1.0, seed=4, total_machines=150, load_factor=0.7
            )
        )
        plan = build_scenario_plan("blackout", trace.horizon, seed=4)
        assert_engines_agree(
            trace, policy="cbs", predictor="fallback", fault_plan=plan, seed=4
        )


class TestRandomizedTraces:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        load=st.sampled_from([0.3, 0.6, 0.9]),
        machines=st.sampled_from([40, 90]),
        constrained=st.sampled_from([0.0, 0.3]),
        scenario=st.sampled_from([None, "outage", "partial_partition"]),
    )
    def test_random_trace_equivalence(self, seed, load, machines, constrained, scenario):
        trace = generate_trace(
            SyntheticTraceConfig(
                horizon_hours=0.25,
                seed=seed,
                total_machines=machines,
                load_factor=load,
                constrained_fraction=constrained,
            )
        )
        # A short horizon over a tiny fleet can draw zero tasks, which the
        # pipeline rejects before either engine runs — nothing to compare.
        assume(trace.num_tasks > 0)
        kwargs: dict = dict(policy="threshold", seed=seed)
        if scenario is not None:
            kwargs["fault_plan"] = build_scenario_plan(
                scenario, trace.horizon, seed=seed
            )
        assert_engines_agree(trace, **kwargs)
