"""Tests for the MPC controller (Algorithm 1), CBP and the baseline."""

import numpy as np
import pytest

from repro.containers import ContainerManagerConfig, ContainerManager
from repro.energy import constant_price, table2_fleet
from repro.forecasting import EwmaPredictor
from repro.provisioning import (
    BaselineConfig,
    BaselineProvisioner,
    CbpController,
    ControllerConfig,
    HarmonyController,
)


@pytest.fixture(scope="module")
def controller_setup(classifier):
    fleet = table2_fleet(scale=0.1)
    manager = ContainerManager(classifier, ContainerManagerConfig())
    config = ControllerConfig(
        interval_seconds=300.0,
        horizon=3,
        price=constant_price(0.1),
        predictor_factory=lambda: EwmaPredictor(alpha=0.5),
    )
    return fleet, manager, config


def steady_arrivals(controller, count_per_class=2.0, rounds=6):
    counts = {cid: count_per_class for cid in controller.class_ids}
    for _ in range(rounds):
        controller.observe(counts)


class TestControllerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ControllerConfig(interval_seconds=0)
        with pytest.raises(ValueError):
            ControllerConfig(horizon=0)
        with pytest.raises(ValueError):
            ControllerConfig(overprovision=0.5)


class TestHarmonyController:
    def test_forecast_shape(self, controller_setup):
        fleet, manager, config = controller_setup
        controller = HarmonyController(fleet, manager, config)
        steady_arrivals(controller)
        rates = controller.forecast_rates()
        assert rates.shape == (3, len(controller.class_ids))
        assert (rates >= 0).all()
        assert rates.max() > 0

    def test_decide_provisions_for_demand(self, controller_setup):
        fleet, manager, config = controller_setup
        controller = HarmonyController(fleet, manager, config)
        steady_arrivals(controller)
        decision = controller.decide(now=0.0)
        assert decision.total_active() > 0
        assert decision.quotas is not None
        total_quota = sum(sum(q.values()) for q in decision.quotas.values())
        assert total_quota > 0

    def test_zero_arrivals_zero_machines(self, controller_setup):
        fleet, manager, config = controller_setup
        controller = HarmonyController(fleet, manager, config)
        controller.observe({cid: 0.0 for cid in controller.class_ids})
        decision = controller.decide(now=0.0)
        assert decision.total_active() == 0

    def test_backlog_raises_demand(self, controller_setup):
        fleet, manager, config = controller_setup
        controller_a = HarmonyController(fleet, manager, config)
        controller_b = HarmonyController(fleet, manager, config)
        steady_arrivals(controller_a)
        steady_arrivals(controller_b)
        cid = controller_a.class_ids[0]
        plain = controller_a.decide(now=0.0)
        backlogged = controller_b.decide(now=0.0, backlog={cid: 200})
        assert backlogged.demand[cid] >= plain.demand[cid] + 150

    def test_running_tasks_keep_capacity(self, controller_setup):
        """Occupied containers hold machines even with zero arrivals."""
        fleet, manager, config = controller_setup
        controller = HarmonyController(fleet, manager, config)
        controller.observe({cid: 0.0 for cid in controller.class_ids})
        cid = controller.class_ids[0]
        decision = controller.decide(
            now=0.0,
            running={cid: 50},
            running_by_platform={fleet[3].platform_id: {cid: 50}},
        )
        assert decision.total_active() > 0
        assert decision.demand[cid] >= 50

    def test_available_caps_active(self, controller_setup):
        fleet, manager, config = controller_setup
        controller = HarmonyController(fleet, manager, config)
        steady_arrivals(controller, count_per_class=20.0)
        available = {m.platform_id: 1 for m in fleet}
        decision = controller.decide(now=0.0, available=available)
        for platform_id, active in decision.active.items():
            assert active <= 1

    def test_switching_state_carries_over(self, controller_setup):
        fleet, manager, config = controller_setup
        controller = HarmonyController(fleet, manager, config)
        steady_arrivals(controller)
        first = controller.decide(now=0.0)
        assert np.array_equal(
            controller._previous_active,
            np.array([first.active[m.platform_id] for m in fleet], dtype=float),
        )

    def test_prime_warm_starts(self, controller_setup):
        fleet, manager, config = controller_setup
        controller = HarmonyController(fleet, manager, config)
        controller.prime({cid: 3.0 for cid in controller.class_ids})
        decision = controller.decide(now=0.0)
        assert decision.total_active() > 0

    def test_prime_validation(self, controller_setup):
        fleet, manager, config = controller_setup
        controller = HarmonyController(fleet, manager, config)
        with pytest.raises(ValueError):
            controller.prime({}, repeats=0)

    def test_committed_matrix_alignment(self, controller_setup):
        fleet, manager, config = controller_setup
        controller = HarmonyController(fleet, manager, config)
        cid = controller.class_ids[2]
        matrix = controller.committed_matrix({fleet[1].platform_id: {cid: 7}})
        assert matrix[1, 2] == 7
        assert matrix.sum() == 7
        assert controller.committed_matrix(None) is None


class TestCbpController:
    def test_cbp_no_packing_plan(self, controller_setup):
        fleet, manager, config = controller_setup
        controller = CbpController(fleet, manager, config)
        steady_arrivals(controller)
        decision = controller.decide(now=0.0)
        assert controller.last_plan is None
        assert decision.quotas is not None
        assert decision.total_active() > 0
        assert decision.dropped == {}

    def test_cbp_quota_totals_close_to_cbs(self, controller_setup):
        fleet, manager, config = controller_setup
        cbs = HarmonyController(fleet, manager, config)
        cbp = CbpController(fleet, manager, config)
        steady_arrivals(cbs)
        steady_arrivals(cbp)
        d_cbs = cbs.decide(now=0.0)
        d_cbp = cbp.decide(now=0.0)
        total = lambda d: sum(sum(q.values()) for q in d.quotas.values())
        assert total(d_cbp) == pytest.approx(total(d_cbs), rel=0.3)


class TestBaselineProvisioner:
    def test_efficiency_order(self):
        fleet = table2_fleet(0.1)
        baseline = BaselineProvisioner(fleet)
        names = [m.name for m in baseline.efficiency_order]
        assert names[0] == "HP DL385 G7"
        assert names[-1] == "Dell PowerEdge R210"

    def test_eighty_percent_rule(self):
        fleet = table2_fleet(0.1)
        baseline = BaselineProvisioner(fleet, BaselineConfig(target_utilization=0.8))
        decision = baseline.decide(now=0.0, demand_cpu=10.0, demand_memory=5.0)
        got_cpu = sum(
            next(m for m in fleet if m.platform_id == pid).cpu_capacity * n
            for pid, n in decision.active.items()
        )
        got_mem = sum(
            next(m for m in fleet if m.platform_id == pid).memory_capacity * n
            for pid, n in decision.active.items()
        )
        assert got_cpu >= 10.0 / 0.8 - 1.0  # within one machine of target
        assert got_mem >= 5.0 / 0.8 - 1.0
        assert decision.quotas is None

    def test_zero_demand_zero_machines(self):
        baseline = BaselineProvisioner(table2_fleet(0.1))
        decision = baseline.decide(now=0.0, demand_cpu=0.0, demand_memory=0.0)
        assert decision.total_active() == 0

    def test_memory_bound_demand_cascades_models(self):
        """Heterogeneity-obliviousness: memory-heavy demand forces the
        baseline through its cpu-efficiency order into many machines."""
        fleet = table2_fleet(0.1)
        baseline = BaselineProvisioner(fleet)
        decision = baseline.decide(now=0.0, demand_cpu=5.0, demand_memory=40.0)
        # All 100 DL385s (25 mem units) cannot cover 50 mem units alone.
        assert decision.active[fleet[2].platform_id] == 100
        assert decision.total_active() > 100

    def test_respects_availability(self):
        fleet = table2_fleet(0.1)
        baseline = BaselineProvisioner(fleet)
        available = {m.platform_id: 2 for m in fleet}
        decision = baseline.decide(
            now=0.0, demand_cpu=100.0, demand_memory=100.0, available=available
        )
        assert all(n <= 2 for n in decision.active.values())

    def test_negative_demand_rejected(self):
        baseline = BaselineProvisioner(table2_fleet(0.1))
        with pytest.raises(ValueError):
            baseline.decide(now=0.0, demand_cpu=-1.0, demand_memory=0.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BaselineConfig(target_utilization=0.0)
        with pytest.raises(ValueError):
            BaselineProvisioner(())
