"""Tests for capacity-ladder snapping of container sizes."""

import pytest

from repro.containers import ContainerManager, ContainerManagerConfig


LADDERS = ((4 / 48, 0.25, 0.5, 1.0), (4 / 64, 0.25, 0.5, 1.0))


class TestLadderSnapping:
    def test_pad_never_crosses_boundary(self, classifier):
        manager = ContainerManager(
            classifier,
            ContainerManagerConfig(capacity_ladders=LADDERS),
        )
        for spec in manager.specs.values():
            leaf = spec.task_class
            for mean, size, caps in (
                (leaf.cpu_mean, spec.cpu, LADDERS[0]),
                (leaf.memory_mean, spec.memory, LADDERS[1]),
            ):
                for cap in caps:
                    # If the mean fits below a boundary, the sized container
                    # must not be pushed above it.
                    if mean <= cap:
                        assert size <= cap + 1e-12
                        break

    def test_sizes_never_below_mean(self, classifier):
        manager = ContainerManager(
            classifier, ContainerManagerConfig(capacity_ladders=LADDERS)
        )
        for spec in manager.specs.values():
            assert spec.cpu >= spec.task_class.cpu_mean - 1e-12
            assert spec.memory >= spec.task_class.memory_mean - 1e-12

    def test_no_ladders_no_snapping(self, classifier):
        plain = ContainerManager(classifier, ContainerManagerConfig())
        snapped = ContainerManager(
            classifier, ContainerManagerConfig(capacity_ladders=LADDERS)
        )
        # Snapping can only shrink sizes.
        for class_id in plain.specs:
            assert snapped.spec(class_id).cpu <= plain.spec(class_id).cpu + 1e-12
            assert snapped.spec(class_id).memory <= plain.spec(class_id).memory + 1e-12
