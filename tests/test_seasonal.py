"""Tests for the seasonal (diurnal-aware) predictors."""

import numpy as np
import pytest

from repro.forecasting import (
    SeasonalEwmaPredictor,
    SeasonalNaivePredictor,
    make_predictor,
    rolling_origin_evaluation,
    NaivePredictor,
)


def diurnal_series(periods=6, period=24, base=50.0, amplitude=0.5, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(periods * period)
    values = base * (1 + amplitude * np.sin(2 * np.pi * t / period))
    return values * (1 + rng.normal(0, noise, size=t.size))


class TestSeasonalNaive:
    def test_repeats_last_season(self):
        p = SeasonalNaivePredictor(period=4)
        for v in (1.0, 2.0, 3.0, 4.0):
            p.update(v)
        forecast = p.forecast(6)
        assert list(forecast[:4]) == [1.0, 2.0, 3.0, 4.0]
        assert list(forecast[4:]) == [1.0, 2.0]

    def test_fallback_before_full_season(self):
        p = SeasonalNaivePredictor(period=10)
        p.update(7.0)
        assert list(p.forecast(2)) == [7.0, 7.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            SeasonalNaivePredictor(period=1)
        p = SeasonalNaivePredictor(period=4)
        with pytest.raises(ValueError):
            p.forecast(0)

    def test_never_negative(self):
        p = SeasonalNaivePredictor(period=3)
        for v in (-1.0, -2.0, -3.0):
            p.update(v)
        assert (p.forecast(3) >= 0).all()


class TestSeasonalEwma:
    def test_learns_level(self):
        p = SeasonalEwmaPredictor(period=4, alpha=0.5, gamma=0.2)
        for _ in range(10):
            for v in (10.0, 10.0, 10.0, 10.0):
                p.update(v)
        assert p.forecast(1)[0] == pytest.approx(10.0, rel=0.05)

    def test_learns_seasonal_shape(self):
        p = SeasonalEwmaPredictor(period=4, alpha=0.3, gamma=0.3)
        pattern = (5.0, 10.0, 15.0, 10.0)
        for _ in range(30):
            for v in pattern:
                p.update(v)
        forecast = p.forecast(4)
        # The forecast follows the within-period shape.
        assert forecast[2] > forecast[0]
        assert forecast[2] == pytest.approx(15.0, rel=0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            SeasonalEwmaPredictor(period=1)
        with pytest.raises(ValueError):
            SeasonalEwmaPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            SeasonalEwmaPredictor(gamma=2.0)

    def test_zero_series_stable(self):
        p = SeasonalEwmaPredictor(period=3)
        for _ in range(9):
            p.update(0.0)
        assert np.isfinite(p.forecast(3)).all()


class TestSeasonalAccuracy:
    def test_seasonal_beats_naive_on_diurnal_series(self):
        series = diurnal_series(periods=20, period=24)
        naive = rolling_origin_evaluation(series, NaivePredictor, warmup=96)
        seasonal = rolling_origin_evaluation(
            series,
            lambda: SeasonalEwmaPredictor(period=24, alpha=0.3, gamma=0.4),
            warmup=96,
        )
        assert seasonal.rmse < naive.rmse

    def test_factory_names(self):
        assert isinstance(make_predictor("seasonal_naive", period=12), SeasonalNaivePredictor)
        assert isinstance(make_predictor("seasonal_ewma", period=12), SeasonalEwmaPredictor)
