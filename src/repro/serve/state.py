"""The serve daemon's deterministic control-plane state.

:class:`ServeState` is the whole digest-relevant world of a ``repro
serve`` run: the online task classifier, per-class forecast chains, the
virtual cluster bookkeeping (running containers, powered machines), and
the guarded + laddered decision pipeline.  One invariant rules the
module:

    ``apply_tick`` is a pure function of (state, tick batch, chaos
    effects) — no wall clock, no RNG, no ambient environment.

Everything observable flows from that: a checkpoint plus a journal-suffix
replay reconstructs the state bit-identically, two runs over the same
feeder trace produce the same rolling :attr:`chain` digest, and a SIGKILL
at any point is recoverable.

The decision pipeline nests the resilience layers the same way the batch
simulator does (``repro.simulation.harmony``): the
:class:`~repro.resilience.guard.GuardedController` wraps a policy whose
``decide`` runs the :class:`~repro.simulation.degradation.DegradationLadder`
around the MPC-lite primary — per-class M/G/N sizing
(:func:`~repro.queueing.mgn.required_containers`) over forecast arrival
rates, translated to machine targets over the Table II fleet.  Solver
failures step the ladder down; bad decisions and forecast residual storms
trip the guard; fabric partitions hold per-cell targets in both layers.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import asdict, dataclass, field

from repro.energy.catalog import table2_fleet
from repro.errors import ServeError
from repro.provisioning.autoscaler import ThresholdAutoscaler, ThresholdConfig
from repro.provisioning.controller import ProvisioningDecision
from repro.queueing.mgn import required_containers
from repro.resilience.fabric import FabricView
from repro.resilience.guard import GuardConfig, GuardedController
from repro.runner.runner import canonical_json, summary_digest
from repro.serve.config import ServeConfig
from repro.serve.feeder import TickBatch
from repro.simulation.cluster import ClusterView
from repro.simulation.degradation import DEGRADATION_LEVELS, DegradationLadder

#: Bumped when the checkpoint/state payload layout changes.
STATE_VERSION = 1

#: Cap handed to M/G/N sizing so a pathological forecast degrades (ladder
#: rung 1 via CapacityModelUnstable) instead of looping forever.
_MAX_CONTAINERS = 1_000_000

#: Centroid used for classes that have not been seeded yet.
_DEFAULT_CENTROID = (0.1, 0.1)


def pairs(mapping: dict) -> list[list]:
    """Int-keyed dict -> sorted ``[key, value]`` pair list (JSON-safe)."""
    return [[k, mapping[k]] for k in sorted(mapping)]


def unpairs(items: list, key=int) -> dict:
    """Inverse of :func:`pairs`."""
    return {key(k): v for k, v in items}


@dataclass
class WelfordStats:
    """Streaming mean/variance of per-class task durations."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    @property
    def scv(self) -> float:
        """Squared coefficient of variation, clamped to a sane band."""
        if self.count < 2 or self.mean <= 0:
            return 1.0
        variance = self.m2 / self.count
        return min(max(variance / (self.mean * self.mean), 0.0), 100.0)

    def to_state(self) -> dict:
        return {"count": self.count, "mean": self.mean, "m2": self.m2}

    @classmethod
    def from_state(cls, state: dict) -> "WelfordStats":
        return cls(
            count=int(state["count"]),
            mean=float(state["mean"]),
            m2=float(state["m2"]),
        )


class OnlineClassifier:
    """Streaming nearest-centroid classifier over (cpu, memory) requests.

    The batch pipeline clusters the whole trace offline (k-means,
    ``repro.clustering``); the online plane cannot wait for the trace to
    finish, so it grows centroids incrementally: the first ``k`` arrivals
    seed the centroids, every later arrival joins its nearest centroid and
    drags it by a running mean.  Deterministic — assignment and update
    depend only on arrival order.
    """

    def __init__(self, num_classes: int) -> None:
        if num_classes < 1:
            raise ValueError(f"num_classes must be >= 1, got {num_classes}")
        self.num_classes = num_classes
        self._centroids: list[list[float] | None] = [None] * num_classes
        self.counts: list[int] = [0] * num_classes

    def centroid(self, class_id: int) -> tuple[float, float]:
        point = self._centroids[class_id]
        return _DEFAULT_CENTROID if point is None else (point[0], point[1])

    def observe(self, cpu: float, memory: float, update: bool = True) -> int:
        """Assign (and optionally learn from) one arrival."""
        seeded = [i for i, c in enumerate(self._centroids) if c is not None]
        if update and len(seeded) < self.num_classes:
            class_id = next(
                i for i, c in enumerate(self._centroids) if c is None
            )
            self._centroids[class_id] = [float(cpu), float(memory)]
            self.counts[class_id] = 1
            return class_id
        if not seeded:
            return 0
        class_id = min(
            seeded,
            key=lambda i: (
                (self._centroids[i][0] - cpu) ** 2
                + (self._centroids[i][1] - memory) ** 2,
                i,
            ),
        )
        if update:
            centroid = self._centroids[class_id]
            self.counts[class_id] += 1
            n = self.counts[class_id]
            centroid[0] += (cpu - centroid[0]) / n
            centroid[1] += (memory - centroid[1]) / n
        return class_id

    def to_state(self) -> dict:
        return {
            "centroids": [c if c is None else list(c) for c in self._centroids],
            "counts": list(self.counts),
        }

    @classmethod
    def from_state(cls, state: dict, num_classes: int) -> "OnlineClassifier":
        classifier = cls(num_classes)
        classifier._centroids = [
            None if c is None else [float(c[0]), float(c[1])]
            for c in state["centroids"]
        ]
        classifier.counts = [int(n) for n in state["counts"]]
        return classifier


@dataclass(frozen=True)
class ChaosEffects:
    """Per-tick fault effects, derived (never journaled) from a FaultPlan."""

    #: Monitoring blackout: the control plane observes zero arrivals.
    arrivals_masked: bool = False
    #: Machines down per platform id (correlated outages under repair).
    pool_unavailable: dict[int, int] = field(default_factory=dict)
    #: Fabric snapshot when partitions/flaps are active; ``None`` = healthy.
    fabric: FabricView | None = None
    #: Injected primary-solver outage: the MPC-lite path raises with this
    #: reason and the ladder steps down to rung 1.
    primary_fail: str | None = None
    #: Control-step sabotage: the first N watchdog attempts of this tick
    #: raise before touching state (exercises snapshot/retry; digest-safe).
    crash_attempts: int = 0


NO_EFFECTS = ChaosEffects()


@dataclass(frozen=True)
class TickOutcome:
    """What one applied tick produced (for logs, metrics and the chain)."""

    tick: int
    time: float
    arrivals: int
    observed: list[float]
    decision: ProvisioningDecision
    rung: int
    rung_reason: str
    mode: str
    masked: bool

    @property
    def rung_name(self) -> str:
        return DEGRADATION_LEVELS[self.rung]


class _LadderedPolicy:
    """The guard-facing policy: degradation ladder around the primary."""

    def __init__(self, state: "ServeState") -> None:
        self._state = state

    def decide(self, view: ClusterView) -> ProvisioningDecision:
        state = self._state
        return state.ladder.decide(view, lambda: state._primary_decide(view))


class ServeState:
    """Deterministic online control-plane state (see module docstring)."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.fleet = table2_fleet(config.fleet_scale)
        self._efficiency_order = tuple(
            sorted(self.fleet, key=lambda m: -m.efficiency)
        )
        self.classifier = OnlineClassifier(config.num_classes)
        self.durations = [WelfordStats() for _ in range(config.num_classes)]
        from repro.forecasting.predictors import EwmaPredictor, FallbackChainPredictor

        self.predictors = [
            FallbackChainPredictor(
                primary=EwmaPredictor(alpha=config.ewma_alpha),
                period=config.seasonal_period,
            )
            for _ in range(config.num_classes)
        ]
        self.ladder = DegradationLadder(
            ThresholdAutoscaler(self.fleet, ThresholdConfig())
        )
        self.guard = GuardedController(
            policy=_LadderedPolicy(self),
            machine_models=self.fleet,
            config=GuardConfig(solve_timeout_seconds=None),
            fallback=ThresholdAutoscaler(self.fleet, ThresholdConfig()),
        )
        #: Applied-tick count == the next tick index expected.
        self.ticks_applied = 0
        #: Rolling SHA-256 chain over every applied tick's record.
        self.chain = hashlib.sha256(
            canonical_json(config.deterministic_fields()).encode()
        ).hexdigest()
        self.arrivals_total = 0
        self.masked_ticks = 0
        self.per_class_arrivals = [0] * config.num_classes
        #: finish_tick -> class id -> [count, cpu_sum, memory_sum].
        self._running: dict[int, dict[int, list[float]]] = {}
        self._powered: dict[int, int] = {m.platform_id: m.count for m in self.fleet}
        self._last_active: dict[int, int] = {}
        self._last_rung: int | None = None
        self._pending_primary_fail: str | None = None

    # ------------------------------------------------------------ tick apply

    def apply_tick(
        self, batch: TickBatch, effects: ChaosEffects = NO_EFFECTS
    ) -> TickOutcome:
        """Advance one control tick.  Pure in (state, batch, effects)."""
        if batch.tick != self.ticks_applied:
            raise ServeError(
                "tick applied out of order",
                expected=self.ticks_applied,
                got=batch.tick,
            )
        tick = batch.tick
        masked = effects.arrivals_masked

        # Virtual cluster: expire containers whose tasks finished, then
        # admit this tick's arrivals (the cluster keeps running even when
        # the monitoring plane is dark).
        for finish in sorted(t for t in self._running if t <= tick):
            del self._running[finish]
        observed = [0.0] * self.config.num_classes
        for arrival in batch.arrivals:
            class_id = self.classifier.observe(
                arrival.cpu, arrival.memory, update=not masked
            )
            if not masked:
                self.durations[class_id].update(arrival.duration)
                observed[class_id] += 1.0
                self.per_class_arrivals[class_id] += 1
            finish = tick + max(
                1, int(math.ceil(arrival.duration / self.config.tick_seconds))
            )
            slot = self._running.setdefault(finish, {}).setdefault(
                class_id, [0, 0.0, 0.0]
            )
            slot[0] += 1
            slot[1] += arrival.cpu
            slot[2] += arrival.memory
        self.arrivals_total += len(batch.arrivals)
        if masked:
            self.masked_ticks += 1

        view = self._build_view(batch.time, observed, effects)
        for class_id in range(self.config.num_classes):
            self.predictors[class_id].update(observed[class_id])

        self._pending_primary_fail = effects.primary_fail
        ladder_len = len(self.ladder.timeline)
        try:
            decision = self.guard.decide(view)
        finally:
            self._pending_primary_fail = None
        self._powered = dict(decision.active)

        if len(self.ladder.timeline) > ladder_len:
            _, rung, reason = self.ladder.timeline[-1]
        else:
            # Guard tripped: the ladder never ran; reactive == rung 1.
            rung, reason = 1, "guard_tripped"
        mode = self.guard.mode_timeline[-1][1]
        outcome = TickOutcome(
            tick=tick,
            time=batch.time,
            arrivals=len(batch.arrivals),
            observed=observed,
            decision=decision,
            rung=rung,
            rung_reason=reason,
            mode=mode,
            masked=masked,
        )
        record = {
            "tick": tick,
            "arrivals": len(batch.arrivals),
            "observed": observed,
            "active": pairs(decision.active),
            "rung": rung,
            "mode": mode,
            "masked": masked,
        }
        self.chain = hashlib.sha256(
            (self.chain + canonical_json(record)).encode()
        ).hexdigest()
        self.ticks_applied += 1
        self._last_active = dict(decision.active)
        self._last_rung = rung
        return outcome

    # ------------------------------------------------------------- pipeline

    def _build_view(
        self, time: float, observed: list[float], effects: ChaosEffects
    ) -> ClusterView:
        running: dict[int, int] = {}
        demand_cpu = 0.0
        demand_memory = 0.0
        for per_class in self._running.values():
            for class_id, (count, cpu, memory) in per_class.items():
                running[class_id] = running.get(class_id, 0) + int(count)
                demand_cpu += cpu
                demand_memory += memory
        available = {
            m.platform_id: max(
                m.count - effects.pool_unavailable.get(m.platform_id, 0), 0
            )
            for m in self.fleet
        }
        powered = {
            pid: min(self._powered.get(pid, 0), available[pid]) for pid in available
        }
        arrivals = {
            class_id: observed[class_id]
            for class_id in range(self.config.num_classes)
        }
        return ClusterView(
            time=time,
            backlog={},
            running=running,
            running_by_platform={},
            demand_cpu=demand_cpu,
            demand_memory=demand_memory,
            available=available,
            powered=powered,
            arrivals=arrivals,
            fabric=effects.fabric,
        )

    def _primary_decide(self, view: ClusterView) -> ProvisioningDecision:
        """MPC-lite: forecast -> M/G/N sizing -> machine targets."""
        if self._pending_primary_fail is not None:
            reason = self._pending_primary_fail
            raise ServeError(
                f"injected solver outage: {reason}", tick=self.ticks_applied
            )
        containers: dict[int, float] = {}
        demand_cpu = view.demand_cpu
        demand_memory = view.demand_memory
        for class_id in range(self.config.num_classes):
            forecast = float(self.predictors[class_id].forecast(1)[0])
            if forecast <= 0:
                containers[class_id] = 0.0
                continue
            stats = self.durations[class_id]
            mean_duration = (
                stats.mean if stats.count and stats.mean > 0
                else self.config.tick_seconds
            )
            count = required_containers(
                arrival_rate=forecast / self.config.tick_seconds,
                service_rate=1.0 / mean_duration,
                target_delay=self.config.target_delay_seconds,
                scv=stats.scv,
                max_servers=_MAX_CONTAINERS,
            )
            containers[class_id] = float(count)
            cpu, memory = self.classifier.centroid(class_id)
            demand_cpu += count * cpu * self.config.overprovision
            demand_memory += count * memory * self.config.overprovision
        active = self._machine_targets(demand_cpu, demand_memory, view.available)
        return ProvisioningDecision(
            time=view.time, active=active, quotas=None, demand=containers
        )

    def _machine_targets(
        self, demand_cpu: float, demand_memory: float, available: dict[int, int]
    ) -> dict[int, int]:
        """Cover (cpu, memory) demand greedily in energy-efficiency order."""
        active = {m.platform_id: 0 for m in self.fleet}
        remaining_cpu, remaining_memory = demand_cpu, demand_memory
        for model in self._efficiency_order:
            cap = available.get(model.platform_id, model.count)
            need = 0
            if remaining_cpu > 0:
                need = int(math.ceil(remaining_cpu / model.cpu_capacity))
            if remaining_memory > 0:
                need = max(
                    need, int(math.ceil(remaining_memory / model.memory_capacity))
                )
            take = min(need, cap)
            active[model.platform_id] = take
            remaining_cpu -= take * model.cpu_capacity
            remaining_memory -= take * model.memory_capacity
        return active

    # ------------------------------------------------------------- summaries

    def summary(self) -> dict:
        """The digest-relevant summary (canonical-JSON clean, no wall time)."""
        rung_counts = {name: 0 for name in DEGRADATION_LEVELS}
        for _, level, _ in self.ladder.timeline:
            rung_counts[DEGRADATION_LEVELS[level]] += 1
        forecast_rungs = {name: 0 for name in self.predictors[0].RUNGS}
        for predictor in self.predictors:
            for name, count in predictor.rung_counts.items():
                forecast_rungs[name] += count
        return {
            "version": STATE_VERSION,
            "config": self.config.deterministic_fields(),
            "ticks": self.ticks_applied,
            "chain": self.chain,
            "arrivals_total": self.arrivals_total,
            "per_class_arrivals": list(self.per_class_arrivals),
            "masked_ticks": self.masked_ticks,
            "classifier": self.classifier.to_state(),
            "rung_counts": rung_counts,
            "forecast_rungs": forecast_rungs,
            "guard": asdict(self.guard.stats),
            "guard_tripped": self.guard.tripped,
            "partition_hold_ticks": pairs(self.ladder.cell_hold_ticks),
            "reconciliations": self.ladder.reconciliations,
            "reconciliation_divergence": self.ladder.reconciliation_divergence,
            "last_active": pairs(self._last_active),
            "last_rung": self._last_rung,
        }

    def digest(self) -> str:
        return summary_digest(self.summary())

    # ------------------------------------------------------- (de)serializing

    def to_state(self) -> dict:
        """Full behavior-relevant state, canonical-JSON serializable."""
        return {
            "version": STATE_VERSION,
            "config": self.config.deterministic_fields(),
            "ticks_applied": self.ticks_applied,
            "chain": self.chain,
            "arrivals_total": self.arrivals_total,
            "masked_ticks": self.masked_ticks,
            "per_class_arrivals": list(self.per_class_arrivals),
            "classifier": self.classifier.to_state(),
            "durations": [s.to_state() for s in self.durations],
            "predictors": [p.to_state() for p in self.predictors],
            "ladder": self.ladder.to_state(),
            "guard": self.guard.to_state(),
            "powered": pairs(self._powered),
            "last_active": pairs(self._last_active),
            "last_rung": self._last_rung,
            "running": [
                [finish, pairs(per_class)]
                for finish, per_class in sorted(self._running.items())
            ],
        }

    @classmethod
    def from_state(cls, payload: dict, config: ServeConfig) -> "ServeState":
        if payload.get("version") != STATE_VERSION:
            raise ServeError(
                f"checkpoint state version {payload.get('version')!r} is not "
                f"{STATE_VERSION}",
            )
        if payload["config"] != config.deterministic_fields():
            raise ServeError(
                "checkpoint was written under different deterministic config",
                checkpoint=payload["config"],
                current=config.deterministic_fields(),
            )
        state = cls(config)
        state.ticks_applied = int(payload["ticks_applied"])
        state.chain = str(payload["chain"])
        state.arrivals_total = int(payload["arrivals_total"])
        state.masked_ticks = int(payload["masked_ticks"])
        state.per_class_arrivals = [int(n) for n in payload["per_class_arrivals"]]
        state.classifier = OnlineClassifier.from_state(
            payload["classifier"], config.num_classes
        )
        state.durations = [WelfordStats.from_state(s) for s in payload["durations"]]
        for predictor, snapshot in zip(state.predictors, payload["predictors"]):
            predictor.restore_state(snapshot)
        state.ladder.restore_state(payload["ladder"])
        state.guard.restore_state(payload["guard"])
        state._powered = unpairs(payload["powered"])
        state._last_active = {k: int(v) for k, v in unpairs(payload["last_active"]).items()}
        state._last_rung = (
            None if payload["last_rung"] is None else int(payload["last_rung"])
        )
        state._running = {
            int(finish): {
                class_id: [int(v[0]), float(v[1]), float(v[2])]
                for class_id, v in unpairs(per_class).items()
            }
            for finish, per_class in payload["running"]
        }
        return state


__all__ = [
    "STATE_VERSION",
    "ChaosEffects",
    "NO_EFFECTS",
    "OnlineClassifier",
    "ServeState",
    "TickOutcome",
    "WelfordStats",
    "pairs",
    "unpairs",
]
