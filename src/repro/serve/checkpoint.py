"""Serve persistence: write-ahead tick journal + digest-verified checkpoints.

Crash safety is two files per run inside ``--state-dir``, both keyed by
the run id (derived from the deterministic config + feeder spec, so a
``--restore`` recomputes the same id and can never mix runs):

``TICKS_<run_id>.jsonl``
    The write-ahead journal.  Every tick batch is appended — digest
    field, flush, fsync — **before** it is applied to state, on the
    shared :mod:`repro.runner.journal` line machinery (torn-tail
    tolerant, run-id header, ``JournalCorrupt`` on mixing).
``CHECKPOINT_<run_id>.json``
    The latest state snapshot, written atomically (tmp + fsync +
    ``os.replace``) every ``checkpoint_interval_ticks`` applied ticks.
    The record carries both a line digest (file integrity) and the
    state's ``summary_digest`` (semantic integrity): a checkpoint that
    loads but does not reproduce its recorded digest is rejected.

:func:`restore` = load checkpoint (or fresh state) + replay the journal
suffix through ``apply_tick`` — bit-identical to the uninterrupted run
because ``apply_tick`` is pure and chaos effects are derived from tick
indices.  Restore is idempotent by construction: it never writes.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.errors import JournalCorrupt
from repro.runner.journal import (
    JOURNAL_VERSION,
    check_run_id,
    read_journal_records,
    record_digest,
    write_journal_record,
)
from repro.runner.runner import canonical_json
from repro.serve.config import ServeConfig
from repro.serve.feeder import ArrivalRecord, TickBatch
from repro.serve.state import NO_EFFECTS, ServeState


def derive_run_id(config: ServeConfig, feeder_spec: dict) -> str:
    """Stable run id: deterministic config half + feeder identity."""
    payload = {
        "config": config.deterministic_fields(),
        "feeder": feeder_spec,
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:12]


def tick_journal_path(directory: str | Path, run_id: str) -> Path:
    return Path(directory) / f"TICKS_{run_id}.jsonl"


def checkpoint_path(directory: str | Path, run_id: str) -> Path:
    return Path(directory) / f"CHECKPOINT_{run_id}.json"


class TickJournal:
    """Write-ahead journal of tick batches (shared line machinery)."""

    def __init__(self, directory: str | Path, run_id: str) -> None:
        self.path = tick_journal_path(directory, run_id)
        self.run_id = run_id
        self._header_checked = False

    def append(self, batch: TickBatch) -> None:
        """Durably journal one batch BEFORE it is applied."""
        if not self._header_checked:
            if self.path.exists() and self.path.stat().st_size > 0:
                check_run_id(
                    self.path, read_journal_records(self.path), self.run_id
                )
            else:
                write_journal_record(
                    self.path,
                    {
                        "version": JOURNAL_VERSION,
                        "kind": "header",
                        "run_id": self.run_id,
                    },
                )
            self._header_checked = True
        write_journal_record(
            self.path,
            {
                "version": JOURNAL_VERSION,
                "kind": "tick",
                "tick": batch.tick,
                "time": batch.time,
                "arrivals": [a.to_state() for a in batch.arrivals],
            },
        )

    def load(self) -> list[TickBatch]:
        """Every journaled batch, verified, in tick order."""
        records = read_journal_records(self.path)
        check_run_id(self.path, records, self.run_id)
        batches = [
            TickBatch(
                tick=int(r["tick"]),
                time=float(r["time"]),
                arrivals=tuple(
                    ArrivalRecord.from_state(a) for a in r["arrivals"]
                ),
            )
            for r in records
            if r.get("kind") == "tick"
        ]
        return sorted(batches, key=lambda b: b.tick)

    def tick_count(self) -> int:
        return len(self.load())


class CheckpointStore:
    """Atomic, digest-verified single-slot checkpoint."""

    def __init__(self, directory: str | Path, run_id: str) -> None:
        self.path = checkpoint_path(directory, run_id)
        self.run_id = run_id

    def exists(self) -> bool:
        return self.path.exists()

    def write(self, state: ServeState) -> Path:
        """Atomically replace the checkpoint with ``state``'s snapshot."""
        record = {
            "version": JOURNAL_VERSION,
            "kind": "checkpoint",
            "run_id": self.run_id,
            "ticks_applied": state.ticks_applied,
            "summary_digest": state.digest(),
            "state": state.to_state(),
        }
        payload = canonical_json({**record, "sha256": record_digest(record)})
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        return self.path

    def load(self, config: ServeConfig) -> ServeState | None:
        """Verified state from the checkpoint, or ``None`` if absent.

        Three layers of verification: the line digest (file bytes), the
        run id (no mixing), and the semantic ``summary_digest`` (the
        reconstructed state must reproduce the digest recorded at write
        time — a state that loads but drifted is corrupt, not usable).
        """
        if not self.path.exists():
            return None
        raw = self.path.read_text(encoding="utf-8").strip()
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise JournalCorrupt(
                f"checkpoint {self.path} is not valid JSON (torn write "
                "should be impossible: writes are atomic)",
            ) from exc
        if not isinstance(payload, dict) or "sha256" not in payload:
            raise JournalCorrupt(f"checkpoint {self.path} has no digest")
        stored = payload.pop("sha256")
        if record_digest(payload) != stored:
            raise JournalCorrupt(
                f"checkpoint {self.path} digest mismatch (edited or "
                "bit-rotted checkpoint)",
                expected=stored,
            )
        if payload.get("run_id") != self.run_id:
            raise JournalCorrupt(
                f"checkpoint {self.path} belongs to run "
                f"{payload.get('run_id')!r}, not {self.run_id!r}; refusing "
                "to mix runs",
                expected_run_id=self.run_id,
                found_run_id=payload.get("run_id"),
            )
        state = ServeState.from_state(payload["state"], config)
        if state.digest() != payload["summary_digest"]:
            raise JournalCorrupt(
                f"checkpoint {self.path} state does not reproduce its "
                "recorded summary digest",
                expected=payload["summary_digest"],
                got=state.digest(),
            )
        return state


def restore(
    config: ServeConfig,
    directory: str | Path,
    run_id: str,
    chaos=None,
) -> ServeState:
    """Checkpoint + journal-suffix replay -> bit-identical state.

    Pure read path (idempotent): loads the checkpoint if one exists,
    then re-applies every journaled batch at or past the checkpoint's
    tick, recomputing chaos effects per tick.  A gap in the journal
    (a tick the daemon never journaled) is unrecoverable and raises
    :class:`~repro.errors.JournalCorrupt`.
    """
    store = CheckpointStore(directory, run_id)
    journal = TickJournal(directory, run_id)
    state = store.load(config) or ServeState(config)
    for batch in journal.load():
        if batch.tick < state.ticks_applied:
            continue
        if batch.tick > state.ticks_applied:
            raise JournalCorrupt(
                f"tick journal {journal.path} has a gap: checkpoint is at "
                f"tick {state.ticks_applied} but the next journaled tick "
                f"is {batch.tick}",
                expected=state.ticks_applied,
                got=batch.tick,
            )
        effects = chaos.effects(batch.tick) if chaos is not None else NO_EFFECTS
        state.apply_tick(batch, effects)
    return state


__all__ = [
    "CheckpointStore",
    "TickJournal",
    "checkpoint_path",
    "derive_run_id",
    "restore",
    "tick_journal_path",
]
