"""Serve-side chaos: FaultPlans projected onto the live control loop.

The batch simulator executes a :class:`~repro.resilience.faults.FaultPlan`
through its event queue; the serve daemon has no event queue — just the
tick stream — so this module projects the same fault specs into per-tick
:class:`~repro.serve.state.ChaosEffects`, **derived, never journaled**:

- :class:`~repro.resilience.faults.MonitoringBlackout` masks the arrivals
  the control plane observes;
- :class:`~repro.resilience.faults.CorrelatedOutage` shrinks pool
  availability for its repair window;
- :class:`~repro.resilience.fabric.PartialPartition` /
  :class:`~repro.resilience.fabric.FlappingLink` /
  :class:`~repro.resilience.fabric.LinkDegradation` build a per-tick
  :class:`~repro.resilience.fabric.FabricView` (reachability computed on
  the plan's topology), driving the ladder's and guard's partition holds;
- stochastic machine-level specs (``RandomMachineFailures``,
  ``MachineDegradation``) are *ignored* — they need the simulator's RNG
  and machine pool, and the serve loop refuses nondeterministic faults.

Two serve-only specs exercise the crash machinery itself:

- :class:`SolverOutage` makes the MPC-lite primary raise for a window of
  ticks (visible as ladder rung 1);
- :class:`ControlCrash` makes the first ``attempts`` watchdog attempts of
  one tick fail *before touching state* — the watchdog's snapshot/retry
  path runs, and because retries are attempt-aware the final digest still
  matches a clean run.

Because every effect is a pure function of the tick index, a restored
daemon recomputes the exact same effects for the replayed suffix — chaos
needs no checkpoint state of its own.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.energy.models import MachineModel
from repro.resilience.fabric import (
    FabricState,
    FabricTopology,
    FabricView,
    FlappingLink,
    LinkDegradation,
    PartialPartition,
    link_label,
)
from repro.resilience.faults import CorrelatedOutage, FaultPlan, MonitoringBlackout
from repro.serve.state import ChaosEffects


@dataclass(frozen=True)
class SolverOutage:
    """The MPC-lite primary raises for ``ticks`` ticks starting at ``tick``."""

    tick: int
    ticks: int = 1
    reason: str = "solver_outage"

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise ValueError(f"tick must be >= 0, got {self.tick}")
        if self.ticks < 1:
            raise ValueError(f"ticks must be >= 1, got {self.ticks}")


@dataclass(frozen=True)
class ControlCrash:
    """The first ``attempts`` control-step attempts of ``tick`` raise."""

    tick: int
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise ValueError(f"tick must be >= 0, got {self.tick}")
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")


class ServeChaos:
    """Projects a FaultPlan (+ serve-only specs) onto tick effects."""

    def __init__(
        self,
        plan: FaultPlan | None,
        fleet: tuple[MachineModel, ...],
        tick_seconds: float,
        serve_faults: tuple[SolverOutage | ControlCrash, ...] = (),
    ) -> None:
        if tick_seconds <= 0:
            raise ValueError(f"tick_seconds must be positive, got {tick_seconds}")
        self.plan = plan or FaultPlan()
        self.fleet = fleet
        self.tick_seconds = float(tick_seconds)
        self.serve_faults = tuple(serve_faults)
        self._pool_size = {m.platform_id: m.count for m in fleet}
        cells = tuple(sorted(self._pool_size))
        self.topology = self.plan.topology or FabricTopology.full_mesh(cells)
        self._fabric_specs = tuple(
            f
            for f in self.plan.faults
            if isinstance(f, (PartialPartition, FlappingLink, LinkDegradation))
        )
        #: tick -> last_heard snapshot, grown monotonically so ``last
        #: heard`` stays a pure function of the tick index (a restored
        #: daemon refills the cache identically from tick 0).
        self._last_heard_cache: list[dict[int, float]] = []

    @property
    def has_fabric_faults(self) -> bool:
        return bool(self._fabric_specs)

    # --------------------------------------------------------------- effects

    def effects(self, tick: int) -> ChaosEffects:
        """Pure per-tick effects (see module docstring)."""
        time = tick * self.tick_seconds
        masked = any(
            isinstance(f, MonitoringBlackout)
            and f.time <= time < f.time + f.intervals * self.tick_seconds
            for f in self.plan.faults
        )
        pool_unavailable: dict[int, int] = {}
        for fault in self.plan.faults:
            if not isinstance(fault, CorrelatedOutage):
                continue
            if not fault.time <= time < fault.time + fault.repair_seconds:
                continue
            hit = (
                sorted(self._pool_size)
                if fault.platform_id is None
                else [fault.platform_id]
            )
            for pid in hit:
                down = int(math.ceil(fault.fraction * self._pool_size.get(pid, 0)))
                pool_unavailable[pid] = pool_unavailable.get(pid, 0) + down
        fabric = self._fabric_view(tick, time) if self._fabric_specs else None
        primary_fail = next(
            (
                f.reason
                for f in self.serve_faults
                if isinstance(f, SolverOutage) and f.tick <= tick < f.tick + f.ticks
            ),
            None,
        )
        crash_attempts = max(
            (
                f.attempts
                for f in self.serve_faults
                if isinstance(f, ControlCrash) and f.tick == tick
            ),
            default=0,
        )
        return ChaosEffects(
            arrivals_masked=masked,
            pool_unavailable=pool_unavailable,
            fabric=fabric,
            primary_fail=primary_fail,
            crash_attempts=crash_attempts,
        )

    # ---------------------------------------------------------------- fabric

    def _severed_links(self, time: float) -> set[tuple[int, int]]:
        severed: set[tuple[int, int]] = set()
        for fault in self._fabric_specs:
            if isinstance(fault, PartialPartition):
                if fault.time <= time < fault.time + fault.duration:
                    severed.update(fault.cut)
            elif isinstance(fault, FlappingLink):
                for flap in range(fault.flaps):
                    start = fault.time + flap * fault.period
                    if start <= time < start + fault.down_seconds:
                        severed.add(fault.link)
                        break
        return severed

    def _degraded_links(self, time: float) -> tuple[str, ...]:
        labels: set[str] = set()
        for fault in self._fabric_specs:
            if not isinstance(fault, LinkDegradation):
                continue
            if not fault.time <= time < fault.time + fault.duration:
                continue
            links = fault.links if fault.links is not None else self.topology.links
            labels.update(link_label(pair) for pair in links)
        return tuple(sorted(labels))

    def _fabric_view(self, tick: int, time: float) -> FabricView:
        state = FabricState(self.topology)
        severed = self._severed_links(time)
        for pair in sorted(severed):
            if self.topology.has_link(pair):
                state.sever(pair)
        unreachable = state.unreachable_cells()
        degraded = tuple(
            sorted(
                set(self._degraded_links(time))
                | {link_label(pair) for pair in sorted(severed)}
            )
        )
        # last_heard: the last tick time each cell was reachable, filled
        # forward from tick 0 so it is independent of call history.
        while len(self._last_heard_cache) <= tick:
            t = len(self._last_heard_cache)
            t_time = t * self.tick_seconds
            probe = FabricState(self.topology)
            for pair in sorted(self._severed_links(t_time)):
                if self.topology.has_link(pair):
                    probe.sever(pair)
            reachable = probe.reachable_cells()
            previous = (
                dict(self._last_heard_cache[-1])
                if self._last_heard_cache
                else {cell: 0.0 for cell in self.topology.cells}
            )
            for cell in reachable:
                previous[cell] = t_time
            self._last_heard_cache.append(previous)
        return FabricView(
            unreachable=unreachable,
            last_heard=dict(self._last_heard_cache[tick]),
            degraded_links=degraded,
            partitioned=bool(unreachable),
        )


# ----------------------------------------------------------------- presets


def drill_plan(tick_seconds: float) -> tuple[FaultPlan, tuple]:
    """The standard serve chaos drill, scaled to the tick length.

    One blackout (ticks 4-6), one correlated outage on pool 2 (ticks
    8-15), one partition cutting cell 4 off (ticks 10-13), one solver
    outage (ticks 16-17) and one control-step crash (tick 18, retried by
    the watchdog).  Everything keyed off tick indices so any tick length
    sees the same story.
    """
    t = tick_seconds
    plan = FaultPlan(
        faults=(
            MonitoringBlackout(time=4 * t, intervals=3),
            CorrelatedOutage(time=8 * t, fraction=0.5, platform_id=2, repair_seconds=8 * t),
            PartialPartition(
                time=10 * t,
                duration=4 * t,
                cut=((1, 4), (2, 4), (3, 4)),
            ),
        )
    )
    serve_faults = (
        SolverOutage(tick=16, ticks=2),
        ControlCrash(tick=18, attempts=2),
    )
    return plan, serve_faults


def partition_plan(tick_seconds: float) -> tuple[FaultPlan, tuple]:
    """Partition-only drill: cell 4 cut off for ticks 6-11, then heals."""
    t = tick_seconds
    plan = FaultPlan(
        faults=(
            PartialPartition(
                time=6 * t,
                duration=6 * t,
                cut=((1, 4), (2, 4), (3, 4)),
            ),
        )
    )
    return plan, ()


#: CLI-facing chaos presets: name -> builder(tick_seconds).
CHAOS_PRESETS = {
    "drill": drill_plan,
    "partition": partition_plan,
}


__all__ = [
    "CHAOS_PRESETS",
    "ControlCrash",
    "ServeChaos",
    "SolverOutage",
    "drill_plan",
    "partition_plan",
]
