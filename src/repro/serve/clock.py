"""The injected wall-clock seam for the serve control plane.

Everything under ``src/repro/serve`` that needs real time — watchdog
backoff sleeps, decision-latency measurement, checkpoint-age stamps,
event-log timestamps — goes through a :class:`Clock` instance handed to
the daemon, never through ``time.time()`` directly.  That is what keeps
the daemon's digest state deterministic: the control-state transition
per tick is a pure function of the tick stream, and every wall-clock
read is quarantined into *ops metrics* that never enter a digest.

harmonylint enforces the seam: DET006 forbids raw ``time.*`` /
``datetime.now`` / ``random.*`` calls anywhere in ``src/repro/serve``
and ``src/repro/simulation`` except this file (and the PhaseTimer seam,
``src/repro/simulation/timing.py``).

:class:`ManualClock` is the test half of the seam: a clock the test
advances explicitly, so daemon runs in tests are instant and the ops
metrics they produce are reproducible.
"""

from __future__ import annotations

import time as _time


class Clock:
    """Wall-clock interface the daemon is parameterized over."""

    def now(self) -> float:
        """Seconds since the epoch (event-log timestamps)."""
        raise NotImplementedError

    def monotonic(self) -> float:
        """Monotonic seconds (latency and age measurement)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (watchdog backoff, tick pacing)."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real clock — the only sanctioned wall-clock reader in serve/."""

    def now(self) -> float:
        return _time.time()

    def monotonic(self) -> float:
        return _time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            _time.sleep(seconds)


class ManualClock(Clock):
    """A deterministic clock tests drive by hand.

    ``sleep`` advances the clock instead of blocking, so watchdog backoff
    and tick pacing run instantly while still being observable (the
    ``slept`` log records every requested delay).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self.slept: list[float] = []

    def now(self) -> float:
        return self._now

    def monotonic(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.slept.append(float(seconds))
        if seconds > 0:
            self._now += float(seconds)

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance backwards, got {seconds}")
        self._now += float(seconds)


__all__ = ["Clock", "SystemClock", "ManualClock"]
