"""The online control plane: ``repro serve`` (ROADMAP item 3).

Layer map, bottom to top:

- :mod:`repro.serve.clock` — the injected wall-clock seam (DET006);
- :mod:`repro.serve.config` — deterministic vs hot-reloadable knobs;
- :mod:`repro.serve.feeder` — replay / file-tail / socket arrival sources;
- :mod:`repro.serve.state` — the deterministic control-plane state
  (classifier, forecasts, guard + ladder pipeline, rolling chain digest);
- :mod:`repro.serve.chaos` — FaultPlans projected onto live tick effects;
- :mod:`repro.serve.checkpoint` — write-ahead tick journal + atomic
  digest-verified checkpoints + bit-identical restore;
- :mod:`repro.serve.http` — ``/healthz`` ``/readyz`` ``/metrics``;
- :mod:`repro.serve.daemon` — the watchdog-supervised run loop.
"""

from repro.serve.chaos import CHAOS_PRESETS, ControlCrash, ServeChaos, SolverOutage
from repro.serve.checkpoint import (
    CheckpointStore,
    TickJournal,
    derive_run_id,
    restore,
)
from repro.serve.clock import Clock, ManualClock, SystemClock
from repro.serve.config import RELOADABLE_FIELDS, ServeConfig, load_config_file
from repro.serve.daemon import EventLog, ServeDaemon, event_log_path
from repro.serve.feeder import (
    ArrivalRecord,
    FileTailFeeder,
    ReplayFeeder,
    SocketFeeder,
    TickBatch,
    parse_arrival_line,
)
from repro.serve.http import HealthServer, ServeMetrics
from repro.serve.state import (
    ChaosEffects,
    OnlineClassifier,
    ServeState,
    TickOutcome,
    WelfordStats,
)

__all__ = [
    "ArrivalRecord",
    "CHAOS_PRESETS",
    "ChaosEffects",
    "CheckpointStore",
    "Clock",
    "ControlCrash",
    "EventLog",
    "FileTailFeeder",
    "HealthServer",
    "ManualClock",
    "OnlineClassifier",
    "RELOADABLE_FIELDS",
    "ReplayFeeder",
    "ServeChaos",
    "ServeConfig",
    "ServeDaemon",
    "ServeMetrics",
    "ServeState",
    "SocketFeeder",
    "SolverOutage",
    "SystemClock",
    "TickBatch",
    "TickJournal",
    "TickOutcome",
    "WelfordStats",
    "derive_run_id",
    "event_log_path",
    "load_config_file",
    "parse_arrival_line",
    "restore",
]
