"""The ``repro serve`` daemon: the crash-safe online control loop.

One loop, one invariant.  Per tick batch from the feeder:

1. **Hot reload** — if SIGHUP arrived or ``--config`` changed on disk,
   parse + validate the candidate; swap ops knobs in, or reject it and
   keep running (deterministic knobs can never change mid-run).
2. **Write-ahead journal** — the batch is fsynced to the tick journal
   *before* anything touches state, so a crash at any later point is
   recoverable by replay.
3. **Watchdog control step** — snapshot the state, attempt
   ``apply_tick``; on a :class:`~repro.errors.ReproError` roll the
   snapshot back, sleep the deterministic backoff
   (:func:`~repro.runner.supervisor.backoff_delay`), retry.  Because the
   snapshot restores *exactly* the pre-attempt state, a retried tick is
   bit-identical to a first-try tick.  Exhausted attempts crash the
   daemon loudly (exit nonzero) — the state on disk is consistent and a
   ``--restore`` resumes from it.
4. **Ops bookkeeping** — decision latency, rung, partition state into
   :class:`~repro.serve.http.ServeMetrics`; a structured JSONL event
   line; per-stage soft budgets (overruns are counted, never allowed to
   change state).
5. **Checkpoint** — every ``checkpoint_interval_ticks`` applied ticks,
   atomically replace the digest-verified checkpoint.

SIGTERM/SIGINT request a graceful drain: the loop finishes the tick in
flight, writes a final checkpoint, marks ``/healthz`` drained and exits
cleanly.  All wall-clock reads go through the injected
:class:`~repro.serve.clock.Clock`; nothing the clock produces ever
reaches digest state.
"""

from __future__ import annotations

import json
import signal
import threading
from pathlib import Path

from repro.errors import ConfigInvalid, ControlStepFailed, ReproError, ServeError
from repro.runner.supervisor import SupervisorConfig, backoff_delay
from repro.serve.chaos import ServeChaos
from repro.serve.checkpoint import CheckpointStore, TickJournal, restore
from repro.serve.clock import Clock, SystemClock
from repro.serve.config import ServeConfig, load_config_file
from repro.serve.feeder import TickBatch
from repro.serve.http import HealthServer, ServeMetrics
from repro.serve.state import NO_EFFECTS, ServeState, TickOutcome


def event_log_path(directory: str | Path, run_id: str) -> Path:
    return Path(directory) / f"EVENTS_{run_id}.jsonl"


class EventLog:
    """Structured JSONL ops log (append + flush; never digest-relevant)."""

    def __init__(self, path: Path, clock: Clock) -> None:
        self.path = path
        self._clock = clock
        self._lock = threading.Lock()

    def emit(self, event: str, **fields) -> None:
        record = {"event": event, "ts": self._clock.now(), **fields}
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()


class ServeDaemon:
    """Drives a feeder through :class:`ServeState` with full crash safety."""

    def __init__(
        self,
        config: ServeConfig,
        feeder,
        state_dir: str | Path,
        run_id: str,
        chaos: ServeChaos | None = None,
        clock: Clock | None = None,
        http_port: int | None = None,
        http_host: str = "127.0.0.1",
        config_path: str | Path | None = None,
    ) -> None:
        self.config = config
        self.feeder = feeder
        self.state_dir = Path(state_dir)
        self.run_id = run_id
        self.chaos = chaos
        self.clock = clock or SystemClock()
        self.journal = TickJournal(self.state_dir, run_id)
        self.checkpoints = CheckpointStore(self.state_dir, run_id)
        self.metrics = ServeMetrics(self.clock)
        self.events = EventLog(event_log_path(self.state_dir, run_id), self.clock)
        self.state: ServeState | None = None
        self.http: HealthServer | None = None
        self._http_port = http_port
        self._http_host = http_host
        self._config_path = None if config_path is None else Path(config_path)
        self._config_mtime = self._mtime()
        self._drain_requested = threading.Event()
        self._reload_requested = threading.Event()

    # ------------------------------------------------------------- controls

    def request_drain(self) -> None:
        """Finish the tick in flight, checkpoint, exit cleanly."""
        self._drain_requested.set()
        stop = getattr(self.feeder, "stop", None)
        if stop is not None:
            stop()

    def request_reload(self) -> None:
        """Re-read ``--config`` before the next tick (SIGHUP semantics)."""
        self._reload_requested.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> drain, SIGHUP -> reload (main thread only)."""
        try:
            signal.signal(signal.SIGTERM, lambda *_: self.request_drain())
            signal.signal(signal.SIGINT, lambda *_: self.request_drain())
            signal.signal(signal.SIGHUP, lambda *_: self.request_reload())
        except ValueError:
            # Not the main thread (embedded/test use); callers drive
            # request_drain()/request_reload() directly instead.
            pass

    # ------------------------------------------------------------------ run

    def run(self, restore_state: bool = False, max_ticks: int | None = None) -> dict:
        """Run to feeder exhaustion (or drain/max_ticks); return summary."""
        if restore_state:
            self.state = restore(
                self.config, self.state_dir, self.run_id, chaos=self.chaos
            )
            self.metrics.update(restored_from_tick=self.state.ticks_applied)
            self.events.emit(
                "restored",
                tick=self.state.ticks_applied,
                chain=self.state.chain,
            )
        else:
            if self.journal.path.exists() and self.journal.tick_count() > 0:
                raise ServeError(
                    f"state dir {self.state_dir} already holds journaled "
                    f"ticks for run {self.run_id}; pass --restore to resume "
                    "or use a fresh --state-dir",
                    run_id=self.run_id,
                )
            self.state = ServeState(self.config)
            self.events.emit("started", run_id=self.run_id)

        if self._http_port is not None:
            self.http = HealthServer(
                self.metrics,
                host=self._http_host,
                port=self._http_port,
                health_stale_seconds=self.config.health_stale_seconds,
            )
            self.http.start()
            self.events.emit("http_listening", port=self.http.port)

        applied = 0
        try:
            for batch in self.feeder.batches(start_tick=self.state.ticks_applied):
                if self._drain_requested.is_set():
                    break
                self._maybe_reload()
                self._run_tick(batch)
                applied += 1
                if self.config.tick_delay_seconds > 0:
                    self.clock.sleep(self.config.tick_delay_seconds)
                if max_ticks is not None and applied >= max_ticks:
                    break
        finally:
            self._shutdown()
        return self.state.summary()

    # ------------------------------------------------------------ internals

    def _run_tick(self, batch: TickBatch) -> None:
        budget = self.config.stage_budget_seconds
        effects = (
            self.chaos.effects(batch.tick) if self.chaos is not None else NO_EFFECTS
        )

        stage_start = self.clock.monotonic()
        self.journal.append(batch)  # write-ahead: journal BEFORE apply
        self._check_budget("journal", stage_start, budget, batch.tick)

        outcome = self._watchdog_apply(batch, effects)

        stage_start = self.clock.monotonic()
        if self.state.ticks_applied % self.config.checkpoint_interval_ticks == 0:
            self.checkpoints.write(self.state)
            self.metrics.checkpoint_written(at_tick=self.state.ticks_applied)
            self.events.emit(
                "checkpoint", tick=self.state.ticks_applied, chain=self.state.chain
            )
        self._check_budget("checkpoint", stage_start, budget, batch.tick)

    def _watchdog_apply(self, batch: TickBatch, effects) -> TickOutcome:
        """Transactional control step: snapshot, attempt, rollback, retry."""
        snapshot = self.state.to_state()
        attempts = self.config.watchdog_attempts
        backoff = SupervisorConfig(
            timeout_seconds=None,
            backoff_base_seconds=self.config.watchdog_backoff_base_seconds,
        )
        last_error: ReproError | None = None
        for attempt in range(1, attempts + 1):
            started = self.clock.monotonic()
            try:
                if attempt <= effects.crash_attempts:
                    raise ControlStepFailed(
                        "injected control-step crash",
                        tick=batch.tick,
                        attempt=attempt,
                    )
                outcome = self.state.apply_tick(batch, effects)
            except ReproError as exc:
                last_error = exc
                # Roll back to the exact pre-attempt state so the retry
                # (and hence the digest) is indistinguishable from a
                # first-try success.
                self.state = ServeState.from_state(snapshot, self.config)
                self.metrics.increment("restarts")
                self.events.emit(
                    "control_step_failed",
                    tick=batch.tick,
                    attempt=attempt,
                    code=exc.code,
                    error=str(exc),
                )
                if attempt < attempts:
                    self.clock.sleep(
                        backoff_delay(f"serve:{batch.tick}", attempt, backoff)
                    )
                continue
            latency = self.clock.monotonic() - started
            self._record_outcome(outcome, latency, effects)
            return outcome
        raise ControlStepFailed(
            f"tick {batch.tick} failed {attempts} watchdog attempts; state "
            "on disk is consistent — restart with --restore",
            tick=batch.tick,
            attempts=attempts,
            last=str(last_error),
        )

    def _record_outcome(self, outcome: TickOutcome, latency: float, effects) -> None:
        fabric = effects.fabric
        self.metrics.update(
            ticks=self.state.ticks_applied,
            rung=outcome.rung,
            rung_name=outcome.rung_name,
            mode=outcome.mode,
            arrivals_total=self.state.arrivals_total,
            decision_latency_seconds=latency,
            partitioned=bool(fabric.partitioned) if fabric else False,
            unreachable_cells=list(fabric.unreachable) if fabric else [],
            feeder_rejected=getattr(self.feeder, "rejected", 0),
            chain=self.state.chain,
        )
        self.metrics.tick_completed()
        self.events.emit(
            "tick",
            tick=outcome.tick,
            arrivals=outcome.arrivals,
            rung=outcome.rung,
            rung_name=outcome.rung_name,
            mode=outcome.mode,
            masked=outcome.masked,
            latency_s=round(latency, 6),
        )

    def _check_budget(
        self, stage: str, started: float, budget: float | None, tick: int
    ) -> None:
        """Soft per-stage budget: overruns are visible, never behavioral."""
        if budget is None:
            return
        elapsed = self.clock.monotonic() - started
        if elapsed > budget:
            self.metrics.increment("stage_overruns")
            self.events.emit(
                "stage_overrun",
                stage=stage,
                tick=tick,
                elapsed_s=round(elapsed, 6),
                budget_s=budget,
            )

    # ----------------------------------------------------------- hot reload

    def _mtime(self) -> float | None:
        if self._config_path is None or not self._config_path.exists():
            return None
        return self._config_path.stat().st_mtime

    def _maybe_reload(self) -> None:
        mtime = self._mtime()
        changed = mtime is not None and mtime != self._config_mtime
        if not (self._reload_requested.is_set() or changed):
            return
        self._reload_requested.clear()
        self._config_mtime = mtime
        if self._config_path is None:
            return
        try:
            candidate = load_config_file(self._config_path)
            self.config = self.config.reloaded(candidate)
        except ConfigInvalid as exc:
            # Rollback semantics: the old config stays live.
            self.metrics.increment("config_reload_rejections")
            self.events.emit("config_reload_rejected", error=str(exc))
            return
        self.metrics.increment("config_reloads")
        self.events.emit(
            "config_reloaded",
            reloadable={
                k: v
                for k, v in self.config.to_dict().items()
                if k not in self.config.deterministic_fields()
            },
        )

    # ------------------------------------------------------------- shutdown

    def _shutdown(self) -> None:
        self.metrics.mark_draining()
        if self.state is not None and self.state.ticks_applied > 0:
            self.checkpoints.write(self.state)
            self.metrics.checkpoint_written(at_tick=self.state.ticks_applied)
        self.metrics.mark_drained()
        self.events.emit(
            "drained",
            tick=self.state.ticks_applied if self.state else 0,
            chain=self.state.chain if self.state else None,
        )
        if self.http is not None:
            self.http.stop()


__all__ = ["EventLog", "ServeDaemon", "event_log_path"]
