"""Arrival sources for the serve daemon.

Three feeders share one contract — they yield :class:`TickBatch` objects
in strictly increasing tick order:

- :class:`ReplayFeeder` — deterministic replay of a (synthetic or saved)
  trace, binned into ticks up front.  The feeder for tests, CI chaos
  drills and digest comparisons: the same trace parameters always produce
  the same batch stream, and ``start_tick`` resumes mid-stream after a
  restore without re-reading anything.
- :class:`FileTailFeeder` — tails a JSONL file of arrival lines (the
  "file tail" half of the live protocol).
- :class:`SocketFeeder` — accepts one TCP client speaking the same line
  protocol (the "socket" half).

The line protocol is one JSON object per line:

``{"time": 1234.0, "cpu": 0.02, "memory": 0.01, "duration": 600, "priority": 2}``
    one arrival (``priority`` optional, default 0);
``{"kind": "tick"}``
    flush the current tick early (close the batch at the next boundary);
``{"kind": "end"}``
    end of stream — the daemon drains and exits.

Malformed lines never kill the stream: they are counted on
``feeder.rejected`` and skipped, mirroring the data-plane sanitizer's
quarantine discipline.  For live feeders the journal — not the source —
is the replayable record: restores replay the journal suffix, so a live
feed only ever needs to move forward.
"""

from __future__ import annotations

import json
import math
import socket as _socket
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.serve.clock import Clock, SystemClock


@dataclass(frozen=True)
class ArrivalRecord:
    """One task arrival, reduced to the features the online plane needs."""

    time: float
    cpu: float
    memory: float
    duration: float
    priority: int = 0

    def to_state(self) -> list:
        """Journal/checkpoint encoding (positional, compact, canonical)."""
        return [self.time, self.cpu, self.memory, self.duration, self.priority]

    @classmethod
    def from_state(cls, state: list) -> "ArrivalRecord":
        time, cpu, memory, duration, priority = state
        return cls(
            time=float(time),
            cpu=float(cpu),
            memory=float(memory),
            duration=float(duration),
            priority=int(priority),
        )


@dataclass(frozen=True)
class TickBatch:
    """All arrivals of one control tick."""

    tick: int
    time: float
    arrivals: tuple[ArrivalRecord, ...]


def parse_arrival_line(line: str) -> ArrivalRecord | str | None:
    """One protocol line -> arrival, control keyword, or ``None`` (reject).

    Returns the :class:`ArrivalRecord`, the control string (``"tick"`` /
    ``"end"``), or ``None`` for anything malformed.
    """
    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(payload, dict):
        return None
    kind = payload.get("kind")
    if kind in ("tick", "end"):
        return kind
    try:
        record = ArrivalRecord(
            time=float(payload["time"]),
            cpu=float(payload["cpu"]),
            memory=float(payload["memory"]),
            duration=float(payload["duration"]),
            priority=int(payload.get("priority", 0)),
        )
    except (KeyError, TypeError, ValueError):
        return None
    if (
        not math.isfinite(record.time)
        or record.time < 0
        or not 0 < record.cpu <= 1
        or not 0 < record.memory <= 1
        or not math.isfinite(record.duration)
        or record.duration <= 0
    ):
        return None
    return record


class ReplayFeeder:
    """Deterministic tick batches from a materialized trace.

    Parameters
    ----------
    tasks:
        Anything with ``submit_time`` / ``cpu`` / ``memory`` / ``duration``
        / ``priority`` attributes (``repro.trace`` Task objects).
    horizon:
        Trace horizon in seconds; defines the tick count together with
        ``tick_seconds``.
    tick_seconds:
        Control-tick length.
    max_ticks:
        Optional cap on the number of ticks replayed.
    """

    def __init__(
        self,
        tasks,
        horizon: float,
        tick_seconds: float,
        max_ticks: int | None = None,
    ) -> None:
        if tick_seconds <= 0:
            raise ValueError(f"tick_seconds must be positive, got {tick_seconds}")
        self.tick_seconds = float(tick_seconds)
        self.rejected = 0
        num_ticks = max(int(math.ceil(horizon / tick_seconds)), 1)
        if max_ticks is not None:
            num_ticks = min(num_ticks, int(max_ticks))
        self.num_ticks = num_ticks
        buckets: list[list[ArrivalRecord]] = [[] for _ in range(num_ticks)]
        for task in tasks:
            index = int(task.submit_time // tick_seconds)
            if 0 <= index < num_ticks:
                buckets[index].append(
                    ArrivalRecord(
                        time=float(task.submit_time),
                        cpu=float(task.cpu),
                        memory=float(task.memory),
                        duration=float(task.duration),
                        priority=int(task.priority),
                    )
                )
        # Stable within-tick order: by (time, cpu, memory, duration) so the
        # batch stream is independent of the caller's task ordering.
        self._batches = tuple(
            TickBatch(
                tick=index,
                time=index * self.tick_seconds,
                arrivals=tuple(
                    sorted(
                        bucket,
                        key=lambda a: (a.time, a.cpu, a.memory, a.duration, a.priority),
                    )
                ),
            )
            for index, bucket in enumerate(buckets)
        )

    def batches(self, start_tick: int = 0) -> Iterator[TickBatch]:
        """Yield tick batches from ``start_tick`` (inclusive) onward."""
        if start_tick < 0:
            raise ValueError(f"start_tick must be >= 0, got {start_tick}")
        yield from self._batches[start_tick:]


class _LineProtocolBatcher:
    """Shared line-protocol state machine for the live feeders.

    Feed raw lines in; collect completed :class:`TickBatch` objects out.
    A batch closes when an arrival lands past the current tick boundary,
    on an explicit ``{"kind": "tick"}`` flush, or at end of stream.
    """

    def __init__(self, tick_seconds: float, start_tick: int = 0) -> None:
        self.tick_seconds = float(tick_seconds)
        self.tick = int(start_tick)
        self.rejected = 0
        self.ended = False
        self._pending: list[ArrivalRecord] = []

    def _close(self) -> TickBatch:
        batch = TickBatch(
            tick=self.tick,
            time=self.tick * self.tick_seconds,
            arrivals=tuple(self._pending),
        )
        self._pending = []
        self.tick += 1
        return batch

    def push(self, line: str) -> list[TickBatch]:
        parsed = parse_arrival_line(line)
        if parsed is None:
            if line.strip():
                self.rejected += 1
            return []
        if parsed == "end":
            self.ended = True
            return [self._close()]
        if parsed == "tick":
            return [self._close()]
        closed: list[TickBatch] = []
        # Fast-forward through empty ticks until the arrival's tick.
        while parsed.time >= (self.tick + 1) * self.tick_seconds:
            closed.append(self._close())
        self._pending.append(parsed)
        return closed


class FileTailFeeder:
    """Tail a JSONL arrival file, emitting tick batches as lines land."""

    def __init__(
        self,
        path: str | Path,
        tick_seconds: float,
        clock: Clock | None = None,
        poll_seconds: float = 0.05,
        max_ticks: int | None = None,
    ) -> None:
        self.path = Path(path)
        self.clock = clock or SystemClock()
        self.poll_seconds = float(poll_seconds)
        self.max_ticks = max_ticks
        self._batcher = _LineProtocolBatcher(tick_seconds)
        self.stopped = False

    @property
    def rejected(self) -> int:
        return self._batcher.rejected

    def stop(self) -> None:
        """Ask the tail loop to wind down at the next poll (drain)."""
        self.stopped = True

    def batches(self, start_tick: int = 0) -> Iterator[TickBatch]:
        self._batcher.tick = int(start_tick)
        emitted = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            buffer = ""
            while not self.stopped:
                chunk = handle.readline()
                if not chunk:
                    self.clock.sleep(self.poll_seconds)
                    continue
                buffer += chunk
                if not buffer.endswith("\n"):
                    continue  # torn line; wait for the writer to finish it
                line, buffer = buffer, ""
                for batch in self._batcher.push(line):
                    yield batch
                    emitted += 1
                    if self.max_ticks is not None and emitted >= self.max_ticks:
                        return
                if self._batcher.ended:
                    return


class SocketFeeder:
    """Accept one TCP client speaking the arrival line protocol."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        tick_seconds: float = 300.0,
        max_ticks: int | None = None,
        accept_timeout: float = 30.0,
    ) -> None:
        self.tick_seconds = float(tick_seconds)
        self.max_ticks = max_ticks
        self._batcher = _LineProtocolBatcher(tick_seconds)
        self._server = _socket.socket(_socket.AF_INET, _socket.SOCK_STREAM)
        self._server.setsockopt(_socket.SOL_SOCKET, _socket.SO_REUSEADDR, 1)
        self._server.bind((host, port))
        self._server.listen(1)
        self._server.settimeout(accept_timeout)
        self.address = self._server.getsockname()
        self.stopped = False

    @property
    def rejected(self) -> int:
        return self._batcher.rejected

    def stop(self) -> None:
        self.stopped = True

    def close(self) -> None:
        try:
            self._server.close()
        except OSError:
            pass

    def batches(self, start_tick: int = 0) -> Iterator[TickBatch]:
        self._batcher.tick = int(start_tick)
        emitted = 0
        try:
            conn, _ = self._server.accept()
        except (OSError, TimeoutError):
            self.close()
            return
        try:
            reader = conn.makefile("r", encoding="utf-8")
            for line in reader:
                if self.stopped:
                    return
                for batch in self._batcher.push(line):
                    yield batch
                    emitted += 1
                    if self.max_ticks is not None and emitted >= self.max_ticks:
                        return
                if self._batcher.ended:
                    return
        finally:
            try:
                conn.close()
            except OSError:
                pass
            self.close()


__all__ = [
    "ArrivalRecord",
    "TickBatch",
    "parse_arrival_line",
    "ReplayFeeder",
    "FileTailFeeder",
    "SocketFeeder",
]
