"""Stdlib health/readiness/metrics endpoints for the serve daemon.

Three GET routes on a :class:`~http.server.ThreadingHTTPServer`:

``/healthz``
    200 while the control loop is live (a tick completed within
    ``health_stale_seconds``, or the run already drained cleanly);
    503 otherwise.  The watchdog restarting a tick does *not* flip
    health — only a stuck loop does.
``/readyz``
    200 once the daemon finished restore/cold-start and applied at
    least one tick; 503 before that and after shutdown begins.
``/metrics``
    JSON snapshot of the ops metrics: decision latency, current
    degradation rung, checkpoint age (ticks since last checkpoint and
    seconds, by the injected clock), watchdog restarts, fabric
    partition state, feeder rejects, config reloads.

The server runs on a daemon thread and shares one :class:`ServeMetrics`
with the control loop under a lock.  Everything here is **ops-side**:
nothing served over HTTP ever feeds back into digest state.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.clock import Clock


class ServeMetrics:
    """Thread-safe ops-metrics snapshot shared with the HTTP server."""

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._data: dict = {
            "ticks": 0,
            "rung": None,
            "rung_name": None,
            "mode": None,
            "arrivals_total": 0,
            "decision_latency_seconds": None,
            "checkpoint_age_ticks": None,
            "checkpoint_age_seconds": None,
            "restarts": 0,
            "stage_overruns": 0,
            "partitioned": False,
            "unreachable_cells": [],
            "feeder_rejected": 0,
            "config_reloads": 0,
            "config_reload_rejections": 0,
            "restored_from_tick": None,
            "chain": None,
        }
        self._ready = False
        self._draining = False
        self._drained = False
        self._last_tick_at: float | None = None
        self._last_checkpoint_at: float | None = None

    # ------------------------------------------------------------- mutation

    def update(self, **fields) -> None:
        with self._lock:
            self._data.update(fields)

    def increment(self, key: str, by: int = 1) -> None:
        with self._lock:
            self._data[key] = (self._data.get(key) or 0) + by

    def tick_completed(self) -> None:
        with self._lock:
            self._last_tick_at = self._clock.monotonic()
            self._ready = True

    def checkpoint_written(self, at_tick: int) -> None:
        with self._lock:
            self._last_checkpoint_at = self._clock.monotonic()
            self._data["checkpoint_age_ticks"] = 0
            self._data["_checkpoint_tick"] = at_tick

    def mark_draining(self) -> None:
        with self._lock:
            self._draining = True

    def mark_drained(self) -> None:
        with self._lock:
            self._drained = True

    # -------------------------------------------------------------- queries

    def healthy(self, stale_seconds: float) -> bool:
        with self._lock:
            if self._drained:
                return True
            if self._last_tick_at is None:
                return False
            return self._clock.monotonic() - self._last_tick_at <= stale_seconds

    def ready(self) -> bool:
        with self._lock:
            return self._ready and not self._draining

    def snapshot(self) -> dict:
        with self._lock:
            data = {k: v for k, v in self._data.items() if not k.startswith("_")}
            now = self._clock.monotonic()
            if self._last_checkpoint_at is not None:
                data["checkpoint_age_seconds"] = now - self._last_checkpoint_at
                checkpoint_tick = self._data.get("_checkpoint_tick")
                if checkpoint_tick is not None:
                    data["checkpoint_age_ticks"] = (
                        self._data["ticks"] - checkpoint_tick
                    )
            data["draining"] = self._draining
            data["drained"] = self._drained
            return data


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        metrics: ServeMetrics = self.server.metrics  # type: ignore[attr-defined]
        stale: float = self.server.health_stale_seconds  # type: ignore[attr-defined]
        if self.path == "/healthz":
            ok = metrics.healthy(stale)
            self._respond(200 if ok else 503, {"healthy": ok})
        elif self.path == "/readyz":
            ok = metrics.ready()
            self._respond(200 if ok else 503, {"ready": ok})
        elif self.path == "/metrics":
            self._respond(200, metrics.snapshot())
        else:
            self._respond(404, {"error": f"unknown path {self.path}"})

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr chatter (the event log covers it)."""


class HealthServer:
    """The daemon's HTTP face, on a background thread."""

    def __init__(
        self,
        metrics: ServeMetrics,
        host: str = "127.0.0.1",
        port: int = 0,
        health_stale_seconds: float = 60.0,
    ) -> None:
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.metrics = metrics  # type: ignore[attr-defined]
        self._server.health_stale_seconds = health_stale_seconds  # type: ignore[attr-defined]
        self.address = self._server.server_address
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="serve-http", daemon=True
        )

    @property
    def port(self) -> int:
        return self.address[1]

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()


__all__ = ["HealthServer", "ServeMetrics"]
