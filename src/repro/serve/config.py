"""Serve daemon configuration: deterministic core vs hot-reloadable ops.

The config is split into two halves with very different rules:

**Deterministic knobs** (tick length, class count, forecast parameters,
fleet scale, chaos plan) define the state-transition function.  They are
pinned at daemon start, folded into the run id, and may *never* change
across a restore — a restored run with a different transition function
could not possibly replay the journal suffix to a bit-identical state.

**Ops knobs** (checkpoint cadence, watchdog budgets, HTTP port, tick
pacing) only shape *when* and *how fast* things happen, never *what* the
state becomes.  These are hot-reloadable: SIGHUP (or an mtime change on
``--config``) re-reads the file, validates the candidate in full, and
swaps it in atomically — an invalid candidate is rejected and the old
config stays live (validate-then-swap with rollback).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from repro.errors import ConfigInvalid

#: Ops fields that a hot reload may change; anything else differing in a
#: reload candidate is a determinism hazard and rejects the candidate.
RELOADABLE_FIELDS = frozenset(
    {
        "checkpoint_interval_ticks",
        "watchdog_attempts",
        "watchdog_backoff_base_seconds",
        "stage_budget_seconds",
        "tick_delay_seconds",
        "health_stale_seconds",
    }
)


@dataclass(frozen=True)
class ServeConfig:
    """Knobs for :class:`~repro.serve.daemon.ServeDaemon`.

    Attributes
    ----------
    tick_seconds:
        Control-tick length; arrivals are batched per tick (deterministic).
    num_classes:
        Online-classifier centroid count (deterministic).
    ewma_alpha:
        Primary forecast smoothing per class (deterministic).
    seasonal_period:
        Rung-1 seasonal-naive period, in ticks (deterministic).
    target_delay_seconds:
        M/G/N queueing delay SLO fed to ``required_containers`` (det.).
    overprovision:
        Eq. 17-style headroom multiplier on container demand (det.).
    fleet_scale:
        Table II fleet scale factor (deterministic).
    checkpoint_interval_ticks:
        Write a checkpoint every N applied ticks (ops).
    watchdog_attempts:
        Control-step attempts per tick before the watchdog holds (ops).
    watchdog_backoff_base_seconds:
        Base of the deterministic-jitter backoff between attempts (ops).
    stage_budget_seconds:
        Per-stage soft wall-clock budget; overruns are counted and logged,
        never allowed to change state (ops).  ``None`` disables.
    tick_delay_seconds:
        Artificial pacing per tick, for chaos drills that need a window
        to SIGKILL into (ops).
    health_stale_seconds:
        ``/healthz`` reports unhealthy when no tick completed within this
        budget (ops).
    """

    tick_seconds: float = 300.0
    num_classes: int = 4
    ewma_alpha: float = 0.3
    seasonal_period: int = 12
    target_delay_seconds: float = 300.0
    overprovision: float = 1.2
    fleet_scale: float = 0.1
    checkpoint_interval_ticks: int = 8
    watchdog_attempts: int = 3
    watchdog_backoff_base_seconds: float = 0.05
    stage_budget_seconds: float | None = None
    tick_delay_seconds: float = 0.0
    health_stale_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.tick_seconds <= 0:
            raise ConfigInvalid(
                f"tick_seconds must be positive, got {self.tick_seconds}",
                field="tick_seconds",
            )
        if self.num_classes < 1:
            raise ConfigInvalid(
                f"num_classes must be >= 1, got {self.num_classes}",
                field="num_classes",
            )
        if not 0 < self.ewma_alpha <= 1:
            raise ConfigInvalid(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}",
                field="ewma_alpha",
            )
        if self.seasonal_period < 1:
            raise ConfigInvalid(
                f"seasonal_period must be >= 1, got {self.seasonal_period}",
                field="seasonal_period",
            )
        if self.target_delay_seconds <= 0:
            raise ConfigInvalid(
                "target_delay_seconds must be positive, got "
                f"{self.target_delay_seconds}",
                field="target_delay_seconds",
            )
        if self.overprovision < 1:
            raise ConfigInvalid(
                f"overprovision must be >= 1, got {self.overprovision}",
                field="overprovision",
            )
        if self.fleet_scale <= 0:
            raise ConfigInvalid(
                f"fleet_scale must be positive, got {self.fleet_scale}",
                field="fleet_scale",
            )
        if self.checkpoint_interval_ticks < 1:
            raise ConfigInvalid(
                "checkpoint_interval_ticks must be >= 1, got "
                f"{self.checkpoint_interval_ticks}",
                field="checkpoint_interval_ticks",
            )
        if self.watchdog_attempts < 1:
            raise ConfigInvalid(
                f"watchdog_attempts must be >= 1, got {self.watchdog_attempts}",
                field="watchdog_attempts",
            )
        if self.watchdog_backoff_base_seconds < 0:
            raise ConfigInvalid(
                "watchdog_backoff_base_seconds must be >= 0, got "
                f"{self.watchdog_backoff_base_seconds}",
                field="watchdog_backoff_base_seconds",
            )
        if self.stage_budget_seconds is not None and self.stage_budget_seconds <= 0:
            raise ConfigInvalid(
                "stage_budget_seconds must be positive or None, got "
                f"{self.stage_budget_seconds}",
                field="stage_budget_seconds",
            )
        if self.tick_delay_seconds < 0:
            raise ConfigInvalid(
                f"tick_delay_seconds must be >= 0, got {self.tick_delay_seconds}",
                field="tick_delay_seconds",
            )
        if self.health_stale_seconds <= 0:
            raise ConfigInvalid(
                "health_stale_seconds must be positive, got "
                f"{self.health_stale_seconds}",
                field="health_stale_seconds",
            )

    # ------------------------------------------------------------- identity

    def deterministic_fields(self) -> dict:
        """The digest-relevant half, for run-id derivation."""
        payload = asdict(self)
        for field in RELOADABLE_FIELDS:
            payload.pop(field, None)
        return payload

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ServeConfig":
        if not isinstance(payload, dict):
            raise ConfigInvalid(
                f"config payload must be an object, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - set(cls.__dataclass_fields__))
        if unknown:
            raise ConfigInvalid(
                f"unknown config field(s): {', '.join(unknown)}",
                fields=unknown,
            )
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ConfigInvalid(f"malformed config payload: {exc}") from exc

    # ------------------------------------------------------------ hot reload

    def reloaded(self, candidate: "ServeConfig") -> "ServeConfig":
        """Validate-then-swap: apply ``candidate``'s ops knobs onto self.

        A candidate that changes any deterministic field is rejected with
        :class:`~repro.errors.ConfigInvalid` — the caller keeps running on
        the old config (rollback).
        """
        drift = sorted(
            name
            for name, value in candidate.deterministic_fields().items()
            if self.deterministic_fields()[name] != value
        )
        if drift:
            raise ConfigInvalid(
                "hot reload may only change ops knobs; deterministic "
                f"field(s) changed: {', '.join(drift)}",
                fields=drift,
            )
        return replace(
            self,
            **{name: getattr(candidate, name) for name in sorted(RELOADABLE_FIELDS)},
        )


def load_config_file(path: str | Path) -> ServeConfig:
    """Parse and validate a JSON config file (full-file validation)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigInvalid(f"cannot read config {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigInvalid(f"config {path} is not valid JSON: {exc}") from exc
    return ServeConfig.from_dict(payload)


__all__ = ["ServeConfig", "RELOADABLE_FIELDS", "load_config_file"]
