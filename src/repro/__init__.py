"""HARMONY: dynamic heterogeneity-aware resource provisioning in the cloud.

A full reproduction of Zhang, Zhani, Boutaba and Hellerstein,
*HARMONY: Dynamic Heterogeneity-Aware Resource Provisioning in the Cloud*
(ICDCS 2013), including every substrate the paper depends on:

- :mod:`repro.trace` -- a Google-clusterdata-like trace substrate with a
  statistically calibrated synthetic generator.
- :mod:`repro.clustering` -- K-means (k-means++ / Lloyd) built from scratch.
- :mod:`repro.classification` -- the paper's two-step task characterization
  and run-time labeling (Section V).
- :mod:`repro.forecasting` -- ARIMA and baseline arrival-rate predictors
  (Section VI).
- :mod:`repro.queueing` -- the M/G/N scheduling-delay model (Eqs. 1-2).
- :mod:`repro.containers` -- statistical-multiplexing container sizing
  (Eq. 3) and the container manager.
- :mod:`repro.energy` -- linear machine power model (Eq. 7) and the
  Table II server catalog.
- :mod:`repro.provisioning` -- CBS / CBS-RELAX / CBP, first-fit rounding
  (Lemma 1), the MPC controller (Algorithm 1) and the
  heterogeneity-oblivious baseline (Sections VII-IX).
- :mod:`repro.simulation` -- a discrete-event cluster simulator and the
  end-to-end HARMONY loop.
- :mod:`repro.analysis` -- figure/table reproduction helpers.

Quickstart::

    from repro import HarmonySimulation, HarmonyConfig
    from repro.trace import SyntheticTraceConfig, generate_trace

    trace = generate_trace(SyntheticTraceConfig(horizon_hours=24, seed=7))
    sim = HarmonySimulation(HarmonyConfig(), trace)
    result = sim.run()
    print(result.summary())
"""

from repro.version import __version__

from repro.trace import (
    PriorityGroup,
    Task,
    Job,
    MachineType,
    Trace,
    SyntheticTraceConfig,
    generate_trace,
)
from repro.clustering import KMeans, KMeansResult, select_k_elbow
from repro.classification import TaskClassifier, TaskClass, RuntimeLabeler
from repro.forecasting import ArimaModel, fit_arima, make_predictor
from repro.queueing import MGNQueue, erlang_c, required_containers
from repro.containers import ContainerSpec, ContainerManager, gaussian_container_size
from repro.energy import MachineModel, LinearPowerModel, table2_fleet
from repro.provisioning import (
    ProvisioningProblem,
    CbsRelaxSolver,
    FirstFitRounder,
    HarmonyController,
    BaselineProvisioner,
    CbpController,
)
from repro.resilience import (
    CorrelatedOutage,
    FaultPlan,
    GuardConfig,
    GuardedController,
    MachineDegradation,
    MonitoringBlackout,
    RandomMachineFailures,
)
from repro.simulation import (
    ClusterSimulator,
    HarmonySimulation,
    HarmonyConfig,
    SimulationResult,
)

__all__ = [
    "__version__",
    # trace
    "PriorityGroup",
    "Task",
    "Job",
    "MachineType",
    "Trace",
    "SyntheticTraceConfig",
    "generate_trace",
    # clustering
    "KMeans",
    "KMeansResult",
    "select_k_elbow",
    # classification
    "TaskClassifier",
    "TaskClass",
    "RuntimeLabeler",
    # forecasting
    "ArimaModel",
    "fit_arima",
    "make_predictor",
    # queueing
    "MGNQueue",
    "erlang_c",
    "required_containers",
    # containers
    "ContainerSpec",
    "ContainerManager",
    "gaussian_container_size",
    # energy
    "MachineModel",
    "LinearPowerModel",
    "table2_fleet",
    # provisioning
    "ProvisioningProblem",
    "CbsRelaxSolver",
    "FirstFitRounder",
    "HarmonyController",
    "BaselineProvisioner",
    "CbpController",
    # simulation
    "ClusterSimulator",
    "HarmonySimulation",
    "HarmonyConfig",
    "SimulationResult",
    # resilience
    "FaultPlan",
    "CorrelatedOutage",
    "MachineDegradation",
    "MonitoringBlackout",
    "RandomMachineFailures",
    "GuardConfig",
    "GuardedController",
]
