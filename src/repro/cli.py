"""Command-line interface: ``python -m repro <command>``.

Commands
--------
generate
    Synthesize a calibrated trace and save it as CSV.
analyze
    Print the Section III workload characterization of a saved trace.
classify
    Fit the two-step task classifier and print the class table.
simulate
    Run one provisioning policy over a trace and print the summary.
compare
    Run baseline/CBP/CBS over the same trace and print Figs. 21-26 data.
resilience
    Replay a fault-scenario matrix (outage / stragglers / blackout /
    poisson) under a guarded or unguarded policy and print availability,
    MTTR, restart latency and SLO attainment per scenario.
sanitize
    Ingest a saved trace directory through the streaming sanitizer
    (:mod:`repro.trace.sanitize`) and print the JSON sanitization report:
    clean/repaired/quarantined counts, per-rule breakdowns, the report
    digest and the quarantine file path.  ``--strict`` exits non-zero if
    anything was quarantined.
lint
    Run harmonylint (:mod:`repro.statics`) over the tree: AST rules for
    the determinism/digest/taxonomy invariants (DET/ERR/PCK/NUM/API
    codes), ``# repro: noqa[CODE]`` suppressions and a committed
    grandfathering baseline.  Exit codes are stable: 0 clean, 1
    non-baselined findings, 2 usage/configuration error.
bench
    Run a scenario suite (scalability / ablation / robustness) through
    the parallel :class:`~repro.runner.ScenarioRunner` and write a
    ``BENCH_<suite>.json`` perf baseline.  With ``--supervise`` (or
    ``--timeout``/``--retries``/``--resume``) the suite runs under the
    crash-safe :class:`~repro.runner.ScenarioSupervisor` instead:
    per-scenario timeouts, deterministic-backoff retries, quarantine,
    and a digest-verified ``JOURNAL_<suite>.jsonl`` that ``--resume``
    replays so an interrupted suite finishes where it left off.  With
    ``--corrupt`` the dirty-trace ``trace_corruption`` suite is appended
    to the run, exercising the data-plane hardening layer.  With
    ``--engine both`` every engine-aware scenario runs once per replay
    engine and the paired summary digests must match exactly.
fleet
    Run the sharded, crash-tolerant fleet simulation (:mod:`repro.fleet`)
    at Google-trace scale: partition the census into machine-type cells,
    stream-route-replay each cell in its own worker (optionally under the
    crash-safe supervisor with timeouts, retries, journaled ``--resume``
    and a fleet-wide memory ceiling), then merge the per-shard summaries
    into one deterministic fleet digest.  ``repro bench google_fleet`` is
    the same run priced at the ``REPRO_BENCH_FLEET_*`` bench point and
    recorded as ``BENCH_google_fleet.json``.
serve
    Run the crash-safe online provisioning daemon (:mod:`repro.serve`):
    a live arrival stream (trace replay, ``--follow`` file tail or
    ``--listen`` socket), tick-by-tick classification/forecasting/
    provisioning with the degradation ladder, write-ahead tick journal,
    periodic digest-verified checkpoints, watchdog-supervised control
    steps, SIGHUP hot reload, ``/healthz`` ``/readyz`` ``/metrics`` and
    ``--restore`` resume that is bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import ascii_table
from repro.classification import ClassifierConfig, TaskClassifier
from repro.resilience.scenarios import SCENARIOS as RESILIENCE_SCENARIOS
from repro.resilience.scenarios import build_scenario_plan
from repro.simulation import HarmonyConfig, HarmonySimulation, run_policy_comparison
from repro.simulation.harmony import ENGINES, POLICIES, energy_savings
from repro.trace import (
    SyntheticTraceConfig,
    Trace,
    generate_trace,
    load_trace,
    save_trace,
    trace_summary,
)


def _load_or_generate(args: argparse.Namespace) -> Trace:
    if getattr(args, "trace", None):
        return load_trace(args.trace)
    return generate_trace(
        SyntheticTraceConfig(
            horizon_hours=args.hours,
            seed=args.seed,
            total_machines=args.machines,
            load_factor=args.load,
        )
    )


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", type=Path, default=None,
                        help="directory of a saved trace (default: generate)")
    parser.add_argument("--hours", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--machines", type=int, default=400)
    parser.add_argument("--load", type=float, default=0.55)


def cmd_generate(args: argparse.Namespace) -> int:
    trace = _load_or_generate(args)
    save_trace(trace, args.output)
    print(f"saved {trace.num_tasks} tasks / {trace.num_machines} machines "
          f"to {args.output}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    trace = _load_or_generate(args)
    print(json.dumps(trace_summary(trace), indent=2))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.trace import validate_trace

    trace = _load_or_generate(args)
    report = validate_trace(trace)
    print(
        ascii_table(
            ["check", "target", "measured", "status"],
            [check.row() for check in report.checks],
            title="Calibration vs the paper's Section III marginals",
        )
    )
    return 0 if report.passed else 1


def cmd_classify(args: argparse.Namespace) -> int:
    trace = _load_or_generate(args)
    classifier = TaskClassifier(ClassifierConfig(seed=args.seed)).fit(list(trace.tasks))
    rows = classifier.summary()
    print(
        ascii_table(
            ["class", "tasks", "cpu mean", "mem mean", "duration", "CV^2"],
            [
                [r["name"], r["num_tasks"], f"{r['cpu_mean']:.4f}",
                 f"{r['memory_mean']:.4f}", f"{r['duration_mean_s']:.0f}s",
                 f"{r['duration_scv']:.2f}"]
                for r in rows
            ],
        )
    )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    trace = _load_or_generate(args)
    config = HarmonyConfig(policy=args.policy, engine=args.engine)
    result = HarmonySimulation(config, trace).run()
    print(json.dumps(result.summary(), indent=2))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    trace = _load_or_generate(args)
    results = run_policy_comparison(trace, HarmonyConfig())
    savings = energy_savings(results)
    print(
        ascii_table(
            ["policy", "kWh", "total $", "mean machines", "mean delay (s)",
             "unscheduled", "vs baseline"],
            [
                [
                    policy,
                    f"{r.energy_kwh:.1f}",
                    f"{r.total_cost:.2f}",
                    f"{r.metrics.mean_active_machines():.1f}",
                    f"{r.metrics.mean_delay(include_unscheduled_at=trace.horizon):.1f}",
                    r.metrics.num_unscheduled,
                    f"{savings[policy]:+.1%}",
                ]
                for policy, r in results.items()
            ],
        )
    )
    return 0


def cmd_resilience(args: argparse.Namespace) -> int:
    from dataclasses import replace

    if args.scenario != "all" and args.scenario not in RESILIENCE_SCENARIOS:
        names = ", ".join(RESILIENCE_SCENARIOS + ("all",))
        print(
            f"repro resilience: unknown scenario {args.scenario!r} "
            f"(hint: --scenario one of {names})",
            file=sys.stderr,
        )
        return 2
    trace = _load_or_generate(args)
    base = HarmonyConfig(
        policy=args.policy, predictor=args.predictor, guard=not args.no_guard
    )
    scenarios = RESILIENCE_SCENARIOS if args.scenario == "all" else (args.scenario,)
    simulation = HarmonySimulation(base, trace)
    rows = []
    for scenario in scenarios:
        plan = build_scenario_plan(scenario, trace.horizon)
        config = replace(base, fault_plan=plan)
        result = HarmonySimulation(
            config, trace, classifier=simulation.classifier
        ).run()
        metrics = result.metrics
        guard = result.guard_stats
        rows.append(
            [
                scenario,
                f"{metrics.num_scheduled}/{metrics.num_submitted}",
                result.tasks_killed,
                f"{metrics.availability():.3f}",
                f"{metrics.mttr(censor_at=trace.horizon):.0f}s",
                f"{metrics.mean_restart_latency(censor_at=trace.horizon):.0f}s",
                f"{metrics.slo_attainment(300.0, include_unscheduled_at=trace.horizon):.3f}",
                f"{metrics.fabric.partition_seconds:.0f}s",
                metrics.fabric.deferred_placements,
                guard.trips if guard else "-",
                guard.invalid_decisions if guard else "-",
            ]
        )
    print(
        ascii_table(
            ["scenario", "scheduled", "killed", "availability", "MTTR",
             "restart lat", "SLO(5m)", "partition", "deferred",
             "trips", "invalid"],
            rows,
            title=f"Resilience matrix — {args.policy}"
                  f" ({'guarded' if not args.no_guard else 'unguarded'})",
        )
    )
    return 0


def cmd_sanitize(args: argparse.Namespace) -> int:
    from repro.trace import sanitize_trace

    trace, report = sanitize_trace(args.directory, quarantine_path=args.quarantine)
    payload = {
        "trace": trace_summary(trace),
        "sanitization": report.to_dict(),
        "digest": report.digest,
        "quarantine_path": report.quarantine_path,
    }
    print(json.dumps(payload, indent=2))
    if args.strict and report.records_quarantined:
        print(
            f"repro sanitize: --strict and {report.records_quarantined} "
            "record(s) quarantined",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.runner import (
        SUITES,
        BenchDefaults,
        ScenarioRunner,
        ScenarioSupervisor,
        SupervisorConfig,
        bench_defaults,
        engine_pairs,
        with_engine,
        write_baseline,
    )

    if args.shards is not None and args.suite != "google_fleet":
        print(
            f"repro bench: --shards only applies to the google_fleet suite, "
            f"not {args.suite!r} (hint: repro bench google_fleet --shards "
            f"{args.shards})",
            file=sys.stderr,
        )
        return 2
    if args.suite == "google_fleet":
        return _cmd_bench_fleet(args)
    if args.workers < 1:
        print(
            f"repro bench: --workers must be >= 1, got {args.workers} "
            "(hint: --workers 1 runs scenarios in-process, serially)",
            file=sys.stderr,
        )
        return 2
    supervised = (
        args.supervise
        or args.resume
        or args.timeout is not None
        or args.retries is not None
    )
    if supervised and args.verify:
        print(
            "repro bench: --verify compares plain serial/parallel runs and "
            "cannot be combined with supervised execution "
            "(--supervise/--resume/--timeout/--retries)",
            file=sys.stderr,
        )
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print(
            f"repro bench: --timeout must be positive seconds, got {args.timeout}",
            file=sys.stderr,
        )
        return 2
    if args.retries is not None and args.retries < 0:
        print(
            f"repro bench: --retries must be >= 0, got {args.retries}",
            file=sys.stderr,
        )
        return 2

    env = bench_defaults()
    defaults = BenchDefaults(
        hours=args.hours if args.hours is not None else env.hours,
        machines=args.machines if args.machines is not None else env.machines,
        seed=args.seed if args.seed is not None else env.seed,
        load=args.load if args.load is not None else env.load,
    )
    suites = sorted(SUITES) if args.suite == "all" else [args.suite]
    if args.corrupt and "trace_corruption" not in suites:
        suites.append("trace_corruption")
    exit_code = 0
    for suite in suites:
        scenarios = SUITES[suite](defaults)
        if args.engine is not None:
            scenarios = with_engine(scenarios, args.engine)
        serial = None
        if supervised:
            supervisor = ScenarioSupervisor(
                suite,
                SupervisorConfig(
                    timeout_seconds=args.timeout,
                    max_attempts=(args.retries if args.retries is not None else 2) + 1,
                ),
                journal_dir=args.output,
            )
            report = supervisor.run(
                scenarios, workers=args.workers, resume=args.resume
            )
            if supervisor.resumed:
                print(
                    f"resumed {len(supervisor.resumed)} scenario(s) from the "
                    f"journal, executed {len(set(supervisor.executed))}"
                )
        else:
            runner = ScenarioRunner(suite)
            if args.verify:
                serial, report = runner.verify_determinism(
                    scenarios, workers=args.workers
                )
            else:
                report = runner.run(scenarios, workers=args.workers)
        rows = [
            [
                r.name,
                r.scenario.task,
                f"{r.wall_seconds:.3f}s",
                ", ".join(f"{k}={v:.3f}s" for k, v in sorted(r.phases.items())),
            ]
            for r in report
        ]
        for failure in report.quarantined:
            rows.append(
                [failure.name, failure.scenario.task,
                 f"QUARANTINED ({failure.kind})",
                 f"after {failure.attempts} attempt(s)"]
            )
        rows.append(
            ["TOTAL", "-", f"{report.total_wall_seconds:.3f}s",
             f"{report.tasks_per_second():.0f} tasks/s"]
        )
        print(
            ascii_table(
                ["scenario", "task", "wall", "phases"],
                rows,
                title=f"bench {suite} — {args.workers} worker(s)"
                      + (" [serial-verified]" if args.verify else "")
                      + (" [supervised]" if supervised else ""),
            )
        )
        path = write_baseline(report, args.output, compare_serial=serial)
        print(f"wrote {path}")
        if args.engine == "both":
            digests = {r.name: r.digest() for r in report}
            for obj_name, col_name in engine_pairs(scenarios):
                if obj_name not in digests or col_name not in digests:
                    continue  # one side quarantined; already exit 1 below
                if digests[obj_name] != digests[col_name]:
                    print(
                        f"repro bench: engine digest mismatch for "
                        f"{obj_name.removesuffix('__object')}: "
                        f"object={digests[obj_name][:12]} "
                        f"columnar={digests[col_name][:12]}",
                        file=sys.stderr,
                    )
                    exit_code = 1
                else:
                    print(
                        f"engines agree on "
                        f"{obj_name.removesuffix('__object')}: "
                        f"{digests[obj_name][:12]}"
                    )
        if report.quarantined:
            names = ", ".join(f.name for f in report.quarantined)
            print(f"quarantined scenarios: {names}", file=sys.stderr)
            exit_code = 1
    return exit_code


def _cmd_bench_fleet(args: argparse.Namespace) -> int:
    """``repro bench google_fleet`` — the fleet run at the bench point."""
    if args.verify:
        print(
            "repro bench: --verify doubles the Google-trace-scale fleet run; "
            "merged-digest invariance is asserted by tests/test_fleet.py and "
            "the fleet-chaos CI drill instead",
            file=sys.stderr,
        )
        return 2
    if args.corrupt:
        print(
            "repro bench: --corrupt applies to the trace_corruption suite, "
            "not google_fleet (hint: repro bench trace_corruption)",
            file=sys.stderr,
        )
        return 2
    return _fleet_run("repro bench", args)


def cmd_fleet(args: argparse.Namespace) -> int:
    return _fleet_run("repro fleet", args)


def _fleet_run(prog: str, args: argparse.Namespace) -> int:
    """Shared body of ``repro fleet`` and ``repro bench google_fleet``.

    ``repro bench``'s namespace lacks the fleet-only knobs (policy,
    predictor, fault injection, memory budget, ...), so those are read
    with ``getattr`` defaults matching the ``repro fleet`` parser.
    """
    from repro.fleet import (
        FleetConfig,
        fleet_baseline_payload,
        max_shards,
        run_fleet,
    )
    from repro.resilience.scenarios import SCENARIOS
    from repro.runner import (
        SupervisorConfig,
        bench_fleet_shards,
        google_fleet_trace_params,
        trace_config_from_params,
    )

    engine = getattr(args, "engine", None) or "columnar"
    if engine == "both":
        print(
            f"{prog}: --engine both pairs engine-aware scenarios and only "
            "applies to simulate-style suites; every fleet shard replays on "
            "exactly one engine (hint: --engine object or --engine columnar)",
            file=sys.stderr,
        )
        return 2
    if args.workers < 1:
        print(
            f"{prog}: --workers must be >= 1, got {args.workers} "
            "(hint: --workers 1 runs shards in-process, serially)",
            file=sys.stderr,
        )
        return 2
    shards = args.shards if args.shards is not None else bench_fleet_shards()
    if shards < 1:
        print(
            f"{prog}: --shards must be >= 1, got {shards} "
            "(hint: --shards 1 replays the whole census as a single cell)",
            file=sys.stderr,
        )
        return 2
    if args.timeout is not None and args.timeout <= 0:
        print(
            f"{prog}: --timeout must be positive seconds, got {args.timeout}",
            file=sys.stderr,
        )
        return 2
    if args.retries is not None and args.retries < 0:
        print(
            f"{prog}: --retries must be >= 0, got {args.retries}",
            file=sys.stderr,
        )
        return 2
    memory_ceiling = getattr(args, "memory_ceiling_mb", None)
    memory_budget = getattr(args, "memory_budget_mb", None)
    for flag, value in (
        ("--memory-ceiling-mb", memory_ceiling),
        ("--memory-budget-mb", memory_budget),
    ):
        if value is not None and value <= 0:
            print(
                f"{prog}: {flag} must be positive MiB, got {value}",
                file=sys.stderr,
            )
            return 2
    fault = getattr(args, "fault", None)
    if fault is not None and fault not in SCENARIOS:
        print(
            f"{prog}: unknown fault scenario {fault!r} "
            f"(hint: one of {', '.join(SCENARIOS)})",
            file=sys.stderr,
        )
        return 2

    trace_params = google_fleet_trace_params()
    for key in ("hours", "machines", "seed", "load"):
        value = getattr(args, key, None)
        if value is not None:
            trace_params[key] = value
    census = trace_config_from_params(trace_params).census()
    if shards > max_shards(census):
        print(
            f"{prog}: --shards {shards} exceeds the {max_shards(census)} "
            f"machine-type cells of this census; cells are machine-type "
            f"granular (hint: --shards <= {max_shards(census)}, or grow "
            "--machines)",
            file=sys.stderr,
        )
        return 2

    config = FleetConfig(
        suite="google_fleet",
        shards=shards,
        policy=getattr(args, "policy", "cbs"),
        engine=engine,
        predictor=getattr(args, "predictor", "ewma"),
        guard=bool(getattr(args, "guard", False)),
        fault_scenario=fault,
        fault_seed=int(getattr(args, "fault_seed", 0) or 0),
        route_seed=int(getattr(args, "route_seed", 0) or 0),
        progress_every=int(getattr(args, "progress_every", None) or 200_000),
        memory_budget_mb=memory_budget,
    )
    supervised = (
        args.supervise
        or args.resume
        or args.timeout is not None
        or args.retries is not None
        or memory_ceiling is not None
    )
    supervisor_config = None
    if supervised:
        supervisor_config = SupervisorConfig(
            timeout_seconds=args.timeout,
            max_attempts=(args.retries if args.retries is not None else 2) + 1,
            memory_ceiling_mb=memory_ceiling,
        )
    fleet = run_fleet(
        trace_params,
        config,
        workers=args.workers,
        supervise=supervised,
        resume=args.resume,
        journal_dir=args.output,
        supervisor_config=supervisor_config,
        progress_dir=getattr(args, "progress_dir", None),
    )

    report = fleet.report
    rows = [
        [
            r.name,
            r.summary["shard"]["machines"],
            r.summary["shard"]["tasks_routed"],
            f"{r.wall_seconds:.3f}s",
            f"{r.rss_peak_mb:.0f} MiB" if r.rss_peak_mb is not None else "-",
        ]
        for r in report
    ]
    for failure in report.quarantined:
        rows.append(
            [failure.name, "-", "-", f"QUARANTINED ({failure.kind})",
             f"after {failure.attempts} attempt(s)"]
        )
    payload = fleet_baseline_payload(fleet, trace_params, config)
    merged = fleet.merged
    rows.append(
        ["TOTAL",
         merged["shards"]["machines"] if merged else "-",
         merged["tasks_submitted"] if merged else "-",
         f"{report.total_wall_seconds:.3f}s",
         f"{payload['peak_rss_mb']:.0f} MiB" if "peak_rss_mb" in payload else "-"]
    )
    print(
        ascii_table(
            ["shard", "machines", "tasks", "wall", "peak rss"],
            rows,
            title=f"fleet {config.suite} — {shards} shard(s), "
                  f"{args.workers} worker(s)"
                  + (" [supervised]" if supervised else ""),
        )
    )
    if merged is not None:
        print(
            f"merged: {merged['tasks_scheduled']}/{merged['tasks_submitted']} "
            f"tasks scheduled, {merged['energy_kwh']:.1f} kWh, "
            f"policy {merged['policy']}"
        )
        print(f"fleet digest {fleet.digest}")
        if fleet.partial:
            print(
                "PARTIAL merge: missing shard(s) "
                f"{merged['shards']['missing']}",
                file=sys.stderr,
            )
    else:
        print("no shards completed; nothing to merge", file=sys.stderr)

    args.output.mkdir(parents=True, exist_ok=True)
    path = args.output / f"BENCH_{config.suite}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")
    return 1 if fleet.partial else 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.energy.catalog import table2_fleet
    from repro.errors import ConfigInvalid, ReproError
    from repro.serve import (
        CHAOS_PRESETS,
        FileTailFeeder,
        ReplayFeeder,
        ServeChaos,
        ServeConfig,
        ServeDaemon,
        SocketFeeder,
        SystemClock,
        derive_run_id,
        load_config_file,
    )

    if args.chaos is not None and args.chaos not in CHAOS_PRESETS:
        names = ", ".join(sorted(CHAOS_PRESETS))
        print(
            f"repro serve: unknown chaos preset {args.chaos!r} "
            f"(hint: --chaos one of {names})",
            file=sys.stderr,
        )
        return 2
    if args.follow is not None and args.listen is not None:
        print(
            "repro serve: --follow and --listen are mutually exclusive "
            "(one arrival source per daemon)",
            file=sys.stderr,
        )
        return 2
    if args.follow is not None and not args.follow.exists():
        print(f"repro serve: --follow file {args.follow} does not exist",
              file=sys.stderr)
        return 2

    try:
        config = (
            load_config_file(args.config) if args.config else ServeConfig()
        )
        overrides: dict = {}
        if args.tick_seconds is not None:
            overrides["tick_seconds"] = args.tick_seconds
        if args.checkpoint_interval is not None:
            overrides["checkpoint_interval_ticks"] = args.checkpoint_interval
        if args.tick_delay is not None:
            overrides["tick_delay_seconds"] = args.tick_delay
        if overrides:
            config = ServeConfig(**{**config.to_dict(), **overrides})
    except (ConfigInvalid, OSError) as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2

    clock = SystemClock()
    if args.follow is not None:
        feeder = FileTailFeeder(
            args.follow, tick_seconds=config.tick_seconds, clock=clock
        )
        feeder_spec = {"kind": "follow", "path": str(args.follow.resolve())}
    elif args.listen is not None:
        feeder = SocketFeeder(port=args.listen, tick_seconds=config.tick_seconds)
        feeder_spec = {"kind": "listen", "port": args.listen}
        print(f"listening on {feeder.address[0]}:{feeder.address[1]}")
    else:
        trace = _load_or_generate(args)
        feeder = ReplayFeeder(
            trace.tasks, horizon=trace.horizon, tick_seconds=config.tick_seconds
        )
        feeder_spec = {
            "kind": "replay",
            "trace": str(args.trace) if args.trace else None,
            "hours": args.hours,
            "seed": args.seed,
            "machines": args.machines,
            "load": args.load,
        }

    run_id = derive_run_id(config, feeder_spec)
    chaos = None
    if args.chaos is not None:
        plan, serve_faults = CHAOS_PRESETS[args.chaos](config.tick_seconds)
        chaos = ServeChaos(
            plan,
            table2_fleet(config.fleet_scale),
            config.tick_seconds,
            serve_faults=serve_faults,
        )

    daemon = ServeDaemon(
        config,
        feeder,
        state_dir=args.state_dir,
        run_id=run_id,
        chaos=chaos,
        clock=clock,
        http_port=args.http_port,
        config_path=args.config,
    )
    daemon.install_signal_handlers()
    try:
        summary = daemon.run(restore_state=args.restore, max_ticks=args.ticks)
    except ReproError as exc:
        print(f"repro serve: [{exc.code}] {exc}", file=sys.stderr)
        return 1
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _git_changed_files(root: Path) -> set[str] | None:
    """Root-relative paths of files changed vs HEAD (plus untracked).

    Returns ``None`` when git is unavailable or ``root`` is not a work
    tree — callers fall back to reporting the full tree.
    """
    import subprocess

    def run(cmd: list[str]) -> str | None:
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=30
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return proc.stdout if proc.returncode == 0 else None

    # git reports names relative to the repository toplevel; when --root
    # is a subdirectory, strip its prefix so names match finding paths.
    prefix_out = run(["git", "-C", str(root), "rev-parse", "--show-prefix"])
    if prefix_out is None:
        return None
    prefix = prefix_out.strip()

    names: set[str] = set()
    for cmd in (
        ["git", "-C", str(root), "diff", "--name-only", "HEAD"],
        ["git", "-C", str(root), "ls-files", "--others", "--exclude-standard"],
    ):
        out = run(cmd)
        if out is None:
            return None
        names.update(line.strip() for line in out.splitlines())
    if prefix:
        names = {
            name[len(prefix):] for name in names if name.startswith(prefix)
        }
    return {name for name in names if name.endswith(".py")}


def _print_graph_symbol(graph, spec: str) -> int:
    keys = graph.resolve_symbol(spec)
    if not keys:
        print(f"repro lint: --graph: no symbol matches {spec!r}", file=sys.stderr)
        return 2
    reach = graph.sink_reach()
    feed = graph.digest_feed()
    for key in keys:
        node = graph.functions[key]
        print(f"{graph.label(key)}  ({node.rel_path}:{node.summary.lineno})")
        callees = graph.edges.get(key, [])
        callers = graph.reverse.get(key, [])
        for target, high in callees:
            marker = "sure" if high else "name-match"
            print(f"  calls    {graph.label(target)}  [{marker}]")
        for source, high in callers:
            marker = "sure" if high else "name-match"
            print(f"  caller   {graph.label(source)}  [{marker}]")
        if not callees and not callers:
            print("  (no resolved edges)")
        if key in reach:
            path = " -> ".join(
                graph.label(step) for step in graph.path_to_root(key, reach)
            )
            print(f"  digest path (argument direction): {path}")
        if key in feed:
            path = " -> ".join(
                graph.label(step) for step in graph.path_to_root(key, feed)
            )
            print(f"  digest path (return direction): {path}")
        if key not in reach and key not in feed:
            print("  not on any digest path")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.statics import (
        DEFAULT_BASELINE_NAME,
        DEFAULT_CACHE_NAME,
        Baseline,
        BaselineError,
        LintEngine,
        build_baseline,
        lint_paths,
        load_baseline,
        save_baseline,
        to_sarif,
    )

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"repro lint: --root {args.root} is not a directory", file=sys.stderr)
        return 2

    if args.graph:
        try:
            graph = LintEngine().project_graph(args.paths, root=root)
        except FileNotFoundError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        return _print_graph_symbol(graph, args.graph)

    # --changed-only narrows what is *reported*, never what is analyzed
    # (project passes need the whole graph, and the baseline must see the
    # full finding set or untouched baselined findings would read as
    # stale).  The filter is therefore applied after baseline.apply().
    changed: set[str] | None = None
    if args.changed_only:
        changed = _git_changed_files(root)
        if changed is None:
            print(
                "repro lint: --changed-only: git unavailable; "
                "reporting the full tree",
                file=sys.stderr,
            )

    cache = None
    if not args.no_cache:
        cache = args.cache if args.cache else root / DEFAULT_CACHE_NAME
        if not Path(cache).is_absolute():
            cache = root / cache

    try:
        report = lint_paths(
            args.paths,
            root=root,
            cache=cache,
            jobs=args.jobs,
        )
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE_NAME
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path
    baseline = Baseline()
    if not args.no_baseline and baseline_path.exists():
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2

    if args.fix_baseline:
        previous = baseline if baseline.entries else None
        path = save_baseline(build_baseline(report.findings, previous), baseline_path)
        print(
            f"wrote {path} ({len(report.findings)} finding(s) baselined; "
            "justify each entry before committing)"
        )
        return 0

    reported, baselined = baseline.apply(report.findings)
    stale = baseline.stale_fingerprints(report.findings)
    if changed is not None:
        reported = [f for f in reported if f.path in changed]

    if args.format == "json":
        payload = {
            "tool": "harmonylint",
            "version": 1,
            "root": str(root),
            "files_checked": report.files_checked,
            "findings": [finding.to_dict() for finding in reported],
            "summary": {
                "total": len(reported),
                "baselined": baselined,
                "suppressed": report.suppressed,
                "stale_baseline_entries": len(stale),
                "by_code": _lint_counts(reported),
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "sarif":
        sarif = to_sarif(reported, root_uri=root.as_uri() + "/")
        print(json.dumps(sarif, indent=2, sort_keys=True))
    else:
        for finding in reported:
            print(finding.format_text())
        status = "clean" if not reported else f"{len(reported)} finding(s)"
        cache_note = ""
        if report.cache_hits or report.cache_misses:
            cache_note = (
                f", cache {report.cache_hits} hit(s) / "
                f"{report.cache_misses} analyzed"
            )
        print(
            f"repro lint: {status} — {report.files_checked} file(s), "
            f"{baselined} baselined, {report.suppressed} suppressed"
            f"{cache_note}"
        )
        if stale:
            print(
                f"repro lint: {len(stale)} stale baseline entr(y/ies); "
                "run --fix-baseline to drop them",
                file=sys.stderr,
            )
    return 1 if reported else 0


def _lint_counts(findings) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    return dict(sorted(counts.items()))


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import build_report

    trace = _load_or_generate(args)
    markdown = build_report(trace, HarmonyConfig())
    args.output.write_text(markdown)
    print(f"wrote {args.output} ({len(markdown.splitlines())} lines)")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis import render_policy_figures, render_trace_figures
    from repro.simulation import run_policy_comparison

    trace = _load_or_generate(args)
    written = render_trace_figures(trace, args.output)
    if not args.trace_only:
        results = run_policy_comparison(trace, HarmonyConfig())
        written += render_policy_figures(results, trace.horizon, args.output)
    for path in written:
        print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HARMONY reproduction toolkit"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="synthesize and save a trace")
    _add_trace_args(generate)
    generate.add_argument("output", type=Path, help="output directory")
    generate.set_defaults(fn=cmd_generate)

    analyze = subparsers.add_parser("analyze", help="summarize a trace")
    _add_trace_args(analyze)
    analyze.set_defaults(fn=cmd_analyze)

    validate = subparsers.add_parser(
        "validate", help="check a trace against the paper's marginals"
    )
    _add_trace_args(validate)
    validate.set_defaults(fn=cmd_validate)

    classify = subparsers.add_parser("classify", help="fit and print task classes")
    _add_trace_args(classify)
    classify.set_defaults(fn=cmd_classify)

    simulate = subparsers.add_parser("simulate", help="run one policy")
    _add_trace_args(simulate)
    simulate.add_argument("--policy", choices=POLICIES, default="cbs")
    simulate.add_argument(
        "--engine", choices=ENGINES, default="object",
        help="replay engine: object (oracle) or columnar (vectorized)",
    )
    simulate.set_defaults(fn=cmd_simulate)

    compare = subparsers.add_parser("compare", help="baseline vs CBP vs CBS")
    _add_trace_args(compare)
    compare.set_defaults(fn=cmd_compare)

    resilience = subparsers.add_parser(
        "resilience", help="fault-scenario matrix with availability/MTTR/SLO"
    )
    _add_trace_args(resilience)
    resilience.add_argument("--policy", choices=POLICIES, default="cbs")
    resilience.add_argument("--predictor", default="ewma")
    resilience.add_argument(
        "--scenario", default="all",
        help="fault scenario name, or 'all' for the full matrix "
             "(validated in cmd_resilience so the hint can list names)",
    )
    resilience.add_argument(
        "--no-guard", action="store_true",
        help="run the raw policy without the GuardedController wrapper",
    )
    resilience.set_defaults(fn=cmd_resilience)

    sanitize = subparsers.add_parser(
        "sanitize", help="ingest a dirty trace through the sanitizer"
    )
    sanitize.add_argument(
        "directory", type=Path, help="saved trace directory to sanitize"
    )
    sanitize.add_argument(
        "--quarantine", type=Path, default=None,
        help="quarantine JSONL path (default: <dir>/task_events.csv.quarantine.jsonl)",
    )
    sanitize.add_argument(
        "--strict", action="store_true",
        help="exit 1 if any record was quarantined",
    )
    sanitize.set_defaults(fn=cmd_sanitize)

    bench = subparsers.add_parser(
        "bench", help="run a scenario suite via the parallel runner"
    )
    bench.add_argument(
        "suite",
        choices=(
            "scalability",
            "ablation",
            "robustness",
            "network_faults",
            "trace_corruption",
            "google_fleet",
            "all",
        ),
        help="which scenario suite to run ('all' excludes the "
             "Google-trace-scale google_fleet suite; request it explicitly)",
    )
    bench.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="google_fleet only: machine-type cells to partition the census "
             "into (default REPRO_BENCH_FLEET_SHARDS)",
    )
    bench.add_argument(
        "--engine", choices=("object", "columnar", "both"), default=None,
        help="pin engine-aware scenarios to one replay engine, or 'both' "
             "to run each once per engine and assert bit-identical digests",
    )
    bench.add_argument(
        "--corrupt", action="store_true",
        help="also run the dirty-trace trace_corruption suite "
             "(corrupt -> sanitize -> simulate)",
    )
    bench.add_argument("--workers", type=int, default=4,
                       help="worker processes (1 = in-process serial)")
    bench.add_argument(
        "--verify", action="store_true",
        help="also run serially and assert bit-identical summaries",
    )
    bench.add_argument(
        "--supervise", action="store_true",
        help="run under the crash-safe supervisor: per-scenario worker "
             "processes, retries with deterministic backoff, quarantine, "
             "and a JOURNAL_<suite>.jsonl in the output directory",
    )
    bench.add_argument(
        "--resume", action="store_true",
        help="replay JOURNAL_<suite>.jsonl (verifying digests) and only "
             "execute scenarios it is missing; implies --supervise",
    )
    bench.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-scenario wall-clock budget per attempt; implies --supervise",
    )
    bench.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retries per failing scenario before quarantine "
             "(default 2 under supervision); implies --supervise",
    )
    bench.add_argument("--output", type=Path, default=Path("."),
                       help="directory for the BENCH_<suite>.json baseline")
    bench.add_argument("--hours", type=float, default=None,
                       help="override REPRO_BENCH_HOURS for this run")
    bench.add_argument("--machines", type=int, default=None,
                       help="override REPRO_BENCH_MACHINES for this run")
    bench.add_argument("--seed", type=int, default=None,
                       help="override REPRO_BENCH_SEED for this run")
    bench.add_argument("--load", type=float, default=None,
                       help="override REPRO_BENCH_LOAD for this run")
    bench.set_defaults(fn=cmd_bench)

    fleet = subparsers.add_parser(
        "fleet",
        help="sharded, crash-tolerant fleet simulation with a merged digest",
    )
    fleet.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="machine-type cells to partition the census into "
             "(default REPRO_BENCH_FLEET_SHARDS)",
    )
    fleet.add_argument("--workers", type=int, default=4,
                       help="shard worker processes (1 = in-process serial)")
    fleet.add_argument("--policy", choices=POLICIES, default="cbs")
    fleet.add_argument(
        "--engine", choices=("object", "columnar", "both"), default="columnar",
        help="replay engine inside every shard ('both' is rejected with a "
             "hint: it is a bench pairing construct)",
    )
    fleet.add_argument("--predictor", default="ewma")
    fleet.add_argument(
        "--guard", action="store_true",
        help="wrap each shard's controller in the GuardedController",
    )
    fleet.add_argument(
        "--fault", default=None, metavar="SCENARIO",
        help="fault scenario injected into every shard (per-shard seed "
             "offset keeps draws uncorrelated)",
    )
    fleet.add_argument("--fault-seed", type=int, default=0)
    fleet.add_argument(
        "--route-seed", type=int, default=0,
        help="seed of the deterministic job-to-cell router",
    )
    fleet.add_argument("--hours", type=float, default=None,
                       help="override REPRO_BENCH_FLEET_HOURS for this run")
    fleet.add_argument("--machines", type=int, default=None,
                       help="override REPRO_BENCH_FLEET_MACHINES for this run")
    fleet.add_argument("--seed", type=int, default=None,
                       help="override REPRO_BENCH_SEED for this run")
    fleet.add_argument("--load", type=float, default=None,
                       help="override REPRO_BENCH_FLEET_LOAD for this run")
    fleet.add_argument(
        "--supervise", action="store_true",
        help="run shards under the crash-safe supervisor (respawn, "
             "deterministic backoff, quarantine, suite journal)",
    )
    fleet.add_argument(
        "--resume", action="store_true",
        help="replay JOURNAL_google_fleet.jsonl and only execute shards it "
             "is missing; implies --supervise",
    )
    fleet.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard wall-clock budget per attempt (straggler guard); "
             "implies --supervise",
    )
    fleet.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retries per failing shard before quarantine "
             "(default 2 under supervision); implies --supervise",
    )
    fleet.add_argument(
        "--memory-ceiling-mb", type=float, default=None, metavar="MIB",
        help="fleet-wide RSS ceiling; the supervisor defers shard spawns "
             "while the coordinator+workers tree sits above the watermark; "
             "implies --supervise",
    )
    fleet.add_argument(
        "--memory-budget-mb", type=float, default=None, metavar="MIB",
        help="per-shard-worker RSS budget; a shard that exceeds it fails "
             "cleanly (and quarantines into a partial merge) instead of "
             "OOM-killing the host",
    )
    fleet.add_argument(
        "--progress-every", type=int, default=None, metavar="TASKS",
        help="streamed tasks between per-shard progress checkpoints and "
             "memory checks (default 200000)",
    )
    fleet.add_argument(
        "--progress-dir", type=Path, default=None,
        help="directory for per-shard SHARD_<suite>_<i>.jsonl progress "
             "journals (default: none)",
    )
    fleet.add_argument("--output", type=Path, default=Path("."),
                       help="directory for BENCH_google_fleet.json and the "
                            "suite journal")
    fleet.set_defaults(fn=cmd_fleet)

    serve = subparsers.add_parser(
        "serve", help="run the crash-safe online provisioning daemon"
    )
    _add_trace_args(serve)
    serve.add_argument(
        "--state-dir", type=Path, required=True,
        help="directory for the tick journal, checkpoint and event log",
    )
    serve.add_argument(
        "--follow", type=Path, default=None, metavar="FILE",
        help="tail a JSONL arrival file instead of replaying a trace",
    )
    serve.add_argument(
        "--listen", type=int, default=None, metavar="PORT",
        help="accept one TCP client speaking the arrival line protocol "
             "(0 = auto-assign)",
    )
    serve.add_argument(
        "--ticks", type=int, default=None,
        help="stop after N applied ticks (default: run to stream end)",
    )
    serve.add_argument(
        "--tick-seconds", type=float, default=None,
        help="control-tick length in seconds (default 300; deterministic "
             "— changing it changes the run id)",
    )
    serve.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="TICKS",
        help="checkpoint every N applied ticks (default 8; hot-reloadable)",
    )
    serve.add_argument(
        "--tick-delay", type=float, default=None, metavar="SECONDS",
        help="sleep between replay ticks (pacing for drills; default 0)",
    )
    serve.add_argument(
        "--http-port", type=int, default=None, metavar="PORT",
        help="serve /healthz /readyz /metrics on this port (0 = auto)",
    )
    serve.add_argument(
        "--chaos", default=None, metavar="PRESET",
        help="inject a chaos preset into the live loop "
             "(validated in cmd_serve so the hint can list names)",
    )
    serve.add_argument(
        "--restore", action="store_true",
        help="restore from the checkpoint + journal suffix in --state-dir",
    )
    serve.add_argument(
        "--config", type=Path, default=None, metavar="PATH",
        help="JSON config file; ops fields hot-reload on SIGHUP or edit",
    )
    serve.set_defaults(fn=cmd_serve)

    lint = subparsers.add_parser(
        "lint", help="run harmonylint (repro.statics) over the tree"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files/directories to lint, relative to --root "
             "(default: src tests)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text); sarif emits SARIF 2.1.0 "
             "for code-scanning upload",
    )
    lint.add_argument(
        "--root", type=Path, default=Path("."),
        help="tree root findings are reported relative to (default: .)",
    )
    lint.add_argument(
        "--changed-only", action="store_true",
        help="report findings only for files changed vs git HEAD "
             "(plus untracked); analysis still covers the whole tree, "
             "and without git the full tree is reported",
    )
    lint.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parallelize the per-file phase across N spawn workers "
             "(default: 1; findings are identical for any N)",
    )
    lint.add_argument(
        "--graph", metavar="SYMBOL", default=None,
        help="debug: print call-graph edges and digest paths for SYMBOL "
             "(qualified name, Class.method, or bare name) and exit",
    )
    lint.add_argument(
        "--cache", type=Path, default=None, metavar="PATH",
        help="incremental analysis cache file "
             "(default: <root>/.harmonylint-cache.json)",
    )
    lint.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental analysis cache",
    )
    lint.add_argument(
        "--baseline", type=Path, default=None, metavar="PATH",
        help="baseline file of grandfathered findings "
             "(default: <root>/lint-baseline.json when it exists)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding",
    )
    lint.add_argument(
        "--fix-baseline", action="store_true",
        help="rewrite the baseline from the current findings "
             "(existing justifications are preserved) and exit 0",
    )
    lint.set_defaults(fn=cmd_lint)

    report = subparsers.add_parser(
        "report", help="run the evaluation and write a markdown report"
    )
    _add_trace_args(report)
    report.add_argument("output", type=Path, help="markdown file to write")
    report.set_defaults(fn=cmd_report)

    figures = subparsers.add_parser(
        "figures", help="render the paper's figures as SVG files"
    )
    _add_trace_args(figures)
    figures.add_argument("output", type=Path, help="output directory")
    figures.add_argument(
        "--trace-only", action="store_true",
        help="only the Section III figures (skip the policy simulations)",
    )
    figures.set_defaults(fn=cmd_figures)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
