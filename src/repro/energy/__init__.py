"""Machine energy models (Eq. 7), the Table II server catalog and prices."""

from repro.energy.models import LinearPowerModel, MachineModel
from repro.energy.catalog import (
    table2_fleet,
    TABLE2_MODELS,
    google_like_energy_models,
    models_for_machine_types,
)
from repro.energy.prices import (
    PriceSchedule,
    constant_price,
    time_of_use_price,
    spot_price_series,
)
from repro.energy.accounting import EnergyMeter, EnergyRecord

__all__ = [
    "LinearPowerModel",
    "MachineModel",
    "table2_fleet",
    "TABLE2_MODELS",
    "google_like_energy_models",
    "models_for_machine_types",
    "PriceSchedule",
    "constant_price",
    "time_of_use_price",
    "spot_price_series",
    "EnergyMeter",
    "EnergyRecord",
]
