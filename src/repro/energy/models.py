"""Linear machine power models (Eq. 7).

The paper models a machine's power draw as linear in resource utilization:

    P = E_idle,m + sum_r alpha_mr * u_r

with ``E_idle,m`` the idle draw of a type-m machine and ``alpha_mr`` the
slope for resource r.  Parameters are estimated from public Energy Star
measurements (Section IX / Fig. 9); see :mod:`repro.energy.catalog` for the
Table II instantiations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.schema import MachineType, Task


@dataclass(frozen=True)
class LinearPowerModel:
    """Power as an affine function of per-resource utilization.

    Attributes
    ----------
    idle_watts:
        E_idle: draw of a powered-on machine at zero utilization.
    alpha_watts:
        Slope per resource, ``(alpha_cpu, alpha_memory)``; full utilization
        of every resource draws ``idle + sum(alpha)`` watts.
    """

    idle_watts: float
    alpha_watts: tuple[float, ...] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.idle_watts < 0:
            raise ValueError(f"idle_watts must be >= 0, got {self.idle_watts}")
        if any(a < 0 for a in self.alpha_watts):
            raise ValueError(f"alpha_watts must be >= 0, got {self.alpha_watts}")

    @property
    def peak_watts(self) -> float:
        """Draw at 100% utilization of every resource."""
        return self.idle_watts + sum(self.alpha_watts)

    def power(self, utilization: tuple[float, ...]) -> float:
        """Instantaneous draw (watts) at the given per-resource utilization."""
        if len(utilization) != len(self.alpha_watts):
            raise ValueError(
                f"expected {len(self.alpha_watts)} utilization components, "
                f"got {len(utilization)}"
            )
        for u in utilization:
            if not 0 <= u <= 1 + 1e-9:
                raise ValueError(f"utilization components must be in [0, 1], got {u}")
        return self.idle_watts + sum(a * u for a, u in zip(self.alpha_watts, utilization))

    def energy_kwh(self, utilization: tuple[float, ...], seconds: float) -> float:
        """Energy over an interval at constant utilization, in kWh."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        return self.power(utilization) * seconds / 3.6e6


@dataclass(frozen=True)
class MachineModel:
    """A server model: capacity, census count, power model and switch cost.

    This is the provisioning-layer view of a machine type; it can be
    projected down to the trace-layer :class:`~repro.trace.schema.MachineType`
    via :meth:`to_machine_type`.
    """

    name: str
    platform_id: int
    cpu_capacity: float
    memory_capacity: float
    count: int
    power_model: LinearPowerModel
    #: q_m: cost (in the objective's currency) of one on/off transition.
    switch_cost: float = 0.0
    #: Seconds a machine takes to boot when switched on.
    boot_seconds: float = 120.0

    def __post_init__(self) -> None:
        if not 0 < self.cpu_capacity <= 1:
            raise ValueError(f"cpu_capacity must be in (0, 1], got {self.cpu_capacity}")
        if not 0 < self.memory_capacity <= 1:
            raise ValueError(
                f"memory_capacity must be in (0, 1], got {self.memory_capacity}"
            )
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")
        if self.switch_cost < 0:
            raise ValueError(f"switch_cost must be >= 0, got {self.switch_cost}")
        if self.boot_seconds < 0:
            raise ValueError(f"boot_seconds must be >= 0, got {self.boot_seconds}")

    @property
    def capacity(self) -> tuple[float, float]:
        return (self.cpu_capacity, self.memory_capacity)

    @property
    def idle_watts(self) -> float:
        return self.power_model.idle_watts

    @property
    def peak_watts(self) -> float:
        return self.power_model.peak_watts

    @property
    def efficiency(self) -> float:
        """Capacity delivered per peak watt (the baseline's greedy key).

        Uses CPU capacity per watt at full load, the conventional
        "performance per watt" ordering.
        """
        return self.cpu_capacity / self.peak_watts

    def can_host(self, task: Task) -> bool:
        """Whether one machine of this model can ever host the task."""
        if task.allowed_platforms is not None and self.platform_id not in task.allowed_platforms:
            return False
        return task.cpu <= self.cpu_capacity and task.memory <= self.memory_capacity

    def power_at(self, cpu_util: float, memory_util: float = 0.0) -> float:
        """Draw (watts) at the given utilization (Fig. 9's curves)."""
        return self.power_model.power((cpu_util, memory_util))

    def to_machine_type(self) -> MachineType:
        """Project to the trace-layer machine type."""
        return MachineType(
            platform_id=self.platform_id,
            cpu_capacity=self.cpu_capacity,
            memory_capacity=self.memory_capacity,
            count=self.count,
            name=self.name,
        )
