"""Server catalogs: the Table II fleet and Google-like energy models.

Table II of the paper simulates four server models; capacities are
normalized so the largest machine (HP DL585 G7: 4x12 = 48 cores, 64 GB) has
capacity 1.0 for both resources:

    Model                  Procs  Cores/proc  Memory  Machines
    Dell PowerEdge R210    1      4           4 GB    7000
    Dell PowerEdge R515    2      6           32 GB   1500
    HP DL385 G7            2      12          16 GB   1000
    HP DL585 G7            4      12          64 GB   500

Idle/peak watts are set from public Energy Star-class measurements for these
models (DESIGN.md section 2); the dynamic range is split 85/15 between CPU
and memory, the conventional attribution for post-2010 servers.
"""

from __future__ import annotations

from repro.energy.models import LinearPowerModel, MachineModel
from repro.trace.schema import MachineType

#: (name, cores, memory_gb, count, idle_watts, peak_watts, switch_cost, boot_s)
#: Idle/peak follow the Fig. 9 ordering: the 2-socket DL385 G7 delivers the
#: most capacity per watt; the 4-socket DL585 G7 is capable but power-hungry
#: ("the other types of servers are able to host it but will consume much
#: more energy"); the R210 is small and per-unit inefficient.
#: Switch costs approximate about one machine-hour of idle energy — the
#: paper's "average switching cost ... obtained through experiments"
#: (boot transient plus the idle burn of draining).  Large enough to damp
#: control flapping, small enough to amortize within the MPC horizon.
_TABLE2_RAW: tuple[tuple[str, int, int, int, float, float, float, float], ...] = (
    ("Dell PowerEdge R210", 4, 4, 7000, 58.0, 118.0, 0.006, 90.0),
    ("Dell PowerEdge R515", 12, 32, 1500, 124.0, 245.0, 0.012, 120.0),
    ("HP DL385 G7", 24, 16, 1000, 138.0, 275.0, 0.014, 120.0),
    ("HP DL585 G7", 48, 64, 500, 321.0, 649.0, 0.032, 150.0),
)

_MAX_CORES = 48
_MAX_MEMORY_GB = 64
_CPU_DYNAMIC_SHARE = 0.85


def _model_from_raw(
    platform_id: int,
    raw: tuple[str, int, int, int, float, float, float, float],
    scale: float,
) -> MachineModel:
    name, cores, memory_gb, count, idle, peak, switch_cost, boot_s = raw
    dynamic = peak - idle
    return MachineModel(
        name=name,
        platform_id=platform_id,
        cpu_capacity=cores / _MAX_CORES,
        memory_capacity=memory_gb / _MAX_MEMORY_GB,
        count=max(1, round(count * scale)),
        power_model=LinearPowerModel(
            idle_watts=idle,
            alpha_watts=(
                dynamic * _CPU_DYNAMIC_SHARE,
                dynamic * (1.0 - _CPU_DYNAMIC_SHARE),
            ),
        ),
        switch_cost=switch_cost,
        boot_seconds=boot_s,
    )


def table2_fleet(scale: float = 0.1) -> tuple[MachineModel, ...]:
    """The Table II fleet, scaled down by ``scale`` (default 1/10).

    ``scale=1.0`` reproduces the paper's 10,000-machine cluster; the default
    1,000-machine fleet keeps simulations laptop-sized while preserving the
    7000:1500:1000:500 proportions (DESIGN.md section 5).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return tuple(
        _model_from_raw(i + 1, raw, scale) for i, raw in enumerate(_TABLE2_RAW)
    )


TABLE2_MODELS: tuple[MachineModel, ...] = table2_fleet(scale=1.0)
"""The unscaled Table II fleet (7000/1500/1000/500 machines)."""


def google_like_energy_models(
    machine_types: tuple[MachineType, ...],
) -> tuple[MachineModel, ...]:
    """Attach plausible power models to a Google-like 10-type census.

    The trace does not publish hardware specs (Section III-C), so idle draw
    scales with machine capacity around a 60-260 W range and the same linear
    form as Table II is used.
    """
    models = []
    for machine in machine_types:
        size = 0.5 * (machine.cpu_capacity + machine.memory_capacity)
        idle = 50.0 + 210.0 * size
        dynamic = idle * 0.9
        models.append(
            MachineModel(
                name=machine.name or f"platform-{machine.platform_id}",
                platform_id=machine.platform_id,
                cpu_capacity=machine.cpu_capacity,
                memory_capacity=machine.memory_capacity,
                count=machine.count,
                power_model=LinearPowerModel(
                    idle_watts=idle,
                    alpha_watts=(
                        dynamic * _CPU_DYNAMIC_SHARE,
                        dynamic * (1.0 - _CPU_DYNAMIC_SHARE),
                    ),
                ),
                switch_cost=0.01 + 0.03 * size,
                boot_seconds=120.0,
            )
        )
    return tuple(models)


def models_for_machine_types(
    machine_types: tuple[MachineType, ...],
    models: tuple[MachineModel, ...] | None = None,
) -> dict[int, MachineModel]:
    """Map platform_id -> MachineModel for a census.

    When ``models`` is given, platform ids must match; otherwise Google-like
    defaults are synthesized.
    """
    if models is None:
        models = google_like_energy_models(machine_types)
    by_platform = {m.platform_id: m for m in models}
    missing = [mt.platform_id for mt in machine_types if mt.platform_id not in by_platform]
    if missing:
        raise KeyError(f"no energy model for platform ids {missing}")
    return {mt.platform_id: by_platform[mt.platform_id] for mt in machine_types}
