"""Energy and cost accounting over a simulation run.

The :class:`EnergyMeter` accumulates Eq. 7 over control intervals: for each
machine type it takes the active count and mean utilization, evaluates the
linear power model, and integrates kWh and dollar cost at the prevailing
price.  Switching events add their q_m cost (Eq. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.energy.models import MachineModel
from repro.energy.prices import PriceSchedule


@dataclass(frozen=True)
class EnergyRecord:
    """Energy/cost totals for one interval of one machine type."""

    time: float
    platform_id: int
    active_machines: int
    cpu_utilization: float
    memory_utilization: float
    energy_kwh: float
    energy_cost: float
    switch_cost: float


@dataclass
class EnergyMeter:
    """Accumulates energy, energy cost and switching cost over a run."""

    models: dict[int, MachineModel]
    price: PriceSchedule
    records: list[EnergyRecord] = field(default_factory=list)
    total_kwh: float = 0.0
    total_energy_cost: float = 0.0
    total_switch_cost: float = 0.0
    switch_events: int = 0

    def record_interval(
        self,
        time: float,
        seconds: float,
        platform_id: int,
        active_machines: int,
        cpu_utilization: float,
        memory_utilization: float,
        switches: int = 0,
    ) -> EnergyRecord:
        """Account one machine type over one interval.

        Utilizations are the mean over *active* machines of that type; the
        idle component is drawn by every active machine regardless.
        """
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        if active_machines < 0:
            raise ValueError(f"active_machines must be >= 0, got {active_machines}")
        if switches < 0:
            raise ValueError(f"switches must be >= 0, got {switches}")
        model = self.models[platform_id]
        cpu_utilization = min(max(cpu_utilization, 0.0), 1.0)
        memory_utilization = min(max(memory_utilization, 0.0), 1.0)
        kwh = active_machines * model.power_model.energy_kwh(
            (cpu_utilization, memory_utilization), seconds
        )
        cost = kwh * self.price(time)
        switch_cost = switches * model.switch_cost
        record = EnergyRecord(
            time=time,
            platform_id=platform_id,
            active_machines=active_machines,
            cpu_utilization=cpu_utilization,
            memory_utilization=memory_utilization,
            energy_kwh=kwh,
            energy_cost=cost,
            switch_cost=switch_cost,
        )
        self.records.append(record)
        self.total_kwh += kwh
        self.total_energy_cost += cost
        self.total_switch_cost += switch_cost
        self.switch_events += switches
        return record

    @property
    def total_cost(self) -> float:
        """Energy plus switching cost."""
        return self.total_energy_cost + self.total_switch_cost

    def kwh_by_platform(self) -> dict[int, float]:
        """Total kWh per machine type."""
        result: dict[int, float] = {}
        for record in self.records:
            result[record.platform_id] = (
                result.get(record.platform_id, 0.0) + record.energy_kwh
            )
        return result

    def timeline(self) -> list[tuple[float, float]]:
        """(time, total kWh in that interval) pairs, aggregated over types."""
        by_time: dict[float, float] = {}
        for record in self.records:
            by_time[record.time] = by_time.get(record.time, 0.0) + record.energy_kwh
        return sorted(by_time.items())
