"""Electricity price schedules (the ``p_t`` of Eqs. 7 and 14).

HARMONY's formulation is price-aware: the controller weighs energy against
utility at the *current* price, so time-varying prices shift provisioning
toward cheap hours.  Three schedules are provided: constant, time-of-use,
and a seeded mean-reverting spot series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

PriceFn = Callable[[float], float]


@dataclass(frozen=True)
class PriceSchedule:
    """A price curve ``$ / kWh`` as a function of time (seconds)."""

    fn: PriceFn
    name: str = "custom"

    def __call__(self, t: float) -> float:
        price = float(self.fn(t))
        if price < 0:
            raise ValueError(f"price schedule {self.name!r} returned negative price {price}")
        return price

    def series(self, horizon: float, interval: float) -> np.ndarray:
        """Prices sampled at interval starts over ``[0, horizon)``."""
        if interval <= 0 or horizon <= 0:
            raise ValueError("horizon and interval must be positive")
        times = np.arange(0.0, horizon, interval)
        return np.array([self(t) for t in times])


def constant_price(price: float = 0.10) -> PriceSchedule:
    """Flat $/kWh price."""
    if price < 0:
        raise ValueError(f"price must be >= 0, got {price}")
    return PriceSchedule(fn=lambda t: price, name=f"constant({price})")


def time_of_use_price(
    off_peak: float = 0.07,
    mid_peak: float = 0.11,
    on_peak: float = 0.15,
) -> PriceSchedule:
    """A utility-style time-of-use tariff.

    Off-peak 19:00-07:00, on-peak 11:00-17:00, mid-peak otherwise.
    """

    def fn(t: float) -> float:
        hour = (t / 3600.0) % 24.0
        if hour < 7.0 or hour >= 19.0:
            return off_peak
        if 11.0 <= hour < 17.0:
            return on_peak
        return mid_peak

    return PriceSchedule(fn=fn, name="time_of_use")


def spot_price_series(
    horizon: float,
    interval: float,
    base: float = 0.10,
    volatility: float = 0.015,
    mean_reversion: float = 0.2,
    seed: int = 0,
) -> PriceSchedule:
    """A seeded Ornstein-Uhlenbeck-style spot market price.

    The series is pre-sampled per interval and held piecewise-constant, so
    repeated evaluations are consistent within a control period.
    """
    if horizon <= 0 or interval <= 0:
        raise ValueError("horizon and interval must be positive")
    rng = np.random.default_rng(seed)
    steps = int(np.ceil(horizon / interval)) + 1
    prices = np.empty(steps)
    prices[0] = base
    for i in range(1, steps):
        drift = mean_reversion * (base - prices[i - 1])
        prices[i] = max(prices[i - 1] + drift + rng.normal(0.0, volatility), 0.01)

    def fn(t: float) -> float:
        idx = min(int(t // interval), steps - 1)
        return float(prices[idx])

    return PriceSchedule(fn=fn, name="spot")
