"""Container sizing and the container manager (Sections IV, VI, VII-A).

A *container* is a logical reservation of resources for one task of a given
class.  Sizing uses statistical multiplexing over the class's Gaussian
demand model (Eq. 3); counting inverts the M/G/N delay model so each class
meets its scheduling-delay SLO.
"""

from repro.containers.sizing import (
    ContainerSpec,
    gaussian_container_size,
    multiplexed_container_size,
    hoeffding_container_size,
    per_resource_epsilon,
    z_quantile,
    size_container_for_class,
)
from repro.containers.manager import (
    ContainerManager,
    ContainerManagerConfig,
    ContainerPlan,
)

__all__ = [
    "ContainerSpec",
    "gaussian_container_size",
    "multiplexed_container_size",
    "hoeffding_container_size",
    "per_resource_epsilon",
    "z_quantile",
    "size_container_for_class",
    "ContainerManager",
    "ContainerManagerConfig",
    "ContainerPlan",
]
