"""The container manager (Sections IV and VI).

Bridges prediction and provisioning: given per-class arrival-rate forecasts,
it computes how many containers of each type are required so the class's
M/G/N scheduling delay stays at its SLO, and sizes each container by
statistical multiplexing (Eq. 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.classification.classifier import TaskClass, TaskClassifier
from repro.containers.sizing import ContainerSpec, size_container_for_class
from repro.queueing.mgn import required_containers
from repro.trace.schema import PriorityGroup


def default_delay_slos() -> dict[PriorityGroup, float]:
    """Target mean scheduling delays (seconds) per priority group.

    Production tasks expect near-immediate scheduling (Section III-B: >50%
    scheduled immediately); gratis tasks tolerate minutes of delay.
    """
    return {
        PriorityGroup.PRODUCTION: 30.0,
        PriorityGroup.OTHER: 120.0,
        PriorityGroup.GRATIS: 600.0,
    }


@dataclass(frozen=True)
class ContainerManagerConfig:
    """Knobs for the container manager.

    Attributes
    ----------
    epsilon:
        Machine-capacity violation bound for container sizing (Eq. 3).
    delay_slos:
        Target mean scheduling delay per priority group.
    sizing_method:
        "multiplexed" (default, Eq. 3 with the sqrt(G) co-location gain),
        "gaussian" (the paper's per-task mu + Z sigma) or "hoeffding"
        (distribution-free extension).
    min_containers:
        Floor on container count for a class with any forecast demand, so a
        class never loses all capacity between bursts.
    """

    #: Eq. 3 violation bound.  The paper targets 5% for container-blind
    #: packing; a scheduler that places tasks at their true sizes (this
    #: simulator, and any real scheduler with accurate requests) only needs
    #: the container reservation to cover the *mean* plus modest slack, so
    #: the default is looser — tighten it when containers are the literal
    #: placement unit.
    epsilon: float = 0.4
    delay_slos: dict[PriorityGroup, float] = field(default_factory=default_delay_slos)
    sizing_method: str = "multiplexed"
    min_containers: int = 1
    #: The per-class delay target is max(group floor, factor * mean
    #: duration): a bounded-slowdown SLO.  Demanding a 30 s wait for a task
    #: class whose members run for half a day forces square-root staffing
    #: (tens of idle spare containers per class) for no practical benefit;
    #: the paper's SLO is "desired scheduling delay ... for each type of
    #: tasks", which this realizes per class.
    relative_slo_factor: float = 0.05
    #: Distinct machine capacities per resource ((cpu...), (memory...)).
    #: When set, a container whose *mean* fits below a capacity boundary is
    #: never padded across it: crossing the boundary would exclude an
    #: entire machine platform that the class's typical task can use,
    #: which costs far more capacity than the padding protects.
    capacity_ladders: tuple[tuple[float, ...], tuple[float, ...]] | None = None

    def __post_init__(self) -> None:
        if not 0 < self.epsilon < 1:
            raise ValueError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if self.min_containers < 0:
            raise ValueError(f"min_containers must be >= 0, got {self.min_containers}")
        if self.relative_slo_factor < 0:
            raise ValueError(
                f"relative_slo_factor must be >= 0, got {self.relative_slo_factor}"
            )
        for group, slo in self.delay_slos.items():
            if slo <= 0:
                raise ValueError(f"delay SLO for {group.name} must be positive, got {slo}")


@dataclass(frozen=True)
class ContainerPlan:
    """Output of one planning round: sized specs and per-class counts."""

    specs: dict[int, ContainerSpec]
    counts: dict[int, int]

    def count(self, class_id: int) -> int:
        return self.counts.get(class_id, 0)

    def total_containers(self) -> int:
        return sum(self.counts.values())

    def total_demand(self) -> tuple[float, float]:
        """Aggregate (cpu, memory) reserved by the plan."""
        cpu = sum(self.specs[c].cpu * n for c, n in self.counts.items())
        memory = sum(self.specs[c].memory * n for c, n in self.counts.items())
        return cpu, memory

    def by_group(self) -> dict[PriorityGroup, int]:
        """Container counts aggregated per priority group (Fig. 20)."""
        result = {group: 0 for group in PriorityGroup}
        for class_id, count in self.counts.items():
            result[self.specs[class_id].task_class.group] += count
        return result


class ContainerManager:
    """Computes per-class container requirements from arrival forecasts."""

    def __init__(
        self,
        classifier: TaskClassifier,
        config: ContainerManagerConfig | None = None,
    ) -> None:
        self.classifier = classifier
        self.config = config or ContainerManagerConfig()
        self._specs: dict[int, ContainerSpec] = {
            leaf.class_id: self._snap_to_ladders(
                size_container_for_class(
                    leaf,
                    epsilon=self.config.epsilon,
                    method=self.config.sizing_method,
                )
            )
            for leaf in classifier.classes
        }

    def _snap_to_ladders(self, spec: ContainerSpec) -> ContainerSpec:
        """Keep the sizing pad from crossing machine-capacity boundaries."""
        ladders = self.config.capacity_ladders
        if ladders is None:
            return spec
        from dataclasses import replace

        def snap(mean: float, size: float, caps: tuple[float, ...]) -> float:
            for cap in sorted(caps):
                if mean <= cap < size:
                    return cap
            return size

        return replace(
            spec,
            cpu=snap(spec.task_class.cpu_mean, spec.cpu, ladders[0]),
            memory=snap(spec.task_class.memory_mean, spec.memory, ladders[1]),
        )

    @property
    def specs(self) -> dict[int, ContainerSpec]:
        """Sized container spec per task class (stable across rounds)."""
        return dict(self._specs)

    def spec(self, class_id: int) -> ContainerSpec:
        return self._specs[class_id]

    def slo_for(self, task_class: TaskClass) -> float:
        """Scheduling-delay target for a class.

        The group SLO acts as a floor; long-duration classes get a
        proportionally relaxed target (bounded slowdown).
        """
        floor = self.config.delay_slos[task_class.group]
        return max(floor, self.config.relative_slo_factor * task_class.duration_mean)

    def containers_for_class(self, task_class: TaskClass, arrival_rate: float) -> int:
        """Containers needed so the class's M/G/N delay meets its SLO (Eq. 1)."""
        if arrival_rate < 0:
            raise ValueError(f"arrival_rate must be >= 0, got {arrival_rate}")
        if arrival_rate == 0:
            return 0
        needed = required_containers(
            arrival_rate=arrival_rate,
            service_rate=task_class.service_rate,
            target_delay=self.slo_for(task_class),
            scv=task_class.duration_scv,
        )
        return max(needed, self.config.min_containers)

    def erlang_headroom(self, task_class: TaskClass, arrival_rate: float) -> int:
        """Free-container slack above mean occupancy that meets the SLO.

        ``N_mgn - floor(a)`` where ``N_mgn`` inverts Eq. 1 and ``a`` is the
        offered load: the queueing-theoretic number of *spare* containers
        needed so arrivals rarely wait.
        """
        if arrival_rate <= 0:
            return 0
        n_mgn = self.containers_for_class(task_class, arrival_rate)
        offered = arrival_rate / task_class.service_rate
        return max(n_mgn - math.floor(offered), 1)

    def transient_demand(
        self,
        task_class: TaskClass,
        arrival_rate: float,
        occupancy: int,
        step: int,
        interval_seconds: float,
    ) -> int:
        """Containers needed at horizon step ``step`` given current occupancy.

        Eq. 1-2 are steady-state; a cluster that starts empty (the paper's
        "we mainly focus on simulating the arrival of new tasks") reaches
        steady state only after ~1/mu seconds, which for long task classes
        exceeds any control horizon.  We therefore project occupancy with
        the M/G/infinity transient

            E[occ(t + k*Delta)] = occ(t) e^{-mu k Delta}
                                   + a (1 - e^{-mu k Delta})

        (exponential relaxation toward the offered load ``a``) and add the
        Erlang slack from Eq. 1.  For short classes (mu*Delta >> 1) this
        reduces exactly to the paper's steady-state count; for long classes
        it tracks arrivals without provisioning the full steady state up
        front.
        """
        if arrival_rate < 0:
            raise ValueError(f"arrival_rate must be >= 0, got {arrival_rate}")
        if occupancy < 0:
            raise ValueError(f"occupancy must be >= 0, got {occupancy}")
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        if interval_seconds <= 0:
            raise ValueError(f"interval_seconds must be positive, got {interval_seconds}")
        mu = task_class.service_rate
        offered = arrival_rate / mu
        # Containers must cover the *maximum* occupancy across step k, not
        # a single instant: the start value keeps the current stock (and
        # backlog) placeable, the end value covers arrivals landing during
        # the interval (for long classes that is the lambda*Delta growth
        # that would otherwise exhaust the quota).  The relaxation is
        # monotone, so the max is attained at an endpoint.
        decay_start = math.exp(-mu * step * interval_seconds)
        decay_end = math.exp(-mu * (step + 1) * interval_seconds)
        projected = max(
            occupancy * decay_start + offered * (1.0 - decay_start),
            occupancy * decay_end + offered * (1.0 - decay_end),
        )
        demand = math.ceil(projected - 1e-9) + self.erlang_headroom(task_class, arrival_rate)
        if demand == 0 and occupancy > 0:
            demand = occupancy
        return max(demand, self.config.min_containers if (arrival_rate > 0 or occupancy > 0) else 0)

    def plan(self, arrival_rates: dict[int, float]) -> ContainerPlan:
        """One planning round over per-class arrival-rate forecasts.

        Classes absent from ``arrival_rates`` get zero containers.
        """
        counts: dict[int, int] = {}
        for class_id, rate in arrival_rates.items():
            task_class = self._specs[class_id].task_class
            counts[class_id] = self.containers_for_class(task_class, rate)
        return ContainerPlan(specs=self.specs, counts=counts)
