"""Statistical-multiplexing container sizing (Section VII-A).

K-means models each task class as a Gaussian cloud, so class-n demand for
resource r is ``N(mu_nr, sigma_nr^2)``.  Given a machine-level violation
bound ``eps``, the joint bound is split into per-resource bounds ``eps_r``
and the container size set to

    c_nr = mu_nr + Z_{eps_r} * sigma_nr                    (Eq. 3)

where ``Z_q`` is the (1-q)-percentile of the unit normal.  Any group of
containers that fits a machine by size then overflows the machine's true
capacity with probability at most ``eps``.

The paper notes the same construction works for non-Gaussian demand through
concentration bounds; :func:`hoeffding_container_size` implements that
extension for bounded demand.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats

from repro.classification.classifier import TaskClass
from repro.errors import ContainerSizingError


def _check_moments(mean: float, std: float) -> None:
    """Reject degenerate Gaussian moments before they reach Eq. 3.

    NaN/Inf moments (a poisoned class from a dirty trace) would otherwise
    propagate silently into container sizes; negative ones are caller bugs.
    Both raise :class:`repro.errors.ContainerSizingError` (also a
    ``ValueError``) so the degradation ladder can classify the failure.
    ``std == 0`` is *valid*: Eq. 3 degenerates to mean-sized containers.
    """
    if not (math.isfinite(mean) and math.isfinite(std)):
        raise ContainerSizingError(
            f"non-finite moments: mean={mean}, std={std}", mean=mean, std=std
        )
    if mean < 0 or std < 0:
        raise ContainerSizingError(
            f"mean and std must be >= 0, got mean={mean}, std={std}",
            mean=mean,
            std=std,
        )


def z_quantile(epsilon: float) -> float:
    """The ``(1 - epsilon)``-percentile of the unit normal distribution."""
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    return float(stats.norm.ppf(1.0 - epsilon))


def per_resource_epsilon(epsilon: float, num_resources: int) -> float:
    """Split a joint violation bound across independent resources.

    Choosing ``eps_r`` with ``(1 - eps) = (1 - eps_r)^D`` makes the joint
    no-violation probability at least ``1 - eps`` when resources violate
    independently; it is also a union-bound-safe choice.
    """
    if num_resources < 1:
        raise ValueError(f"num_resources must be >= 1, got {num_resources}")
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    return 1.0 - (1.0 - epsilon) ** (1.0 / num_resources)


def gaussian_container_size(
    mean: float,
    std: float,
    epsilon: float,
    cap: float = 1.0,
    floor: float = 1e-4,
) -> float:
    """Eq. 3: ``c = mu + Z_eps * sigma``, clipped to ``[floor, cap]``."""
    _check_moments(mean, std)
    size = mean + z_quantile(epsilon) * std
    return float(min(max(size, mean, floor), cap))


def multiplexed_container_size(
    mean: float,
    std: float,
    epsilon: float,
    group_size: int,
    cap: float = 1.0,
    floor: float = 1e-4,
) -> float:
    """Eq. 3 with the multiplexing gain actually exploited.

    Inequality (3) only requires the *aggregate* slack on a machine to be
    ``Z * sqrt(sum sigma_i^2)``.  For a group of ``G`` same-class
    containers that is ``Z * sqrt(G) * sigma`` total, i.e. a per-container
    pad of ``Z * sigma / sqrt(G)`` — a factor ``sqrt(G)`` tighter than the
    per-task ``c = mu + Z sigma`` choice, which pads ``Z * G * sigma``.
    Both satisfy (3); this one converges to mean-sized containers as the
    multiplexing group grows, which is what makes dense packing of small
    tasks energy-competitive.
    """
    _check_moments(mean, std)
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    size = mean + z_quantile(epsilon) * std / math.sqrt(group_size)
    return float(min(max(size, mean, floor), cap))


def hoeffding_container_size(
    mean: float,
    lower: float,
    upper: float,
    epsilon: float,
    group_size: int,
    cap: float = 1.0,
) -> float:
    """Distribution-free sizing for bounded demand (paper's closing remark).

    For ``G`` independent tasks with demand in ``[lower, upper]``, Hoeffding
    gives ``P(sum s_i - sum mu_i > t) <= exp(-2 t^2 / (G (upper-lower)^2))``;
    splitting ``t`` evenly across the group yields per-task padding
    ``(upper - lower) * sqrt(ln(1/eps) / (2 G))``.
    """
    if not all(math.isfinite(v) for v in (mean, lower, upper)):
        raise ContainerSizingError(
            f"non-finite bounds: mean={mean}, lower={lower}, upper={upper}",
            mean=mean,
            lower=lower,
            upper=upper,
        )
    if upper < lower:
        raise ValueError(f"upper must be >= lower, got [{lower}, {upper}]")
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    padding = (upper - lower) * math.sqrt(math.log(1.0 / epsilon) / (2.0 * group_size))
    return float(min(max(mean + padding, mean), cap))


@dataclass(frozen=True)
class ContainerSpec:
    """A sized container type: the provisioning unit for one task class."""

    task_class: TaskClass
    cpu: float
    memory: float

    def __post_init__(self) -> None:
        if not 0 < self.cpu <= 1:
            raise ValueError(f"container cpu must be in (0, 1], got {self.cpu}")
        if not 0 < self.memory <= 1:
            raise ValueError(f"container memory must be in (0, 1], got {self.memory}")

    @property
    def class_id(self) -> int:
        return self.task_class.class_id

    @property
    def demand(self) -> tuple[float, float]:
        return (self.cpu, self.memory)

    @property
    def overhead_ratio(self) -> float:
        """Sized CPU relative to mean demand — the multiplexing headroom."""
        if self.task_class.cpu_mean <= 0:
            return 1.0
        return self.cpu / self.task_class.cpu_mean


#: Reference machine capacity used to estimate the per-machine multiplexing
#: group size (the HP DL385's normalized CPU).
_REFERENCE_CAPACITY = 0.5


def _group_size(mean: float, reference: float = _REFERENCE_CAPACITY) -> int:
    """Expected same-class co-location count on a reference machine."""
    if mean <= 0:
        return 64
    return int(min(max(reference / mean, 1.0), 64.0))


def size_container_for_class(
    task_class: TaskClass,
    epsilon: float = 0.05,
    num_resources: int = 2,
    method: str = "multiplexed",
) -> ContainerSpec:
    """Size one class's container by Eq. 3 (or a variant).

    Methods: "multiplexed" (default — Eq. 3 with the sqrt(G) multiplexing
    gain), "gaussian" (per-task mu + Z sigma, conservative), "hoeffding"
    (distribution-free).
    """
    eps_r = per_resource_epsilon(epsilon, num_resources)
    if method == "multiplexed":
        cpu = multiplexed_container_size(
            task_class.cpu_mean, task_class.cpu_std, eps_r,
            group_size=_group_size(task_class.cpu_mean),
        )
        memory = multiplexed_container_size(
            task_class.memory_mean, task_class.memory_std, eps_r,
            group_size=_group_size(task_class.memory_mean),
        )
    elif method == "gaussian":
        cpu = gaussian_container_size(task_class.cpu_mean, task_class.cpu_std, eps_r)
        memory = gaussian_container_size(
            task_class.memory_mean, task_class.memory_std, eps_r
        )
    elif method == "hoeffding":
        # Conservative bounded-support assumption: demand within mean +/- 3 std.
        group = max(task_class.num_tasks, 1)
        cpu = hoeffding_container_size(
            task_class.cpu_mean,
            max(task_class.cpu_mean - 3 * task_class.cpu_std, 0.0),
            min(task_class.cpu_mean + 3 * task_class.cpu_std, 1.0),
            eps_r,
            group_size=min(group, 64),
        )
        memory = hoeffding_container_size(
            task_class.memory_mean,
            max(task_class.memory_mean - 3 * task_class.memory_std, 0.0),
            min(task_class.memory_mean + 3 * task_class.memory_std, 1.0),
            eps_r,
            group_size=min(group, 64),
        )
    else:
        raise ValueError(f"unknown sizing method {method!r}")
    cpu = max(cpu, 1e-4)
    memory = max(memory, 1e-4)
    return ContainerSpec(task_class=task_class, cpu=cpu, memory=memory)
