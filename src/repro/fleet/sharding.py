"""Deterministic cluster partitioning and task routing for fleet runs.

The fleet model is *defined* as a cell-partitioned simulation: the machine
census splits into disjoint machine-type cells, and every task is routed
to exactly one cell by a pure function of ``(route_seed, job_id)`` and the
task's placement feasibility.  Because both the partition and the routing
depend only on picklable inputs — never on execution order, worker count
or timing — every shard's sub-trace is reproducible in isolation, which is
what lets a SIGKILLed shard worker retry from scratch to the same digest.

Routing keeps jobs intact (all tasks of a job share size and constraints,
hence eligibility, hence the hash draw) and weights eligible cells by the
CPU capacity that can actually host the task, so load lands roughly where
an unsharded scheduler could have placed it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.trace.schema import MachineType, Task


@dataclass(frozen=True)
class ShardCell:
    """One disjoint slice of the machine census."""

    index: int
    machine_types: tuple[MachineType, ...]

    @property
    def platforms(self) -> tuple[int, ...]:
        return tuple(m.platform_id for m in self.machine_types)

    @property
    def machines(self) -> int:
        return sum(m.count for m in self.machine_types)

    @property
    def cpu_capacity(self) -> float:
        return sum(m.cpu_capacity * m.count for m in self.machine_types)


def max_shards(census: tuple[MachineType, ...]) -> int:
    """Cells are machine-type-granular, so at most one per platform type."""
    return len(census)


def partition_census(
    census: tuple[MachineType, ...], shards: int
) -> tuple[ShardCell, ...]:
    """Split the census into ``shards`` disjoint, capacity-balanced cells.

    Greedy longest-processing-time assignment on total CPU capacity:
    platform types are placed heaviest-first onto the currently lightest
    cell.  All ties break on (platform id, cell index), so the partition
    is a pure function of (census, shards).
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if shards > len(census):
        raise ValueError(
            f"shards must be <= the {len(census)} machine-type cells, got {shards}"
        )
    ordered = sorted(
        census,
        key=lambda m: (-m.cpu_capacity * m.count, m.platform_id),
    )
    loads = [0.0] * shards
    members: list[list[MachineType]] = [[] for _ in range(shards)]
    for machine in ordered:
        lightest = min(range(shards), key=lambda i: (loads[i], i))
        members[lightest].append(machine)
        loads[lightest] += machine.cpu_capacity * machine.count
    return tuple(
        ShardCell(
            index=i,
            machine_types=tuple(
                sorted(members[i], key=lambda m: m.platform_id)
            ),
        )
        for i in range(shards)
    )


def _route_fraction(route_seed: int, job_id: int) -> float:
    """Uniform [0, 1) draw from SHA-256 — no RNG state, order-free."""
    digest = hashlib.sha256(f"{route_seed}:{job_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class TaskRouter:
    """Routes tasks to cells; memoizes eligibility per job signature.

    Eligibility and weights depend only on the task's ``(cpu, memory,
    allowed_platforms)`` signature — shared by all tasks of a job — so the
    per-signature cell weights are computed once.  A task no cell can host
    falls back to the highest-capacity cell, where it goes unscheduled
    exactly as it would have fleet-wide.
    """

    def __init__(self, cells: tuple[ShardCell, ...], route_seed: int = 0) -> None:
        self.cells = cells
        self.route_seed = route_seed
        self._fallback = max(
            range(len(cells)), key=lambda i: (cells[i].cpu_capacity, -i)
        )
        self._weights: dict[tuple, tuple[float, ...]] = {}

    def _cell_weights(self, task: Task) -> tuple[float, ...]:
        key = (task.cpu, task.memory, task.allowed_platforms)
        cached = self._weights.get(key)
        if cached is None:
            cached = tuple(
                sum(
                    m.cpu_capacity * m.count
                    for m in cell.machine_types
                    if task.fits_on(m)
                )
                for cell in self.cells
            )
            self._weights[key] = cached
        return cached

    def route(self, task: Task) -> int:
        """The cell index this task belongs to."""
        if len(self.cells) == 1:
            return 0
        weights = self._cell_weights(task)
        total = sum(weights)
        if total <= 0:
            return self._fallback
        threshold = _route_fraction(self.route_seed, task.job_id) * total
        cumulative = 0.0
        for index, weight in enumerate(weights):
            cumulative += weight
            if threshold < cumulative:
                return index
        return len(self.cells) - 1
