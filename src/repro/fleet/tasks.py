"""The ``fleet_shard`` runner task: one cell's streaming replay.

A shard worker never materializes the fleet-wide trace.  It re-generates
the calibrated task stream from the coordinator's :class:`TracePlan`
(one constant-memory emission pass), keeps only the tasks the
deterministic router assigns to its cell, and replays them on the cell's
machine types with the columnar engine.  Everything the worker does is a
pure function of its picklable params, so a retried or resumed shard
reproduces its summary digest bit for bit.

Crash safety rides on two journals: the supervisor's suite journal (which
records *completed* shards for ``--resume``) and a per-shard progress
journal written here through the digest-verified line machinery — a
heartbeat of periodic checkpoints that survives SIGKILL and lets the
chaos drill (and operators) see how far a dead worker got.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.runner.defaults import trace_config_from_params
from repro.runner.journal import JOURNAL_VERSION, write_journal_record
from repro.runner.rss import process_rss_mb
from repro.runner.scenario import register_task

from repro.fleet.sharding import TaskRouter, partition_census


def shard_progress_path(progress_dir: str | Path, suite: str, index: int) -> Path:
    """Where one shard's progress journal lives."""
    return Path(progress_dir) / f"SHARD_{suite}_{index:02d}.jsonl"


def _progress_record(kind: str, index: int, seen: int, kept: int) -> dict:
    return {
        "version": JOURNAL_VERSION,
        "kind": kind,
        "shard": index,
        "tasks_seen": seen,
        "tasks_kept": kept,
    }


@register_task("fleet_shard")
def fleet_shard_task(params: dict) -> dict:
    """Stream-route-replay one cell of a sharded fleet run.

    Params: ``trace`` (fleet-wide trace params), ``plan`` (the
    coordinator's serialized :class:`~repro.trace.generator.TracePlan`),
    ``shards`` / ``shard_index`` / ``route_seed`` (partition coordinates),
    ``policy`` / ``predictor`` / ``engine`` / ``guard`` /
    ``fault_scenario`` / ``fault_seed`` (simulation knobs), ``suite`` +
    ``progress_dir`` (per-shard journal location, optional) and
    ``memory_budget_mb`` (per-worker RSS ceiling, optional).
    """
    from repro.classification import ClassifierConfig, TaskClassifier
    from repro.energy.catalog import google_like_energy_models
    from repro.resilience.scenarios import build_scenario_plan
    from repro.simulation import HarmonyConfig, HarmonySimulation
    from repro.simulation.timing import PhaseTimer
    from repro.trace import Trace
    from repro.trace.generator import plan_from_params, stream_trace

    config = trace_config_from_params(params["trace"])
    plan = plan_from_params(params["plan"])
    shards = int(params["shards"])
    index = int(params["shard_index"])
    census = config.census()
    cells = partition_census(census, shards)
    cell = cells[index]
    router = TaskRouter(cells, route_seed=int(params.get("route_seed", 0)))

    progress_dir = params.get("progress_dir")
    progress_path = None
    if progress_dir is not None:
        progress_path = shard_progress_path(
            progress_dir, str(params.get("suite", "fleet")), index
        )
        # A fresh attempt restarts the stream from scratch; stale
        # checkpoints from a killed attempt would read as progress.
        progress_path.unlink(missing_ok=True)
    progress_every = int(params.get("progress_every", 200_000))
    budget_mb = params.get("memory_budget_mb")

    timer = PhaseTimer()
    kept: list = []
    seen = 0
    group_tasks = {"gratis": 0, "other": 0, "production": 0}
    with timer.phase("stream"):
        for task in stream_trace(config, plan=plan):
            seen += 1
            if router.route(task) == index:
                kept.append(task)
                group_tasks[task.priority_group.name.lower()] += 1
            if seen % progress_every == 0:
                if progress_path is not None:
                    write_journal_record(
                        progress_path,
                        _progress_record("fleet_progress", index, seen, len(kept)),
                    )
                if budget_mb is not None:
                    rss = process_rss_mb(os.getpid())
                    if rss is not None and rss > float(budget_mb):
                        raise MemoryError(
                            f"shard {index} exceeded its memory budget: "
                            f"{rss:.0f} MiB resident > {float(budget_mb):.0f} MiB"
                        )

    horizon_s = config.horizon_hours * 3600.0
    trace = Trace(
        machine_types=cell.machine_types,
        tasks=tuple(kept),
        horizon=horizon_s,
        metadata={
            "generator": "repro.fleet",
            "seed": config.seed,
            "shard": index,
            "shards": shards,
        },
    )
    del kept

    with timer.phase("classify"):
        classifier = TaskClassifier(ClassifierConfig(seed=config.seed)).fit(
            list(trace.tasks)
        )

    config_kwargs: dict = {
        "policy": params.get("policy", "cbs"),
        "predictor": params.get("predictor", "ewma"),
        "engine": params.get("engine", "columnar"),
        "guard": bool(params.get("guard", False)),
        "fleet": google_like_energy_models(cell.machine_types),
    }
    scenario = params.get("fault_scenario")
    if scenario is not None:
        # Offset the fault seed per shard so correlated faults do not hit
        # every cell with the same draw — still a pure function of params.
        config_kwargs["fault_plan"] = build_scenario_plan(
            scenario, horizon_s, seed=int(params.get("fault_seed", 0)) + index
        )

    result = HarmonySimulation(
        HarmonyConfig(**config_kwargs), trace, classifier=classifier
    ).run()

    kept_count = trace.num_tasks
    summary = {
        "simulation": result.summary(),
        "shard": {
            "index": index,
            "shards": shards,
            "platforms": [int(p) for p in cell.platforms],
            "machines": int(cell.machines),
            "tasks_seen": seen,
            "tasks_routed": kept_count,
            "group_tasks": dict(group_tasks),
        },
    }
    if progress_path is not None:
        write_journal_record(
            progress_path,
            _progress_record("fleet_shard_done", index, seen, kept_count),
        )
    phases = dict(timer.timings)
    phases.update(dict(result.phase_timings))
    return {"summary": summary, "phases": phases}
