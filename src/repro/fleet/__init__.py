"""Sharded, crash-tolerant fleet simulation at Google-trace scale.

Partitions the machine census into disjoint machine-type cells
(:mod:`repro.fleet.sharding`), replays each cell in a supervised spawn
worker fed by the constant-memory streaming trace generator
(:mod:`repro.fleet.tasks`), and merges per-shard summaries into one
deterministic fleet digest (:mod:`repro.fleet.coordinator` +
:mod:`repro.simulation.merge`).  See ``docs/scaling.md`` for topology,
journal layout, resume and partial-merge semantics.
"""

from repro.fleet.coordinator import (
    FLEET_ENGINES,
    FleetConfig,
    FleetReport,
    fleet_baseline_payload,
    fleet_scenarios,
    merge_fleet_report,
    run_fleet,
    write_fleet_baseline,
)
from repro.fleet.sharding import (
    ShardCell,
    TaskRouter,
    max_shards,
    partition_census,
)
from repro.fleet.tasks import fleet_shard_task, shard_progress_path

__all__ = [
    "FLEET_ENGINES",
    "FleetConfig",
    "FleetReport",
    "ShardCell",
    "TaskRouter",
    "fleet_baseline_payload",
    "fleet_scenarios",
    "fleet_shard_task",
    "max_shards",
    "merge_fleet_report",
    "partition_census",
    "run_fleet",
    "shard_progress_path",
    "write_fleet_baseline",
]
