"""Fleet coordination: plan once, fan out shards, merge deterministically.

``run_fleet`` is the one-call entry point the CLI and benches use:

1. **Plan** — run the trace generator's calibration once, in constant
   memory (:func:`~repro.trace.generator.plan_trace`), and embed the
   serialized plan in every shard's params so workers pay a single
   emission pass instead of re-calibrating.
2. **Fan out** — one ``fleet_shard`` scenario per cell, executed by the
   plain runner (fast path) or the crash-safe supervisor (timeouts,
   deterministic-backoff retries, journaled ``--resume``, memory-ceiling
   backpressure).
3. **Merge** — fold per-shard summaries with
   :func:`~repro.simulation.merge.merge_shard_summaries` and bind the
   shard digests into one fleet digest.  Quarantined shards degrade the
   run to an explicitly marked partial merge instead of sinking it.

The merged digest is invariant across execution topology: serial,
parallel, supervised, killed-and-resumed and straggler-retried runs of
the same fleet params all produce the same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.runner.runner import RunnerReport, ScenarioRunner, summary_digest
from repro.runner.scenario import Scenario
from repro.runner.supervisor import ScenarioSupervisor, SupervisorConfig
from repro.simulation.merge import fleet_digest, merge_shard_summaries
from repro.trace.generator import TracePlan, plan_params, plan_trace

from repro.fleet.sharding import partition_census

#: Replay engines a fleet run accepts; "both" is a bench-pairing construct
#: (two scenarios per point) that has no meaning inside a single shard.
FLEET_ENGINES = ("object", "columnar")


@dataclass(frozen=True)
class FleetConfig:
    """Shape of one sharded fleet run (everything but the trace params)."""

    suite: str = "google_fleet"
    shards: int = 4
    policy: str = "cbs"
    engine: str = "columnar"
    predictor: str = "ewma"
    guard: bool = False
    fault_scenario: str | None = None
    fault_seed: int = 0
    route_seed: int = 0
    #: Streamed tasks between progress checkpoints / memory checks.
    progress_every: int = 200_000
    #: Per-worker RSS budget (MiB); a shard that exceeds it fails cleanly
    #: (and quarantines after retries) instead of OOM-killing the host.
    memory_budget_mb: float | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.engine not in FLEET_ENGINES:
            raise ValueError(
                f"fleet engine must be one of {FLEET_ENGINES}, got {self.engine!r}"
            )


def fleet_scenarios(
    trace_params: dict,
    config: FleetConfig,
    plan: TracePlan | None = None,
    progress_dir: str | Path | None = None,
) -> list[Scenario]:
    """One ``fleet_shard`` scenario per cell, with the plan embedded.

    Validates the shard count against the census (cells are machine-type
    granular) and runs the calibration plan if the caller has not already.
    Scenario params are pure JSON-native picklables, so journal resume's
    params-equality check holds across processes and reruns.
    """
    from repro.runner.defaults import trace_config_from_params

    trace_config = trace_config_from_params(trace_params)
    census = trace_config.census()
    # Raises with the cell bound in the message when shards > len(census).
    partition_census(census, config.shards)
    if plan is None:
        plan = plan_trace(trace_config)
    serialized_plan = plan_params(plan)

    scenarios = []
    for index in range(config.shards):
        params: dict = {
            "trace": dict(trace_params),
            "plan": serialized_plan,
            "shards": config.shards,
            "shard_index": index,
            "route_seed": config.route_seed,
            "policy": config.policy,
            "predictor": config.predictor,
            "engine": config.engine,
            "guard": config.guard,
            "fault_seed": config.fault_seed,
            "suite": config.suite,
            "progress_every": config.progress_every,
        }
        if config.fault_scenario is not None:
            params["fault_scenario"] = config.fault_scenario
        if progress_dir is not None:
            params["progress_dir"] = str(progress_dir)
        if config.memory_budget_mb is not None:
            params["memory_budget_mb"] = float(config.memory_budget_mb)
        scenarios.append(
            Scenario(
                name=f"fleet_shard_{index:02d}",
                task="fleet_shard",
                params=params,
            )
        )
    return scenarios


@dataclass(frozen=True)
class FleetReport:
    """A fleet run's outcome: the shard report plus the merged view."""

    suite: str
    shards: int
    report: RunnerReport
    #: Merged fleet summary (``None`` when every shard was lost).  On a
    #: partial merge, ``merged["shards"]["missing"]`` names the lost
    #: shard indices — the quarantine marker is *inside* the digested
    #: payload, so a partial digest can never impersonate a complete one.
    merged: dict | None
    #: Fleet digest over (merged summary, per-shard digests).
    digest: str | None
    #: True when at least one shard is missing from the merge.
    partial: bool
    missing: tuple[str, ...]


def merge_fleet_report(
    suite: str, shards: int, report: RunnerReport
) -> FleetReport:
    """Fold a shard-scenario :class:`RunnerReport` into a fleet view."""
    missing = tuple(f.name for f in report.quarantined)
    merged = None
    digest = None
    if report.results:
        merged = merge_shard_summaries([r.summary for r in report.results])
        merged["shards"]["missing"] = sorted(
            int(name.rsplit("_", 1)[1]) for name in missing
        )
        digest = fleet_digest(
            merged,
            {r.name: summary_digest(r.summary) for r in report.results},
        )
    return FleetReport(
        suite=suite,
        shards=shards,
        report=report,
        merged=merged,
        digest=digest,
        partial=bool(missing),
        missing=missing,
    )


def fleet_baseline_payload(
    fleet: FleetReport, trace_params: dict, config: FleetConfig
) -> dict:
    """The ``BENCH_google_fleet.json`` body: runner baseline + fleet block.

    The runner's :func:`~repro.runner.runner.baseline_payload` contributes
    wall times, per-shard phase timings and the peak-RSS high-water mark;
    the ``fleet`` block adds the merged digest, shard topology and
    partial-merge markers.
    """
    from repro.runner.runner import baseline_payload

    payload = baseline_payload(fleet.report)
    merged = fleet.merged
    payload["fleet"] = {
        "trace": dict(trace_params),
        "shards": fleet.shards,
        "policy": config.policy,
        "engine": config.engine,
        "predictor": config.predictor,
        "digest": fleet.digest,
        "partial": fleet.partial,
        "missing": merged["shards"]["missing"] if merged else sorted(
            int(name.rsplit("_", 1)[1]) for name in fleet.missing
        ),
    }
    if merged is not None:
        payload["fleet"]["machines"] = merged["shards"]["machines"]
        payload["fleet"]["tasks_submitted"] = merged["tasks_submitted"]
        payload["fleet"]["tasks_scheduled"] = merged["tasks_scheduled"]
        payload["fleet"]["energy_kwh"] = round(merged["energy_kwh"], 3)
    return payload


def write_fleet_baseline(
    fleet: FleetReport,
    trace_params: dict,
    config: FleetConfig,
    directory: str | Path = ".",
) -> Path:
    """Write ``BENCH_<suite>.json`` into ``directory`` and return the path."""
    import json

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{config.suite}.json"
    payload = fleet_baseline_payload(fleet, trace_params, config)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def run_fleet(
    trace_params: dict,
    config: FleetConfig,
    workers: int = 1,
    supervise: bool = False,
    resume: bool = False,
    journal_dir: str | Path | None = None,
    supervisor_config: SupervisorConfig | None = None,
    progress_dir: str | Path | None = None,
) -> FleetReport:
    """Plan, fan out and merge one sharded fleet run."""
    scenarios = fleet_scenarios(trace_params, config, progress_dir=progress_dir)
    if supervise or resume:
        supervisor = ScenarioSupervisor(
            suite=config.suite,
            config=supervisor_config,
            journal_dir=journal_dir,
        )
        report = supervisor.run(scenarios, workers=workers, resume=resume)
    else:
        report = ScenarioRunner(suite=config.suite).run(scenarios, workers=workers)
    return merge_fleet_report(config.suite, config.shards, report)
