"""Control-plane degradation ladder for the MPC path.

When CBS-RELAX (or anything else inside one control tick of Algorithm 1)
fails, the control plane must not take the simulation down with it — a
production provisioning loop degrades, it does not crash.  The ladder has
three rungs, tried in order every tick:

========  ===========  ====================================================
level     name         what decides
========  ===========  ====================================================
0         ``mpc``      the full relax-solve + rounding pipeline (Algorithm 1)
1         ``threshold``  a reactive :class:`ThresholdAutoscaler` over the
                       *observed* demand — no forecasts, no LP
2         ``hold``     the last-known-good decision, re-stamped (or "keep
                       current power" before any decision succeeded)
========  ===========  ====================================================

Every tick's rung is recorded as ``(time, level, reason)`` — copied onto
:attr:`SimulationMetrics.degradation_timeline` after the run and surfaced
in ``summary()["resilience"]["degradation"]`` — so a run that quietly
spent half its ticks on rung 1 is visible in every report.

The ladder is also *partition-tolerant*, not just solver-tolerant: when
the :class:`~repro.simulation.cluster.ClusterView` carries a fabric block
with unreachable cells, degradation happens **per cell** instead of
globally.  Healthy cells keep whatever rung the tick earned (usually the
full MPC path); each partitioned cell falls to rung 2 behaviour — its
machine target held at the last-known-good value — and on heal the cell is
reconciled deterministically back to the fresh decision, with the
|held - fresh| divergence recorded.

This ladder complements (and sits *inside*) the
:class:`~repro.resilience.guard.GuardedController`: the guard defends
against bad decisions and bad forecasts from outside the policy; the
ladder keeps the policy producing decisions at all when its solver fails.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable

from repro.provisioning.autoscaler import ThresholdAutoscaler
from repro.provisioning.controller import ProvisioningDecision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.cluster import ClusterView

#: Rung index -> name, in degradation order.
DEGRADATION_LEVELS = ("mpc", "threshold", "hold")


class DegradationLadder:
    """Steps a failing control tick down: mpc -> threshold -> hold."""

    def __init__(self, fallback: ThresholdAutoscaler) -> None:
        self.fallback = fallback
        #: (time, level, reason) per control tick; reason is "" at level 0
        #: with no fabric activity (partition holds and heals annotate it).
        self.timeline: list[tuple[float, int, str]] = []
        #: Cell id -> ticks its target was partition-held at rung 2.
        self.cell_hold_ticks: dict[int, int] = {}
        #: (time, {cell: rung name}) per tick on fabric-enabled runs —
        #: healthy cells show the tick's base rung, partitioned cells
        #: "hold"; the per-cell record the global timeline cannot express.
        self.cell_timeline: list[tuple[float, dict[int, str]]] = []
        #: Cells reconciled back to fresh control after a heal.
        self.reconciliations: int = 0
        #: Total |held - fresh| target divergence across reconciliations.
        self.reconciliation_divergence: int = 0
        self._last_good: ProvisioningDecision | None = None
        #: Cell id -> last target decided while the cell was reachable.
        self._held_targets: dict[int, int] = {}
        self._partitioned_prev: frozenset[int] = frozenset()

    @staticmethod
    def _reason(exc: BaseException) -> str:
        code = getattr(exc, "code", type(exc).__name__)
        return f"{code}: {exc}"

    def decide(
        self,
        view: "ClusterView",
        primary: Callable[[], ProvisioningDecision],
    ) -> ProvisioningDecision:
        """One tick: run ``primary``, stepping down the ladder on failure."""
        try:
            decision = primary()
            level, reason = 0, ""
        except Exception as exc:  # noqa: BLE001 — any solver-path failure
            decision, level, reason = self._degraded(view, self._reason(exc))
        fabric = getattr(view, "fabric", None)
        if fabric is not None:
            decision, level, reason = self._partition_overlay(
                view, decision, level, reason, fabric
            )
        self.timeline.append((view.time, level, reason))
        self._last_good = decision
        return decision

    def _degraded(
        self, view: "ClusterView", reason: str
    ) -> tuple[ProvisioningDecision, int, str]:
        try:
            decision = self.fallback.decide(
                view.time,
                view.demand_cpu,
                view.demand_memory,
                powered=view.powered,
                available=view.available,
            )
        except Exception as exc:  # noqa: BLE001 — rung 1 failed too
            return self._hold(view), 2, f"{reason}; then {self._reason(exc)}"
        return decision, 1, reason

    def _partition_overlay(
        self,
        view: "ClusterView",
        decision: ProvisioningDecision,
        level: int,
        reason: str,
        fabric,
    ) -> tuple[ProvisioningDecision, int, str]:
        """Per-cell partition tolerance over this tick's base decision.

        Unreachable cells get their machine target replaced by the
        last-known-good value (rung 2 behaviour, scoped to the cell);
        reachable cells keep the base decision untouched.  Cells that just
        healed are reconciled: the fresh decision wins, and the divergence
        the hold accumulated is recorded.  Deterministic by construction —
        everything derives from the view and prior decisions.
        """
        base_level = level
        unreachable = frozenset(fabric.unreachable)
        healed = self._partitioned_prev - unreachable
        if healed:
            self.reconciliations += len(healed)
            for cell in sorted(healed):
                fresh = int(decision.active.get(cell, 0))
                held = self._held_targets.get(cell, fresh)
                self.reconciliation_divergence += abs(fresh - held)
            note = f"heal: cells {sorted(healed)} reconciled"
            reason = f"{reason}; {note}" if reason else note
        self._partitioned_prev = unreachable
        if unreachable:
            active = dict(decision.active)
            for cell in sorted(unreachable):
                held = self._held_targets.get(cell)
                if held is None:
                    # Partitioned before any reachable decision: freeze
                    # the cell at its (stale-view) powered count.
                    held = int(view.powered.get(cell, 0))
                    self._held_targets[cell] = held
                active[cell] = held
                self.cell_hold_ticks[cell] = self.cell_hold_ticks.get(cell, 0) + 1
            decision = replace(decision, active=active)
            note = f"partition_hold: cells {sorted(unreachable)}"
            reason = f"{reason}; {note}" if reason else note
            level = max(level, 2)
        for cell in sorted(decision.active):
            if cell not in unreachable:
                self._held_targets[cell] = int(decision.active[cell])
        self.cell_timeline.append(
            (
                view.time,
                {
                    cell: (
                        "hold"
                        if cell in unreachable
                        else DEGRADATION_LEVELS[base_level]
                    )
                    for cell in sorted(view.available)
                },
            )
        )
        return decision, level, reason

    # ---------------------------------------------------- (de)serialization

    def to_state(self) -> dict:
        """Full behavior- and report-relevant state for serve checkpoints.

        Timelines are serialized without truncation: the serve summary
        derives rung counts from them, and a restored run's summary must
        be bit-identical to an uninterrupted one.
        """
        return {
            "timeline": [list(entry) for entry in self.timeline],
            "cell_hold_ticks": [
                [cell, self.cell_hold_ticks[cell]]
                for cell in sorted(self.cell_hold_ticks)
            ],
            "cell_timeline": [
                [time, [[cell, rung] for cell, rung in sorted(cells.items())]]
                for time, cells in self.cell_timeline
            ],
            "reconciliations": self.reconciliations,
            "reconciliation_divergence": self.reconciliation_divergence,
            "last_good": None
            if self._last_good is None
            else self._last_good.to_state(),
            "held_targets": [
                [cell, self._held_targets[cell]]
                for cell in sorted(self._held_targets)
            ],
            "partitioned_prev": sorted(self._partitioned_prev),
            "fallback": self.fallback.to_state(),
        }

    def restore_state(self, state: dict) -> None:
        self.timeline = [
            (float(t), int(level), str(reason)) for t, level, reason in state["timeline"]
        ]
        self.cell_hold_ticks = {int(c): int(n) for c, n in state["cell_hold_ticks"]}
        self.cell_timeline = [
            (float(t), {int(c): str(r) for c, r in cells})
            for t, cells in state["cell_timeline"]
        ]
        self.reconciliations = int(state["reconciliations"])
        self.reconciliation_divergence = int(state["reconciliation_divergence"])
        self._last_good = (
            None
            if state["last_good"] is None
            else ProvisioningDecision.from_state(state["last_good"])
        )
        self._held_targets = {int(c): int(n) for c, n in state["held_targets"]}
        self._partitioned_prev = frozenset(int(c) for c in state["partitioned_prev"])
        self.fallback.restore_state(state["fallback"])

    def _hold(self, view: "ClusterView") -> ProvisioningDecision:
        """Rung 2: re-stamp the last-known-good plan, or keep current power."""
        if self._last_good is not None:
            return replace(self._last_good, time=view.time)
        return ProvisioningDecision(
            time=view.time, active=dict(view.powered), quotas=None
        )
