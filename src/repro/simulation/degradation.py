"""Control-plane degradation ladder for the MPC path.

When CBS-RELAX (or anything else inside one control tick of Algorithm 1)
fails, the control plane must not take the simulation down with it — a
production provisioning loop degrades, it does not crash.  The ladder has
three rungs, tried in order every tick:

========  ===========  ====================================================
level     name         what decides
========  ===========  ====================================================
0         ``mpc``      the full relax-solve + rounding pipeline (Algorithm 1)
1         ``threshold``  a reactive :class:`ThresholdAutoscaler` over the
                       *observed* demand — no forecasts, no LP
2         ``hold``     the last-known-good decision, re-stamped (or "keep
                       current power" before any decision succeeded)
========  ===========  ====================================================

Every tick's rung is recorded as ``(time, level, reason)`` — copied onto
:attr:`SimulationMetrics.degradation_timeline` after the run and surfaced
in ``summary()["resilience"]["degradation"]`` — so a run that quietly
spent half its ticks on rung 1 is visible in every report.

This ladder complements (and sits *inside*) the
:class:`~repro.resilience.guard.GuardedController`: the guard defends
against bad decisions and bad forecasts from outside the policy; the
ladder keeps the policy producing decisions at all when its solver fails.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Callable

from repro.provisioning.autoscaler import ThresholdAutoscaler
from repro.provisioning.controller import ProvisioningDecision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.cluster import ClusterView

#: Rung index -> name, in degradation order.
DEGRADATION_LEVELS = ("mpc", "threshold", "hold")


class DegradationLadder:
    """Steps a failing control tick down: mpc -> threshold -> hold."""

    def __init__(self, fallback: ThresholdAutoscaler) -> None:
        self.fallback = fallback
        #: (time, level, reason) per control tick; reason is "" at level 0.
        self.timeline: list[tuple[float, int, str]] = []
        self._last_good: ProvisioningDecision | None = None

    @staticmethod
    def _reason(exc: BaseException) -> str:
        code = getattr(exc, "code", type(exc).__name__)
        return f"{code}: {exc}"

    def decide(
        self,
        view: "ClusterView",
        primary: Callable[[], ProvisioningDecision],
    ) -> ProvisioningDecision:
        """One tick: run ``primary``, stepping down the ladder on failure."""
        try:
            decision = primary()
        except Exception as exc:  # noqa: BLE001 — any solver-path failure
            decision = self._degraded(view, self._reason(exc))
        else:
            self.timeline.append((view.time, 0, ""))
        self._last_good = decision
        return decision

    def _degraded(self, view: "ClusterView", reason: str) -> ProvisioningDecision:
        try:
            decision = self.fallback.decide(
                view.time,
                view.demand_cpu,
                view.demand_memory,
                powered=view.powered,
                available=view.available,
            )
        except Exception as exc:  # noqa: BLE001 — rung 1 failed too
            self.timeline.append(
                (view.time, 2, f"{reason}; then {self._reason(exc)}")
            )
            return self._hold(view)
        self.timeline.append((view.time, 1, reason))
        return decision

    def _hold(self, view: "ClusterView") -> ProvisioningDecision:
        """Rung 2: re-stamp the last-known-good plan, or keep current power."""
        if self._last_good is not None:
            return replace(self._last_good, time=view.time)
        return ProvisioningDecision(
            time=view.time, active=dict(view.powered), quotas=None
        )
