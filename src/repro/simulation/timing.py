"""Lightweight named-phase wall-clock timing.

:class:`PhaseTimer` is the instrumentation seam between
:class:`~repro.simulation.harmony.HarmonySimulation` (which brackets its
pipeline stages — classifier fit, task preparation, policy construction,
the replay loop itself) and the scenario runner's perf baselines
(``BENCH_<name>.json``).  It is deliberately dumb: ``perf_counter`` deltas
accumulated per name, no nesting, no thread-safety — one timer per
simulation object.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Iterator


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase."""

    def __init__(self) -> None:
        self.timings: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with``-block under ``name`` (repeat names accumulate)."""
        start = perf_counter()
        try:
            yield
        finally:
            self.timings[name] = (
                self.timings.get(name, 0.0) + perf_counter() - start
            )

    def record(self, name: str, seconds: float) -> None:
        """Add an externally measured duration (e.g. from a worker)."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        self.timings[name] = self.timings.get(name, 0.0) + seconds

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy, ready for JSON reports."""
        return dict(self.timings)
