"""Discrete-event cluster simulator and the end-to-end HARMONY loop.

The paper's evaluation (Section IX) is simulation-based; this package
provides that simulator:

- :mod:`repro.simulation.engine` -- a minimal event-queue core;
- :mod:`repro.simulation.machine` -- machine lifecycle (off / booting /
  on / draining) with boot latency and switch accounting;
- :mod:`repro.simulation.scheduler` -- quota-aware first-fit / best-fit task
  schedulers with priority ordering and backfill;
- :mod:`repro.simulation.metrics` -- scheduling-delay, energy and
  machine-count instrumentation;
- :mod:`repro.simulation.cluster` -- the replay loop tying trace, policy
  and machines together;
- :mod:`repro.simulation.harmony` -- one-call end-to-end runs of CBS / CBP /
  baseline / static policies over a trace.
"""

from repro.simulation.engine import EventQueue, Event
from repro.simulation.machine import Machine, MachinePool, MachineState
from repro.simulation.scheduler import FirstFitScheduler, BestFitScheduler, QuotaLedger
from repro.simulation.metrics import (
    FaultSample,
    MachineFailure,
    SimulationMetrics,
    TaskRecord,
    TaskRestart,
)
from repro.simulation.cluster import ClusterSimulator, ClusterConfig
from repro.simulation.columnar import (
    ColumnarClusterSimulator,
    ColumnarFirstFitScheduler,
    TaskColumns,
    capacity_room,
    first_fit_index,
    reissue_finish_times,
)
from repro.simulation.degradation import DEGRADATION_LEVELS, DegradationLadder
from repro.simulation.timing import PhaseTimer
from repro.simulation.harmony import (
    ENGINES,
    HarmonyConfig,
    HarmonySimulation,
    SimulationResult,
    run_policy_comparison,
    energy_savings,
)
from repro.simulation.merge import fleet_digest, merge_shard_summaries

__all__ = [
    "EventQueue",
    "Event",
    "Machine",
    "MachinePool",
    "MachineState",
    "FirstFitScheduler",
    "BestFitScheduler",
    "QuotaLedger",
    "SimulationMetrics",
    "TaskRecord",
    "FaultSample",
    "MachineFailure",
    "TaskRestart",
    "ClusterSimulator",
    "ClusterConfig",
    "ColumnarClusterSimulator",
    "ColumnarFirstFitScheduler",
    "TaskColumns",
    "capacity_room",
    "first_fit_index",
    "reissue_finish_times",
    "ENGINES",
    "DEGRADATION_LEVELS",
    "DegradationLadder",
    "PhaseTimer",
    "HarmonyConfig",
    "HarmonySimulation",
    "SimulationResult",
    "run_policy_comparison",
    "energy_savings",
    "fleet_digest",
    "merge_shard_summaries",
]
