"""Deterministic merge of per-shard simulation summaries.

The fleet layer (:mod:`repro.fleet`) partitions the machine census into
disjoint cells and replays each cell's sub-trace in its own worker.  This
module folds the resulting per-shard ``SimulationResult.summary()`` dicts
into one fleet-level summary with documented semantics per field:

- **Extensive** quantities (task counts, energy, costs, switch/kill
  events, machine-seconds style means over a shared horizon) add across
  disjoint cells.
- **Intensive** quantities are weight-averaged with the physically
  meaningful weight: delays by task count, availability by machine count,
  MTTR by failure count, SLO attainment by task count.  Per-group delay
  percentiles merge as task-weighted means of the shard percentiles — an
  explicit approximation (exact fleet percentiles would need the raw delay
  distributions, which summaries deliberately do not carry).
- **Watermarks** (max degradation level, max unreachable cells) take the
  max.

Merging is pure data-flow over plain dicts: same inputs, same bytes out,
so the merged digest is independent of shard completion order, worker
count, retries and resume — the property the fleet chaos drill pins.
"""

from __future__ import annotations

import hashlib

from repro.runner.runner import canonical_json

#: ``summary()`` fields that add across disjoint cells.
_EXTENSIVE_FIELDS = (
    "tasks_submitted",
    "tasks_scheduled",
    "tasks_unscheduled",
    "energy_kwh",
    "energy_cost",
    "switch_cost",
    "switch_events",
    "tasks_killed",
    "tasks_preempted",
    "relabel_events",
    "total_cost",
    # Time-average of active machines per cell; cells are disjoint and
    # share the horizon, so the fleet-wide time-average is the sum.
    "mean_active_machines",
)


def _weighted_mean(pairs: list[tuple[float, float]]) -> float:
    """Weighted mean of ``(value, weight)`` pairs; 0.0 when weightless."""
    total = sum(weight for _, weight in pairs)
    if total <= 0:
        return 0.0
    return sum(value * weight for value, weight in pairs) / total


def _sum_counts(dicts: list[dict]) -> dict:
    """Key-wise sum of flat numeric dicts (union of keys, sorted)."""
    keys = sorted({key for d in dicts for key in d})
    return {key: sum(d.get(key, 0) for d in dicts) for key in keys}


def _merge_delay_groups(summaries: list[dict], group_weights: list[dict]) -> dict:
    """Merge ``delay_by_group`` with per-shard per-group task weights."""
    groups = sorted({g for s in summaries for g in s["delay_by_group"]})
    merged = {}
    for group in groups:
        entries = [
            (s["delay_by_group"][group], float(w.get(group, 0)))
            for s, w in zip(summaries, group_weights)
            if group in s["delay_by_group"]
        ]
        merged[group] = {
            "mean_s": _weighted_mean([(e["mean_s"], w) for e, w in entries]),
            "p95_s": _weighted_mean([(e["p95_s"], w) for e, w in entries]),
            "immediate_fraction": _weighted_mean(
                [(e["immediate_fraction"], w) for e, w in entries]
            ),
        }
    return merged


def _merge_fabric(fabrics: list[dict]) -> dict:
    return {
        "partition_seconds": sum(f["partition_seconds"] for f in fabrics),
        "partition_ticks": sum(f["partition_ticks"] for f in fabrics),
        "max_unreachable_cells": max(
            (f["max_unreachable_cells"] for f in fabrics), default=0
        ),
        "deferred_placements": sum(f["deferred_placements"] for f in fabrics),
        "degraded_link_ticks": _sum_counts([f["degraded_link_ticks"] for f in fabrics]),
        "cell_hold_ticks": _sum_counts([f["cell_hold_ticks"] for f in fabrics]),
        "reconciliations": sum(f["reconciliations"] for f in fabrics),
        "reconciliation_divergence": sum(
            f["reconciliation_divergence"] for f in fabrics
        ),
    }


def _merge_data_plane(planes: list[dict]) -> dict:
    sanitizers = [p["sanitizer"] for p in planes if p.get("sanitizer") is not None]
    sanitizer = None
    if sanitizers:
        sanitizer = {
            "records_total": sum(s["records_total"] for s in sanitizers),
            "records_clean": sum(s["records_clean"] for s in sanitizers),
            "records_repaired": sum(s["records_repaired"] for s in sanitizers),
            "records_quarantined": sum(s["records_quarantined"] for s in sanitizers),
            "repairs_by_rule": _sum_counts([s["repairs_by_rule"] for s in sanitizers]),
            "quarantine_by_rule": _sum_counts(
                [s["quarantine_by_rule"] for s in sanitizers]
            ),
            # Order-independent roll-up of the per-shard report digests.
            "digest": hashlib.sha256(
                "".join(sorted(s["digest"] for s in sanitizers)).encode()
            ).hexdigest(),
        }
    fallbacks = [p["forecast_fallback"] for p in planes]
    per_class_keys = sorted({key for f in fallbacks for key in f.get("per_class", {})})
    return {
        "sanitizer": sanitizer,
        "forecast_fallback": {
            "rungs": _sum_counts([f["rungs"] for f in fallbacks]),
            "degraded_forecasts": sum(f["degraded_forecasts"] for f in fallbacks),
            "per_class": {
                key: _sum_counts(
                    [f["per_class"][key] for f in fallbacks if key in f.get("per_class", {})]
                )
                for key in per_class_keys
            },
        },
        "classifier": _sum_counts([p["classifier"] for p in planes]),
        "capacity_guard": _sum_counts([p["capacity_guard"] for p in planes]),
    }


def _merge_resilience(
    summaries: list[dict], machine_weights: list[float]
) -> dict:
    blocks = [s["resilience"] for s in summaries]
    task_weights = [float(s["tasks_submitted"]) for s in summaries]
    failure_weights = [float(b["machines_failed"]) for b in blocks]
    return {
        "availability": _weighted_mean(
            [(b["availability"], w) for b, w in zip(blocks, machine_weights)]
        ),
        "mttr_s": _weighted_mean(
            [(b["mttr_s"], w) for b, w in zip(blocks, failure_weights)]
        ),
        "mean_restart_latency_s": _weighted_mean(
            [(b["mean_restart_latency_s"], w) for b, w in zip(blocks, failure_weights)]
        ),
        "slo_attainment_5m": _weighted_mean(
            [(b["slo_attainment_5m"], w) for b, w in zip(blocks, task_weights)]
        ),
        "machines_failed": sum(b["machines_failed"] for b in blocks),
        "breaker_trips": sum(b["breaker_trips"] for b in blocks),
        "invalid_decisions": sum(b["invalid_decisions"] for b in blocks),
        "degradation": {
            "max_level": max(
                (b["degradation"]["max_level"] for b in blocks), default=0
            ),
            "degraded_ticks": sum(b["degradation"]["degraded_ticks"] for b in blocks),
            "levels": _sum_counts([b["degradation"]["levels"] for b in blocks]),
        },
        "fabric": _merge_fabric([b["fabric"] for b in blocks]),
        "data_plane": _merge_data_plane([b["data_plane"] for b in blocks]),
    }


def merge_shard_summaries(shards: list[dict]) -> dict:
    """Fold per-shard fleet-worker summaries into one fleet summary.

    ``shards`` holds the ``fleet_shard`` task outputs: each carries the
    cell's ``"simulation"`` summary plus a ``"shard"`` block with the
    weights the merge needs (machine count, per-group routed task counts).
    Shard order does not matter — every reduction is either commutative
    (sums, maxes) or normalizes by the same total regardless of order, and
    key iteration is sorted.
    """
    if not shards:
        raise ValueError("cannot merge zero shard summaries")
    summaries = [s["simulation"] for s in shards]
    infos = [s["shard"] for s in shards]
    policies = sorted({s["policy"] for s in summaries})
    if len(policies) != 1:
        raise ValueError(f"shards ran different policies: {policies}")

    machine_weights = [float(info["machines"]) for info in infos]
    group_weights = [info["group_tasks"] for info in infos]
    task_weights = [float(s["tasks_submitted"]) for s in summaries]

    merged: dict = {"policy": policies[0]}
    for field in _EXTENSIVE_FIELDS:
        merged[field] = sum(s[field] for s in summaries)
    merged["mean_delay_s"] = _weighted_mean(
        [(s["mean_delay_s"], w) for s, w in zip(summaries, task_weights)]
    )
    merged["delay_by_group"] = _merge_delay_groups(summaries, group_weights)
    merged["resilience"] = _merge_resilience(summaries, machine_weights)
    merged["shards"] = {
        "count": len(shards),
        "machines": int(sum(machine_weights)),
        "cells": sorted(
            sorted(int(p) for p in info["platforms"]) for info in infos
        ),
        "tasks_routed": sum(int(info["tasks_routed"]) for info in infos),
    }
    return merged


def fleet_digest(merged: dict, shard_digests: dict[str, str]) -> str:
    """Canonical SHA-256 over the merged summary + every shard digest.

    Binding the per-shard digests in makes the fleet digest sensitive to
    any shard-level divergence even where the merge reduction would mask
    it (e.g. compensating errors in summed fields).
    """
    payload = {"merged": merged, "shard_digests": dict(sorted(shard_digests.items()))}
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()
