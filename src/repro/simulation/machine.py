"""Machine lifecycle for the cluster simulator.

Each physical machine walks the state machine

    OFF --turn_on--> BOOTING --(boot_seconds)--> ON --turn_off(idle)--> OFF

An ON machine with running tasks cannot power down immediately; it is marked
*draining* (no new placements) and turns off when its last task finishes.
Booting and draining machines draw idle power, so aggressive flapping is
penalized both here and through the controller's switching cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.energy.models import MachineModel
from repro.trace.schema import Task


class MachineState(enum.Enum):
    """Machine power state (OFF -> BOOTING -> ON)."""

    OFF = "off"
    BOOTING = "booting"
    ON = "on"


@dataclass
class Machine:
    """One physical machine instance."""

    machine_id: int
    model: MachineModel
    state: MachineState = MachineState.OFF
    draining: bool = False
    #: A failed machine cannot be booted again before this time.
    failed_until: float = 0.0
    #: Straggler factor: tasks here take ``slowdown`` times their nominal
    #: duration (1.0 = healthy; set by degradation faults).
    slowdown: float = 1.0
    #: Fabric factor: extra stretch from degraded links on the best path
    #: between this machine's cell and the trace-ingest cell (1.0 =
    #: healthy; set pool-wide by fabric faults, composed with
    #: ``slowdown`` via :attr:`effective_slowdown`).
    fabric_stretch: float = 1.0
    cpu_used: float = 0.0
    memory_used: float = 0.0
    #: task uid -> (task, class_id) for everything currently running here.
    running: dict[tuple[int, int], tuple[Task, int]] = field(default_factory=dict)

    @property
    def effective_slowdown(self) -> float:
        """Total service-time multiplier: straggler x fabric stretch."""
        return self.slowdown * self.fabric_stretch

    @property
    def cpu_free(self) -> float:
        return self.model.cpu_capacity - self.cpu_used

    @property
    def memory_free(self) -> float:
        return self.model.memory_capacity - self.memory_used

    @property
    def is_idle(self) -> bool:
        return not self.running

    @property
    def is_off(self) -> bool:
        return self.state is MachineState.OFF

    @property
    def schedulable(self) -> bool:
        """Whether new tasks may be placed here.

        Draining machines remain schedulable: they draw power until their
        last task finishes anyway, so refusing work would strand paid-for
        capacity.  They power off the moment they go idle
        (:meth:`MachinePool.maybe_power_off`); under falling demand the
        shrinking quotas starve them of new placements and they do empty.
        """
        return self.state is MachineState.ON

    def fits(self, task: Task) -> bool:
        if not self.schedulable:
            return False
        if (
            task.allowed_platforms is not None
            and self.model.platform_id not in task.allowed_platforms
        ):
            return False
        return task.cpu <= self.cpu_free + 1e-9 and task.memory <= self.memory_free + 1e-9

    def place(self, task: Task, class_id: int) -> None:
        if not self.fits(task):
            raise ValueError(f"task {task.uid} does not fit machine {self.machine_id}")
        self.running[task.uid] = (task, class_id)
        self.cpu_used += task.cpu
        self.memory_used += task.memory

    def release(self, task: Task) -> int:
        """Remove a finished task; returns the class id it ran under."""
        entry = self.running.pop(task.uid, None)
        if entry is None:
            raise KeyError(f"task {task.uid} is not running on machine {self.machine_id}")
        self.cpu_used = max(self.cpu_used - task.cpu, 0.0)
        self.memory_used = max(self.memory_used - task.memory, 0.0)
        return entry[1]


@dataclass
class PoolStats:
    """Switch and failure accounting for one machine pool."""

    switch_on_events: int = 0
    switch_off_events: int = 0
    failures: int = 0


class MachinePool:
    """All machines of one platform type, with target-count reconciliation."""

    def __init__(self, model: MachineModel, id_offset: int = 0) -> None:
        self.model = model
        self.machines: list[Machine] = [
            Machine(machine_id=id_offset + i, model=model) for i in range(model.count)
        ]
        self.stats = PoolStats()

    # ------------------------------------------------------------- queries

    @property
    def platform_id(self) -> int:
        return self.model.platform_id

    @property
    def total(self) -> int:
        return len(self.machines)

    def count_state(self, state: MachineState) -> int:
        return sum(1 for m in self.machines if m.state is state)

    @property
    def powered(self) -> int:
        """Machines drawing power (ON or BOOTING)."""
        return sum(1 for m in self.machines if m.state is not MachineState.OFF)

    @property
    def active_non_draining(self) -> int:
        return sum(
            1
            for m in self.machines
            if m.state is not MachineState.OFF and not m.draining
        )

    def schedulable_machines(self) -> list[Machine]:
        return [m for m in self.machines if m.schedulable]

    def capacity_columns(self) -> tuple[list[float], list[float], list[bool]]:
        """Snapshot of (cpu_free, memory_free, schedulable) per machine.

        The columnar engine mirrors these into numpy arrays; the machine
        objects stay authoritative, so the free values are computed exactly
        as the :class:`Machine` properties compute them.
        """
        cpu_capacity = self.model.cpu_capacity
        memory_capacity = self.model.memory_capacity
        cpu_free = [cpu_capacity - m.cpu_used for m in self.machines]
        memory_free = [memory_capacity - m.memory_used for m in self.machines]
        schedulable = [m.state is MachineState.ON for m in self.machines]
        return cpu_free, memory_free, schedulable

    def utilization(self) -> tuple[float, float]:
        """Mean (cpu, memory) utilization over powered machines."""
        powered = [m for m in self.machines if m.state is not MachineState.OFF]
        if not powered:
            return (0.0, 0.0)
        cpu = sum(m.cpu_used for m in powered) / (
            len(powered) * self.model.cpu_capacity
        )
        memory = sum(m.memory_used for m in powered) / (
            len(powered) * self.model.memory_capacity
        )
        return (min(cpu, 1.0), min(memory, 1.0))

    def running_count_by_class(self) -> dict[int, int]:
        """Running tasks per class id across the pool (for quota stocks)."""
        counts: dict[int, int] = {}
        for machine in self.machines:
            for _, class_id in machine.running.values():
                counts[class_id] = counts.get(class_id, 0) + 1
        return counts

    # ------------------------------------------------------- reconciliation

    def reconcile(self, target: int, now: float = 0.0) -> list[Machine]:
        """Adjust the pool toward ``target`` powered, non-draining machines.

        Powers on OFF machines (returned so the caller can schedule their
        MACHINE_READY events) and drains/offs surplus ones.  Draining
        machines are revived first when scaling up — cheaper than booting.
        Machines under repair (``failed_until > now``) are not booted.
        """
        target = max(0, min(target, self.total))
        current = self.active_non_draining
        started: list[Machine] = []

        if current < target:
            needed = target - current
            # Revive draining machines first.
            for machine in self.machines:
                if needed == 0:
                    break
                if machine.state is not MachineState.OFF and machine.draining:
                    machine.draining = False
                    needed -= 1
            # Then boot cold machines (skipping those under repair).
            for machine in self.machines:
                if needed == 0:
                    break
                if machine.state is MachineState.OFF and machine.failed_until <= now:
                    machine.state = MachineState.BOOTING
                    machine.draining = False
                    self.stats.switch_on_events += 1
                    started.append(machine)
                    needed -= 1
        elif current > target:
            surplus = current - target
            # Shut idle machines instantly; mark the emptiest busy ones as
            # draining.  A draining machine keeps serving (and accepting)
            # tasks until it empties — powering it draws idle watts either
            # way, so stranding its capacity would only hurt scheduling
            # delay (see Machine.schedulable).
            candidates = sorted(
                (
                    m
                    for m in self.machines
                    if m.state is not MachineState.OFF and not m.draining
                ),
                key=lambda m: (not m.is_idle, len(m.running), m.cpu_used),
            )
            for machine in candidates[:surplus]:
                if machine.is_idle and machine.state is MachineState.ON:
                    machine.state = MachineState.OFF
                    self.stats.switch_off_events += 1
                else:
                    machine.draining = True
        return started

    def machine_ready(self, machine: Machine) -> None:
        """Complete a boot (BOOTING -> ON); no-op if it was shut off meanwhile."""
        if machine.state is MachineState.BOOTING:
            machine.state = MachineState.ON

    def fail(self, machine: Machine, now: float, repair_seconds: float
             ) -> list[tuple["Task", int]]:
        """Crash a machine: kill its tasks, power off, start repair.

        Returns the (task, class_id) pairs that were running so the caller
        can re-enqueue them and release their quota stocks.
        """
        if repair_seconds < 0:
            raise ValueError(f"repair_seconds must be >= 0, got {repair_seconds}")
        victims = list(machine.running.values())
        machine.running.clear()
        machine.cpu_used = 0.0
        machine.memory_used = 0.0
        machine.state = MachineState.OFF
        machine.draining = False
        machine.failed_until = now + repair_seconds
        machine.slowdown = 1.0  # repairs also clear any degradation
        self.stats.failures += 1
        return victims

    def maybe_power_off(self, machine: Machine) -> bool:
        """Turn a draining machine off once idle; returns True if it powered off."""
        if machine.draining and machine.is_idle and machine.state is MachineState.ON:
            machine.state = MachineState.OFF
            machine.draining = False
            self.stats.switch_off_events += 1
            return True
        return False
