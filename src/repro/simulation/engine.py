"""Minimal discrete-event simulation core.

A binary-heap event queue with stable ordering: events at equal timestamps
pop in (kind-priority, insertion) order so control ticks observe a
consistent world state (finishes before arrivals before ticks).
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass
from typing import Any


class EventKind(enum.IntEnum):
    """Event kinds, ordered by processing priority at equal timestamps."""

    TASK_FINISH = 0
    MACHINE_READY = 1
    TASK_ARRIVAL = 2
    #: Fault injection fires before the control tick at the same timestamp,
    #: so the policy observes the post-fault world state.
    FAULT = 3
    CONTROL_TICK = 4


@dataclass(frozen=True, order=False)
class Event:
    """A scheduled simulation event."""

    time: float
    kind: EventKind
    payload: Any = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")


class EventQueue:
    """Priority queue of events keyed by (time, kind, insertion order)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time (time of the last popped event)."""
        return self._now

    def push(self, event: Event) -> None:
        if event.time < self._now - 1e-9:
            raise ValueError(
                f"cannot schedule event at {event.time} before current time {self._now}"
            )
        heapq.heappush(self._heap, (event.time, int(event.kind), next(self._counter), event))

    def schedule(self, time: float, kind: EventKind, payload: Any = None) -> None:
        """Convenience: construct and push an event."""
        self.push(Event(time=time, kind=kind, payload=payload))

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        time, _, _, event = heapq.heappop(self._heap)
        self._now = time
        return event

    def peek_time(self) -> float | None:
        """Timestamp of the next event, or None if empty."""
        return self._heap[0][0] if self._heap else None

    def peek_key(self) -> tuple[float, int] | None:
        """(time, kind) of the next event, or None if empty.

        Lets an external ordered event source (the columnar engine's
        arrival array) merge against the heap with the exact same
        ``(time, kind)`` ordering the heap itself uses.
        """
        if not self._heap:
            return None
        time, kind, _, _ = self._heap[0]
        return (time, kind)

    def advance(self, time: float) -> None:
        """Move the clock forward without popping an event.

        Used when events are consumed from a source outside the heap (the
        columnar arrival cursor); enforces the same monotonicity contract
        as :meth:`push`.
        """
        if time < self._now - 1e-9:
            raise ValueError(
                f"cannot advance the clock to {time} before current time {self._now}"
            )
        self._now = time

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
