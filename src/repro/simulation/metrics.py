"""Simulation instrumentation.

Collects exactly the series the paper's evaluation plots: per-task
scheduling delays grouped by priority (Figs. 4, 23-25), active-machine
timelines (Figs. 3, 21-22), per-group container counts (Fig. 20), and — via
the :class:`~repro.energy.accounting.EnergyMeter` owned by the cluster —
energy totals (Fig. 26).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.schema import PriorityGroup, Task


@dataclass
class TaskRecord:
    """Lifecycle of one task through the simulator."""

    task: Task
    submit_time: float
    schedule_time: float | None = None
    finish_time: float | None = None
    class_id: int | None = None
    platform_id: int | None = None

    @property
    def scheduling_delay(self) -> float | None:
        if self.schedule_time is None:
            return None
        return self.schedule_time - self.submit_time

    @property
    def group(self) -> PriorityGroup:
        return self.task.priority_group


@dataclass
class MachineFailure:
    """One machine crash and (if observed) its return to service."""

    machine_id: int
    fail_time: float
    #: When the machine was next booted back to ON; ``None`` = still down.
    recover_time: float | None = None


@dataclass
class TaskRestart:
    """One fault-driven task kill and its eventual re-placement."""

    uid: tuple[int, int]
    kill_time: float
    #: When the task was scheduled again; ``None`` = never restarted.
    reschedule_time: float | None = None


@dataclass
class FabricMetrics:
    """What the network fault layer did to one run.

    All-zero (and the same shape) when no fabric faults were configured,
    so ``summary()["resilience"]["fabric"]`` is always present and a no-op
    fabric plan digests identically to a clean run.
    """

    #: Wall-clock simulated seconds during which any cell was unreachable.
    partition_seconds: float = 0.0
    #: Control ticks observed while partitioned.
    partition_ticks: int = 0
    #: Worst simultaneous unreachable-cell count.
    max_unreachable_cells: int = 0
    #: Placement attempts that failed after skipping an unreachable cell.
    deferred_placements: int = 0
    #: Link label ("a-b") -> control ticks the link spent severed/degraded.
    degraded_link_ticks: dict[str, int] = field(default_factory=dict)
    #: Cell id (as str) -> control ticks its targets were partition-held.
    cell_hold_ticks: dict[str, int] = field(default_factory=dict)
    #: Cells reconciled back to fresh control after a heal.
    reconciliations: int = 0
    #: Total |held target - fresh target| machines across reconciliations.
    reconciliation_divergence: int = 0

    def to_summary(self) -> dict:
        """Deterministic JSON block for ``summary()["resilience"]["fabric"]``."""
        return {
            "partition_seconds": self.partition_seconds,
            "partition_ticks": self.partition_ticks,
            "max_unreachable_cells": self.max_unreachable_cells,
            "deferred_placements": self.deferred_placements,
            "degraded_link_ticks": dict(sorted(self.degraded_link_ticks.items())),
            "cell_hold_ticks": dict(sorted(self.cell_hold_ticks.items())),
            "reconciliations": self.reconciliations,
            "reconciliation_divergence": self.reconciliation_divergence,
        }


@dataclass(frozen=True)
class FaultSample:
    """Per-tick fleet health snapshot."""

    time: float
    failed_machines: int
    total_machines: int
    degraded_machines: int
    blackout: bool


@dataclass
class SimulationMetrics:
    """Aggregated run metrics."""

    records: dict[tuple[int, int], TaskRecord] = field(default_factory=dict)
    #: (time, powered machines, schedulable machines) samples per interval.
    machine_timeline: list[tuple[float, int, int]] = field(default_factory=list)
    #: (time, {platform_id: powered}) samples.
    machine_timeline_by_type: list[tuple[float, dict[int, int]]] = field(default_factory=list)
    #: (time, {group: containers}) samples from controller decisions.
    container_timeline: list[tuple[float, dict[PriorityGroup, int]]] = field(default_factory=list)
    #: (time, mean cpu utilization, mean memory utilization) over powered machines.
    utilization_timeline: list[tuple[float, float, float]] = field(default_factory=list)
    #: Machine crash/repair episodes (resilience reporting).
    failure_events: list[MachineFailure] = field(default_factory=list)
    #: Fault-driven task kill/restart episodes.
    restart_events: list[TaskRestart] = field(default_factory=list)
    #: Per-tick fleet health samples.
    fault_timeline: list[FaultSample] = field(default_factory=list)
    #: (time, ladder level, reason) per MPC control tick — which rung of
    #: the control-plane degradation ladder (0 = mpc, 1 = threshold,
    #: 2 = hold; see :mod:`repro.simulation.degradation`) produced each
    #: decision.  Empty for non-MPC policies.
    degradation_timeline: list[tuple[float, int, str]] = field(default_factory=list)
    #: Network fault layer accounting (always present; all-zero without
    #: fabric faults) — see :class:`FabricMetrics`.
    fabric: FabricMetrics = field(default_factory=FabricMetrics)
    #: machine_id -> open failure episode awaiting recovery.
    _open_failures: dict[int, MachineFailure] = field(default_factory=dict, repr=False)
    #: task uid -> open restart episode awaiting re-placement.
    _open_restarts: dict[tuple[int, int], TaskRestart] = field(
        default_factory=dict, repr=False
    )

    # --------------------------------------------------------------- events

    def task_submitted(self, task: Task, time: float) -> None:
        self.records[task.uid] = TaskRecord(task=task, submit_time=time)

    def task_scheduled(
        self, task: Task, time: float, class_id: int, platform_id: int
    ) -> None:
        record = self.records[task.uid]
        record.schedule_time = time
        record.class_id = class_id
        record.platform_id = platform_id
        if self._open_restarts:
            restart = self._open_restarts.pop(task.uid, None)
            if restart is not None:
                restart.reschedule_time = time

    def task_finished(self, task: Task, time: float) -> None:
        self.records[task.uid].finish_time = time

    def task_killed(self, task: Task, time: float) -> None:
        """A fault killed a running task; it re-enters the pending queue."""
        restart = TaskRestart(uid=task.uid, kill_time=time)
        self.restart_events.append(restart)
        self._open_restarts[task.uid] = restart

    def machine_failed(self, machine_id: int, time: float) -> None:
        episode = MachineFailure(machine_id=machine_id, fail_time=time)
        self.failure_events.append(episode)
        self._open_failures[machine_id] = episode

    def machine_recovered(self, machine_id: int, time: float) -> None:
        """A previously failed machine is back in service (no-op otherwise)."""
        episode = self._open_failures.pop(machine_id, None)
        if episode is not None:
            episode.recover_time = time

    def fault_sample(
        self,
        time: float,
        failed_machines: int,
        total_machines: int,
        degraded_machines: int = 0,
        blackout: bool = False,
    ) -> None:
        self.fault_timeline.append(
            FaultSample(time, failed_machines, total_machines, degraded_machines, blackout)
        )

    # -------------------------------------------------------------- queries

    def delays_by_group(self, include_unscheduled_at: float | None = None
                        ) -> dict[PriorityGroup, np.ndarray]:
        """Scheduling delays per priority group.

        ``include_unscheduled_at``: when set (typically the horizon), tasks
        never scheduled contribute a censored delay of ``horizon - submit``
        instead of being silently dropped — otherwise a starving policy
        would look *better* on delay.
        """
        delays: dict[PriorityGroup, list[float]] = {g: [] for g in PriorityGroup}
        for record in self.records.values():
            delay = record.scheduling_delay
            if delay is None:
                if include_unscheduled_at is None:
                    continue
                delay = max(include_unscheduled_at - record.submit_time, 0.0)
            delays[record.group].append(delay)
        return {g: np.asarray(v) for g, v in delays.items()}

    def mean_delay(self, group: PriorityGroup | None = None,
                   include_unscheduled_at: float | None = None) -> float:
        """Mean scheduling delay, overall or for one group."""
        by_group = self.delays_by_group(include_unscheduled_at)
        if group is not None:
            values = by_group[group]
        else:
            values = np.concatenate([v for v in by_group.values()]) if by_group else np.array([])
        return float(values.mean()) if values.size else 0.0

    def delay_percentile(self, q: float, group: PriorityGroup | None = None,
                         include_unscheduled_at: float | None = None) -> float:
        by_group = self.delays_by_group(include_unscheduled_at)
        if group is not None:
            values = by_group[group]
        else:
            values = np.concatenate([v for v in by_group.values()])
        return float(np.percentile(values, q)) if values.size else 0.0

    @property
    def num_submitted(self) -> int:
        return len(self.records)

    @property
    def num_scheduled(self) -> int:
        return sum(1 for r in self.records.values() if r.schedule_time is not None)

    @property
    def num_finished(self) -> int:
        return sum(1 for r in self.records.values() if r.finish_time is not None)

    @property
    def num_unscheduled(self) -> int:
        return self.num_submitted - self.num_scheduled

    def immediate_fraction(self, group: PriorityGroup, tolerance: float = 1.0) -> float:
        """Fraction of a group's scheduled tasks placed within ``tolerance`` s."""
        delays = self.delays_by_group()[group]
        if delays.size == 0:
            return 0.0
        return float((delays <= tolerance).mean())

    def mean_active_machines(self) -> float:
        if not self.machine_timeline:
            return 0.0
        return float(np.mean([powered for _, powered, _ in self.machine_timeline]))

    def machines_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, powered machines) arrays (Figs. 21-22)."""
        if not self.machine_timeline:
            return np.array([]), np.array([])
        times = np.array([t for t, _, _ in self.machine_timeline])
        powered = np.array([p for _, p, _ in self.machine_timeline])
        return times, powered

    # -------------------------------------------------- resilience queries

    def availability(self) -> float:
        """Mean fraction of the fleet not under repair, over the run.

        1.0 when no fault samples were recorded (fault-free run).
        """
        if not self.fault_timeline:
            return 1.0
        fractions = [
            1.0 - sample.failed_machines / sample.total_machines
            for sample in self.fault_timeline
            if sample.total_machines > 0
        ]
        return float(np.mean(fractions)) if fractions else 1.0

    def mttr(self, censor_at: float | None = None) -> float:
        """Mean time from machine crash to its return to service (seconds).

        Machines still down at the end contribute a censored episode of
        ``censor_at - fail_time`` when ``censor_at`` (typically the
        horizon) is given, and are skipped otherwise.  0.0 with no
        failures.
        """
        durations: list[float] = []
        for episode in self.failure_events:
            if episode.recover_time is not None:
                durations.append(episode.recover_time - episode.fail_time)
            elif censor_at is not None:
                durations.append(max(censor_at - episode.fail_time, 0.0))
        return float(np.mean(durations)) if durations else 0.0

    def mean_restart_latency(self, censor_at: float | None = None) -> float:
        """Mean time a fault-killed task waited to be re-placed (seconds)."""
        latencies: list[float] = []
        for restart in self.restart_events:
            if restart.reschedule_time is not None:
                latencies.append(restart.reschedule_time - restart.kill_time)
            elif censor_at is not None:
                latencies.append(max(censor_at - restart.kill_time, 0.0))
        return float(np.mean(latencies)) if latencies else 0.0

    def slo_attainment(
        self,
        bound_seconds: float,
        group: PriorityGroup | None = None,
        include_unscheduled_at: float | None = None,
    ) -> float:
        """Fraction of tasks scheduled within ``bound_seconds`` of submit.

        Unscheduled tasks count as violations (censored at
        ``include_unscheduled_at`` when given, or unconditionally missed
        otherwise).  1.0 with no tasks.
        """
        hits = total = 0
        for record in self.records.values():
            if group is not None and record.group is not group:
                continue
            total += 1
            delay = record.scheduling_delay
            if delay is None:
                if include_unscheduled_at is not None:
                    delay = max(include_unscheduled_at - record.submit_time, 0.0)
                else:
                    continue  # still a miss: counted in total only
            if delay <= bound_seconds:
                hits += 1
        return hits / total if total else 1.0

    def max_degradation_level(self) -> int:
        """Worst control-plane ladder rung hit during the run (0 if clean)."""
        if not self.degradation_timeline:
            return 0
        return max(level for _, level, _ in self.degradation_timeline)

    def degraded_ticks(self) -> int:
        """Control ticks decided below the full MPC path (level > 0)."""
        return sum(1 for _, level, _ in self.degradation_timeline if level > 0)

    def degradation_level_counts(self) -> dict[str, int]:
        """Ladder level name -> tick count (zeros for unused levels)."""
        from repro.simulation.degradation import DEGRADATION_LEVELS

        counts = {name: 0 for name in DEGRADATION_LEVELS}
        for _, level, _ in self.degradation_timeline:
            counts[DEGRADATION_LEVELS[level]] += 1
        return counts

    def containers_series(self) -> tuple[np.ndarray, dict[PriorityGroup, np.ndarray]]:
        """(times, per-group container counts) arrays (Fig. 20)."""
        if not self.container_timeline:
            return np.array([]), {g: np.array([]) for g in PriorityGroup}
        times = np.array([t for t, _ in self.container_timeline])
        by_group = {
            g: np.array([counts.get(g, 0) for _, counts in self.container_timeline])
            for g in PriorityGroup
        }
        return times, by_group
