"""Columnar replay engine: vectorized batches over the object-engine rules.

The object engine (:class:`~repro.simulation.cluster.ClusterSimulator`)
walks the pending queue task by task every scheduling round, scanning
machines in pure python.  This module keeps the *object state* — machines,
pools, quota ledger, metrics — authoritative and bit-identical, but drives
the hot paths through numpy columns:

- the task population lives in a numpy structured array
  (:class:`TaskColumns`: arrival, size, duration, priority, class);
- per-pool capacity columns (cpu-free / memory-free / schedulable) mirror
  the machine objects and are refreshed from them, never integrated
  independently, so no float drift can accumulate;
- each scheduling round consults a vectorized *feasibility cache* over the
  examined window and only runs the exact serial first-fit logic on tasks
  the cache admits;
- the per-pool first-fit machine scan and the fault-driven finish-time
  reissue are numpy kernels (:func:`first_fit_index`,
  :func:`reissue_finish_times`) with scalar-identical semantics;
- task arrivals stream from a pre-sorted column instead of the event heap,
  merged against the heap under the exact ``(time, kind)`` ordering.

The feasibility cache is the core speedup.  A failed placement attempt is
a *proof of infeasibility*: no reachable, constraint-allowed,
quota-admitting pool had a machine with room.  That proof stays valid
until something opens up, and every opening is a discrete, observable
event — a task finish frees one machine (and one quota slot), a boot
makes one machine schedulable, a control tick rewrites quotas, a fabric
flip changes reachability.  The engine therefore keeps a per-task
``infeasible`` bit and, instead of re-deriving feasibility from scratch
each round, retests only the flagged tasks against only the *grown*
capacity (usually a single machine) or the *opened* quota slot.  Bulk
invalidations (reconcile, preemption, fabric changes) clear the cache and
the next round rebuilds it with one full vectorized mask.

Determinism contract: for any scenario, the columnar engine produces a
``summary()`` bit-identical to the object engine's.  The cache may only
*over*-approximate feasibility (capacity and quota stocks tighten
monotonically within a round, so round-start feasibility is a superset of
feasibility at any later point in the round, and retests clear bits
conservatively), and a task examined without being placed has no
outcome-affecting side effects in the object engine — the pareto memo and
rotating hints mutate only on success.  Everything else (placement order,
ledger stocks, metrics, fabric deferrals, event ordering) follows the
object engine's code paths exactly; the differential suite
(``tests/test_columnar_differential.py``) enforces the digests.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.simulation.cluster import ClusterSimulator
from repro.simulation.engine import EventKind
from repro.simulation.machine import Machine, MachinePool
from repro.simulation.scheduler import FirstFitScheduler, QuotaLedger
from repro.trace.schema import Task

#: The capacity epsilon of :meth:`Machine.fits` — the kernels must compare
#: with the exact same float expression (``demand <= free + EPS``).
FIT_EPS = 1e-9

_TASK_DTYPE = np.dtype(
    [
        ("submit", np.float64),
        ("cpu", np.float64),
        ("memory", np.float64),
        ("duration", np.float64),
        ("priority", np.int64),
        ("class_id", np.int64),
    ]
)


# ---------------------------------------------------------------- kernels


def capacity_room(
    free: np.ndarray, schedulable: np.ndarray
) -> np.ndarray:
    """Fit-comparable room per machine: ``free + FIT_EPS``, or ``-inf``.

    A demand ``d`` fits a machine exactly when ``d <= room`` — the same
    float expression as :meth:`Machine.fits` (``d <= free + eps``) for
    schedulable machines, and unsatisfiable for any demand (>= 0) on
    non-schedulable ones.
    """
    return np.where(schedulable, free + FIT_EPS, -np.inf)


def first_fit_index(
    cpu_room: np.ndarray,
    memory_room: np.ndarray,
    cpu: float,
    memory: float,
    start: int,
) -> int:
    """First machine index fitting (cpu, memory), scanning from ``start``.

    Vectorized replica of :meth:`FirstFitScheduler._pick_machine`'s scan
    over :func:`capacity_room` arrays: offsets ``0..n-1`` from the
    rotating hint, wrapping around, returning the first index whose
    machine is schedulable and has room under the exact
    :meth:`Machine.fits` float semantics.  Returns -1 when nothing fits.
    """
    count = len(cpu_room)
    if count == 0:
        return -1
    start = start % count
    fits = (cpu <= cpu_room) & (memory <= memory_room)
    tail = fits[start:]
    offset = int(tail.argmax())
    if tail.size and tail[offset]:
        return start + offset
    head = fits[:start]
    if head.size:
        offset = int(head.argmax())
        if head[offset]:
            return offset
    return -1


def reissue_finish_times(
    finish_times: np.ndarray, now: float, ratio: float
) -> np.ndarray:
    """Stretch/compress remaining service, batched.

    Scalar-identical to the object engine's per-task update:
    ``new = now + max(finish - now, 0.0) * ratio``.  Total remaining
    service time scales by exactly ``ratio``.
    """
    return now + np.maximum(finish_times - now, 0.0) * ratio


# ----------------------------------------------------------- task columns


class TaskColumns:
    """The task population as a numpy structured array plus constraint bits.

    One row per task in trace order: arrival (submit), size (cpu, memory),
    duration, priority and class-id columns in :attr:`table`, and a dense
    boolean ``allowed[row, pool]`` matrix resolving each task's
    ``allowed_platforms`` against a pool ordering.  ``row_of`` maps task
    uid -> row for O(1) gather of any pending window.
    """

    def __init__(
        self,
        tasks: tuple[Task, ...],
        class_of: Callable[[Task], int],
        pool_platform_ids: tuple[int, ...],
    ) -> None:
        n = len(tasks)
        self.table = np.zeros(n, dtype=_TASK_DTYPE)
        self.allowed = np.ones((n, len(pool_platform_ids)), dtype=bool)
        self.row_of: dict[tuple[int, int], int] = {}
        pool_index = {pid: j for j, pid in enumerate(pool_platform_ids)}
        for row, task in enumerate(tasks):
            self.table[row] = (
                task.submit_time,
                task.cpu,
                task.memory,
                task.duration,
                task.priority,
                class_of(task),
            )
            if task.allowed_platforms is not None:
                self.allowed[row, :] = False
                for platform_id in task.allowed_platforms:
                    j = pool_index.get(platform_id)
                    if j is not None:
                        self.allowed[row, j] = True
            self.row_of[task.uid] = row
        self.submit = self.table["submit"]
        self.cpu = self.table["cpu"]
        self.memory = self.table["memory"]
        self.duration = self.table["duration"]
        self.priority = self.table["priority"]
        self.class_id = self.table["class_id"]

    def __len__(self) -> int:
        return len(self.table)

    def rows_for(self, tasks: Iterable[Task]) -> np.ndarray:
        """Row indices of ``tasks``, in the given order."""
        row_of = self.row_of
        return np.fromiter((row_of[t.uid] for t in tasks), dtype=np.intp)


# ----------------------------------------------------- columnar scheduler


class ColumnarFirstFitScheduler(FirstFitScheduler):
    """First-fit over numpy capacity columns, outcome-identical.

    The machine objects stay authoritative; the per-pool columns are
    refreshed *from* them (point updates for single-machine mutations,
    full rebuilds after control-tick reconciliation) and consulted by the
    vectorized machine scan and the feasibility mask.  A per-pool upper
    bound on free (cpu, memory) across schedulable machines — exact after
    a full rebuild, never understated by point updates — rejects most
    placement attempts against a saturated pool in O(1).
    """

    def __init__(self, pools: list[MachinePool]) -> None:
        super().__init__(pools)
        self._pool_index = {pool.platform_id: j for j, pool in enumerate(self.pools)}
        #: Per-pool :func:`capacity_room` columns (fit-comparable free
        #: capacity, ``-inf`` for non-schedulable machines).
        self._cpu_room: list[np.ndarray] = []
        self._memory_room: list[np.ndarray] = []
        for pool in self.pools:
            n = len(pool.machines)
            self._cpu_room.append(np.full(n, -np.inf))
            self._memory_room.append(np.full(n, -np.inf))
        #: Per-pool exact maxima of the room columns: a demand exceeding
        #: either bound cannot fit any machine, so a saturated pool
        #: rejects placement attempts in O(1) without a scan.
        self._cpu_bound = [-np.inf] * len(self.pools)
        self._memory_bound = [-np.inf] * len(self.pools)
        #: Pool walk order with the per-pool constants the placement loop
        #: needs, avoiding repeated property lookups in the hot path.
        self._pool_meta = [
            (
                j,
                pool.platform_id,
                pool.model.cpu_capacity,
                pool.model.memory_capacity,
                pool.machines,
            )
            for j, pool in enumerate(self.pools)
        ]
        #: machine_id -> (pool index, machine index) for point updates.
        self._slot_of = {
            machine.machine_id: (j, i)
            for j, pool in enumerate(self.pools)
            for i, machine in enumerate(pool.machines)
        }
        self._dirty = [True] * len(self.pools)
        self._any_dirty = True
        self._stale: set[int] = set()

    # ------------------------------------------------------ column upkeep

    def mark_stale(self, machine: Machine) -> None:
        """One machine's capacity/state changed; re-read it lazily."""
        self._stale.add(machine.machine_id)

    def invalidate_all(self) -> None:
        """Bulk mutation (reconcile, crash sweep): rebuild every pool."""
        self._dirty = [True] * len(self.pools)
        self._any_dirty = True
        self._stale.clear()

    def _recompute_bounds(self, j: int) -> None:
        cpu_room = self._cpu_room[j]
        if len(cpu_room):
            self._cpu_bound[j] = float(cpu_room.max())
            self._memory_bound[j] = float(self._memory_room[j].max())
        else:
            self._cpu_bound[j] = -np.inf
            self._memory_bound[j] = -np.inf

    def _refresh_machine(self, j: int, i: int) -> None:
        machine = self.pools[j].machines[i]
        if machine.schedulable:
            model = machine.model
            self._cpu_room[j][i] = model.cpu_capacity - machine.cpu_used + FIT_EPS
            self._memory_room[j][i] = (
                model.memory_capacity - machine.memory_used + FIT_EPS
            )
        else:
            self._cpu_room[j][i] = -np.inf
            self._memory_room[j][i] = -np.inf

    def _flush(self) -> None:
        """Bring the columns up to date with the machine objects."""
        if not self._stale and not self._any_dirty:
            return
        touched: set[int] = set()
        for machine_id in self._stale:
            j, i = self._slot_of[machine_id]
            if self._dirty[j]:
                continue
            self._refresh_machine(j, i)
            touched.add(j)
        self._stale.clear()
        if self._any_dirty:
            for j, dirty in enumerate(self._dirty):
                if not dirty:
                    continue
                cpu_free, memory_free, schedulable = self.pools[j].capacity_columns()
                mask = np.asarray(schedulable, dtype=bool)
                self._cpu_room[j][:] = capacity_room(np.asarray(cpu_free), mask)
                self._memory_room[j][:] = capacity_room(
                    np.asarray(memory_free), mask
                )
                self._dirty[j] = False
                touched.add(j)
            self._any_dirty = False
        for j in sorted(touched):
            self._recompute_bounds(j)

    # --------------------------------------------------------- placement

    def try_place(
        self,
        task: Task,
        class_id: int,
        ledger: QuotaLedger,
        failed: dict[int, list[tuple[float, float]]] | None = None,
    ) -> Machine | None:
        """Check-for-check replica of the base walk over the room columns.

        Same pool order, same skip conditions, same pareto-memo handling
        and deferral accounting as :meth:`_BaseScheduler.try_place` — but
        the machine scan is the vectorized kernel, preceded by the O(1)
        bound reject, and a successful placement fixes the placed
        machine's room and the pool bounds up immediately so the bounds
        stay exact within a round.
        """
        self._flush()
        skipped_unreachable = False
        task_cpu = task.cpu
        task_memory = task.memory
        allowed = task.allowed_platforms
        unreachable = self._unreachable
        hints = self._hints
        for j, platform_id, cpu_capacity, memory_capacity, machines in self._pool_meta:
            if platform_id in unreachable:
                skipped_unreachable = True
                continue
            if task_cpu > cpu_capacity or task_memory > memory_capacity:
                continue
            if allowed is not None and platform_id not in allowed:
                continue
            if not ledger.admits(platform_id, class_id):
                continue
            if failed is not None:
                pool_failed = failed.get(platform_id)
                if pool_failed is not None and any(
                    task_cpu >= fc and task_memory >= fm for fc, fm in pool_failed
                ):
                    continue
            if task_cpu > self._cpu_bound[j] or task_memory > self._memory_bound[j]:
                index = -1
            else:
                index = first_fit_index(
                    self._cpu_room[j],
                    self._memory_room[j],
                    task_cpu,
                    task_memory,
                    hints.get(platform_id, 0),
                )
            if index >= 0:
                machine = machines[index]
                hints[platform_id] = index
                machine.place(task, class_id)
                ledger.place(platform_id, class_id)
                if not self._dirty[j]:
                    self._refresh_machine(j, index)
                    self._recompute_bounds(j)
                return machine
            if failed is not None:
                entry = failed.setdefault(platform_id, [])
                entry[:] = [
                    (fc, fm)
                    for fc, fm in entry
                    if not (fc >= task_cpu and fm >= task_memory)
                ]
                entry.append((task_cpu, task_memory))
        if skipped_unreachable:
            self.fabric_deferrals += 1
        return None

    def _pick_machine(self, task: Task, pool: MachinePool) -> Machine | None:
        j = self._pool_index[pool.platform_id]
        if task.cpu > self._cpu_bound[j] or task.memory > self._memory_bound[j]:
            return None
        index = first_fit_index(
            self._cpu_room[j],
            self._memory_room[j],
            task.cpu,
            task.memory,
            self._hints.get(pool.platform_id, 0),
        )
        if index < 0:
            return None
        self._hints[pool.platform_id] = index
        return pool.machines[index]

    # ------------------------------------------------------ feasibility

    def feasible_mask(
        self, rows: np.ndarray, columns: TaskColumns, ledger: QuotaLedger
    ) -> np.ndarray:
        """Round-start feasibility of each window row (superset of success).

        A row is marked feasible when *some* reachable, constraint-allowed,
        quota-admitting pool has a schedulable machine with room at the
        current (round-start) capacities.  Rows marked infeasible cannot be
        placed by the serial walk either — capacity and quota stocks only
        tighten within a round — so skipping them changes no outcome.
        """
        self._flush()
        cpu = columns.cpu[rows]
        memory = columns.memory[rows]
        classes = columns.class_id[rows]
        allowed = columns.allowed[rows]
        mask = np.zeros(len(rows), dtype=bool)
        unique_classes, inverse = np.unique(classes, return_inverse=True)
        class_list = [int(c) for c in unique_classes]
        for j, pool in enumerate(self.pools):
            if pool.platform_id in self._unreachable:
                continue
            if self._cpu_bound[j] == -np.inf:
                continue  # nothing schedulable in this pool
            admits = np.asarray(
                ledger.admits_each(pool.platform_id, class_list), dtype=bool
            )
            candidates = admits[inverse] & allowed[:, j] & ~mask
            # O(1)-per-row bound prefilter: a demand above the pool's
            # exact per-dimension room maxima cannot fit any machine, so
            # it is excluded before the row-by-machine broadcast.
            candidates &= (cpu <= self._cpu_bound[j]) & (
                memory <= self._memory_bound[j]
            )
            if not candidates.any():
                continue
            sub = np.flatnonzero(candidates)
            fits = (cpu[sub, None] <= self._cpu_room[j][None, :]) & (
                memory[sub, None] <= self._memory_room[j][None, :]
            )
            mask[sub] = fits.any(axis=1)
        return mask


# ----------------------------------------------------- columnar simulator


class ColumnarClusterSimulator(ClusterSimulator):
    """Drop-in :class:`ClusterSimulator` with columnar hot paths.

    Selected via ``HarmonyConfig(engine="columnar")``; the object engine
    remains the oracle.  All object state (pools, ledger, metrics,
    generation/finish bookkeeping) is inherited unchanged — the overrides
    (a) source arrivals from the sorted submit column, (b) run scheduling
    rounds through the feasibility cache, (c) keep the capacity columns
    and the cache in sync with machine mutations, and (d) hold the
    priority queue as parallel numpy arrays over an append-only backing
    list, merged incrementally instead of resorting a python list.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.scheduler = ColumnarFirstFitScheduler(self.pools)
        self.columns = TaskColumns(
            self.tasks,
            self._task_class,
            tuple(pool.platform_id for pool in self.scheduler.pools),
        )
        #: The priority queue as parallel numpy arrays instead of a sorted
        #: python list.  ``self._pending`` stays append-only (the parent
        #: only ever appends); these arrays hold the *active* entries in
        #: the exact order the object engine's sorted list would have:
        #: positions into ``self._pending``, task rows, and the sort-key
        #: columns (negated priority, submit) used for incremental merges.
        self._sorted_pos = np.empty(0, dtype=np.intp)
        self._sorted_rows = np.empty(0, dtype=np.intp)
        self._sorted_negp = np.empty(0, dtype=np.int64)
        self._sorted_submit = np.empty(0, dtype=np.float64)
        #: Prefix of ``self._pending`` already merged into the arrays;
        #: entries past it are appends awaiting the next round's merge.
        self._merged_len = 0
        #: Per-task proof bits: True = a placement attempt (or a full
        #: vectorized mask) proved this pending task unplaceable, and no
        #: capacity growth / quota opening has invalidated the proof yet.
        self._infeasible = np.zeros(len(self.columns), dtype=bool)
        #: Whether the proof bits are trustworthy; False forces the next
        #: round to rebuild them with one full feasibility mask.
        self._mask_valid = False
        #: (pool index, machine index) slots whose capacity grew (or whose
        #: machine became schedulable) since the last round.
        self._growth: set[tuple[int, int]] = set()
        #: (platform, class) quota slots that released a unit since the
        #: last round (only tracked while a quota table is active).
        self._openings: set[tuple[int, int]] = set()

    # ------------------------------------------------------------- replay

    def run(self):
        """Replay with arrivals streamed from the submit column.

        Arrival order matches the object engine exactly: a stable argsort
        of the submit column reproduces heap order (equal submit times tie
        on insertion order, which is trace order), and the merge against
        the remaining event heap compares the same ``(time, kind)`` key the
        heap sorts by.  No TASK_ARRIVAL event is ever pushed.
        """
        self._push_control_ticks()
        order = np.argsort(self.columns.submit, kind="stable")
        submits = self.columns.submit[order]
        tasks = self.tasks
        queue = self._queue
        cursor = 0
        count = len(order)
        arrival_key = int(EventKind.TASK_ARRIVAL)
        while True:
            key = queue.peek_key()
            if cursor < count:
                submit = float(submits[cursor])
                if submit <= self.horizon and (
                    key is None or (submit, arrival_key) < key
                ):
                    queue.advance(submit)
                    self._on_arrival(tasks[order[cursor]])
                    cursor += 1
                    continue
            if key is None or key[0] > self.horizon:
                break
            self._dispatch(queue.pop())
        return self._finish_run()

    # ------------------------------------------------------------- events

    def _on_arrival(self, task: Task) -> None:
        super()._on_arrival(task)
        pending = self._pending
        if pending and pending[-1] is task:
            # The arrival walk just failed to place it: a fresh proof.
            self._infeasible[self.columns.row_of[task.uid]] = True

    def _on_finish(self, payload) -> None:
        task, generation = payload
        if self._generation.get(task.uid) == generation:
            machine = self._machine_of.get(task.uid)
            if machine is not None:
                self.scheduler.mark_stale(machine)
                self._growth.add(self.scheduler._slot_of[machine.machine_id])
                if self.ledger.restricted:
                    entry = machine.running.get(task.uid)
                    if entry is not None:
                        self._openings.add((machine.model.platform_id, entry[1]))
        super()._on_finish(payload)

    def _on_machine_ready(self, machine) -> None:
        self.scheduler.mark_stale(machine)
        self._growth.add(self.scheduler._slot_of[machine.machine_id])
        super()._on_machine_ready(machine)

    def _try_preempt(self, task, class_id, now):
        machine = super()._try_preempt(task, class_id, now)
        if machine is not None:
            # Evictions freed quota slots and possibly net capacity on the
            # target machine; rare enough to just rebuild the cache.
            self.scheduler.mark_stale(machine)
            self._invalidate_proofs()
        return machine

    def crash_machine(self, pool, machine, now, repair_seconds) -> None:
        self.scheduler.mark_stale(machine)
        if self.ledger.restricted:
            for _uid, (_victim, class_id) in machine.running.items():
                self._openings.add((machine.model.platform_id, class_id))
        super().crash_machine(pool, machine, now, repair_seconds)

    def _apply_decision(self, decision, now) -> None:
        super()._apply_decision(decision, now)
        # Reconciliation can flip many machines across every pool, and a
        # fresh quota table may re-open admission: rebuild wholesale.
        self.scheduler.invalidate_all()
        self._invalidate_proofs()

    def on_fabric_changed(self, now: float) -> None:
        super().on_fabric_changed(now)
        # Reachability may have grown; stretch reissues don't touch
        # capacity but partitions healing re-open whole cells.
        self._invalidate_proofs()

    def _reissue_finishes(self, machine, ratio: float, now: float) -> None:
        """Batch finish-time reissue (straggler/fabric stretch)."""
        running = machine.running
        if not running:
            return
        uids = list(running.keys())
        finish_time = self._finish_time
        finishes = np.fromiter(
            (finish_time.get(uid, np.nan) for uid in uids),
            dtype=np.float64,
            count=len(uids),
        )
        new_finishes = reissue_finish_times(finishes, now, ratio)
        generations = self._generation
        queue = self._queue
        for uid, old, new in zip(uids, finishes, new_finishes):
            if np.isnan(old):
                continue
            generation = generations.get(uid, 0) + 1
            generations[uid] = generation
            new = float(new)
            finish_time[uid] = new
            queue.schedule(new, EventKind.TASK_FINISH, (running[uid][0], generation))

    # ---------------------------------------------------- proof-bit cache

    def _invalidate_proofs(self) -> None:
        """Drop every proof; the next round re-derives them in one mask."""
        self._mask_valid = False
        self._infeasible[:] = False
        self._growth.clear()
        self._openings.clear()

    def _merge_appends(self) -> None:
        """Merge tasks appended to ``_pending`` into the sorted arrays.

        The object engine's stable ``list.sort(key=(-priority, submit))``
        over *already-sorted prefix + appended tail* is exactly a stable
        merge: each appended task lands after every equal-key entry of the
        prefix (stability), appended tasks keep their relative order on
        ties, and unequal keys find their positions independently.  Small
        batches binary-search their slots against the cached key columns
        and go in with one multi-index ``np.insert``; large batches (crash
        sweeps) fall back to a full stable lexsort of the concatenation —
        both reproduce the python sort's permutation bit-exactly, without
        ever rebuilding a python list.
        """
        pending = self._pending
        n = len(pending)
        m = self._merged_len
        if n == m:
            return
        cols = self.columns
        row_of = cols.row_of
        rows_new = np.fromiter(
            (row_of[t.uid] for t in pending[m:n]), dtype=np.intp, count=n - m
        )
        pos_new = np.arange(m, n, dtype=np.intp)
        negp_new = -cols.priority[rows_new]
        submit_new = cols.submit[rows_new]
        sorted_negp = self._sorted_negp
        sorted_submit = self._sorted_submit
        if len(sorted_negp) == 0 or (n - m) > 32:
            pos_cat = np.concatenate([self._sorted_pos, pos_new])
            rows_cat = np.concatenate([self._sorted_rows, rows_new])
            negp_cat = np.concatenate([sorted_negp, negp_new])
            submit_cat = np.concatenate([sorted_submit, submit_new])
            order = np.lexsort((submit_cat, negp_cat))
            self._sorted_pos = pos_cat[order]
            self._sorted_rows = rows_cat[order]
            self._sorted_negp = negp_cat[order]
            self._sorted_submit = submit_cat[order]
        else:
            # Stable-sort the batch by key first: two appends landing in
            # the same gap of the prefix must come out in key order (ties
            # in append order), which multi-index ``np.insert`` preserves
            # only if the values already arrive sorted.
            batch_order = np.lexsort((submit_new, negp_new))
            pos_new = pos_new[batch_order]
            rows_new = rows_new[batch_order]
            negp_new = negp_new[batch_order]
            submit_new = submit_new[batch_order]
            ins = np.empty(n - m, dtype=np.intp)
            for k in range(n - m):
                lo = int(np.searchsorted(sorted_negp, negp_new[k], side="left"))
                hi = int(np.searchsorted(sorted_negp, negp_new[k], side="right"))
                ins[k] = lo + int(
                    np.searchsorted(
                        sorted_submit[lo:hi], submit_new[k], side="right"
                    )
                )
            self._sorted_pos = np.insert(self._sorted_pos, ins, pos_new)
            self._sorted_rows = np.insert(self._sorted_rows, ins, rows_new)
            self._sorted_negp = np.insert(sorted_negp, ins, negp_new)
            self._sorted_submit = np.insert(sorted_submit, ins, submit_new)
        self._merged_len = n
        self._pending_dirty = False

    def _sort_pending(self) -> None:
        # The sorted order lives in the parallel arrays; never let the
        # parent resort the append-only backing list.
        self._merge_appends()

    def _backlog_by_class(self) -> dict[int, int]:
        """Parent's backlog census, vectorized, in the parent's key order.

        The object engine iterates its pending list as *last sorted order
        plus appends* and the dict's keys appear in first-encounter
        order; counting the class-id column over the sorted rows plus the
        unmerged tail and emitting classes sorted by first occurrence
        reproduces both the counts and that key order exactly (the
        append-only backing list's placed entries are skipped because the
        sorted arrays never reference them).
        """
        cols = self.columns
        rows = self._sorted_rows
        pending = self._pending
        m = self._merged_len
        n = len(pending)
        if n > m:
            rows = np.concatenate([rows, cols.rows_for(pending[m:n])])
        if not len(rows):
            return {}
        unique, first_index, counts = np.unique(
            cols.class_id[rows], return_index=True, return_counts=True
        )
        order = np.argsort(first_index, kind="stable")
        return {int(unique[i]): int(counts[i]) for i in order.tolist()}

    def _consume_events(self) -> None:
        """Retest flagged tasks against capacity growth / quota openings.

        Clearing a proof bit is always safe (the task just gets examined
        serially again); the invariant that matters is the converse —
        every event that could turn a proven-infeasible task placeable
        must clear its bit, and this retest is deliberately a superset:
        a task fitting a grown machine clears even if admission would
        still refuse elsewhere.
        """
        growth = self._growth
        openings = self._openings
        if not growth and not openings:
            return
        flags = self._infeasible
        rows = self._sorted_rows
        flagged = flags[rows]
        if flagged.any():
            sub = rows[flagged]
            cols = self.columns
            cpu = cols.cpu[sub]
            memory = cols.memory[sub]
            classes = cols.class_id[sub]
            cleared = np.zeros(len(sub), dtype=bool)
            by_pool: dict[int, list[int]] = {}
            for j, i in growth:
                by_pool.setdefault(j, []).append(i)
            for j in sorted(by_pool):
                self._retest(
                    sub, cleared, cpu, memory, classes, j,
                    machine_index=np.asarray(sorted(by_pool[j]), dtype=np.intp),
                )
            for platform_id, class_id in sorted(openings):
                j = self.scheduler._pool_index.get(platform_id)
                if j is None:
                    continue
                if not self.ledger.admits(platform_id, class_id):
                    continue  # the slot refilled already; nothing opened
                self._retest(
                    sub, cleared, cpu, memory, classes, j,
                    machine_index=None,
                    class_id=class_id,
                )
            if cleared.any():
                flags[sub[cleared]] = False
        growth.clear()
        openings.clear()

    def _retest(
        self,
        sub: np.ndarray,
        cleared: np.ndarray,
        cpu: np.ndarray,
        memory: np.ndarray,
        classes: np.ndarray,
        j: int,
        machine_index: np.ndarray | None,
        class_id: int | None = None,
    ) -> None:
        """Clear proof bits for flagged tasks now fitting pool ``j``.

        ``machine_index`` restricts the fit test to the grown machines
        (the quota-opening path retests the whole pool instead, filtered
        to the opened ``class_id``).
        """
        scheduler = self.scheduler
        pool = scheduler.pools[j]
        if pool.platform_id in scheduler._unreachable:
            return  # a cell becoming reachable invalidates wholesale
        candidates = ~cleared & self.columns.allowed[sub, j]
        if class_id is not None:
            candidates &= classes == class_id
        elif self.ledger.restricted:
            unique_classes, inverse = np.unique(classes, return_inverse=True)
            admits = np.asarray(
                self.ledger.admits_each(
                    pool.platform_id, [int(c) for c in unique_classes]
                ),
                dtype=bool,
            )
            candidates &= admits[inverse]
        k = np.flatnonzero(candidates)
        if not len(k):
            return
        cpu_room = scheduler._cpu_room[j]
        memory_room = scheduler._memory_room[j]
        if machine_index is not None:
            cpu_room = cpu_room[machine_index]
            memory_room = memory_room[machine_index]
        fits = (cpu[k, None] <= cpu_room[None, :]) & (
            memory[k, None] <= memory_room[None, :]
        )
        cleared[k[fits.any(axis=1)]] = True

    # ------------------------------------------------------------- rounds

    def _schedule_round(self, max_attempts: int) -> None:
        if not self._pending:
            return
        self._merge_appends()
        spos = self._sorted_pos
        total = len(spos)
        if not total:
            # The append-only backing list may still reference placed
            # tasks; an empty active queue means the object engine would
            # not have run this round at all.
            return
        scheduler = self.scheduler
        scheduler._flush()
        self._consume_events()
        now = self._queue.now
        pending = self._pending
        window_len = min(max_attempts, total)
        window_pos = spos[:window_len]
        window_rows = self._sorted_rows[:window_len]
        if self._mask_valid:
            feasible = ~self._infeasible[window_rows]
        else:
            feasible = scheduler.feasible_mask(window_rows, self.columns, self.ledger)
            self._infeasible[window_rows] = ~feasible
            self._mask_valid = True
        # Only candidate entries need the serial walk; proven-infeasible
        # entries keep their queue position wholesale.  A failing
        # examination in the object engine walks every pool, so each one
        # counts a fabric deferral exactly when any pool is unreachable
        # (and serial failures count their own inside ``try_place``).
        candidate_index = np.flatnonzero(feasible)
        if bool(scheduler._unreachable):
            scheduler.fabric_deferrals += int(window_len - len(candidate_index))
        if not len(candidate_index):
            return
        infeasible = self._infeasible
        placed = np.zeros(window_len, dtype=bool)
        placements: list[tuple[Task, int, Machine]] = []
        failed: dict[int, list[tuple[float, float]]] = {}
        class_ids = self.columns.class_id
        ledger = self.ledger
        for i in candidate_index.tolist():
            task = pending[window_pos[i]]
            class_id = int(class_ids[window_rows[i]])
            machine = scheduler.try_place(task, class_id, ledger, failed)
            if machine is None:
                infeasible[window_rows[i]] = True
            else:
                placed[i] = True
                placements.append((task, class_id, machine))
        if placements:
            keep = ~placed
            self._sorted_pos = np.concatenate([window_pos[keep], spos[window_len:]])
            self._sorted_rows = np.concatenate(
                [window_rows[keep], self._sorted_rows[window_len:]]
            )
            self._sorted_negp = np.concatenate(
                [self._sorted_negp[:window_len][keep], self._sorted_negp[window_len:]]
            )
            self._sorted_submit = np.concatenate(
                [
                    self._sorted_submit[:window_len][keep],
                    self._sorted_submit[window_len:],
                ]
            )
        for task, class_id, machine in placements:
            self._machine_of[task.uid] = machine
            self._start_task(task, class_id, machine, now)
