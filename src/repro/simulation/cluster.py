"""The cluster simulator: trace replay under a provisioning policy.

Event loop (Section IX's simulation methodology):

- **task arrival**: classify, enqueue, try to place immediately;
- **task finish**: release capacity, power off drained machines, backfill;
- **machine ready**: a booted machine becomes schedulable, backfill;
- **fault**: the :class:`~repro.resilience.faults.FaultInjector` fires a
  scripted or stochastic fault (correlated outage, straggler degradation,
  Poisson crash sweep) against the fleet;
- **control tick** (every ``control_interval`` s): account energy for the
  elapsed interval (Eq. 7 + switching, Eq. 9), report observed arrivals to
  the policy (masked during monitoring blackouts), apply its new machine
  targets and quotas, then schedule.

Policies plug in through the small :class:`Policy` protocol; adapters for
CBS / CBP / baseline / static live in :mod:`repro.simulation.harmony`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.energy.accounting import EnergyMeter
from repro.energy.models import MachineModel
from repro.energy.prices import PriceSchedule, constant_price
from repro.provisioning.controller import ProvisioningDecision
from repro.resilience.fabric import FabricState, FabricView, link_label
from repro.resilience.faults import FaultInjector, FaultPlan, RandomMachineFailures
from repro.simulation.engine import EventKind, EventQueue
from repro.simulation.machine import MachinePool, MachineState
from repro.simulation.metrics import SimulationMetrics
from repro.simulation.scheduler import FirstFitScheduler, QuotaLedger
from repro.trace.schema import Task


@dataclass(frozen=True)
class ClusterView:
    """Snapshot handed to the policy at each control tick."""

    time: float
    #: Tasks waiting, per class id.
    backlog: dict[int, int]
    #: Tasks currently running, per class id (current label).
    running: dict[int, int]
    #: Tasks currently running, per platform id then class id.
    running_by_platform: dict[int, dict[int, int]]
    #: Aggregate requested (cpu, memory) of tasks in the system
    #: (pending + running), normalized machine units.
    demand_cpu: float
    demand_memory: float
    #: Machines per platform id that exist (the availability bound N_m).
    available: dict[int, int]
    #: Machines per platform id currently drawing power (on or booting) —
    #: the true z_{t-1} against which switching costs accrue.
    powered: dict[int, int]
    #: Observed arrival counts per class id in the finished interval.
    arrivals: dict[int, float]
    #: Fabric snapshot (per-cell staleness stamps, unreachable cells,
    #: degraded links) when the run has a fabric; ``None`` otherwise.
    #: During a partition the per-cell fields above (``available``,
    #: ``powered``, ``running_by_platform``) are frozen at last-known
    #: values for unreachable cells — a scoped blackout the control plane
    #: detects through :attr:`FabricView.last_heard`.
    fabric: FabricView | None = None


class Policy(Protocol):
    """A provisioning policy driving the cluster."""

    def decide(self, view: ClusterView) -> ProvisioningDecision:
        """Return machine targets and (optional) container quotas."""


@dataclass(frozen=True)
class ClusterConfig:
    """Simulator knobs."""

    control_interval: float = 300.0
    price: PriceSchedule = field(default_factory=constant_price)
    #: Cap on pending-queue entries examined per scheduling round.
    max_schedule_attempts: int = 5000
    #: Smaller cap for the opportunistic pass after each task finish.
    backfill_attempts: int = 200
    #: Failure injection: expected crashes per powered machine-hour.  Tasks
    #: on a crashed machine restart from scratch elsewhere; the machine is
    #: unavailable for ``repair_seconds``.  A thin preset over
    #: :class:`~repro.resilience.faults.RandomMachineFailures` — for
    #: correlated outages, stragglers and monitoring blackouts compose a
    #: ``fault_plan`` instead.
    failure_rate_per_machine_hour: float = 0.0
    repair_seconds: float = 3600.0
    failure_seed: int = 0
    #: Composable fault scenario (scripted + stochastic); merged with the
    #: legacy Poisson knob above when both are set.
    fault_plan: FaultPlan | None = None
    #: Priority preemption (the trace's priority semantics, Section III):
    #: a task may evict running tasks at least ``preemption_priority_gap``
    #: priority levels below it when no machine has room.  Evicted tasks
    #: restart from scratch (the clusterdata EVICT/resubmit cycle).
    enable_preemption: bool = False
    preemption_priority_gap: int = 2

    def __post_init__(self) -> None:
        if self.control_interval <= 0:
            raise ValueError(f"control_interval must be positive, got {self.control_interval}")
        if self.max_schedule_attempts < 1:
            raise ValueError(
                f"max_schedule_attempts must be >= 1, got {self.max_schedule_attempts}"
            )
        if self.backfill_attempts < 1:
            raise ValueError(
                f"backfill_attempts must be >= 1, got {self.backfill_attempts}"
            )
        if self.failure_rate_per_machine_hour < 0:
            raise ValueError(
                "failure_rate_per_machine_hour must be >= 0, got "
                f"{self.failure_rate_per_machine_hour}"
            )
        if self.repair_seconds < 0:
            raise ValueError(f"repair_seconds must be >= 0, got {self.repair_seconds}")
        if self.preemption_priority_gap < 1:
            raise ValueError(
                f"preemption_priority_gap must be >= 1, got {self.preemption_priority_gap}"
            )


class ClusterSimulator:
    """Replays a task stream against a machine fleet under one policy."""

    def __init__(
        self,
        tasks: tuple[Task, ...],
        horizon: float,
        machine_models: tuple[MachineModel, ...],
        policy: Policy,
        class_of: Callable[[Task], int],
        config: ClusterConfig | None = None,
        relabel: Callable[[Task, float], int] | None = None,
    ) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.config = config or ClusterConfig()
        self.horizon = horizon
        self.policy = policy
        self.class_of = class_of
        self.relabel = relabel
        self.relabel_events = 0
        self.tasks = tasks

        self.pools: list[MachinePool] = []
        offset = 0
        for model in machine_models:
            self.pools.append(MachinePool(model, id_offset=offset))
            offset += model.count
        self._pool_by_platform = {pool.platform_id: pool for pool in self.pools}

        self.scheduler = FirstFitScheduler(self.pools)
        self.ledger = QuotaLedger()
        self.metrics = SimulationMetrics()
        self.energy = EnergyMeter(
            models={m.platform_id: m for m in machine_models},
            price=self.config.price,
        )

        self._queue = EventQueue()
        self._pending: list[Task] = []
        self._pending_dirty = False
        self._class_cache: dict[tuple[int, int], int] = {}
        self._interval_arrivals: dict[int, float] = {}
        self._last_switch_counts: dict[int, tuple[int, int]] = {
            pool.platform_id: (0, 0) for pool in self.pools
        }
        self._demand_cpu = 0.0
        self._demand_memory = 0.0
        self._last_tick = 0.0
        self._total_machines = sum(pool.total for pool in self.pools)
        #: task uid -> machine hosting it (O(1) release on finish).
        self._machine_of: dict[tuple[int, int], "Machine"] = {}
        #: task uid -> absolute scheduled finish time (for fault rescaling).
        self._finish_time: dict[tuple[int, int], float] = {}
        self.tasks_killed = 0
        self.tasks_preempted = 0
        #: Placement generation per task: invalidates stale finish events
        #: after a failure-driven restart.
        self._generation: dict[tuple[int, int], int] = {}
        #: Fabric link state, attached by the injector when the plan has
        #: fabric faults (None = no network fault universe this run).
        self.fabric: FabricState | None = None
        #: Per-cell fabric stretch currently applied to each pool.
        self._pool_stretch: dict[int, float] = {
            pool.platform_id: 1.0 for pool in self.pools
        }
        #: Cells currently unreachable from the trace-ingest cell.
        self._unreachable: frozenset[int] = frozenset()
        #: Cell id -> time of its last fresh telemetry report.
        self._last_heard: dict[int, float] = {
            pool.platform_id: 0.0 for pool in self.pools
        }
        #: Cell id -> last fresh (available, powered, running-by-class)
        #: report, replayed for unreachable cells (the scoped blackout).
        self._cell_report: dict[int, tuple[int, int, dict[int, int] | None]] = {
            pool.platform_id: (pool.total, 0, None) for pool in self.pools
        }
        #: When the current partition started (None = not partitioned).
        self._partition_since: float | None = None
        self.fault_injector = self._build_fault_injector()

    def _build_fault_injector(self) -> FaultInjector | None:
        """Merge the legacy Poisson knob with any composed fault plan."""
        plan = self.config.fault_plan
        if self.config.failure_rate_per_machine_hour > 0:
            preset = RandomMachineFailures(
                self.config.failure_rate_per_machine_hour, self.config.repair_seconds
            )
            plan = (plan or FaultPlan(seed=self.config.failure_seed)).with_fault(preset)
        if plan is None or not plan.has_faults:
            return None
        injector = FaultInjector(plan)
        injector.attach(self)
        return injector

    # ---------------------------------------------------------------- runs

    def run(self) -> SimulationMetrics:
        """Replay the full trace; returns the collected metrics."""
        for task in self.tasks:
            self._queue.schedule(task.submit_time, EventKind.TASK_ARRIVAL, task)
        self._push_control_ticks()

        while self._queue:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > self.horizon:
                break
            self._dispatch(self._queue.pop())
        return self._finish_run()

    def _push_control_ticks(self) -> None:
        """Queue every control tick up to (and closing at) the horizon."""
        tick = 0.0
        while tick < self.horizon:
            self._queue.schedule(tick, EventKind.CONTROL_TICK, None)
            tick += self.config.control_interval
        # A final tick at the horizon closes the last energy interval.
        self._queue.schedule(self.horizon, EventKind.CONTROL_TICK, None)

    def _dispatch(self, event) -> None:
        """Route one popped event to its handler."""
        if event.kind is EventKind.TASK_ARRIVAL:
            self._on_arrival(event.payload)
        elif event.kind is EventKind.TASK_FINISH:
            self._on_finish(event.payload)
        elif event.kind is EventKind.MACHINE_READY:
            self._on_machine_ready(event.payload)
        elif event.kind is EventKind.FAULT:
            assert self.fault_injector is not None
            self.fault_injector.fire(event.payload, self._queue.now)
        elif event.kind is EventKind.CONTROL_TICK:
            self._on_tick(self._queue.now)

    def _finish_run(self) -> SimulationMetrics:
        """Close per-run accounting once the event loop drains."""
        if self._partition_since is not None:
            # A partition still open at the horizon ends with the run.
            self.metrics.fabric.partition_seconds += (
                self.horizon - self._partition_since
            )
            self._partition_since = None
        self.metrics.fabric.deferred_placements = self.scheduler.fabric_deferrals
        return self.metrics

    # -------------------------------------------------------------- events

    def _task_class(self, task: Task) -> int:
        cached = self._class_cache.get(task.uid)
        if cached is None:
            cached = self.class_of(task)
            self._class_cache[task.uid] = cached
        return cached

    def _on_arrival(self, task: Task) -> None:
        now = self._queue.now
        self.metrics.task_submitted(task, now)
        class_id = self._task_class(task)
        self._interval_arrivals[class_id] = self._interval_arrivals.get(class_id, 0.0) + 1.0
        self._demand_cpu += task.cpu
        self._demand_memory += task.memory
        machine = self.scheduler.try_place(task, class_id, self.ledger)
        if machine is None and self.config.enable_preemption:
            machine = self._try_preempt(task, class_id, now)
        if machine is None:
            self._pending.append(task)
            self._pending_dirty = True
        else:
            self._machine_of[task.uid] = machine
            self._start_task(task, class_id, machine, now)

    def _start_task(self, task: Task, class_id: int, machine: "Machine", now: float) -> None:
        self.metrics.task_scheduled(task, now, class_id, machine.model.platform_id)
        generation = self._generation.get(task.uid, 0) + 1
        self._generation[task.uid] = generation
        # Stragglers and degraded fabric paths stretch the work: a degraded
        # machine (or cell) runs its tasks slower.
        finish = now + task.duration * machine.effective_slowdown
        self._finish_time[task.uid] = finish
        self._queue.schedule(finish, EventKind.TASK_FINISH, (task, generation))

    def _on_finish(self, payload: tuple[Task, int]) -> None:
        task, generation = payload
        if self._generation.get(task.uid) != generation:
            return  # stale event: the task was killed and restarted
        now = self._queue.now
        machine = self._machine_of.pop(task.uid)
        self._finish_time.pop(task.uid, None)
        class_id = machine.release(task)
        self.ledger.release(machine.model.platform_id, class_id)
        self.metrics.task_finished(task, now)
        self._demand_cpu = max(self._demand_cpu - task.cpu, 0.0)
        self._demand_memory = max(self._demand_memory - task.memory, 0.0)
        pool = self._pool_by_platform[machine.model.platform_id]
        pool.maybe_power_off(machine)
        if self._pending:
            self._schedule_round(self.config.backfill_attempts)

    def _on_machine_ready(self, machine) -> None:
        pool = self._pool_by_platform[machine.model.platform_id]
        pool.machine_ready(machine)
        if machine.state is MachineState.ON:
            # Closes the repair episode if this machine had crashed (no-op
            # otherwise); a boot cancelled by a mid-boot crash stays open.
            self.metrics.machine_recovered(machine.machine_id, self._queue.now)
        if self._pending:
            self._schedule_round(self.config.backfill_attempts)

    def _on_tick(self, now: float) -> None:
        self._account_energy(now)
        self._record_timelines(now)
        if now >= self.horizon:
            return
        if self.relabel is not None:
            self._relabel_running(now)

        # What the monitoring pipe reports — zeroed during a blackout, even
        # though the tasks really arrived (the policy must cope).
        arrivals = self._interval_arrivals
        if self.fault_injector is not None:
            arrivals = self.fault_injector.mask_arrivals(now, arrivals)

        available = {
            pool.platform_id: pool.total
            - sum(1 for m in pool.machines if m.failed_until > now)
            for pool in self.pools
        }
        powered = {pool.platform_id: pool.powered for pool in self.pools}
        running_by_platform = self.ledger.snapshot()
        fabric_view = None
        if self.fabric is not None:
            fabric_view = self._fabric_view(
                now, available, powered, running_by_platform
            )
        view = ClusterView(
            time=now,
            backlog=self._backlog_by_class(),
            running=self._running_by_class(),
            running_by_platform=running_by_platform,
            demand_cpu=self._demand_cpu,
            demand_memory=self._demand_memory,
            available=available,
            powered=powered,
            arrivals=dict(arrivals),
            fabric=fabric_view,
        )
        self._interval_arrivals = {}
        decision = self.policy.decide(view)
        self._apply_decision(decision, now)
        self._schedule_round(self.config.max_schedule_attempts)

    # ------------------------------------------------------------ internals

    def _try_preempt(self, task: Task, class_id: int, now: float):
        """Priority preemption: evict enough strictly-lower-priority work.

        Scans schedulable machines the task could run on for the one where
        evicting the smallest set of tasks at least
        ``preemption_priority_gap`` levels below frees enough room.
        Evicted tasks restart from scratch (re-enqueued pending), matching
        the clusterdata EVICT/resubmit semantics.  Quota admission still
        applies to the preemptor.
        """
        threshold = task.priority - self.config.preemption_priority_gap
        if threshold < 0:
            return None
        best_machine = None
        best_victims: list[tuple[Task, int]] | None = None
        for pool in self.pools:
            if pool.platform_id in self._unreachable:
                continue  # no placements into partitioned cells
            model = pool.model
            if task.cpu > model.cpu_capacity or task.memory > model.memory_capacity:
                continue
            if (
                task.allowed_platforms is not None
                and pool.platform_id not in task.allowed_platforms
            ):
                continue
            if not self.ledger.admits(pool.platform_id, class_id):
                continue
            for machine in pool.machines:
                if not machine.schedulable:
                    continue
                candidates = sorted(
                    (
                        (victim, vid)
                        for victim, vid in machine.running.values()
                        if victim.priority <= threshold
                    ),
                    key=lambda pair: pair[0].cpu + pair[0].memory,
                )
                need_cpu = task.cpu - machine.cpu_free
                need_memory = task.memory - machine.memory_free
                victims: list[tuple[Task, int]] = []
                freed_cpu = freed_memory = 0.0
                for victim, vid in candidates:
                    if freed_cpu >= need_cpu and freed_memory >= need_memory:
                        break
                    victims.append((victim, vid))
                    freed_cpu += victim.cpu
                    freed_memory += victim.memory
                if freed_cpu >= need_cpu and freed_memory >= need_memory:
                    if best_victims is None or len(victims) < len(best_victims):
                        best_machine, best_victims = machine, victims
            if best_victims is not None and len(best_victims) <= 1:
                break
        if best_machine is None or best_victims is None:
            return None

        for victim, victim_class in best_victims:
            best_machine.release(victim)
            self.ledger.release(best_machine.model.platform_id, victim_class)
            self._machine_of.pop(victim.uid, None)
            self._finish_time.pop(victim.uid, None)
            self._generation[victim.uid] = self._generation.get(victim.uid, 0) + 1
            record = self.metrics.records[victim.uid]
            record.schedule_time = None
            record.platform_id = None
            self.tasks_preempted += 1
            self._pending.append(victim)
            self._pending_dirty = True
        best_machine.place(task, class_id)
        self.ledger.place(best_machine.model.platform_id, class_id)
        return best_machine

    # -------------------------------------------------------- fault hooks
    #
    # The FaultInjector decides *what* fails and *when*; these methods own
    # the mechanics (quota stocks, finish events, metrics bookkeeping).

    def schedule_fault(self, time: float, payload: object) -> None:
        """Queue a fault event (fired back to ``fault_injector.fire``)."""
        self._queue.schedule(time, EventKind.FAULT, payload)

    def crash_machine(
        self, pool: MachinePool, machine, now: float, repair_seconds: float
    ) -> None:
        """Crash one machine: its tasks restart elsewhere, repair begins."""
        if machine.is_off and machine.failed_until > now:
            return  # already down (overlapping faults)
        killed = pool.fail(machine, now, repair_seconds)
        self.metrics.machine_failed(machine.machine_id, now)
        for task, class_id in killed:
            self.ledger.release(machine.model.platform_id, class_id)
            self._machine_of.pop(task.uid, None)
            self._finish_time.pop(task.uid, None)
            # Invalidate the in-flight finish event.
            self._generation[task.uid] = self._generation.get(task.uid, 0) + 1
            record = self.metrics.records[task.uid]
            record.schedule_time = None
            record.platform_id = None
            self.metrics.task_killed(task, now)
            self.tasks_killed += 1
            self._pending.append(task)
            self._pending_dirty = True

    def rescale_machine(self, machine, slowdown: float, now: float) -> None:
        """Set a machine's straggler factor.

        Remaining work of every task running there is stretched (or, on
        restore, compressed) by the slowdown ratio; their finish events are
        re-issued under a new generation.
        """
        if slowdown <= 0:
            raise ValueError(f"slowdown must be positive, got {slowdown}")
        old = machine.slowdown
        if old == slowdown:
            return
        machine.slowdown = slowdown
        self._reissue_finishes(machine, slowdown / old, now)

    def _reissue_finishes(self, machine, ratio: float, now: float) -> None:
        """Stretch/compress remaining work of a machine's running tasks."""
        for uid, (task, _) in machine.running.items():
            finish = self._finish_time.get(uid)
            if finish is None:
                continue
            remaining = max(finish - now, 0.0)
            new_finish = now + remaining * ratio
            generation = self._generation.get(uid, 0) + 1
            self._generation[uid] = generation
            self._finish_time[uid] = new_finish
            self._queue.schedule(new_finish, EventKind.TASK_FINISH, (task, generation))

    # ------------------------------------------------------- fabric hooks

    def fabric_cells(self) -> tuple[int, ...]:
        """The fleet's cells (platform ids, sorted) for topology derivation."""
        return tuple(sorted(pool.platform_id for pool in self.pools))

    def attach_fabric(self, fabric: FabricState) -> None:
        """Bind the injector's fabric state (called from ``attach``)."""
        if self.fabric is not None:
            raise RuntimeError("a fabric is already attached to this simulator")
        cells = set(fabric.topology.cells)
        pools = set(self._pool_by_platform)
        if cells != pools:
            raise ValueError(
                f"fabric cells {sorted(cells)} do not match the fleet's "
                f"platform ids {sorted(pools)}"
            )
        self.fabric = fabric

    def on_fabric_changed(self, now: float) -> None:
        """React to a fabric mutation: stretches, reachability, accounting.

        Per-cell service-time stretch is the best-surviving-path compound
        stretch from the ingest cell (1.0 inside the ingest cell itself);
        it applies pool-wide, re-issuing finish events exactly like
        straggler rescaling.  An unreachable cell keeps its last applied
        stretch frozen — work already running there continues locally —
        while the scheduler stops placing new work into it.
        """
        assert self.fabric is not None
        stretch_by_cell = self.fabric.cell_stretch()
        for pool in self.pools:
            stretch = stretch_by_cell.get(pool.platform_id)
            if stretch is None:  # unreachable: freeze the last stretch
                continue
            current = self._pool_stretch[pool.platform_id]
            if stretch != current:
                self._pool_stretch[pool.platform_id] = stretch
                for machine in pool.machines:
                    machine.fabric_stretch = stretch
                    self._reissue_finishes(machine, stretch / current, now)

        unreachable = frozenset(self.fabric.unreachable_cells())
        if unreachable == self._unreachable:
            return
        self._unreachable = unreachable
        self.scheduler.set_unreachable(unreachable)
        fabric_metrics = self.metrics.fabric
        fabric_metrics.max_unreachable_cells = max(
            fabric_metrics.max_unreachable_cells, len(unreachable)
        )
        if unreachable and self._partition_since is None:
            self._partition_since = now
        elif not unreachable and self._partition_since is not None:
            fabric_metrics.partition_seconds += now - self._partition_since
            self._partition_since = None

    def _fabric_view(
        self,
        now: float,
        available: dict[int, int],
        powered: dict[int, int],
        running_by_platform: dict[int, dict[int, int]],
    ) -> FabricView:
        """Per-tick fabric snapshot; masks unreachable cells' telemetry.

        Reachable cells report fresh values and advance their staleness
        stamp; unreachable cells replay their last fresh report (the
        scoped-blackout semantics) so the policy sees a partitioned — not
        merely shrunken — cluster.
        """
        assert self.fabric is not None
        for pool in self.pools:
            cell = pool.platform_id
            if cell in self._unreachable:
                stale_available, stale_powered, stale_running = self._cell_report[cell]
                available[cell] = stale_available
                powered[cell] = stale_powered
                if stale_running is None:
                    running_by_platform.pop(cell, None)
                else:
                    running_by_platform[cell] = dict(stale_running)
            else:
                self._last_heard[cell] = now
                running = running_by_platform.get(cell)
                self._cell_report[cell] = (
                    available[cell],
                    powered[cell],
                    dict(running) if running is not None else None,
                )
        return FabricView(
            unreachable=tuple(sorted(self._unreachable)),
            last_heard=dict(sorted(self._last_heard.items())),
            degraded_links=tuple(
                link_label(pair) for pair in self.fabric.degraded_links()
            ),
            partitioned=bool(self._unreachable),
        )

    def _relabel_running(self, now: float) -> None:
        """Section V's progressive relabeling: running tasks that outlive
        their class's short/long boundary migrate to the long sub-class,
        moving their quota stock with them."""
        assert self.relabel is not None
        for pool in self.pools:
            for machine in pool.machines:
                if not machine.running:
                    continue
                updates: list[tuple[tuple[int, int], Task, int, int]] = []
                for uid, (task, class_id) in machine.running.items():
                    record = self.metrics.records[uid]
                    if record.schedule_time is None:
                        continue
                    elapsed = now - record.schedule_time
                    new_class = self.relabel(task, elapsed)
                    if new_class != class_id:
                        updates.append((uid, task, class_id, new_class))
                for uid, task, old_class, new_class in updates:
                    machine.running[uid] = (task, new_class)
                    self.ledger.release(machine.model.platform_id, old_class)
                    self.ledger.place(machine.model.platform_id, new_class)
                    self.metrics.records[uid].class_id = new_class
                    self.relabel_events += 1

    def _backlog_by_class(self) -> dict[int, int]:
        backlog: dict[int, int] = {}
        for task in self._pending:
            class_id = self._task_class(task)
            backlog[class_id] = backlog.get(class_id, 0) + 1
        return backlog

    def _running_by_class(self) -> dict[int, int]:
        running: dict[int, int] = {}
        for pool in self.pools:
            for class_id, count in pool.running_count_by_class().items():
                running[class_id] = running.get(class_id, 0) + count
        return running

    def _apply_decision(self, decision: ProvisioningDecision, now: float) -> None:
        self.ledger.set_quotas(decision.quotas)
        for pool in self.pools:
            target = decision.active.get(pool.platform_id, 0)
            started = pool.reconcile(target, now=now)
            for machine in started:
                self._queue.schedule(
                    now + machine.model.boot_seconds, EventKind.MACHINE_READY, machine
                )

    def _sort_pending(self) -> None:
        """Priority-order the pending queue if appends dirtied it.

        Highest priority first; FIFO (stable by submit time) within a
        priority level.  Shared by the object and columnar engines so both
        walk an identically ordered queue.
        """
        if self._pending_dirty:
            self._pending.sort(key=lambda t: (-t.priority, t.submit_time))
            self._pending_dirty = False

    def _schedule_round(self, max_attempts: int) -> None:
        if not self._pending:
            return
        self._sort_pending()
        now = self._queue.now
        placements, leftover = self.scheduler.schedule(
            self._pending, self.ledger, self._task_class, max_attempts=max_attempts
        )
        for placement in placements:
            self._machine_of[placement.task.uid] = placement.machine
            self._start_task(placement.task, placement.class_id, placement.machine, now)
        self._pending = leftover

    def _account_energy(self, now: float) -> None:
        # The interval that just ended may be shorter at the horizon edge.
        seconds = now - self._last_tick
        self._last_tick = now
        if seconds <= 0:
            return
        for pool in self.pools:
            cpu_util, memory_util = pool.utilization()
            on_events, off_events = (
                pool.stats.switch_on_events,
                pool.stats.switch_off_events,
            )
            prev_on, prev_off = self._last_switch_counts[pool.platform_id]
            switches = (on_events - prev_on) + (off_events - prev_off)
            self._last_switch_counts[pool.platform_id] = (on_events, off_events)
            self.energy.record_interval(
                time=now - seconds,
                seconds=seconds,
                platform_id=pool.platform_id,
                active_machines=pool.powered,
                cpu_utilization=cpu_util,
                memory_utilization=memory_util,
                switches=switches,
            )

    def _record_timelines(self, now: float) -> None:
        powered = sum(pool.powered for pool in self.pools)
        schedulable = sum(len(pool.schedulable_machines()) for pool in self.pools)
        self.metrics.machine_timeline.append((now, powered, schedulable))
        failed = sum(
            1 for pool in self.pools for m in pool.machines if m.failed_until > now
        )
        degraded = sum(
            1 for pool in self.pools for m in pool.machines if m.slowdown > 1.0
        )
        blackout = (
            self.fault_injector.in_blackout(now)
            if self.fault_injector is not None
            else False
        )
        self.metrics.fault_sample(now, failed, self._total_machines, degraded, blackout)
        if self.fabric is not None:
            fabric_metrics = self.metrics.fabric
            if self._unreachable:
                fabric_metrics.partition_ticks += 1
            for pair in self.fabric.degraded_links():
                label = link_label(pair)
                fabric_metrics.degraded_link_ticks[label] = (
                    fabric_metrics.degraded_link_ticks.get(label, 0) + 1
                )
        self.metrics.machine_timeline_by_type.append(
            (now, {pool.platform_id: pool.powered for pool in self.pools})
        )
        total_cpu = sum(pool.total * pool.model.cpu_capacity for pool in self.pools)
        total_memory = sum(pool.total * pool.model.memory_capacity for pool in self.pools)
        used_cpu = sum(
            machine.cpu_used for pool in self.pools for machine in pool.machines
        )
        used_memory = sum(
            machine.memory_used for pool in self.pools for machine in pool.machines
        )
        self.metrics.utilization_timeline.append(
            (
                now,
                used_cpu / total_cpu if total_cpu else 0.0,
                used_memory / total_memory if total_memory else 0.0,
            )
        )
