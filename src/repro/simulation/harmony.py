"""End-to-end HARMONY runs: trace in, comparable policy results out.

:class:`HarmonySimulation` wires the whole pipeline together — classifier,
container manager, predictor-driven MPC controller (or baseline), cluster
simulator, energy meter — exactly as Figure 8 sketches the architecture.
:func:`run_policy_comparison` reruns the same trace under CBS, CBP and the
heterogeneity-oblivious baseline for the Figs. 21-26 comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.classification.classifier import ClassifierConfig, TaskClassifier
from repro.containers.manager import ContainerManager, ContainerManagerConfig
from repro.energy.catalog import table2_fleet
from repro.energy.models import MachineModel
from repro.energy.prices import PriceSchedule, constant_price
from repro.forecasting.predictors import make_predictor
from repro.provisioning.autoscaler import ThresholdAutoscaler, ThresholdConfig
from repro.provisioning.baseline import BaselineConfig, BaselineProvisioner
from repro.provisioning.cbp import CbpController
from repro.provisioning.controller import (
    ControllerConfig,
    HarmonyController,
    ProvisioningDecision,
)
from repro.resilience.faults import FaultPlan, FaultStats
from repro.resilience.guard import GuardConfig, GuardedController, GuardStats
from repro.simulation.cluster import ClusterConfig, ClusterSimulator, ClusterView
from repro.simulation.degradation import DegradationLadder
from repro.simulation.metrics import SimulationMetrics
from repro.simulation.timing import PhaseTimer
from repro.trace.sanitize import SanitizationReport
from repro.trace.schema import PriorityGroup, Task, Trace

POLICIES = ("cbs", "cbp", "baseline", "threshold", "static")

#: Replay engines: the per-task-object oracle and the vectorized columnar
#: core (:mod:`repro.simulation.columnar`), contractually bit-identical.
ENGINES = ("object", "columnar")


@dataclass(frozen=True)
class HarmonyConfig:
    """One-stop configuration for an end-to-end run.

    Attributes
    ----------
    policy:
        "cbs" (Algorithm 1), "cbp" (Section VIII-B), "baseline"
        (Section IX-B) or "static" (all machines always on — used for the
        Section III trace-characterization figures).
    fleet:
        Machine models to simulate; defaults to the Table II fleet at 1/10
        scale.
    control_interval / mpc_horizon / price / overprovision / predictor:
        Controller knobs (Algorithm 1, Eq. 17, Section VI).
    epsilon:
        Container sizing violation bound (Eq. 3).
    classifier_sample:
        Max tasks used to fit the classifier (sampled deterministically).
    """

    policy: str = "cbs"
    fleet: tuple[MachineModel, ...] = field(default_factory=lambda: table2_fleet(0.1))
    control_interval: float = 300.0
    mpc_horizon: int = 4
    price: PriceSchedule = field(default_factory=constant_price)
    #: Eq. 17's omega: headroom for first-fit bin-packing slack, so the
    #: rounder can realize (nearly) everything the LP schedules.
    overprovision: float = 1.05
    predictor: str = "arima"
    predictor_kwargs: dict = field(default_factory=dict)
    epsilon: float = 0.4
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)
    manager: ContainerManagerConfig | None = None
    classifier_sample: int = 40_000
    baseline_utilization: float = 0.8
    #: Enable priority preemption in the simulated scheduler (the trace's
    #: priority semantics: production evicts gratis when room is tight).
    enable_preemption: bool = False
    #: Fault scenario injected into the run (see :mod:`repro.resilience`).
    fault_plan: FaultPlan | None = None
    #: Wrap the policy in a :class:`~repro.resilience.guard.GuardedController`
    #: (decision validation, delta clamping, forecast circuit breaker).
    guard: bool = False
    guard_config: GuardConfig | None = None
    #: Replay engine: "object" (per-task dispatch, the oracle) or
    #: "columnar" (vectorized batches; bit-identical summaries).
    engine: str = "object"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {self.policy!r}")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.classifier_sample < 100:
            raise ValueError(
                f"classifier_sample must be >= 100, got {self.classifier_sample}"
            )

    def with_policy(self, policy: str) -> "HarmonyConfig":
        return replace(self, policy=policy)


class _ControllerPolicy:
    """Adapter: HarmonyController/CbpController -> cluster Policy protocol.

    ``arrival_splitter`` redistributes observed arrival counts between the
    short and long sub-classes using the classifier's historical long
    fractions — every task is labeled short at arrival (Section V), so raw
    counts would starve the long classes the forecasts must provision for.

    ``ladder`` (a :class:`~repro.simulation.degradation.DegradationLadder`)
    makes every control tick total: if CBS-RELAX fails mid-run the tick
    degrades to reactive threshold provisioning, and to the last-known-good
    plan if that fails too, instead of raising out of the simulation.
    """

    def __init__(
        self,
        controller: HarmonyController,
        arrival_splitter=None,
        ladder: DegradationLadder | None = None,
    ) -> None:
        self.controller = controller
        self.arrival_splitter = arrival_splitter
        self.ladder = ladder

    def observe_view(self, view: ClusterView) -> None:
        """Feed observed arrivals to the predictors without deciding.

        Used directly by :class:`~repro.resilience.guard.GuardedController`
        while its circuit breaker is open, so forecasts re-converge before
        control returns to the MPC path.
        """
        arrivals = view.arrivals
        if self.arrival_splitter is not None:
            arrivals = self.arrival_splitter(arrivals)
        self.controller.observe(arrivals)

    def decide(self, view: ClusterView) -> ProvisioningDecision:
        self.observe_view(view)

        def solve() -> ProvisioningDecision:
            return self.controller.decide(
                view.time,
                backlog=view.backlog,
                available=view.available,
                running=view.running,
                running_by_platform=view.running_by_platform,
                powered=view.powered,
            )

        if self.ladder is None:
            return solve()
        return self.ladder.decide(view, solve)


class _BaselinePolicy:
    """Adapter: BaselineProvisioner -> cluster Policy protocol."""

    def __init__(self, provisioner: BaselineProvisioner) -> None:
        self.provisioner = provisioner

    def decide(self, view: ClusterView) -> ProvisioningDecision:
        return self.provisioner.decide(
            view.time, view.demand_cpu, view.demand_memory, view.available
        )


class _ThresholdPolicy:
    """Adapter: ThresholdAutoscaler -> cluster Policy protocol."""

    def __init__(self, autoscaler: ThresholdAutoscaler) -> None:
        self.autoscaler = autoscaler

    def decide(self, view: ClusterView) -> ProvisioningDecision:
        return self.autoscaler.decide(
            view.time,
            view.demand_cpu,
            view.demand_memory,
            powered=view.powered,
            available=view.available,
        )


class _StaticPolicy:
    """Every machine always on, no quotas (the paper's status quo, Fig. 3)."""

    def __init__(self, fleet: tuple[MachineModel, ...]) -> None:
        self.active = {m.platform_id: m.count for m in fleet}

    def decide(self, view: ClusterView) -> ProvisioningDecision:
        return ProvisioningDecision(time=view.time, active=dict(self.active), quotas=None)


@dataclass
class SimulationResult:
    """Everything one policy run produced."""

    policy: str
    config: HarmonyConfig
    metrics: SimulationMetrics
    energy_kwh: float
    energy_cost: float
    switch_cost: float
    switch_events: int
    horizon: float
    classifier: TaskClassifier
    decisions: list[ProvisioningDecision] = field(default_factory=list)
    tasks_killed: int = 0
    tasks_preempted: int = 0
    relabel_events: int = 0
    #: What the guard had to do, when ``HarmonyConfig.guard`` was on.
    guard_stats: GuardStats | None = None
    #: (time, "mpc" | "reactive") per control tick, when the guard was on.
    guard_timeline: list[tuple[float, str]] = field(default_factory=list)
    #: What the fault injector actually did, when faults were configured.
    fault_stats: FaultStats | None = None
    #: Wall-clock seconds per pipeline phase (classifier fit, prepare,
    #: policy build, replay, collect) — feeds the scenario runner's
    #: ``BENCH_<name>.json`` perf baselines.  Not part of :meth:`summary`,
    #: which must stay deterministic for a given scenario.
    phase_timings: dict[str, float] = field(default_factory=dict)
    #: What the trace sanitizer did, when the run ingested a dirty trace.
    sanitization: SanitizationReport | None = None
    #: Aggregated forecast fallback-chain activity (rung counts + per-class
    #: degraded forecast counts), when the predictor is a
    #: :class:`~repro.forecasting.predictors.FallbackChainPredictor`.
    forecast_fallback: dict = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return self.energy_cost + self.switch_cost

    def summary(self) -> dict:
        """Headline numbers for reports and EXPERIMENTS.md."""
        delays = {
            group.name.lower(): {
                "mean_s": self.metrics.mean_delay(group, include_unscheduled_at=self.horizon),
                "p95_s": self.metrics.delay_percentile(
                    95, group, include_unscheduled_at=self.horizon
                ),
                "immediate_fraction": self.metrics.immediate_fraction(group),
            }
            for group in PriorityGroup
        }
        return {
            "policy": self.policy,
            "tasks_submitted": self.metrics.num_submitted,
            "tasks_scheduled": self.metrics.num_scheduled,
            "tasks_unscheduled": self.metrics.num_unscheduled,
            "energy_kwh": self.energy_kwh,
            "energy_cost": self.energy_cost,
            "switch_cost": self.switch_cost,
            "switch_events": self.switch_events,
            "tasks_killed": self.tasks_killed,
            "tasks_preempted": self.tasks_preempted,
            "relabel_events": self.relabel_events,
            "total_cost": self.total_cost,
            "mean_active_machines": self.metrics.mean_active_machines(),
            "mean_delay_s": self.metrics.mean_delay(include_unscheduled_at=self.horizon),
            "delay_by_group": delays,
            "resilience": {
                "availability": self.metrics.availability(),
                "mttr_s": self.metrics.mttr(censor_at=self.horizon),
                "mean_restart_latency_s": self.metrics.mean_restart_latency(
                    censor_at=self.horizon
                ),
                "slo_attainment_5m": self.metrics.slo_attainment(
                    300.0, include_unscheduled_at=self.horizon
                ),
                "machines_failed": len(self.metrics.failure_events),
                "breaker_trips": self.guard_stats.trips if self.guard_stats else 0,
                "invalid_decisions": (
                    self.guard_stats.invalid_decisions if self.guard_stats else 0
                ),
                "degradation": {
                    "max_level": self.metrics.max_degradation_level(),
                    "degraded_ticks": self.metrics.degraded_ticks(),
                    "levels": self.metrics.degradation_level_counts(),
                },
                "fabric": self.metrics.fabric.to_summary(),
                "data_plane": self._data_plane_summary(),
            },
        }

    def _data_plane_summary(self) -> dict:
        """What the input-hardening layer absorbed during this run.

        Deterministic by construction: sanitizer counts and digest (no
        filesystem paths), forecast fallback rung counts, classifier
        degenerate-input events, and capacity-model errors the degradation
        ladder classified by code.
        """
        sanitizer = None
        if self.sanitization is not None:
            sanitizer = {
                "records_total": self.sanitization.records_total,
                "records_clean": self.sanitization.records_clean,
                "records_repaired": self.sanitization.records_repaired,
                "records_quarantined": self.sanitization.records_quarantined,
                "repairs_by_rule": dict(
                    sorted(self.sanitization.repairs_by_rule.items())
                ),
                "quarantine_by_rule": dict(
                    sorted(self.sanitization.quarantine_by_rule.items())
                ),
                "digest": self.sanitization.digest,
            }
        capacity_guard = {"capacity_model_unstable": 0, "container_sizing_error": 0}
        for _, _, reason in self.metrics.degradation_timeline:
            for code in capacity_guard:
                if code in str(reason):
                    capacity_guard[code] += 1
        fallback = self.forecast_fallback or {
            "rungs": {"primary": 0, "seasonal_naive": 0, "last_value": 0},
            "degraded_forecasts": 0,
            "per_class": {},
        }
        classifier_events = dict(
            sorted(getattr(self.classifier, "degenerate_events", {}).items())
        )
        return {
            "sanitizer": sanitizer,
            "forecast_fallback": fallback,
            "classifier": classifier_events,
            "capacity_guard": capacity_guard,
        }


class HarmonySimulation:
    """Builds and runs the full pipeline for one policy over one trace."""

    def __init__(
        self,
        config: HarmonyConfig,
        trace: Trace,
        classifier: TaskClassifier | None = None,
        sanitization: SanitizationReport | None = None,
    ) -> None:
        self.config = config
        self.trace = trace
        #: Report from :func:`repro.trace.sanitize.sanitize_trace` when the
        #: trace went through the sanitizer; surfaced in
        #: ``summary()["resilience"]["data_plane"]``.
        self.sanitization = sanitization
        self.timer = PhaseTimer()
        if classifier is not None:
            self.classifier = classifier
        else:
            with self.timer.phase("classifier_fit"):
                self.classifier = self._fit_classifier()
        manager_config = config.manager or ContainerManagerConfig(
            epsilon=config.epsilon,
            capacity_ladders=(
                tuple(sorted({m.cpu_capacity for m in config.fleet})),
                tuple(sorted({m.memory_capacity for m in config.fleet})),
            ),
        )
        self.manager = ContainerManager(self.classifier, manager_config)
        self._class_by_uid = self._precompute_classes()

    def _fit_classifier(self) -> TaskClassifier:
        tasks = list(self.trace.tasks)
        if len(tasks) > self.config.classifier_sample:
            rng = np.random.default_rng(self.config.seed)
            indices = rng.choice(
                len(tasks), size=self.config.classifier_sample, replace=False
            )
            tasks = [tasks[i] for i in sorted(indices)]
        return TaskClassifier(self.config.classifier).fit(tasks)

    def _precompute_classes(self) -> dict[tuple[int, int], int]:
        tasks = list(self.trace.tasks)
        leaves = self.classifier.classify_batch(tasks, observed_runtime=0.0)
        # For every (short) arrival label, pre-resolve the long sibling and
        # the split boundary so per-tick relabeling is a dict lookup.
        self._relabel_table: dict[tuple[int, int], tuple[int, int, float]] = {}
        for task, leaf in zip(tasks, leaves):
            sibling = self.classifier.sibling(leaf)
            boundary = self.classifier.split_boundary(leaf.group, leaf.static_index)
            long_id = sibling.class_id if sibling is not None else leaf.class_id
            self._relabel_table[task.uid] = (leaf.class_id, long_id, boundary)
        return {task.uid: leaf.class_id for task, leaf in zip(tasks, leaves)}

    def relabel_class(self, task: Task, elapsed: float) -> int:
        """The class a running task should carry after ``elapsed`` seconds."""
        short_id, long_id, boundary = self._relabel_table[task.uid]
        return long_id if elapsed > boundary else short_id

    def split_arrivals(self, arrivals: dict[int, float]) -> dict[int, float]:
        """Redistribute arrival counts short->long by historical fractions."""
        result: dict[int, float] = {}
        for class_id, count in arrivals.items():
            leaf = self.manager.spec(class_id).task_class
            sibling = self.classifier.sibling(leaf)
            if sibling is None:
                result[class_id] = result.get(class_id, 0.0) + count
                continue
            fraction = self.classifier.long_fraction(leaf.group, leaf.static_index)
            if leaf.duration_category.value == "long":
                short_leaf, long_leaf = sibling, leaf
            else:
                short_leaf, long_leaf = leaf, sibling
            result[short_leaf.class_id] = (
                result.get(short_leaf.class_id, 0.0) + count * (1.0 - fraction)
            )
            result[long_leaf.class_id] = (
                result.get(long_leaf.class_id, 0.0) + count * fraction
            )
        return result

    def _historical_interval_counts(self) -> dict[int, float]:
        """Mean arrivals per control interval per class (historical profile).

        Derived from the trace at aggregate level — the stand-in for the
        multi-week history a production deployment would profile — and split
        short/long by the classifier's historical fractions.
        """
        totals: dict[int, float] = {}
        for class_id in self._class_by_uid.values():
            totals[class_id] = totals.get(class_id, 0.0) + 1.0
        num_intervals = max(self.trace.horizon / self.config.control_interval, 1.0)
        per_interval = {cid: n / num_intervals for cid, n in totals.items()}
        return self.split_arrivals(per_interval)

    def _honor_constraints(self) -> bool:
        """Placement constraints only make sense when the simulated fleet
        exposes the trace's platform ids (DESIGN.md, fidelity notes)."""
        fleet_platforms = {m.platform_id for m in self.config.fleet}
        trace_platforms = {
            platform
            for task in self.trace.tasks
            if task.allowed_platforms is not None
            for platform in task.allowed_platforms
        }
        return trace_platforms.issubset(fleet_platforms)

    def _prepare_tasks(self) -> tuple[Task, ...]:
        if self._honor_constraints():
            return self.trace.tasks
        return tuple(
            task if task.allowed_platforms is None else replace_constraint(task)
            for task in self.trace.tasks
        )

    def prepare(self):
        """The replay-ready task stream and its class-of mapping.

        Returns ``(tasks, class_of)`` exactly as :meth:`run` hands them to
        the :class:`~repro.simulation.cluster.ClusterSimulator` — the public
        seam for benchmarks and examples that drive a simulator directly
        with a custom :class:`~repro.simulation.cluster.ClusterConfig`.
        """
        return self._prepare_tasks(), lambda task: self._class_by_uid[task.uid]

    def build_policy(self):
        """Instantiate the configured policy (exposed for tests).

        With ``config.guard`` set, the policy comes back wrapped in a
        :class:`~repro.resilience.guard.GuardedController`.
        """
        policy = self._build_raw_policy()
        if self.config.guard:
            return GuardedController(
                policy, self.config.fleet, config=self.config.guard_config
            )
        return policy

    def _build_raw_policy(self):
        config = self.config
        if config.policy in ("cbs", "cbp"):
            controller_config = ControllerConfig(
                interval_seconds=config.control_interval,
                horizon=config.mpc_horizon,
                price=config.price,
                overprovision=config.overprovision,
                predictor_factory=lambda: make_predictor(
                    config.predictor, **config.predictor_kwargs
                ),
            )
            cls = HarmonyController if config.policy == "cbs" else CbpController
            controller = cls(config.fleet, self.manager, controller_config)
            controller.prime(self._historical_interval_counts())
            ladder = DegradationLadder(
                ThresholdAutoscaler(config.fleet, ThresholdConfig())
            )
            return _ControllerPolicy(
                controller, arrival_splitter=self.split_arrivals, ladder=ladder
            )
        if config.policy == "baseline":
            return _BaselinePolicy(
                BaselineProvisioner(
                    config.fleet,
                    BaselineConfig(target_utilization=config.baseline_utilization),
                )
            )
        if config.policy == "threshold":
            return _ThresholdPolicy(
                ThresholdAutoscaler(config.fleet, ThresholdConfig())
            )
        return _StaticPolicy(config.fleet)

    def run(self) -> SimulationResult:
        with self.timer.phase("policy_build"):
            policy = self.build_policy()
        with self.timer.phase("prepare"):
            tasks, class_of = self.prepare()
        if self.config.engine == "columnar":
            from repro.simulation.columnar import ColumnarClusterSimulator

            simulator_cls = ColumnarClusterSimulator
        else:
            simulator_cls = ClusterSimulator
        simulator = simulator_cls(
            tasks=tasks,
            horizon=self.trace.horizon,
            machine_models=self.config.fleet,
            policy=policy,
            class_of=class_of,
            config=ClusterConfig(
                control_interval=self.config.control_interval,
                price=self.config.price,
                enable_preemption=self.config.enable_preemption,
                fault_plan=self.config.fault_plan,
            ),
            relabel=self.relabel_class,
        )
        with self.timer.phase("replay"):
            metrics = simulator.run()

        guard_stats: GuardStats | None = None
        guard_timeline: list[tuple[float, str]] = []
        inner = policy
        decisions: list[ProvisioningDecision] = []
        if isinstance(policy, GuardedController):
            guard_stats = policy.stats
            guard_timeline = policy.mode_timeline
            # The sanitized decisions are what the cluster actually applied.
            decisions = policy.decisions
            inner = policy.policy
        forecast_fallback: dict = {}
        if isinstance(inner, _ThresholdPolicy):
            decisions = decisions or inner.autoscaler.decisions
        elif isinstance(inner, _ControllerPolicy):
            decisions = decisions or inner.controller.decisions
            if inner.ladder is not None:
                metrics.degradation_timeline.extend(inner.ladder.timeline)
                fabric_metrics = metrics.fabric
                for cell, ticks in sorted(inner.ladder.cell_hold_ticks.items()):
                    fabric_metrics.cell_hold_ticks[str(cell)] = (
                        fabric_metrics.cell_hold_ticks.get(str(cell), 0) + ticks
                    )
                fabric_metrics.reconciliations += inner.ladder.reconciliations
                fabric_metrics.reconciliation_divergence += (
                    inner.ladder.reconciliation_divergence
                )
            forecast_fallback = _collect_forecast_fallback(inner.controller)
            for decision in decisions:
                by_group: dict[PriorityGroup, int] = {g: 0 for g in PriorityGroup}
                for class_id, demand in decision.demand.items():
                    group = self.manager.spec(class_id).task_class.group
                    by_group[group] += int(demand)
                metrics.container_timeline.append((decision.time, by_group))
        elif isinstance(inner, _BaselinePolicy):
            decisions = decisions or inner.provisioner.decisions

        return SimulationResult(
            policy=self.config.policy,
            config=self.config,
            metrics=metrics,
            energy_kwh=simulator.energy.total_kwh,
            energy_cost=simulator.energy.total_energy_cost,
            switch_cost=simulator.energy.total_switch_cost,
            switch_events=simulator.energy.switch_events,
            horizon=self.trace.horizon,
            classifier=self.classifier,
            decisions=decisions,
            tasks_killed=simulator.tasks_killed,
            tasks_preempted=simulator.tasks_preempted,
            relabel_events=simulator.relabel_events,
            guard_stats=guard_stats,
            guard_timeline=guard_timeline,
            fault_stats=(
                simulator.fault_injector.stats
                if simulator.fault_injector is not None
                else None
            ),
            phase_timings=self.timer.snapshot(),
            sanitization=self.sanitization,
            forecast_fallback=forecast_fallback,
        )


def _collect_forecast_fallback(controller: HarmonyController) -> dict:
    """Aggregate fallback-chain rung activity across the per-class predictors.

    Empty dict when the configured predictor is not a fallback chain — the
    summary then reports all-zero rungs, keeping the block shape stable.
    """
    rungs = {"primary": 0, "seasonal_naive": 0, "last_value": 0}
    per_class: dict[str, int] = {}
    chained = False
    for class_id, predictor in sorted(getattr(controller, "_predictors", {}).items()):
        counts = getattr(predictor, "rung_counts", None)
        timeline = getattr(predictor, "timeline", None)
        if counts is None or timeline is None:
            continue
        chained = True
        for rung, count in counts.items():
            rungs[rung] = rungs.get(rung, 0) + count
        if timeline:
            per_class[str(class_id)] = len(timeline)
    if not chained:
        return {}
    return {
        "rungs": rungs,
        "degraded_forecasts": sum(per_class.values()),
        "per_class": per_class,
    }


def replace_constraint(task: Task) -> Task:
    """Drop a task's platform constraint (fleet does not expose those ids)."""
    return replace(task, allowed_platforms=None)


def run_policy_comparison(
    trace: Trace,
    config: HarmonyConfig | None = None,
    policies: tuple[str, ...] = ("baseline", "cbp", "cbs"),
) -> dict[str, SimulationResult]:
    """Run several policies over the same trace with a shared classifier.

    Sharing the fitted classifier keeps the comparison apples-to-apples and
    roughly halves total runtime.
    """
    config = config or HarmonyConfig()
    classifier: TaskClassifier | None = None
    results: dict[str, SimulationResult] = {}
    for policy in policies:
        simulation = HarmonySimulation(
            config.with_policy(policy), trace, classifier=classifier
        )
        classifier = simulation.classifier
        results[policy] = simulation.run()
    return results


def energy_savings(results: dict[str, SimulationResult],
                   against: str = "baseline") -> dict[str, float]:
    """Relative energy-cost savings of each policy vs. a reference policy."""
    if against not in results:
        raise KeyError(f"reference policy {against!r} not in results")
    reference = results[against].total_cost
    if reference <= 0:
        return {policy: 0.0 for policy in results}
    return {
        policy: 1.0 - result.total_cost / reference
        for policy, result in results.items()
    }
