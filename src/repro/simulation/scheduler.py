"""Task schedulers for the cluster simulator.

Schedulers place pending tasks onto schedulable machines subject to:

- per-machine capacity (cpu, memory);
- per-task placement constraints (``allowed_platforms``);
- optionally, per-(machine type, task class) quotas — the ``x^{mn}_t`` caps
  CBS/CBP hand the scheduler (Sections VII-VIII).

Two placement disciplines are provided: first-fit (the paper's assumption
for production schedulers) and best-fit (minimum residual).  Both process
the queue highest-priority first with backfill: a blocked large task does
not stop smaller lower-priority tasks from using leftover capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.simulation.machine import Machine, MachinePool
from repro.trace.schema import Task


class QuotaLedger:
    """Tracks per-(platform, class) running-task stocks against quotas.

    The CBS quota ``x^{mn}_t`` bounds the *number of type-n containers on
    type-m machines at time t* — a stock, not a flow — so the ledger counts
    currently running tasks and admits a placement only while the stock is
    below quota.  A ``None`` quota table means unrestricted (baseline).
    """

    def __init__(self) -> None:
        self._quotas: dict[int, dict[int, int]] | None = None
        self._running: dict[tuple[int, int], int] = {}

    def set_quotas(self, quotas: dict[int, dict[int, int]] | None) -> None:
        self._quotas = quotas

    @property
    def restricted(self) -> bool:
        """Whether a quota table is active (admission can actually refuse)."""
        return self._quotas is not None

    def admits(self, platform_id: int, class_id: int) -> bool:
        if self._quotas is None:
            return True
        limit = self._quotas.get(platform_id, {}).get(class_id, 0)
        return self._running.get((platform_id, class_id), 0) < limit

    def admits_each(self, platform_id: int, class_ids) -> list[bool]:
        """:meth:`admits` over many class ids without per-call overhead.

        The columnar engine's round-start feasibility mask asks about every
        distinct pending class against every pool; batching the lookups
        keeps that out of the per-task hot path.
        """
        if self._quotas is None:
            return [True] * len(class_ids)
        limits = self._quotas.get(platform_id, {})
        running = self._running
        return [
            running.get((platform_id, c), 0) < limits.get(c, 0) for c in class_ids
        ]

    def place(self, platform_id: int, class_id: int) -> None:
        key = (platform_id, class_id)
        self._running[key] = self._running.get(key, 0) + 1

    def release(self, platform_id: int, class_id: int) -> None:
        key = (platform_id, class_id)
        current = self._running.get(key, 0)
        if current <= 0:
            raise ValueError(f"release without matching place for {key}")
        self._running[key] = current - 1

    def running(self, platform_id: int, class_id: int) -> int:
        return self._running.get((platform_id, class_id), 0)

    def snapshot(self) -> dict[int, dict[int, int]]:
        """Current stocks as {platform_id: {class_id: running}}."""
        result: dict[int, dict[int, int]] = {}
        for (platform_id, class_id), count in self._running.items():
            if count > 0:
                result.setdefault(platform_id, {})[class_id] = count
        return result


@dataclass(frozen=True)
class Placement:
    """One successful task placement."""

    task: Task
    machine: Machine
    class_id: int


class _BaseScheduler:
    """Shared queue-walking logic; subclasses pick the machine."""

    def __init__(self, pools: list[MachinePool]) -> None:
        if not pools:
            raise ValueError("scheduler needs at least one machine pool")
        # Prefer the smallest machine that can host a task: better packing
        # and it reserves big machines for big tasks.
        self.pools = sorted(pools, key=lambda p: (p.model.cpu_capacity, p.model.memory_capacity))
        #: Cells (platform ids) currently unreachable from the trace-ingest
        #: cell — no placements there while a partition holds.
        self._unreachable: frozenset[int] = frozenset()
        #: Placement attempts that failed after skipping an unreachable
        #: cell (the partition may be why the task stayed pending).
        self.fabric_deferrals = 0

    def set_unreachable(self, cells: frozenset[int]) -> None:
        """Update which cells the fabric has cut off from ingest."""
        self._unreachable = frozenset(cells)

    def _pick_machine(self, task: Task, pool: MachinePool) -> Machine | None:
        raise NotImplementedError

    def try_place(
        self,
        task: Task,
        class_id: int,
        ledger: QuotaLedger,
        failed: dict[int, list[tuple[float, float]]] | None = None,
    ) -> Machine | None:
        """Place one task; returns the machine or None.

        ``failed`` is an intra-round memo of (cpu, memory) demands that
        already failed a pool's machine scan purely on capacity.  A task
        dominating a failed demand in both dimensions cannot fit either, so
        its scan is skipped — capacity only shrinks within a round.
        """
        skipped_unreachable = False
        for pool in self.pools:
            if pool.platform_id in self._unreachable:
                skipped_unreachable = True
                continue
            if task.cpu > pool.model.cpu_capacity or task.memory > pool.model.memory_capacity:
                continue
            if (
                task.allowed_platforms is not None
                and pool.platform_id not in task.allowed_platforms
            ):
                continue
            if not ledger.admits(pool.platform_id, class_id):
                continue
            pool_failed = failed.get(pool.platform_id) if failed is not None else None
            if pool_failed is not None and any(
                task.cpu >= fc and task.memory >= fm for fc, fm in pool_failed
            ):
                continue
            machine = self._pick_machine(task, pool)
            if machine is not None:
                machine.place(task, class_id)
                ledger.place(pool.platform_id, class_id)
                return machine
            if failed is not None:
                entry = failed.setdefault(pool.platform_id, [])
                # Keep only pareto-minimal failed demands.
                entry[:] = [
                    (fc, fm) for fc, fm in entry
                    if not (fc >= task.cpu and fm >= task.memory)
                ]
                entry.append((task.cpu, task.memory))
        if skipped_unreachable:
            self.fabric_deferrals += 1
        return None

    def schedule(
        self,
        pending: Iterable[Task],
        ledger: QuotaLedger,
        class_of: Callable[[Task], int],
        max_attempts: int | None = None,
    ) -> tuple[list[Placement], list[Task]]:
        """Walk the pending queue (assumed priority-ordered) with backfill.

        Returns (placements, still-pending).  ``max_attempts`` caps how many
        queue entries are examined per round, bounding worst-case cost under
        a deep backlog.
        """
        placements: list[Placement] = []
        leftover: list[Task] = []
        attempts = 0
        failed: dict[int, list[tuple[float, float]]] = {}
        iterator = iter(pending)
        for task in iterator:
            if max_attempts is not None and attempts >= max_attempts:
                leftover.append(task)
                leftover.extend(iterator)
                break
            attempts += 1
            class_id = class_of(task)
            machine = self.try_place(task, class_id, ledger, failed)
            if machine is None:
                leftover.append(task)
            else:
                placements.append(Placement(task=task, machine=machine, class_id=class_id))
        return placements, leftover


class FirstFitScheduler(_BaseScheduler):
    """First machine with room, scanning pools smallest-capacity first.

    The scan starts at a per-pool rotating hint (the index of the last
    successful placement) and wraps around: early machines fill first and
    re-scanning them for every task would make placement O(pool size).
    The wrap-around keeps the scan complete, so this is first-fit from a
    moving origin rather than next-fit.
    """

    def __init__(self, pools: list[MachinePool]) -> None:
        super().__init__(pools)
        self._hints: dict[int, int] = {pool.platform_id: 0 for pool in self.pools}

    def _pick_machine(self, task: Task, pool: MachinePool) -> Machine | None:
        machines = pool.machines
        count = len(machines)
        start = self._hints.get(pool.platform_id, 0) % max(count, 1)
        for offset in range(count):
            index = (start + offset) % count
            machine = machines[index]
            if machine.fits(task):
                self._hints[pool.platform_id] = index
                return machine
        return None


class BestFitScheduler(_BaseScheduler):
    """Machine minimizing leftover CPU after placement (tightest fit)."""

    def _pick_machine(self, task: Task, pool: MachinePool) -> Machine | None:
        best: Machine | None = None
        best_residual = float("inf")
        for machine in pool.machines:
            if machine.fits(task):
                residual = machine.cpu_free - task.cpu
                if residual < best_residual:
                    best = machine
                    best_residual = residual
        return best
