"""Shared scenario-execution subsystem.

One runner serves the repo's three consumers of "run these independent
scenario configurations and report":

- the ``bench_*`` pytest benches (``benchmarks/``), which fan their sweeps
  out across workers and assert on the collected summaries;
- the ``repro bench`` CLI subcommand, for ad-hoc perf runs;
- CI, which emits ``BENCH_<suite>.json`` perf baselines from short smokes.

Determinism contract: every task seeds all randomness from its scenario
params, so per-scenario summaries are bit-identical between serial and
parallel execution (see :meth:`ScenarioRunner.verify_determinism`).
"""

from repro.runner.defaults import (
    BenchDefaults,
    bench_defaults,
    bench_fleet_hours,
    bench_fleet_load,
    bench_fleet_machines,
    bench_fleet_shards,
    bench_hours,
    bench_load,
    bench_machines,
    bench_repeats,
    bench_replay_hours,
    bench_replay_load,
    bench_replay_machines,
    bench_seed,
    trace_config_from_params,
)
from repro.runner.journal import (
    Journal,
    JournalEntry,
    journal_path,
    read_journal_records,
    suite_run_id,
    write_journal_record,
)
from repro.runner.runner import (
    RunnerReport,
    ScenarioFailure,
    ScenarioResult,
    ScenarioRunner,
    baseline_payload,
    canonical_json,
    repo_root,
    summary_digest,
    write_baseline,
)
from repro.runner.rss import process_rss_mb, self_peak_rss_mb, tree_rss_mb
from repro.runner.scenario import Scenario, get_task, register_task, registered_tasks
from repro.runner.supervisor import (
    ScenarioSupervisor,
    SupervisorConfig,
    backoff_delay,
)
from repro.runner.suites import (
    SUITES,
    ablation_scenarios,
    consolidation_scenarios,
    engine_pairs,
    google_fleet_trace_params,
    horizon_scenarios,
    omega_scenarios,
    predictor_scenarios,
    preemption_scenarios,
    replay_scenarios,
    robustness_scenarios,
    scalability_scenarios,
    slo_scenarios,
    trace_corruption_scenarios,
    with_engine,
)

__all__ = [
    "BenchDefaults",
    "bench_defaults",
    "bench_fleet_hours",
    "bench_fleet_load",
    "bench_fleet_machines",
    "bench_fleet_shards",
    "bench_hours",
    "bench_load",
    "bench_machines",
    "bench_repeats",
    "bench_replay_hours",
    "bench_replay_load",
    "bench_replay_machines",
    "bench_seed",
    "trace_config_from_params",
    "RunnerReport",
    "ScenarioFailure",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSupervisor",
    "SupervisorConfig",
    "backoff_delay",
    "baseline_payload",
    "canonical_json",
    "repo_root",
    "summary_digest",
    "write_baseline",
    "Journal",
    "JournalEntry",
    "journal_path",
    "read_journal_records",
    "suite_run_id",
    "write_journal_record",
    "process_rss_mb",
    "self_peak_rss_mb",
    "tree_rss_mb",
    "Scenario",
    "get_task",
    "register_task",
    "registered_tasks",
    "SUITES",
    "ablation_scenarios",
    "consolidation_scenarios",
    "engine_pairs",
    "google_fleet_trace_params",
    "horizon_scenarios",
    "omega_scenarios",
    "predictor_scenarios",
    "preemption_scenarios",
    "replay_scenarios",
    "robustness_scenarios",
    "scalability_scenarios",
    "slo_scenarios",
    "trace_corruption_scenarios",
    "with_engine",
]
