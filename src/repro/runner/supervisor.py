"""Supervised, crash-safe scenario execution.

:class:`ScenarioSupervisor` wraps the work :class:`~repro.runner.ScenarioRunner`
does with the failure semantics a long sweep needs:

- **Per-scenario wall-clock timeouts** — every attempt runs in its own
  spawned worker process, so a hung scenario can be SIGKILLed without
  touching its neighbours;
- **Bounded retries with deterministic backoff** — delays follow a capped
  exponential schedule whose jitter is derived from the scenario *name*
  (SHA-256), never from ``random`` or the clock, so a rerun of the same
  suite retries at bit-identical offsets;
- **Worker-crash detection and respawn** — a worker that dies without
  reporting (OOM kill, segfault, SIGKILL) is detected by its exit code and
  the scenario is retried in a fresh worker; one poisoned worker can never
  contaminate another scenario's process;
- **Quarantine** — scenarios that keep failing are reported in
  :attr:`RunnerReport.quarantined` instead of sinking the suite;
- **Journaled resume** — each completed result is durably appended to a
  ``JOURNAL_<suite>.jsonl`` (see :mod:`repro.runner.journal`); a rerun with
  ``resume=True`` replays the journal, verifies digests and only executes
  what is missing, so an interrupted suite finishes where it left off with
  an identical final ``BENCH_<suite>.json`` (modulo timing fields).

The plain runner remains the fast path for trusted suites (a shared pool
amortizes per-process trace/classifier caches); the supervisor trades that
warmth for isolation, which is what an overnight thousand-scenario sweep
actually needs.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ScenarioCrash, ScenarioError, ScenarioFailed, ScenarioTimeout
from repro.runner.journal import Journal, JournalEntry, journal_path, suite_run_id
from repro.runner.rss import tree_rss_mb
from repro.runner.runner import (
    RunnerReport,
    ScenarioFailure,
    ScenarioResult,
    _execute,
)
from repro.runner.scenario import Scenario

#: Supervisor poll granularity (seconds); bounds timeout overshoot.
_TICK_SECONDS = 0.01


@dataclass(frozen=True)
class SupervisorConfig:
    """Failure-handling knobs for :class:`ScenarioSupervisor`.

    Attributes
    ----------
    timeout_seconds:
        Per-attempt wall-clock budget; ``None`` disables timeouts.
    max_attempts:
        Total attempts (first try + retries) before quarantine.
    backoff_base_seconds / backoff_factor / backoff_cap_seconds:
        Retry delay after attempt ``k`` (1-based) is
        ``min(cap, base * factor**(k-1))`` scaled by the deterministic
        jitter below.  The defaults keep test suites fast; production
        sweeps should raise the base.
    jitter_fraction:
        Max relative jitter added to each delay.  The jitter value is
        derived from SHA-256 of ``"<scenario name>:<attempt>"`` — no
        ``random``, no clock — so reruns back off at identical offsets.
    memory_ceiling_mb:
        Soft cap on the run's resident memory (supervisor + live
        workers), enforced as admission-control backpressure: while the
        sampled process-tree RSS sits above
        ``memory_watermark * memory_ceiling_mb`` and at least one worker
        is in flight, no new workers are spawned.  Already-running
        workers are never killed for memory — backpressure only delays
        *new* streaming feeders, so results (and digests) are unchanged.
        ``None`` disables the ceiling.
    memory_watermark:
        Fraction of the ceiling at which admission pauses.
    """

    timeout_seconds: float | None = None
    max_attempts: int = 3
    backoff_base_seconds: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap_seconds: float = 2.0
    jitter_fraction: float = 0.25
    memory_ceiling_mb: float | None = None
    memory_watermark: float = 0.9

    def __post_init__(self) -> None:
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_seconds < 0:
            raise ValueError(
                f"backoff_base_seconds must be >= 0, got {self.backoff_base_seconds}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_cap_seconds < 0:
            raise ValueError(
                f"backoff_cap_seconds must be >= 0, got {self.backoff_cap_seconds}"
            )
        if not 0 <= self.jitter_fraction <= 1:
            raise ValueError(
                f"jitter_fraction must be in [0, 1], got {self.jitter_fraction}"
            )
        if self.memory_ceiling_mb is not None and self.memory_ceiling_mb <= 0:
            raise ValueError(
                f"memory_ceiling_mb must be positive, got {self.memory_ceiling_mb}"
            )
        if not 0 < self.memory_watermark <= 1:
            raise ValueError(
                f"memory_watermark must be in (0, 1], got {self.memory_watermark}"
            )


def backoff_delay(name: str, attempt: int, config: SupervisorConfig) -> float:
    """Deterministic retry delay after ``attempt`` failures of ``name``.

    Exponential in the attempt number, capped, with jitter derived from
    SHA-256 of ``"<name>:<attempt>"`` — bit-identical across reruns and
    machines, yet de-correlated across scenarios so a mass failure does
    not retry in lockstep.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    base = min(
        config.backoff_cap_seconds,
        config.backoff_base_seconds * config.backoff_factor ** (attempt - 1),
    )
    digest = hashlib.sha256(f"{name}:{attempt}".encode()).digest()
    fraction = int.from_bytes(digest[:8], "big") / 2**64  # uniform [0, 1)
    return base * (1.0 + config.jitter_fraction * fraction)


def _worker_main(scenario: Scenario, conn) -> None:
    """Worker body: run one attempt, report over the pipe, exit."""
    try:
        payload = _execute(scenario)
        conn.send(("ok", payload))
    except BaseException as exc:  # noqa: BLE001 — report, parent decides
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):
            # Pipe already gone or payload unpicklable: the parent
            # classifies this attempt as a ScenarioCrash from the exit
            # code instead.
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


@dataclass
class _InFlight:
    """One attempt currently running in a worker process."""

    scenario: Scenario
    attempt: int
    process: multiprocessing.process.BaseProcess
    conn: object
    deadline: float | None


class ScenarioSupervisor:
    """Runs scenario suites with timeouts, retries, quarantine and resume."""

    def __init__(
        self,
        suite: str = "suite",
        config: SupervisorConfig | None = None,
        journal_dir: str | Path | None = None,
    ) -> None:
        self.suite = suite
        self.config = config or SupervisorConfig()
        self._journal_dir = journal_dir
        #: Bound by :meth:`run` once the scenario list (hence the run id)
        #: is known; the path carries the run id so journals from
        #: different scenario sets can never collide.
        self.journal: Journal | None = None
        #: Names executed (spawned) by the most recent :meth:`run`.
        self.executed: list[str] = []
        #: Names satisfied from the journal by the most recent :meth:`run`.
        self.resumed: list[str] = []
        #: Every per-attempt failure observed, for diagnostics.
        self.failure_log: list[ScenarioError] = []
        #: Peak sampled (supervisor + workers) RSS over the most recent
        #: :meth:`run`, MiB; ``None`` where procfs is unavailable.
        self.peak_rss_mb: float | None = None
        #: Ticks on which the memory watermark deferred a ready spawn.
        self.deferred_spawns: int = 0

    # ------------------------------------------------------------------ run

    def run(
        self, scenarios: list[Scenario], workers: int = 1, resume: bool = False
    ) -> RunnerReport:
        """Run every scenario under supervision; never raises mid-suite.

        ``workers`` is the number of concurrently running worker processes
        (each attempt always gets a fresh spawned process).  With
        ``resume=True`` and a journal configured, journaled completions are
        verified and skipped.  Quarantined scenarios appear in
        ``report.quarantined``; everything else in ``report.results`` in
        input order.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"scenario names must be unique, got {names}")
        if self._journal_dir is not None:
            run_id = suite_run_id(self.suite, scenarios)
            self.journal = Journal(
                journal_path(self.suite, self._journal_dir, run_id), run_id
            )
        self.executed = []
        self.resumed = []
        self.failure_log = []
        self.peak_rss_mb = None
        self.deferred_spawns = 0

        done: dict[str, ScenarioResult] = {}
        if resume:
            if self.journal is None:
                raise ValueError("resume=True requires a journal_dir")
            done = self.journal.completed(scenarios, self.suite)
            self.resumed = [s.name for s in scenarios if s.name in done]

        start = time.perf_counter()
        quarantined = self._supervise(
            [s for s in scenarios if s.name not in done], workers, done
        )
        total = time.perf_counter() - start

        results = tuple(done[s.name] for s in scenarios if s.name in done)
        failures = tuple(
            quarantined[s.name] for s in scenarios if s.name in quarantined
        )
        return RunnerReport(
            suite=self.suite,
            workers=workers,
            results=results,
            total_wall_seconds=total,
            quarantined=failures,
            peak_rss_mb=self.peak_rss_mb,
        )

    # ------------------------------------------------------------ internals

    def _supervise(
        self,
        scenarios: list[Scenario],
        workers: int,
        done: dict[str, ScenarioResult],
    ) -> dict[str, ScenarioFailure]:
        context = multiprocessing.get_context("spawn")
        pending: deque[tuple[Scenario, int]] = deque((s, 1) for s in scenarios)
        delayed: list[tuple[float, Scenario, int]] = []  # (ready_at, s, attempt)
        in_flight: list[_InFlight] = []
        quarantined: dict[str, ScenarioFailure] = {}

        while pending or delayed or in_flight:
            now = time.monotonic()
            for item in [d for d in delayed if d[0] <= now]:
                delayed.remove(item)
                pending.append((item[1], item[2]))

            over_watermark = self._sample_memory(in_flight)
            while pending and len(in_flight) < workers:
                if over_watermark and in_flight:
                    # Backpressure: above the memory watermark, finish
                    # what is running before admitting new feeders.  With
                    # nothing in flight admission proceeds regardless —
                    # deferring then would deadlock the run.
                    self.deferred_spawns += 1
                    break
                scenario, attempt = pending.popleft()
                in_flight.append(self._spawn(context, scenario, attempt))

            finished: list[_InFlight] = []
            for flight in in_flight:
                outcome = self._poll(flight)
                if outcome is None:
                    continue
                finished.append(flight)
                kind, payload = outcome
                if kind == "ok":
                    name, summary, phases, wall, rss_mb = payload
                    result = ScenarioResult(
                        scenario=flight.scenario,
                        summary=summary,
                        phases=phases,
                        wall_seconds=wall,
                        attempts=flight.attempt,
                        rss_peak_mb=rss_mb,
                    )
                    done[name] = result
                    if self.journal is not None:
                        self.journal.append(
                            JournalEntry(
                                suite=self.suite,
                                scenario=flight.scenario,
                                summary=result.summary,
                                phases=result.phases,
                                wall_seconds=result.wall_seconds,
                                attempts=result.attempts,
                                rss_peak_mb=result.rss_peak_mb,
                            )
                        )
                else:
                    self._handle_failure(
                        flight, kind, payload, pending, delayed, quarantined
                    )
            for flight in finished:
                in_flight.remove(flight)

            if in_flight or pending:
                time.sleep(_TICK_SECONDS)
            elif delayed:
                wake = min(d[0] for d in delayed)
                time.sleep(max(min(wake - time.monotonic(), 0.25), 0.0))
        return quarantined

    def _sample_memory(self, in_flight: list[_InFlight]) -> bool:
        """Sample the process tree's RSS; True when above the watermark.

        Tracks the run-wide peak as a side effect.  Sampling only runs
        when a ceiling is set or a worker is live — a serial resume pass
        that replays the journal pays nothing.
        """
        ceiling = self.config.memory_ceiling_mb
        if ceiling is None and not in_flight:
            return False
        pids = [os.getpid()] + [
            f.process.pid for f in in_flight
            if f.process.pid is not None and f.process.is_alive()
        ]
        observed = tree_rss_mb(pids)
        if observed is None:
            return False
        if self.peak_rss_mb is None or observed > self.peak_rss_mb:
            self.peak_rss_mb = observed
        if ceiling is None:
            return False
        return observed >= self.config.memory_watermark * ceiling

    def _spawn(self, context, scenario: Scenario, attempt: int) -> _InFlight:
        parent_conn, child_conn = context.Pipe(duplex=False)
        process = context.Process(
            target=_worker_main,
            args=(scenario, child_conn),
            name=f"repro-{self.suite}-{scenario.name}-a{attempt}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only the read end
        self.executed.append(scenario.name)
        timeout = self.config.timeout_seconds
        return _InFlight(
            scenario=scenario,
            attempt=attempt,
            process=process,
            conn=parent_conn,
            deadline=None if timeout is None else time.monotonic() + timeout,
        )

    def _poll(self, flight: _InFlight) -> tuple[str, object] | None:
        """One non-blocking check: ``None`` if still running, else outcome.

        Outcome kinds: ``("ok", payload)``, ``("error", message)``,
        ``("crash", exitcode)``, ``("timeout", budget)``.
        """
        try:
            if flight.conn.poll():
                try:
                    message = flight.conn.recv()
                except EOFError:
                    message = None
                self._reap(flight)
                if message is not None:
                    return message  # ("ok", payload) or ("error", text)
                return ("crash", flight.process.exitcode)
        except (OSError, ValueError):
            self._reap(flight)
            return ("crash", flight.process.exitcode)
        if not flight.process.is_alive():
            self._reap(flight)
            return ("crash", flight.process.exitcode)
        if flight.deadline is not None and time.monotonic() > flight.deadline:
            flight.process.kill()
            self._reap(flight)
            return ("timeout", self.config.timeout_seconds)
        return None

    @staticmethod
    def _reap(flight: _InFlight) -> None:
        flight.process.join(timeout=5.0)
        try:
            flight.conn.close()
        except OSError:
            # Double-close after a poll() error is fine; the outcome was
            # already classified as a ScenarioCrash by the caller.
            pass

    def _handle_failure(
        self,
        flight: _InFlight,
        kind: str,
        payload,
        pending: deque,
        delayed: list,
        quarantined: dict[str, ScenarioFailure],
    ) -> None:
        name = flight.scenario.name
        if kind == "timeout":
            error: ScenarioError = ScenarioTimeout(
                f"scenario {name!r} exceeded its wall-clock budget",
                scenario=name,
                attempt=flight.attempt,
                timeout_seconds=payload,
            )
        elif kind == "crash":
            error = ScenarioCrash(
                f"worker for scenario {name!r} died without reporting",
                scenario=name,
                attempt=flight.attempt,
                exitcode=payload,
            )
        else:
            error = ScenarioFailed(
                f"scenario {name!r} raised: {payload}",
                scenario=name,
                attempt=flight.attempt,
            )
        self.failure_log.append(error)

        if flight.attempt >= self.config.max_attempts:
            quarantined[name] = ScenarioFailure(
                scenario=flight.scenario,
                kind=kind if kind in ("timeout", "crash") else "error",
                attempts=flight.attempt,
                message=str(error),
            )
            return
        delay = backoff_delay(name, flight.attempt, self.config)
        delayed.append((time.monotonic() + delay, flight.scenario, flight.attempt + 1))
