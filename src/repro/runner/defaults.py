"""The single source of truth for default bench/scenario parameters.

Both ``benchmarks/conftest.py`` (the pytest figure benches) and the
scenario suites in :mod:`repro.runner.suites` read these values, so the
laptop-scale evaluation point cannot drift between the two.  CI shrinks
everything through the same ``REPRO_BENCH_*`` environment knobs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.trace.generator import SyntheticTraceConfig


def bench_hours() -> float:
    """Evaluation-trace horizon in hours (``REPRO_BENCH_HOURS``)."""
    return float(os.environ.get("REPRO_BENCH_HOURS", 4.0))


def bench_machines() -> int:
    """Evaluation-fleet size (``REPRO_BENCH_MACHINES``)."""
    return int(os.environ.get("REPRO_BENCH_MACHINES", 400))


def bench_seed() -> int:
    """Master seed for traces, classifiers and scenario RNGs."""
    return int(os.environ.get("REPRO_BENCH_SEED", 7))


def bench_load() -> float:
    """Trace load factor (``REPRO_BENCH_LOAD``)."""
    return float(os.environ.get("REPRO_BENCH_LOAD", 0.5))


def bench_repeats() -> int:
    """Solves per scalability scenario (``REPRO_BENCH_REPEATS``)."""
    return int(os.environ.get("REPRO_BENCH_REPEATS", 3))


def bench_replay_hours() -> float:
    """Replay-bench trace horizon in hours (``REPRO_BENCH_REPLAY_HOURS``)."""
    return float(os.environ.get("REPRO_BENCH_REPLAY_HOURS", 4.0))


def bench_replay_machines() -> int:
    """Replay-bench fleet size (``REPRO_BENCH_REPLAY_MACHINES``).

    Deliberately larger than :func:`bench_machines`: the engine-vs-engine
    replay points exist to measure the columnar engine's speedup, which
    only shows at production-ish backlog depths.  CI shrinks it through
    the environment knob like every other bench parameter.
    """
    return int(os.environ.get("REPRO_BENCH_REPLAY_MACHINES", 4000))


def bench_replay_load() -> float:
    """Replay-bench trace load factor (``REPRO_BENCH_REPLAY_LOAD``)."""
    return float(os.environ.get("REPRO_BENCH_REPLAY_LOAD", 0.85))


def bench_fleet_hours() -> float:
    """Fleet-bench trace horizon in hours (``REPRO_BENCH_FLEET_HOURS``).

    The paper's Google trace spans 29 days (~696 h); the default 20 h
    horizon is a documented ~35x time scale-down that still yields >1M
    tasks at the full 12k-machine census (the calibrated arrival rate
    drops slightly as the horizon grows, so task count is sublinear in
    hours).  Set ``REPRO_BENCH_FLEET_HOURS=696`` to replay the full
    paper horizon.
    """
    return float(os.environ.get("REPRO_BENCH_FLEET_HOURS", 20.0))


def bench_fleet_machines() -> int:
    """Fleet-bench machine census (``REPRO_BENCH_FLEET_MACHINES``).

    Defaults to the paper's full ~12,000-machine cluster (Section III).
    """
    return int(os.environ.get("REPRO_BENCH_FLEET_MACHINES", 12_000))


def bench_fleet_load() -> float:
    """Fleet-bench trace load factor (``REPRO_BENCH_FLEET_LOAD``)."""
    return float(os.environ.get("REPRO_BENCH_FLEET_LOAD", 0.55))


def bench_fleet_shards() -> int:
    """Fleet-bench shard count (``REPRO_BENCH_FLEET_SHARDS``)."""
    return int(os.environ.get("REPRO_BENCH_FLEET_SHARDS", 4))


@dataclass(frozen=True)
class BenchDefaults:
    """One resolved snapshot of the bench parameter environment."""

    hours: float
    machines: int
    seed: int
    load: float

    def trace_params(self) -> dict:
        """Picklable trace parameters for scenario configs."""
        return {
            "hours": self.hours,
            "seed": self.seed,
            "machines": self.machines,
            "load": self.load,
        }


def bench_defaults() -> BenchDefaults:
    """Resolve the current bench defaults from the environment."""
    return BenchDefaults(
        hours=bench_hours(),
        machines=bench_machines(),
        seed=bench_seed(),
        load=bench_load(),
    )


def trace_config_from_params(params: dict) -> SyntheticTraceConfig:
    """Build the synthetic-trace config a scenario's ``trace`` params name.

    The canonical decoding used by every runner task, so a scenario's
    result is a pure function of its (picklable) parameter dict.  With
    ``constraints: true`` the trace draws placement constraints against
    the Table II fleet, exactly as the figure benches' shared trace does.
    """
    constraint_platforms = None
    if params.get("constraints"):
        from repro.energy.catalog import table2_fleet

        constraint_platforms = tuple(
            m.to_machine_type() for m in table2_fleet(0.1)
        )
    return SyntheticTraceConfig(
        horizon_hours=float(params.get("hours", bench_hours())),
        seed=int(params.get("seed", bench_seed())),
        total_machines=int(params.get("machines", bench_machines())),
        load_factor=float(params.get("load", bench_load())),
        constraint_platforms=constraint_platforms,
    )
