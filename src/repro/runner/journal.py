"""Crash-safe scenario journals: ``JOURNAL_<suite>.jsonl``.

Every completed scenario is appended as one line of canonical JSON whose
``sha256`` field is the digest of the rest of the record — flushed and
fsynced per line, so a SIGKILLed suite leaves at most one torn trailing
line.  :meth:`Journal.load` verifies every digest (raising
:class:`~repro.errors.JournalCorrupt` on a mismatch, which means the file
was *edited*, not torn) and silently drops an incomplete final line
(which means the writer *died*, the exact event journaling exists to
survive).

Resume semantics: an entry satisfies a scenario only when suite, name,
task *and* params all match — a journal written at different bench
parameters can never leak stale results into a run.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.errors import JournalCorrupt
from repro.runner.runner import ScenarioResult, canonical_json
from repro.runner.scenario import Scenario

#: Bumped when the line format changes; loads reject other versions.
JOURNAL_VERSION = 1


def journal_path(suite: str, directory: str | Path = ".") -> Path:
    """Where the journal for ``suite`` lives inside ``directory``."""
    return Path(directory) / f"JOURNAL_{suite}.jsonl"


@dataclass(frozen=True)
class JournalEntry:
    """One journaled scenario completion."""

    suite: str
    scenario: Scenario
    summary: dict
    phases: dict
    wall_seconds: float
    attempts: int

    def matches(self, scenario: Scenario, suite: str) -> bool:
        """Whether this entry is a completed run of exactly ``scenario``."""
        return (
            self.suite == suite
            and self.scenario.name == scenario.name
            and self.scenario.task == scenario.task
            and self.scenario.params == scenario.params
        )

    def to_result(self) -> ScenarioResult:
        return ScenarioResult(
            scenario=self.scenario,
            summary=self.summary,
            phases=dict(self.phases),
            wall_seconds=self.wall_seconds,
            attempts=self.attempts,
        )

    def record(self) -> dict:
        """The digestable line payload (everything but the digest)."""
        return {
            "version": JOURNAL_VERSION,
            "suite": self.suite,
            "name": self.scenario.name,
            "task": self.scenario.task,
            "params": self.scenario.params,
            "summary": self.summary,
            "phases": self.phases,
            "wall_s": round(self.wall_seconds, 6),
            "attempts": self.attempts,
        }


def _record_digest(record: dict) -> str:
    return hashlib.sha256(canonical_json(record).encode()).hexdigest()


class Journal:
    """Append-only, digest-verified scenario journal."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def append(self, entry: JournalEntry) -> None:
        """Durably append one completed scenario (flush + fsync per line)."""
        record = entry.record()
        line = canonical_json({**record, "sha256": _record_digest(record)})
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load(self) -> list[JournalEntry]:
        """Parse and verify every journaled entry.

        A torn final line (no trailing newline, or unparseable JSON in the
        last position) is dropped — that is the signature of a writer
        killed mid-append.  Anywhere else, or on any digest/version
        mismatch, the journal is corrupt and the error says which line.
        """
        if not self.path.exists():
            return []
        raw = self.path.read_text(encoding="utf-8")
        lines = raw.split("\n")
        torn_tail = lines and lines[-1] != ""
        if not torn_tail:
            lines = lines[:-1]
        entries: list[JournalEntry] = []
        for index, line in enumerate(lines):
            last = index == len(lines) - 1
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                if last and torn_tail:
                    break  # torn by a crash mid-append; resume re-runs it
                raise JournalCorrupt(
                    f"journal {self.path} line {index + 1} is not valid JSON",
                    line=index + 1,
                ) from exc
            if not isinstance(payload, dict) or "sha256" not in payload:
                if last and torn_tail:
                    break
                raise JournalCorrupt(
                    f"journal {self.path} line {index + 1} has no digest",
                    line=index + 1,
                )
            stored = payload.pop("sha256")
            if _record_digest(payload) != stored:
                raise JournalCorrupt(
                    f"journal {self.path} line {index + 1} digest mismatch "
                    f"(edited or bit-rotted journal)",
                    line=index + 1,
                    expected=stored,
                )
            if payload.get("version") != JOURNAL_VERSION:
                raise JournalCorrupt(
                    f"journal {self.path} line {index + 1} has version "
                    f"{payload.get('version')!r}, expected {JOURNAL_VERSION}",
                    line=index + 1,
                )
            entries.append(
                JournalEntry(
                    suite=payload["suite"],
                    scenario=Scenario(
                        name=payload["name"],
                        task=payload["task"],
                        params=payload["params"],
                    ),
                    summary=payload["summary"],
                    phases=payload["phases"],
                    wall_seconds=float(payload["wall_s"]),
                    attempts=int(payload["attempts"]),
                )
            )
        return entries

    def completed(
        self, scenarios: list[Scenario], suite: str
    ) -> dict[str, ScenarioResult]:
        """Scenario name -> journaled result, for exact-match entries only.

        Later entries win (a scenario retried across resumed runs keeps
        its most recent completion).
        """
        by_name: dict[str, ScenarioResult] = {}
        entries = self.load()
        for scenario in scenarios:
            for entry in entries:
                if entry.matches(scenario, suite):
                    by_name[scenario.name] = entry.to_result()
        return by_name
