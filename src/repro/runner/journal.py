"""Crash-safe, digest-verified JSONL journals.

Two layers live here:

**The line machinery** (:func:`write_journal_record`,
:func:`read_journal_records`) — generic append-only JSONL where every
line is canonical JSON carrying a ``sha256`` field over the rest of the
record, flushed and fsynced per line.  A SIGKILLed writer leaves at most
one torn trailing line, which reads drop silently (that is the crash
signature journaling exists to survive); any *other* malformed line, or
any digest/version mismatch, raises
:class:`~repro.errors.JournalCorrupt` naming the line.  The serve
daemon's tick journal and checkpoints reuse this layer.

**The scenario journal** (:class:`Journal`, ``JOURNAL_<suite>*.jsonl``) —
one line per completed bench scenario, with resume semantics: an entry
satisfies a scenario only when suite, name, task *and* params all match,
so a journal written at different bench parameters can never leak stale
results into a run.

Collision safety: journals carry an optional **run-id header** (first
line, ``kind: "header"``).  :func:`suite_run_id` derives a stable id from
the suite name plus the exact scenario list; :func:`journal_path` folds
it into the filename; and a :class:`Journal` opened with a ``run_id``
refuses — with a clear ``journal_corrupt`` code, not silent mixing — to
append to or load a file whose header belongs to a different run.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.errors import JournalCorrupt
from repro.runner.runner import ScenarioResult, canonical_json
from repro.runner.scenario import Scenario

#: Bumped when the line format changes; loads reject other versions.
JOURNAL_VERSION = 1


def journal_path(
    suite: str, directory: str | Path = ".", run_id: str | None = None
) -> Path:
    """Where the journal for ``suite`` (optionally one run of it) lives."""
    stem = f"JOURNAL_{suite}" if run_id is None else f"JOURNAL_{suite}_{run_id}"
    return Path(directory) / f"{stem}.jsonl"


def suite_run_id(suite: str, scenarios: list[Scenario]) -> str:
    """Stable run id for one suite execution: suite + exact scenario list.

    Two runs over the same scenarios share an id (so resume finds the
    journal); any change to the scenario set, tasks or params yields a
    different id (so journals can never collide across configurations).
    """
    payload = {
        "suite": suite,
        "scenarios": [
            {"name": s.name, "task": s.task, "params": s.params} for s in scenarios
        ],
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:12]


# ------------------------------------------------------- the line machinery


def record_digest(record: dict) -> str:
    """SHA-256 of a record's canonical JSON (the per-line integrity seal)."""
    return hashlib.sha256(canonical_json(record).encode()).hexdigest()


def write_journal_record(path: str | Path, record: dict) -> None:
    """Durably append one record (digest field + flush + fsync per line)."""
    path = Path(path)
    line = canonical_json({**record, "sha256": record_digest(record)})
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def read_journal_records(path: str | Path) -> list[dict]:
    """Parse and verify every journaled record (digest stripped).

    A torn final line (no trailing newline, or unparseable JSON in the
    last position) is dropped — the signature of a writer killed
    mid-append.  Anywhere else, or on any digest/version mismatch, the
    journal is corrupt and the error says which line.
    """
    path = Path(path)
    if not path.exists():
        return []
    raw = path.read_text(encoding="utf-8")
    lines = raw.split("\n")
    torn_tail = lines and lines[-1] != ""
    if not torn_tail:
        lines = lines[:-1]
    records: list[dict] = []
    for index, line in enumerate(lines):
        last = index == len(lines) - 1
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            if last and torn_tail:
                break  # torn by a crash mid-append; resume re-runs it
            raise JournalCorrupt(
                f"journal {path} line {index + 1} is not valid JSON",
                line=index + 1,
            ) from exc
        if not isinstance(payload, dict) or "sha256" not in payload:
            if last and torn_tail:
                break
            raise JournalCorrupt(
                f"journal {path} line {index + 1} has no digest",
                line=index + 1,
            )
        stored = payload.pop("sha256")
        if record_digest(payload) != stored:
            raise JournalCorrupt(
                f"journal {path} line {index + 1} digest mismatch "
                f"(edited or bit-rotted journal)",
                line=index + 1,
                expected=stored,
            )
        if payload.get("version") != JOURNAL_VERSION:
            raise JournalCorrupt(
                f"journal {path} line {index + 1} has version "
                f"{payload.get('version')!r}, expected {JOURNAL_VERSION}",
                line=index + 1,
            )
        records.append(payload)
    return records


def check_run_id(path: str | Path, records: list[dict], run_id: str | None) -> None:
    """Refuse a journal whose header belongs to a different run.

    With ``run_id`` set, the first record must be a matching header — a
    missing header means the file predates run-id journaling (or is some
    other file entirely) and appending would silently mix runs.
    """
    if run_id is None or not records:
        return
    head = records[0]
    if head.get("kind") != "header":
        raise JournalCorrupt(
            f"journal {path} has no run-id header; refusing to mix runs",
            expected_run_id=run_id,
        )
    if head.get("run_id") != run_id:
        raise JournalCorrupt(
            f"journal {path} belongs to run {head.get('run_id')!r}, "
            f"not {run_id!r}; refusing to mix runs",
            expected_run_id=run_id,
            found_run_id=head.get("run_id"),
        )


# ------------------------------------------------------ the scenario journal


@dataclass(frozen=True)
class JournalEntry:
    """One journaled scenario completion."""

    suite: str
    scenario: Scenario
    summary: dict
    phases: dict
    wall_seconds: float
    attempts: int
    #: Worker high-water RSS in MiB; optional so pre-RSS journals (and
    #: platforms without the reading) stay loadable under version 1.
    rss_peak_mb: float | None = None

    def matches(self, scenario: Scenario, suite: str) -> bool:
        """Whether this entry is a completed run of exactly ``scenario``."""
        return (
            self.suite == suite
            and self.scenario.name == scenario.name
            and self.scenario.task == scenario.task
            and self.scenario.params == scenario.params
        )

    def to_result(self) -> ScenarioResult:
        return ScenarioResult(
            scenario=self.scenario,
            summary=self.summary,
            phases=dict(self.phases),
            wall_seconds=self.wall_seconds,
            attempts=self.attempts,
            rss_peak_mb=self.rss_peak_mb,
        )

    def record(self) -> dict:
        """The digestable line payload (everything but the digest)."""
        record = {
            "version": JOURNAL_VERSION,
            "suite": self.suite,
            "name": self.scenario.name,
            "task": self.scenario.task,
            "params": self.scenario.params,
            "summary": self.summary,
            "phases": self.phases,
            "wall_s": round(self.wall_seconds, 6),
            "attempts": self.attempts,
        }
        if self.rss_peak_mb is not None:
            record["rss_peak_mb"] = round(self.rss_peak_mb, 2)
        return record


class Journal:
    """Append-only, digest-verified scenario journal.

    With ``run_id`` set, the journal is collision-safe: the first line of
    a fresh file is a run-id header, and appends/loads against a file
    carrying a different (or no) header raise
    :class:`~repro.errors.JournalCorrupt` instead of mixing runs.
    Without ``run_id`` the pre-run-id behaviour is preserved exactly.
    """

    def __init__(self, path: str | Path, run_id: str | None = None) -> None:
        self.path = Path(path)
        self.run_id = run_id

    def exists(self) -> bool:
        return self.path.exists()

    def _ensure_header(self) -> None:
        if self.run_id is None:
            return
        if self.path.exists() and self.path.stat().st_size > 0:
            check_run_id(self.path, read_journal_records(self.path), self.run_id)
            return
        write_journal_record(
            self.path,
            {"version": JOURNAL_VERSION, "kind": "header", "run_id": self.run_id},
        )

    def append(self, entry: JournalEntry) -> None:
        """Durably append one completed scenario (flush + fsync per line)."""
        self._ensure_header()
        write_journal_record(self.path, entry.record())

    def load(self) -> list[JournalEntry]:
        """Parse and verify every journaled entry (header lines skipped)."""
        records = read_journal_records(self.path)
        check_run_id(self.path, records, self.run_id)
        entries: list[JournalEntry] = []
        for payload in records:
            if payload.get("kind") == "header":
                continue
            entries.append(
                JournalEntry(
                    suite=payload["suite"],
                    scenario=Scenario(
                        name=payload["name"],
                        task=payload["task"],
                        params=payload["params"],
                    ),
                    summary=payload["summary"],
                    phases=payload["phases"],
                    wall_seconds=float(payload["wall_s"]),
                    attempts=int(payload["attempts"]),
                    rss_peak_mb=(
                        float(payload["rss_peak_mb"])
                        if payload.get("rss_peak_mb") is not None
                        else None
                    ),
                )
            )
        return entries

    def completed(
        self, scenarios: list[Scenario], suite: str
    ) -> dict[str, ScenarioResult]:
        """Scenario name -> journaled result, for exact-match entries only.

        Later entries win (a scenario retried across resumed runs keeps
        its most recent completion).
        """
        by_name: dict[str, ScenarioResult] = {}
        entries = self.load()
        for scenario in scenarios:
            for entry in entries:
                if entry.matches(scenario, suite):
                    by_name[scenario.name] = entry.to_result()
        return by_name
