"""Parallel scenario execution and machine-readable perf baselines.

:class:`ScenarioRunner` fans a list of independent :class:`Scenario`
configurations out across ``multiprocessing`` workers (spawn context, so
the same code is fork-safety-agnostic on every platform) or runs them
inline for ``workers=1``.  Because every task seeds its own randomness
from the scenario params (see :mod:`repro.runner.tasks`), the per-scenario
summaries are bit-identical between serial and parallel execution — the
runner can and does verify this on demand.

:func:`write_baseline` records a run as ``BENCH_<name>.json``: wall times,
throughput, per-phase timings and a digest of every summary, giving the
repo a perf trajectory reviewers can diff.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import platform
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

from repro.errors import NonFiniteSummary
from repro.runner.rss import self_peak_rss_mb
from repro.runner.scenario import Scenario


def _execute(scenario: Scenario) -> tuple[str, dict, dict, float, float | None]:
    """Worker body: run one scenario, time it, return plain picklables.

    The trailing element is the executing process's high-water RSS in MiB
    (``None`` where the platform cannot report it).  In a spawned worker
    that is a true per-scenario peak; inline (``workers=1``) it is the
    host process's peak, which upper-bounds the scenario's.
    """
    start = perf_counter()
    result = scenario.run()
    elapsed = perf_counter() - start
    if not isinstance(result, dict) or "summary" not in result:
        raise TypeError(
            f"task {scenario.task!r} must return a dict with a 'summary' "
            f"key, got {type(result).__name__}"
        )
    return (
        scenario.name,
        result["summary"],
        dict(result.get("phases", {})),
        elapsed,
        self_peak_rss_mb(),
    )


def canonical_json(payload) -> str:
    """Sorted-key, separator-free JSON — the digest and journal wire form.

    NaN/Inf floats would serialize to non-standard tokens whose meaning
    (and byte form) varies across parsers, silently corrupting digests;
    they are rejected with :class:`~repro.errors.NonFiniteSummary`.
    """
    try:
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except ValueError as exc:
        raise NonFiniteSummary(
            f"payload contains non-finite floats and cannot be canonicalized: {exc}"
        ) from exc


def summary_digest(summary: dict) -> str:
    """Canonical SHA-256 of one scenario summary (sorted-key JSON)."""
    return hashlib.sha256(canonical_json(summary).encode()).hexdigest()


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's outcome."""

    scenario: Scenario
    summary: dict
    phases: dict[str, float]
    wall_seconds: float
    #: Execution attempts consumed (always 1 on the unsupervised path;
    #: the supervisor counts retries).  Deliberately excluded from
    #: ``BENCH_<suite>.json`` so a retried-then-resumed run stays
    #: byte-identical to an uninterrupted one.
    attempts: int = 1
    #: High-water RSS (MiB) of the process that ran the scenario, when
    #: the platform reports it.  A timing-class side channel: surfaced in
    #: baselines and journals but never folded into the summary digest.
    rss_peak_mb: float | None = None

    @property
    def name(self) -> str:
        return self.scenario.name

    def digest(self) -> str:
        return summary_digest(self.summary)


@dataclass(frozen=True)
class ScenarioFailure:
    """A scenario the supervisor gave up on (quarantined)."""

    scenario: Scenario
    #: ``"timeout"`` | ``"crash"`` | ``"error"`` — the *last* failure kind.
    kind: str
    attempts: int
    message: str

    @property
    def name(self) -> str:
        return self.scenario.name


@dataclass(frozen=True)
class RunnerReport:
    """Everything one suite run produced."""

    suite: str
    workers: int
    results: tuple[ScenarioResult, ...]
    total_wall_seconds: float
    #: Scenarios that kept failing under supervision; empty on the plain
    #: (unsupervised) path, which raises on the first failure instead.
    quarantined: tuple[ScenarioFailure, ...] = ()
    #: Coordinator-observed peak of (supervisor + live workers) current
    #: RSS in MiB, sampled per supervision tick; ``None`` on the plain
    #: path or where procfs is unavailable.
    peak_rss_mb: float | None = None

    def __post_init__(self) -> None:
        by_name = {}
        for result in self.results:
            if result.name in by_name:
                raise ValueError(f"duplicate scenario name {result.name!r}")
            by_name[result.name] = result
        object.__setattr__(self, "_by_name", by_name)

    def __getitem__(self, name: str) -> ScenarioResult:
        return self._by_name[name]

    def __iter__(self):
        return iter(self.results)

    def summaries(self) -> dict[str, dict]:
        """Scenario name -> summary, in execution-request order."""
        return {r.name: r.summary for r in self.results}

    def digests(self) -> dict[str, str]:
        """Scenario name -> canonical summary digest."""
        return {r.name: r.digest() for r in self.results}

    @property
    def serial_seconds(self) -> float:
        """Sum of per-scenario walls — the work the run parallelized."""
        return sum(r.wall_seconds for r in self.results)

    def tasks_per_second(self) -> float:
        """Aggregate simulated-task throughput (simulate-style suites)."""
        tasks = sum(r.summary.get("tasks_submitted", 0) for r in self.results)
        if self.total_wall_seconds <= 0:
            return 0.0
        return tasks / self.total_wall_seconds


class ScenarioRunner:
    """Executes scenario lists serially or across worker processes."""

    def __init__(self, suite: str = "suite") -> None:
        self.suite = suite

    def run(self, scenarios: list[Scenario], workers: int = 1) -> RunnerReport:
        """Run every scenario; returns results in the input order.

        ``workers=1`` executes inline (no processes).  ``workers>1`` uses
        a spawn-context pool; scenario order in the report is preserved
        regardless of completion order.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"scenario names must be unique, got {names}")

        start = perf_counter()
        if workers == 1 or len(scenarios) <= 1:
            raw = [_execute(s) for s in scenarios]
        else:
            context = multiprocessing.get_context("spawn")
            with context.Pool(processes=min(workers, len(scenarios))) as pool:
                raw = pool.map(_execute, scenarios)
        total = perf_counter() - start

        by_name = {
            name: (summary, phases, wall, rss)
            for name, summary, phases, wall, rss in raw
        }
        results = tuple(
            ScenarioResult(
                scenario=s,
                summary=by_name[s.name][0],
                phases=by_name[s.name][1],
                wall_seconds=by_name[s.name][2],
                rss_peak_mb=by_name[s.name][3],
            )
            for s in scenarios
        )
        return RunnerReport(
            suite=self.suite, workers=workers, results=results,
            total_wall_seconds=total,
        )

    def verify_determinism(
        self, scenarios: list[Scenario], workers: int = 2
    ) -> tuple[RunnerReport, RunnerReport]:
        """Run serially and in parallel; raise if any summary differs."""
        serial = self.run(scenarios, workers=1)
        parallel = self.run(scenarios, workers=workers)
        mismatches = [
            name
            for name in serial.digests()
            if serial.digests()[name] != parallel.digests()[name]
        ]
        if mismatches:
            raise AssertionError(
                f"serial/parallel summaries diverged for scenarios: {mismatches}"
            )
        return serial, parallel


def _scenario_entry(result: ScenarioResult) -> dict:
    """One scenario's row in the baseline payload.

    Simulation scenarios additionally surface their task count (so the
    suite-level ``tasks_per_second`` is auditable per scenario, and a
    suite mixing solver scenarios with replay scenarios does not silently
    report 0.0) and their fabric metrics block
    (``summary["resilience"]["fabric"]``) so network-fault baselines show
    partition exposure, not just a digest.
    """
    entry = {
        "name": result.name,
        "task": result.scenario.task,
        "wall_s": round(result.wall_seconds, 4),
        "phases": {k: round(v, 4) for k, v in sorted(result.phases.items())},
        "summary_digest": result.digest(),
    }
    if result.rss_peak_mb is not None:
        entry["rss_peak_mb"] = round(result.rss_peak_mb, 2)
    tasks = result.summary.get("tasks_submitted")
    if tasks is not None:
        entry["tasks"] = int(tasks)
    resilience = result.summary.get("resilience")
    if isinstance(resilience, dict):
        fabric = resilience.get("fabric")
        if isinstance(fabric, dict):
            entry["fabric"] = fabric
    return entry


def baseline_payload(
    report: RunnerReport, compare_serial: RunnerReport | None = None
) -> dict:
    """The JSON body of a ``BENCH_<name>.json`` perf baseline."""
    payload = {
        "bench": report.suite,
        "workers": report.workers,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "total_wall_s": round(report.total_wall_seconds, 4),
        "sum_scenario_wall_s": round(report.serial_seconds, 4),
        "tasks_per_second": round(report.tasks_per_second(), 2),
        "scenarios": [_scenario_entry(r) for r in report.results],
        "quarantined": [
            {"name": f.name, "kind": f.kind, "attempts": f.attempts}
            for f in report.quarantined
        ],
    }
    rss_readings = [
        r.rss_peak_mb for r in report.results if r.rss_peak_mb is not None
    ]
    if report.peak_rss_mb is not None:
        rss_readings.append(report.peak_rss_mb)
    if rss_readings:
        # Worker self-peaks bound any single scenario; the coordinator's
        # tick-sampled tree peak bounds concurrent residency.  The max of
        # the two is the run's best-known high-water mark.
        payload["peak_rss_mb"] = round(max(rss_readings), 2)
    if compare_serial is not None:
        payload["serial_wall_s"] = round(compare_serial.total_wall_seconds, 4)
        payload["speedup_vs_serial"] = (
            round(compare_serial.total_wall_seconds / report.total_wall_seconds, 3)
            if report.total_wall_seconds > 0
            else 0.0
        )
        payload["summaries_match_serial"] = (
            compare_serial.digests() == report.digests()
        )
    return payload


def write_baseline(
    report: RunnerReport,
    directory: str | Path = ".",
    compare_serial: RunnerReport | None = None,
) -> Path:
    """Write ``BENCH_<suite>.json`` into ``directory`` and return the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{report.suite}.json"
    payload = baseline_payload(report, compare_serial=compare_serial)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def repo_root() -> Path:
    """The repository root (where BENCH_*.json baselines live)."""
    return Path(__file__).resolve().parents[3]
