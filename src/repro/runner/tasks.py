"""Built-in scenario tasks.

Each task is a pure function of its picklable parameter dict: all
randomness is seeded from the params, so a scenario produces bit-identical
summaries whether it runs serially, in a spawned worker, or on a different
worker count.  Expensive shared artifacts (the synthetic trace and the
classifier fitted on it) are memoized *per process*, keyed by the exact
trace parameters — pool workers serving many scenarios pay for them once.

Every task returns ``{"summary": <deterministic JSON-able dict>,
"phases": <wall-clock timings dict>}``; only ``summary`` participates in
determinism checks.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.runner.defaults import trace_config_from_params
from repro.runner.scenario import register_task

#: trace-params key -> (Trace, TaskClassifier); per-process memo.
_TRACE_CACHE: dict[tuple, tuple] = {}


def _trace_key(params: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in params.items()))


def _trace_and_classifier(trace_params: dict):
    """The (trace, fitted classifier) pair for one trace parameter dict."""
    key = _trace_key(trace_params)
    cached = _TRACE_CACHE.get(key)
    if cached is None:
        from repro.classification import ClassifierConfig, TaskClassifier
        from repro.trace import generate_trace

        config = trace_config_from_params(trace_params)
        trace = generate_trace(config)
        classifier = TaskClassifier(ClassifierConfig(seed=config.seed)).fit(
            list(trace.tasks)
        )
        cached = (trace, classifier)
        _TRACE_CACHE[key] = cached
    return cached


@register_task("simulate")
def simulate_task(params: dict) -> dict:
    """One end-to-end :class:`HarmonySimulation` run.

    Params: ``trace`` (dict, see :func:`trace_config_from_params`),
    ``policy``, ``predictor``, ``engine`` (``object``/``columnar`` replay
    engine), ``guard``, ``enable_preemption``, ``slo_multiplier``,
    ``fault_scenario`` (+ ``fault_seed``) and ``window_hours`` (clip the
    trace to its first H hours).
    """
    from repro.containers import ContainerManagerConfig
    from repro.containers.manager import default_delay_slos
    from repro.resilience.scenarios import build_scenario_plan
    from repro.simulation import HarmonyConfig, HarmonySimulation

    trace, classifier = _trace_and_classifier(params.get("trace", {}))
    window_hours = params.get("window_hours")
    if window_hours is not None:
        trace = trace.window(0.0, min(float(window_hours) * 3600.0, trace.horizon))

    config_kwargs: dict = {
        "policy": params.get("policy", "cbs"),
        "predictor": params.get("predictor", "ewma"),
        "engine": params.get("engine", "object"),
        "guard": bool(params.get("guard", False)),
        "enable_preemption": bool(params.get("enable_preemption", False)),
    }
    multiplier = params.get("slo_multiplier")
    if multiplier is not None:
        base = HarmonyConfig()
        config_kwargs["manager"] = ContainerManagerConfig(
            delay_slos={
                g: s * float(multiplier) for g, s in default_delay_slos().items()
            },
            capacity_ladders=(
                tuple(sorted({m.cpu_capacity for m in base.fleet})),
                tuple(sorted({m.memory_capacity for m in base.fleet})),
            ),
        )
    scenario = params.get("fault_scenario")
    if scenario is not None:
        config_kwargs["fault_plan"] = build_scenario_plan(
            scenario, trace.horizon, seed=int(params.get("fault_seed", 0))
        )

    config = HarmonyConfig(**config_kwargs)
    result = HarmonySimulation(config, trace, classifier=classifier).run()
    return {"summary": result.summary(), "phases": dict(result.phase_timings)}


def synthetic_relax_problem(num_classes: int, num_machine_types: int,
                            W: int = 4, seed: int = 0):
    """The randomized CBS-RELAX instance of the scalability bench."""
    from repro.provisioning import (
        ContainerType,
        MachineClass,
        ProvisioningProblem,
        UtilityFunction,
    )

    rng = np.random.default_rng(seed)
    machines = tuple(
        MachineClass(
            platform_id=m + 1,
            name=f"type{m}",
            capacity=(float(rng.uniform(0.2, 1.0)), float(rng.uniform(0.2, 1.0))),
            available=int(rng.integers(100, 2000)),
            idle_watts=float(rng.uniform(60, 320)),
            alpha_watts=(float(rng.uniform(30, 250)), float(rng.uniform(5, 60))),
            switch_cost=0.02,
        )
        for m in range(num_machine_types)
    )
    containers = tuple(
        ContainerType(
            class_id=n,
            name=f"c{n}",
            size=(float(rng.uniform(0.005, 0.15)), float(rng.uniform(0.005, 0.15))),
            utility=UtilityFunction.capped_linear(0.01, 100_000),
        )
        for n in range(num_classes)
    )
    demand = rng.uniform(0, 200, size=(W, num_classes))
    return ProvisioningProblem(
        machines=machines,
        containers=containers,
        demand=demand,
        prices=np.full(W, 0.1),
        interval_seconds=300.0,
    )


@register_task("relax_solve")
def relax_solve_task(params: dict) -> dict:
    """Solve randomized CBS-RELAX instances of one size.

    Params: ``num_classes``, ``num_types``, ``W``, ``seed``, ``repeats``.
    Repeats re-solve fresh instances (seeds ``seed + i``) — the unit of
    work the scalability sweep parallelizes.
    """
    from repro.provisioning import CbsRelaxSolver

    num_classes = int(params["num_classes"])
    num_types = int(params["num_types"])
    W = int(params.get("W", 4))
    seed = int(params.get("seed", 0))
    repeats = int(params.get("repeats", 1))

    solver = CbsRelaxSolver()
    objectives = []
    start = perf_counter()
    for i in range(repeats):
        problem = synthetic_relax_problem(num_classes, num_types, W=W, seed=seed + i)
        solution = solver.solve(problem)
        objectives.append(float(solution.objective))
    elapsed = perf_counter() - start
    variables = 4 * (num_types + num_types * num_classes + 2 * num_types + num_classes)
    return {
        "summary": {
            "num_classes": num_classes,
            "num_types": num_types,
            "W": W,
            "repeats": repeats,
            "lp_variables": variables,
            "objectives": objectives,
        },
        "phases": {"solve": elapsed},
    }


@register_task("omega_round")
def omega_round_task(params: dict) -> dict:
    """Solve + round one CBS instance at a given omega (Eq. 17 ablation).

    Params: ``trace`` (classifier source), ``omega``, ``demand_seed``.
    """
    from repro.containers import ContainerManager, ContainerManagerConfig
    from repro.energy import table2_fleet
    from repro.provisioning import CbsRelaxSolver, FirstFitRounder, build_problem

    _, classifier = _trace_and_classifier(params.get("trace", {}))
    omega = float(params["omega"])
    fleet = table2_fleet(0.1)
    manager = ContainerManager(classifier, ContainerManagerConfig())
    class_ids = sorted(manager.specs)
    rng = np.random.default_rng(int(params.get("demand_seed", 5)))
    demand = np.maximum(
        rng.poisson(8.0, size=(1, len(class_ids))).astype(float), 0
    )
    problem = build_problem(
        fleet,
        manager.specs,
        demand=demand,
        prices=np.array([0.1]),
        interval_seconds=300.0,
        overprovision=np.full(len(class_ids), omega),
    )
    solver = CbsRelaxSolver()
    start = perf_counter()
    solution = solver.solve(problem)
    plan = FirstFitRounder().round(problem, solution)
    elapsed = perf_counter() - start
    return {
        "summary": {
            "omega": omega,
            "z_fractional": float(solution.z[0].sum()),
            "machines": int(plan.active.sum()),
            "placed": int(plan.total_packed().sum()),
            "dropped": int(plan.dropped.sum()),
            "placement_ratio": float(plan.placement_ratio(solution.scheduled(0))),
        },
        "phases": {"solve_round": elapsed},
    }


@register_task("horizon_solve")
def horizon_solve_task(params: dict) -> dict:
    """Solve one MPC instance at look-ahead W with a step-2 demand surge.

    Params: ``trace`` (classifier source), ``W``.
    """
    from repro.containers import ContainerManager, ContainerManagerConfig
    from repro.energy import table2_fleet
    from repro.provisioning import CbsRelaxSolver, build_problem

    _, classifier = _trace_and_classifier(params.get("trace", {}))
    W = int(params["W"])
    fleet = table2_fleet(0.1)
    manager = ContainerManager(classifier, ContainerManagerConfig())
    N = len(manager.specs)
    base = np.full(N, 4.0)
    demand = np.tile(base, (W, 1))
    if W >= 3:
        demand[2:] = base * 5.0
    problem = build_problem(
        fleet,
        manager.specs,
        demand=demand,
        prices=np.full(W, 0.1),
        interval_seconds=300.0,
    )
    solver = CbsRelaxSolver()
    start = perf_counter()
    solution = solver.solve(problem, initial_active=np.zeros(len(fleet)))
    elapsed = perf_counter() - start
    return {
        "summary": {
            "W": W,
            "z_first_step": float(solution.z[0].sum()),
            "z_last_step": float(solution.z[-1].sum()),
            "objective": float(solution.objective),
        },
        "phases": {"solve": elapsed},
    }


@register_task("predictor_eval")
def predictor_eval_task(params: dict) -> dict:
    """Rolling-origin forecast evaluation of one predictor on one trace.

    Params: ``trace``, ``predictor``, ``predictor_kwargs``, ``warmup``.
    """
    from repro.forecasting import make_predictor, rolling_origin_evaluation
    from repro.trace import PriorityGroup, bin_arrivals

    trace, _ = _trace_and_classifier(params.get("trace", {}))
    name = params["predictor"]
    kwargs = dict(params.get("predictor_kwargs", {}))
    if "order" in kwargs:
        kwargs["order"] = tuple(kwargs["order"])
    warmup = int(params.get("warmup", 12))

    series = bin_arrivals(trace.tasks, trace.horizon, 300.0)
    by_group: dict[str, dict[str, float]] = {}
    start = perf_counter()
    for group in PriorityGroup:
        counts = series.counts.get(group)
        if counts is None or counts.sum() < 10:
            continue
        # CI-scale traces may be shorter than the requested warmup; clamp
        # deterministically so the same scenario runs at any REPRO_BENCH_HOURS.
        effective_warmup = min(warmup, max(len(counts) // 2, 1))
        score = rolling_origin_evaluation(
            counts, lambda: make_predictor(name, **kwargs), warmup=effective_warmup
        )
        by_group[group.name.lower()] = {
            "mae": float(score.mae),
            "rmse": float(score.rmse),
        }
    elapsed = perf_counter() - start
    rmses = [v["rmse"] for v in by_group.values()]
    return {
        "summary": {
            "predictor": name,
            "by_group": by_group,
            "mean_rmse": float(np.mean(rmses)) if rmses else 0.0,
        },
        "phases": {"evaluate": elapsed},
    }


@register_task("consolidation")
def consolidation_task(params: dict) -> dict:
    """Migration-driven consolidation over fragmented machine states.

    Params: ``seed``, ``trials``, ``num_machines``, ``mean_load``.
    """
    from repro.provisioning import consolidation_savings
    from repro.provisioning.rounding import MachineAssignment

    rng = np.random.default_rng(int(params.get("seed", 11)))
    trials = int(params.get("trials", 10))
    num_machines = int(params.get("num_machines", 20))
    mean_load = float(params.get("mean_load", 0.35))
    sizes = {0: (0.05, 0.08), 1: (0.12, 0.10), 2: (0.25, 0.20)}

    total_released = total_moves = 0
    net_total = 0.0
    start = perf_counter()
    for _ in range(trials):
        machines = []
        for machine_id in range(num_machines):
            m = MachineAssignment(
                platform_id=1, capacity=(1.0, 1.0), used=np.zeros(2),
                containers={}, machine_id=machine_id,
            )
            target_load = float(np.clip(rng.normal(mean_load, 0.15), 0.05, 0.85))
            while m.used.max() < target_load:
                n = int(rng.integers(0, 3))
                if not m.fits(sizes[n]):
                    break
                m.add(n, sizes[n])
            machines.append(m)
        used = sum(m.used[0] for m in machines)
        target = max(int(np.ceil(used / 0.9)), 1)
        plan, net = consolidation_savings(
            machines, sizes, target_active=target,
            idle_watts=138.0, horizon_seconds=3600.0,
            price_per_kwh=0.10, migration_cost=0.001,
        )
        total_released += len(plan.released_machines)
        total_moves += plan.num_moves
        net_total += net
    elapsed = perf_counter() - start
    return {
        "summary": {
            "trials": trials,
            "released": total_released,
            "moves": total_moves,
            "net_dollars": float(net_total),
        },
        "phases": {"consolidate": elapsed},
    }


# The worker-fault injection task ("transient_fault") lives with the fault
# catalog, and the sharded-fleet task ("fleet_shard") with the fleet layer;
# importing them here guarantees spawn workers — which only import this
# module on a registry miss — see them too.
import repro.fleet.tasks  # noqa: E402,F401
import repro.resilience.scenarios  # noqa: E402,F401
