"""Scenario specifications and the task registry.

A :class:`Scenario` is a fully picklable description of one unit of bench
work: a registered *task* name plus a parameter dict.  Workers (spawned
processes or the calling process) resolve the task by name and call it —
so parallel execution never has to pickle closures, fixtures or fitted
models, and a scenario's result is a pure function of its parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

#: task name -> callable(params: dict) -> JSON-able summary dict.
_REGISTRY: dict[str, Callable[[dict], dict]] = {}


def register_task(name: str) -> Callable[[Callable[[dict], dict]], Callable[[dict], dict]]:
    """Decorator registering a scenario task under ``name``."""

    def decorator(fn: Callable[[dict], dict]) -> Callable[[dict], dict]:
        if name in _REGISTRY:
            raise ValueError(f"task {name!r} already registered")
        _REGISTRY[name] = fn
        return fn

    return decorator


def get_task(name: str) -> Callable[[dict], dict]:
    """Resolve a registered task, importing the built-ins on first miss.

    The lazy import matters for ``multiprocessing`` spawn workers: they
    import this module fresh and must see the built-in tasks without the
    parent having to pre-populate anything.
    """
    if name not in _REGISTRY:
        import repro.runner.tasks  # noqa: F401  (registers built-ins)
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario task {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def registered_tasks() -> tuple[str, ...]:
    """Names of all registered tasks (built-ins included)."""
    import repro.runner.tasks  # noqa: F401

    return tuple(sorted(_REGISTRY))


@dataclass(frozen=True)
class Scenario:
    """One unit of bench work.

    Attributes
    ----------
    name:
        Unique label within a suite; keys the per-scenario results and the
        serial-vs-parallel determinism comparison.
    task:
        Registered task name (see :mod:`repro.runner.tasks`).
    params:
        Picklable parameter dict handed to the task.  Any randomness a
        task uses must be seeded from here — that is what makes parallel
        runs bit-identical to serial ones.
    """

    name: str
    task: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not self.task:
            raise ValueError("scenario task must be non-empty")

    def run(self) -> dict:
        """Execute in-process (the serial path and the worker body)."""
        return get_task(self.task)(dict(self.params))
