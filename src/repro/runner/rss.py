"""Resident-set-size sampling without external dependencies.

Two probes, both best-effort (they return ``None`` where the platform
does not expose the reading, never raise):

- :func:`self_peak_rss_mb` — the calling process's *high-water* RSS from
  ``getrusage``.  Workers report this at the end of a scenario so the
  baseline payload carries a true per-scenario peak even though the
  coordinator only samples children periodically.
- :func:`process_rss_mb` — a process's *current* RSS from
  ``/proc/<pid>/status`` (``VmRSS``).  The supervisor samples itself and
  its live workers each tick to enforce the fleet memory ceiling and to
  observe the run-wide peak.
"""

from __future__ import annotations

import sys

try:
    import resource
except ImportError:  # pragma: no cover — non-POSIX platform
    resource = None  # type: ignore[assignment]


def self_peak_rss_mb() -> float | None:
    """High-water RSS of the calling process, in MiB (None if unknown)."""
    if resource is None:
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if peak <= 0:
        return None
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return float(peak) / divisor


def process_rss_mb(pid: int) -> float | None:
    """Current RSS of ``pid`` in MiB via procfs (None if unreadable)."""
    try:
        with open(f"/proc/{pid}/status", encoding="ascii", errors="replace") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    parts = line.split()
                    if len(parts) >= 2:
                        return float(int(parts[1])) / 1024.0
    except (OSError, ValueError):
        return None
    return None


def tree_rss_mb(pids: list[int]) -> float | None:
    """Sum of current RSS over ``pids`` (self + workers), None if no reading.

    Dead or unreadable pids contribute nothing; the reading is ``None``
    only when *no* pid could be sampled, so a missing procfs disables the
    memory ceiling gracefully instead of stalling admission forever.
    """
    readings = [rss for pid in pids for rss in (process_rss_mb(pid),) if rss is not None]
    if not readings:
        return None
    return sum(readings)
