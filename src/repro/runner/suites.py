"""Canonical scenario suites.

The pytest benches (``benchmarks/bench_*.py``) and the ``repro bench`` CLI
both build their scenario lists here, from the shared defaults in
:mod:`repro.runner.defaults` — one definition of each sweep, everywhere.
"""

from __future__ import annotations

from repro.runner.defaults import (
    BenchDefaults,
    bench_defaults,
    bench_repeats,
    bench_replay_hours,
    bench_replay_load,
    bench_replay_machines,
    bench_seed,
)
from repro.runner.scenario import Scenario

#: Problem sizes of the CBS-RELAX scalability sweep (classes, machine types).
#: The first four are the paper-scale points; the last two stretch toward
#: the production-scale regime so the sweep is heavy enough to measure
#: parallel speedup meaningfully.
SCALABILITY_SIZES = ((20, 4), (80, 4), (80, 10), (160, 10), (320, 16), (640, 10))


def scalability_scenarios(
    repeats: int | None = None, seeds: tuple[int, ...] = (0, 1)
) -> list[Scenario]:
    """The multi-scenario CBS-RELAX sweep (sizes x seeds, repeated solves).

    ``len(SCALABILITY_SIZES) * len(seeds)`` independent scenarios — enough
    parallel grain for a 4-worker pool to show its speedup, each scenario
    substantial enough (``repeats`` solves, default ``REPRO_BENCH_REPEATS``)
    to dwarf process overhead.
    """
    if repeats is None:
        repeats = bench_repeats()
    return [
        Scenario(
            name=f"relax_c{num_classes}_t{num_types}_s{seed}",
            task="relax_solve",
            params={
                "num_classes": num_classes,
                "num_types": num_types,
                "W": 4,
                "seed": seed,
                "repeats": repeats,
            },
        )
        for num_classes, num_types in SCALABILITY_SIZES
        for seed in seeds
    ] + replay_scenarios()


#: Replay engines the scalability suite paces against each other.
REPLAY_ENGINES = ("object", "columnar")


def replay_trace_params() -> dict:
    """Trace parameters of the engine-comparison replay scenarios.

    A deep-backlog scenario (large fleet, high load) where the replay
    loop, not the LP solver, dominates — the regime the columnar engine
    exists for.  Separate ``REPRO_BENCH_REPLAY_*`` knobs so CI can shrink
    it independently of the solver sweep.
    """
    return {
        "hours": bench_replay_hours(),
        "seed": bench_seed(),
        "machines": bench_replay_machines(),
        "load": bench_replay_load(),
    }


def replay_scenarios() -> list[Scenario]:
    """The same threshold-policy replay once per engine.

    Identical trace and policy parameters, so the two scenarios' summary
    digests must match (the determinism contract, asserted by
    ``scripts/check_bench_regression.py``) while their wall times measure
    the columnar speedup.
    """
    trace = replay_trace_params()
    return [
        Scenario(
            name=f"replay_{engine}",
            task="simulate",
            params={"trace": trace, "policy": "threshold", "engine": engine},
        )
        for engine in REPLAY_ENGINES
    ]


def _bench_trace_params(defaults: BenchDefaults | None) -> dict:
    defaults = defaults or bench_defaults()
    params = defaults.trace_params()
    # The figure benches' shared trace draws placement constraints against
    # the Table II fleet; the runner suites replay the identical trace.
    params["constraints"] = True
    return params


def omega_scenarios(defaults: BenchDefaults | None = None) -> list[Scenario]:
    """Eq. 17 over-provisioning sweep (one scenario per omega)."""
    trace = _bench_trace_params(defaults)
    return [
        Scenario(
            name=f"omega_{omega}",
            task="omega_round",
            params={"trace": trace, "omega": omega, "demand_seed": 5},
        )
        for omega in (1.0, 1.25, 1.5, 2.0, 3.0, 4.0)
    ]


def horizon_scenarios(defaults: BenchDefaults | None = None) -> list[Scenario]:
    """MPC look-ahead sweep (one scenario per W)."""
    trace = _bench_trace_params(defaults)
    return [
        Scenario(
            name=f"horizon_W{W}",
            task="horizon_solve",
            params={"trace": trace, "W": W},
        )
        for W in (1, 2, 4, 8)
    ]


#: Predictor name -> factory kwargs, as in the Section VI ablation.
PREDICTOR_GRID: tuple[tuple[str, str, dict], ...] = (
    ("naive", "naive", {}),
    ("moving_average", "moving_average", {"window": 6}),
    ("ewma", "ewma", {"alpha": 0.3}),
    ("holt", "holt", {}),
    ("arima(2,0,1)", "arima", {"order": (2, 0, 1), "window": 48}),
    # 288 bins of 300 s = the 24 h diurnal period of the trace.
    ("seasonal_ewma", "seasonal_ewma", {"period": 288}),
)


def predictor_scenarios(defaults: BenchDefaults | None = None) -> list[Scenario]:
    """Arrival-predictor ablation (one scenario per predictor)."""
    trace = _bench_trace_params(defaults)
    return [
        Scenario(
            name=f"predictor_{label}",
            task="predictor_eval",
            params={
                "trace": trace,
                "predictor": name,
                "predictor_kwargs": dict(kwargs),
                "warmup": 12,
            },
        )
        for label, name, kwargs in PREDICTOR_GRID
    ]


def preemption_scenarios(defaults: BenchDefaults | None = None) -> list[Scenario]:
    """CBS with and without priority preemption, 2 h window."""
    trace = _bench_trace_params(defaults)
    return [
        Scenario(
            name=f"preemption_{'on' if flag else 'off'}",
            task="simulate",
            params={
                "trace": trace,
                "policy": "cbs",
                "predictor": "ewma",
                "enable_preemption": flag,
                "window_hours": 2.0,
            },
        )
        for flag in (False, True)
    ]


def slo_scenarios(defaults: BenchDefaults | None = None) -> list[Scenario]:
    """SLO-tightness sweep (energy/delay trade-off), 2 h window."""
    trace = _bench_trace_params(defaults)
    return [
        Scenario(
            name=f"slo_{multiplier}x",
            task="simulate",
            params={
                "trace": trace,
                "policy": "cbs",
                "predictor": "ewma",
                "slo_multiplier": multiplier,
                "window_hours": 2.0,
            },
        )
        for multiplier in (0.25, 1.0, 4.0)
    ]


def consolidation_scenarios() -> list[Scenario]:
    """Migration consolidation over fragmented fleets."""
    return [
        Scenario(
            name="consolidation_frag",
            task="consolidation",
            params={"seed": 11, "trials": 10, "num_machines": 20, "mean_load": 0.35},
        )
    ]


def ablation_scenarios(defaults: BenchDefaults | None = None) -> list[Scenario]:
    """Every ablation sweep as one suite."""
    return (
        omega_scenarios(defaults)
        + horizon_scenarios(defaults)
        + predictor_scenarios(defaults)
        + preemption_scenarios(defaults)
        + slo_scenarios(defaults)
        + consolidation_scenarios()
    )


#: Fault scenarios the robustness suite replays (a subset of
#: :data:`repro.resilience.scenarios.SCENARIOS` — stragglers and poisson
#: stay CLI-only to keep the bench matrix at its historical three rows).
ROBUSTNESS_SCENARIOS = ("clean", "outage", "blackout")


def robustness_scenarios(
    defaults: BenchDefaults | None = None,
    scenarios: tuple[str, ...] = ROBUSTNESS_SCENARIOS,
) -> list[Scenario]:
    """Guarded CBS under the named fault scenarios, 2 h window."""
    trace = _bench_trace_params(defaults)
    return [
        Scenario(
            name=f"fault_{scenario}",
            task="simulate",
            params={
                "trace": trace,
                "policy": "cbs",
                "predictor": "ewma",
                "guard": True,
                "fault_scenario": None if scenario == "clean" else scenario,
                "fault_seed": 1,
                "window_hours": 2.0,
            },
        )
        for scenario in scenarios
    ]


#: Fabric fault scenarios the network_faults suite replays — the clean
#: baseline plus every fabric fault kind from
#: :mod:`repro.resilience.fabric`, in escalating severity order.
NETWORK_FAULT_SCENARIOS = (
    "clean",
    "link_degradation",
    "link_flapping",
    "partial_partition",
)


def network_faults_scenarios(
    defaults: BenchDefaults | None = None,
    scenarios: tuple[str, ...] = NETWORK_FAULT_SCENARIOS,
) -> list[Scenario]:
    """Guarded CBS under the fabric fault scenarios, 2 h window.

    Same shape as :func:`robustness_scenarios` but over the network fault
    universe: correlated link degradation, flapping links and a partial
    partition severing cell 4 from the ingest cell.
    """
    trace = _bench_trace_params(defaults)
    return [
        Scenario(
            name=f"net_{scenario}",
            task="simulate",
            params={
                "trace": trace,
                "policy": "cbs",
                "predictor": "ewma",
                "guard": True,
                "fault_scenario": None if scenario == "clean" else scenario,
                "fault_seed": 3,
                "window_hours": 2.0,
            },
        )
        for scenario in scenarios
    ]


#: Corruption fractions the dirty-trace suite replays; the first satisfies
#: the ">= 10% corrupted records" acceptance bar, the second stresses it.
TRACE_CORRUPTION_FRACTIONS = (0.1, 0.25)


def trace_corruption_scenarios(
    defaults: BenchDefaults | None = None,
    fractions: tuple[float, ...] = TRACE_CORRUPTION_FRACTIONS,
) -> list[Scenario]:
    """Dirty-trace ingestion: corrupt, sanitize, simulate with fallbacks.

    Each scenario saves the shared bench trace, corrupts a fraction of its
    task rows in place (``repro.resilience.scenarios.corrupt_tasks_csv``),
    re-ingests it through the sanitizer and runs guarded CBS with the
    forecast fallback chain — the data-plane counterpart of the
    machine-fault robustness matrix.
    """
    trace = _bench_trace_params(defaults)
    return [
        Scenario(
            name=f"dirty_{round(fraction * 100):d}pct",
            task="sanitized_simulate",
            params={
                "trace": trace,
                "corrupt_fraction": fraction,
                "corrupt_seed": 7,
                "policy": "cbs",
                "predictor": "fallback",
                "guard": True,
                "window_hours": 2.0,
            },
        )
        for fraction in fractions
    ]


#: Tasks that understand the ``engine`` parameter (replay-engine aware).
ENGINE_AWARE_TASKS = ("simulate", "sanitized_simulate")


def with_engine(scenarios: list[Scenario], engine: str) -> list[Scenario]:
    """Pin every engine-aware scenario in the list to ``engine``.

    ``engine="both"`` instead *pairs* each engine-aware scenario: one copy
    per replay engine, names suffixed ``__object``/``__columnar``.  The
    two copies share every other parameter, so their summary digests must
    be bit-identical — ``repro bench --engine both`` asserts exactly that
    (the differential contract of :mod:`repro.simulation.columnar`).
    Scenarios whose task ignores ``engine`` pass through untouched.
    """
    if engine == "both":
        paired: list[Scenario] = []
        for scenario in scenarios:
            if scenario.task in ENGINE_AWARE_TASKS:
                paired.extend(
                    Scenario(
                        name=f"{scenario.name}__{eng}",
                        task=scenario.task,
                        params={**scenario.params, "engine": eng},
                    )
                    for eng in REPLAY_ENGINES
                )
            else:
                paired.append(scenario)
        return paired
    return [
        Scenario(
            name=scenario.name,
            task=scenario.task,
            params={**scenario.params, "engine": engine},
        )
        if scenario.task in ENGINE_AWARE_TASKS
        else scenario
        for scenario in scenarios
    ]


def engine_pairs(scenarios: list[Scenario]) -> list[tuple[str, str]]:
    """(object_name, columnar_name) pairs produced by ``with_engine(.., "both")``."""
    names = {s.name for s in scenarios}
    return [
        (name, f"{base}__columnar")
        for name in sorted(names)
        for base in [name.removesuffix("__object")]
        if name.endswith("__object") and f"{base}__columnar" in names
    ]


def google_fleet_trace_params() -> dict:
    """Trace parameters of the sharded fleet bench (``REPRO_BENCH_FLEET_*``).

    The Google-trace-scale point: the paper's full ~12k-machine census
    over a horizon that emits >1M tasks, replayed by the sharded fleet
    layer (:mod:`repro.fleet`) rather than a single process.  Separate
    ``REPRO_BENCH_FLEET_*`` knobs so CI can shrink it independently.
    """
    from repro.runner.defaults import (
        bench_fleet_hours,
        bench_fleet_load,
        bench_fleet_machines,
    )

    return {
        "hours": bench_fleet_hours(),
        "seed": bench_seed(),
        "machines": bench_fleet_machines(),
        "load": bench_fleet_load(),
    }


#: Suite name -> builder, for the ``repro bench`` CLI.  The sharded
#: ``google_fleet`` suite is deliberately absent: it does not fit the
#: plain scenario-list shape (it plans, fans out and *merges*), is priced
#: at Google-trace scale, and so must be requested explicitly — see
#: ``repro fleet`` / ``repro bench google_fleet``.
SUITES = {
    "scalability": lambda defaults: scalability_scenarios(),
    "ablation": ablation_scenarios,
    "robustness": robustness_scenarios,
    "network_faults": network_faults_scenarios,
    "trace_corruption": trace_corruption_scenarios,
}
